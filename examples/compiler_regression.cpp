/**
 * @file
 * Compiler-regression hunt: the Fitter AVX diagnosis from Section
 * VIII.C.
 *
 * A new compiler made the AVX build 20x slower. The first suspicion —
 * bad AVX code generation or SSE-AVX transition penalties — is
 * disproved in minutes with an instruction mix: the number of packed
 * AVX instructions is unsuspicious, but CALL counts exploded, tracing
 * the problem to lost inlining.
 */

#include <cstdio>

#include "hbbp/hbbp.hh"

using namespace hbbp;

namespace {

struct MixFacts
{
    double avx = 0;
    double calls = 0;
    double x87 = 0;
    double us_per_track = 0;
};

MixFacts
measure(FitterVariant variant)
{
    Workload w = makeFitter(variant);
    Profiler profiler;
    ProfiledRun run = profiler.run(w);
    AnalysisResult res = profiler.analyze(w, run.profile);

    // Track count for time-per-track.
    Instrumenter instr(*w.program, true);
    ExecutionEngine engine(*w.program, MachineConfig{}, w.exec_seed);
    engine.addObserver(&instr);
    ExecStats stats = engine.run(w.max_instructions);
    uint64_t tracks = fitterTrackCount(*w.program, instr.bbecs());

    MixFacts facts;
    Counter<Mnemonic> counts = res.hbbpMix().mnemonicCounts();
    for (const auto &[m, c] : counts.items()) {
        if (info(m).ext == IsaExt::Avx || info(m).ext == IsaExt::Avx2)
            facts.avx += c;
        if (info(m).ext == IsaExt::X87)
            facts.x87 += c;
        if (info(m).category == Category::Call ||
            info(m).category == Category::IndirectCall)
            facts.calls += c;
    }
    // Normalize per track so builds are comparable.
    double per_track = 1.0 / static_cast<double>(tracks);
    facts.avx *= per_track;
    facts.calls *= per_track;
    facts.x87 *= per_track;
    facts.us_per_track =
        MachineConfig{}.cyclesToSeconds(stats.cycles) * 1e6 /
        static_cast<double>(tracks);
    return facts;
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Quiet);

    std::printf("symptom: the new compiler's AVX build misses its "
                "latency budget.\n\n");
    MixFacts bad = measure(FitterVariant::AvxBroken);
    MixFacts good = measure(FitterVariant::AvxFix);

    TextTable table({"metric (per track)", "suspect build",
                     "previous build", "ratio"});
    for (size_t c = 1; c < 4; c++)
        table.setAlign(c, Align::Right);
    auto row = [&](const char *name, double b, double g,
                   const char *fmt) {
        table.addRow({name, format(fmt, b), format(fmt, g),
                      format("%.1fx", g > 0 ? b / g : 0)});
    };
    row("AVX instructions", bad.avx, good.avx, "%.1f");
    row("x87 instructions", bad.x87, good.x87, "%.1f");
    row("CALLs", bad.calls, good.calls, "%.2f");
    row("time/track [us]", bad.us_per_track, good.us_per_track, "%.2f");
    std::printf("%s\n", table.render().c_str());

    std::printf("diagnosis:\n");
    if (bad.avx < 1.5 * good.avx)
        std::printf(" - packed AVX counts are unsuspicious: the "
                    "vectorizer did its job.\n");
    if (bad.calls > 10 * good.calls)
        std::printf(" - CALLs exploded %.0fx: helpers are no longer "
                    "inlined.\n", bad.calls / good.calls);
    if (bad.x87 > 3 * good.x87)
        std::printf(" - the un-inlined helpers fall back to scalar "
                    "x87 code.\n");
    std::printf("=> an inlining regression in the new compiler, not "
                "an AVX code generation problem (matches the paper's "
                "conclusion).\n");
    return 0;
}
