/**
 * @file
 * Quickstart: profile a workload with HBBP and print its instruction
 * mix.
 *
 * The canonical five-step flow:
 *   1. obtain a Workload (here: a generated benchmark; in your own
 *      code, build a Program with ProgramBuilder),
 *   2. collect a profile — one execution, two simultaneous LBR-mode
 *      PMU collections (the collector),
 *   3. analyze — disassemble into a block map, estimate BBECs from the
 *      EBS and LBR data sources, let HBBP pick per block,
 *   4. query pivot-table views of the instruction mix,
 *   5. (optional) compare against the instrumentation ground truth.
 */

#include <cstdio>

#include "hbbp/hbbp.hh"

using namespace hbbp;

int
main()
{
    setLogLevel(LogLevel::Quiet);

    // 1. A workload: the Geant4-like Test40 benchmark.
    Workload workload = makeTest40();

    // 2+3+5. The Profiler facade bundles collection, analysis and the
    // deterministic reference run.
    Profiler profiler;
    ProfiledRun run = profiler.run(workload);
    AnalysisResult analysis = profiler.analyze(workload, run.profile);

    std::printf("collected %zu EBS samples and %zu LBR stacks from "
                "%llu instructions\n",
                run.profile.ebs.size(), run.profile.lbr.size(),
                static_cast<unsigned long long>(
                    run.stats.instructions));

    // 4a. Top mnemonics.
    InstructionMix mix = analysis.hbbpMix();
    MixQuery top;
    top.group_by = {MixDim::Mnemonic};
    top.top_n = 10;
    std::printf("\ntop 10 mnemonics:\n%s",
                mix.pivotTable(top).render().c_str());

    // 4b. Breakdown by ISA extension and packing (vectorization view).
    MixQuery vec;
    vec.group_by = {MixDim::Isa, MixDim::Packing};
    std::printf("\nISA x packing breakdown:\n%s",
                mix.pivotTable(vec).render().c_str());

    // 4c. A custom taxonomy: long-latency instructions per function.
    Taxonomy tax = Taxonomy::standard();
    Counter<std::string> groups = mix.taxonomyCounts(tax);
    std::printf("\nlong-latency instructions executed: %.0f "
                "(%.2f%% of all)\n", groups.get("long_latency"),
                100.0 * groups.get("long_latency") /
                    mix.totalInstructions());

    // 5. How accurate was all of this?
    AccuracySummary acc = profiler.accuracy(run, analysis);
    std::printf("\navg weighted error vs instrumentation ground truth: "
                "HBBP %s (EBS alone %s, LBR alone %s)\n",
                percentStr(acc.hbbp, 2).c_str(),
                percentStr(acc.ebs, 2).c_str(),
                percentStr(acc.lbr, 2).c_str());
    return 0;
}
