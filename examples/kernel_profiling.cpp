/**
 * @file
 * Kernel-mode profiling: what HBBP can do that PIN/SDE cannot.
 *
 * Profiles the kernel benchmark (user-space prime search + the same
 * code as a kernel module triggered by reads) and prints side-by-side
 * ring breakdowns. Demonstrates the self-modifying-kernel-text fix:
 * without patching the static image with the live .text, kernel-side
 * results are badly distorted.
 */

#include <cstdio>

#include "hbbp/hbbp.hh"

using namespace hbbp;

int
main()
{
    setLogLevel(LogLevel::Quiet);

    Workload w = makeKernelBench();

    // Collect once; the collection sees both rings.
    Profiler collector;
    ProfiledRun run = collector.run(w);
    std::printf("run: %llu user + %llu kernel instructions\n\n",
                static_cast<unsigned long long>(
                    run.stats.user_instructions),
                static_cast<unsigned long long>(
                    run.stats.kernel_instructions));

    // Analyze with the kernel live-text fix enabled.
    AnalyzerOptions opts;
    opts.map.patch_kernel_text = true;
    Profiler analyzer(MachineConfig{}, CollectorConfig{}, opts);
    AnalysisResult res = analyzer.analyze(w, run.profile);
    InstructionMix mix = res.hbbpMix();

    // Ring breakdown.
    MixQuery by_ring;
    by_ring.group_by = {MixDim::Ring, MixDim::Category};
    by_ring.top_n = 12;
    std::printf("ring x category view:\n%s\n",
                mix.pivotTable(by_ring).render().c_str());

    // Kernel-only function view.
    MixQuery kernel_funcs;
    kernel_funcs.group_by = {MixDim::Module, MixDim::Function};
    kernel_funcs.filter = [](const MixContext &ctx) {
        return ctx.ring == Ring::Kernel;
    };
    std::printf("kernel-side functions:\n%s\n",
                mix.pivotTable(kernel_funcs).render().c_str());

    // Show why the fix matters.
    AnalyzerOptions stale_opts;
    stale_opts.map.patch_kernel_text = false;
    Profiler stale(MachineConfig{}, CollectorConfig{}, stale_opts);
    AnalysisResult stale_res = stale.analyze(w, run.profile);
    std::printf("LBR streams discarded: %s with stale static kernel "
                "text, %s with the live-text patch\n",
                percentStr(stale_res.estimates.discardFraction(), 2)
                    .c_str(),
                percentStr(res.estimates.discardFraction(), 2).c_str());

    // PIN's view for contrast: user-mode only.
    std::printf("\nfor contrast, software instrumentation sees %llu "
                "instructions (user mode only) — the kernel side is "
                "invisible to it.\n",
                static_cast<unsigned long long>(
                    static_cast<uint64_t>(
                        run.true_user_mnemonics.total())));
    return 0;
}
