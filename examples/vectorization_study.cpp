/**
 * @file
 * Vectorization study: the CLForward scenario from Section VIII.E.
 *
 * An instruction mix is often the fastest way to check whether code
 * vectorized: compare the scalar/packed split before and after a
 * change. Here we profile both builds of CLForward with HBBP, print
 * the packing breakdown and quantify the conversion (the paper's
 * developers replaced a large number of scalar instructions by a
 * smaller number of packed ones and gained 8%).
 */

#include <cstdio>

#include "hbbp/hbbp.hh"

using namespace hbbp;

namespace {

struct PackingProfile
{
    double scalar = 0;
    double packed = 0;
    double other = 0;
    double total = 0;
};

PackingProfile
profileOf(const Workload &w)
{
    Profiler profiler;
    ProfiledRun run = profiler.run(w);
    AnalysisResult analysis = profiler.analyze(w, run.profile);
    InstructionMix mix = analysis.hbbpMix();

    PackingProfile p;
    const Counter<Mnemonic> counts = mix.mnemonicCounts();
    for (const auto &[m, count] : counts.items()) {
        switch (info(m).packing) {
          case Packing::Scalar:
            p.scalar += count;
            break;
          case Packing::Packed:
            p.packed += count;
            break;
          default:
            p.other += count;
        }
        p.total += count;
    }
    return p;
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Quiet);

    std::printf("profiling CLForward before and after the #omp simd "
                "fix...\n\n");
    PackingProfile before =
        profileOf(makeClForward(ClForwardVersion::Before));
    PackingProfile after =
        profileOf(makeClForward(ClForwardVersion::After));

    TextTable table({"metric", "before", "after"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);
    auto pct = [](double x, double total) {
        return percentStr(total > 0 ? x / total : 0, 1);
    };
    table.addRow({"scalar share", pct(before.scalar, before.total),
                  pct(after.scalar, after.total)});
    table.addRow({"packed share", pct(before.packed, before.total),
                  pct(after.packed, after.total)});
    table.addRow({"other share", pct(before.other, before.total),
                  pct(after.other, after.total)});
    std::printf("%s\n", table.render().c_str());

    double scalar_removed = before.scalar - after.scalar;
    double packed_added = after.packed - before.packed;
    std::printf("the fix replaced ~%.1fM scalar instructions with "
                "~%.1fM packed ones (%.1f scalar per packed)\n",
                scalar_removed / 1e6, packed_added / 1e6,
                scalar_removed / packed_added);

    if (after.scalar / after.total < 0.05)
        std::printf("verdict: the loop now vectorizes — scalar residue "
                    "is below 5%%.\n");
    else
        std::printf("verdict: significant scalar residue remains; "
                    "check the compiler report for the blocking "
                    "dependence.\n");
    return 0;
}
