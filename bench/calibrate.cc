/**
 * @file
 * Calibration diagnostics (not a paper table).
 *
 * Prints, for the training suite: per-length-bucket EBS and LBR block
 * error medians, the EBS-vs-LBR label balance, the fitted decision tree
 * and its root cutoff, and per-workload average weighted errors. Used to
 * tune the PMU model so the learned cutoff lands near the paper's 18.
 */

#include <cstdio>
#include <map>

#include "hbbp/hbbp.hh"

using namespace hbbp;

int
main()
{
    setLogLevel(LogLevel::Normal);

    Profiler profiler;
    HbbpTrainer trainer(profiler);

    std::vector<Workload> suite = makeTrainingSuite();
    std::vector<LabeledBlock> blocks = trainer.labelBlocks(suite);
    std::printf("training examples: %zu\n", blocks.size());

    // Error medians by block-length bucket.
    std::map<int, std::vector<double>> ebs_by_len, lbr_by_len;
    std::map<int, int> ebs_wins, lbr_wins;
    for (const LabeledBlock &lb : blocks) {
        int bucket = static_cast<int>(lb.features.length) / 4 * 4;
        ebs_by_len[bucket].push_back(lb.ebs_error);
        lbr_by_len[bucket].push_back(lb.lbr_error);
        if (lb.label == kLabelEbs)
            ebs_wins[bucket]++;
        else
            lbr_wins[bucket]++;
    }
    TextTable table({"len bucket", "n", "EBS median err", "LBR median err",
                     "EBS wins", "LBR wins"});
    for (auto &[bucket, errs] : ebs_by_len) {
        table.addRow({
            format("%d-%d", bucket, bucket + 3),
            std::to_string(errs.size()),
            percentStr(percentile(errs, 50), 2),
            percentStr(percentile(lbr_by_len[bucket], 50), 2),
            std::to_string(ebs_wins[bucket]),
            std::to_string(lbr_wins[bucket]),
        });
    }
    std::printf("%s\n", table.render().c_str());

    // Bias statistics.
    size_t biased = 0;
    double biased_lbr_err = 0, clean_lbr_err = 0;
    size_t clean = 0;
    for (const LabeledBlock &lb : blocks) {
        if (lb.features.bias > 0.5) {
            biased++;
            biased_lbr_err += lb.lbr_error;
        } else {
            clean++;
            clean_lbr_err += lb.lbr_error;
        }
    }
    std::printf("bias-flagged blocks: %zu (mean LBR err %.2f%%), "
                "clean: %zu (mean LBR err %.2f%%)\n\n",
                biased, biased ? 100.0 * biased_lbr_err / biased : 0.0,
                clean, clean ? 100.0 * clean_lbr_err / clean : 0.0);

    // Fit the tree.
    DecisionTree tree = trainer.fitTree(blocks);
    std::printf("tree:\n%s\n",
                tree.toText(HbbpTrainer::featureNames(),
                            HbbpTrainer::classNames()).c_str());
    std::vector<double> imp = tree.featureImportances();
    for (size_t i = 0; i < imp.size(); i++)
        std::printf("importance %-16s %.3f\n",
                    BlockFeatures::featureName(i), imp[i]);
    std::printf("root length cutoff: %.1f\n\n",
                HbbpTrainer::rootLengthCutoff(tree));

    // Per-workload aggregate errors on a few probes.
    std::vector<Workload> probes;
    probes.push_back(makeTest40());
    probes.push_back(makeFitter(FitterVariant::Sse));
    probes.push_back(makeFitter(FitterVariant::AvxFix));
    probes.push_back(makeSpecBenchmark("453.povray"));
    probes.push_back(makeSpecBenchmark("456.hmmer"));
    probes.push_back(makeSpecBenchmark("470.lbm"));
    TextTable errs({"workload", "HBBP", "LBR", "EBS", "streams disc."});
    for (const Workload &w : probes) {
        ProfiledRun run = profiler.run(w);
        AnalysisResult analysis = profiler.analyze(w, run.profile);
        AccuracySummary acc = profiler.accuracy(run, analysis);
        errs.addRow({w.name, percentStr(acc.hbbp, 2),
                     percentStr(acc.lbr, 2), percentStr(acc.ebs, 2),
                     percentStr(analysis.estimates.discardFraction(), 1)});
    }
    std::printf("%s\n", errs.render().c_str());
    return 0;
}
