/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 */

#ifndef HBBP_BENCH_COMMON_HH
#define HBBP_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "hbbp/hbbp.hh"

namespace hbbp::bench {

/** One fully analyzed workload run. */
struct Analyzed
{
    ProfiledRun run;
    AnalysisResult analysis;
    AccuracySummary accuracy;
};

/** Run, analyze and score a workload with the given profiler. */
inline Analyzed
analyzeWorkload(const Profiler &profiler, const Workload &w)
{
    ProfiledRun run = profiler.run(w);
    AnalysisResult analysis = profiler.analyze(w, run.profile);
    AccuracySummary accuracy = profiler.accuracy(run, analysis);
    return Analyzed{std::move(run), std::move(analysis), accuracy};
}

/** Format a count in millions with two decimals. */
inline std::string
millions(double x)
{
    return format("%.2f", x / 1e6);
}

/** Format seconds in a human-friendly way. */
inline std::string
seconds(double s)
{
    if (s >= 3600.0)
        return format("%.1fh", s / 3600.0);
    if (s >= 60.0)
        return format("%.1fm", s / 60.0);
    return format("%.1fs", s);
}

/** Print a headline for a reproduced table/figure. */
inline void
headline(const char *what, const char *paper_summary)
{
    std::printf("==== %s ====\n", what);
    std::printf("paper reference: %s\n\n", paper_summary);
}

} // namespace hbbp::bench

#endif // HBBP_BENCH_COMMON_HH
