/**
 * @file
 * Reproduces Table 4: the EBS and LBR sampling periods HBBP selects
 * per runtime class (prime values; LBR sampled with the smaller period
 * because taken branches are rarer than retirements), plus the scaled
 * periods the simulation uses.
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

int
main()
{
    headline("Table 4: EBS and LBR sampling periods in HBBP",
             "Seconds: 1'000'037 / 100'003; ~1-2 minutes: 10'000'019 / "
             "1'000'037; Minutes (SPEC): 100'000'007 / 10'000'019");

    CollectorConfig def;
    TextTable table({"Runtime", "EBS period", "LBR period",
                     "sim EBS", "sim LBR"});
    for (size_t c = 1; c < 5; c++)
        table.setAlign(c, Align::Right);
    for (RuntimeClass cls : {RuntimeClass::Seconds,
                             RuntimeClass::MinutesFew,
                             RuntimeClass::MinutesMany}) {
        SamplingPeriods paper = paperPeriods(cls);
        SamplingPeriods sim = scaledPeriods(cls, def.period_scale);
        table.addRow({name(cls), withSeparators(paper.ebs),
                      withSeparators(paper.lbr), withSeparators(sim.ebs),
                      withSeparators(sim.lbr)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("all periods are prime to avoid resonance with loop "
                "trip counts; the simulation divides by %llu and "
                "re-primes.\n",
                static_cast<unsigned long long>(def.period_scale));
    return 0;
}
