/**
 * @file
 * Reproduces Table 8: the HBBP view of CLForward vectorization. A
 * large number of scalar AVX instructions is replaced by a smaller
 * number of packed ones after the "#omp simd reduction" fix, shrinking
 * the total from 19.2B to 15.8B instructions (paper: +8% performance).
 *
 * Counts are scaled so the BEFORE total reads 19.2 (the paper's
 * billions), making the AFTER column directly comparable.
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

namespace {

/** INST SET x PACKING breakdown of an HBBP mix. */
Counter<std::string>
breakdown(const InstructionMix &mix)
{
    Counter<std::string> out;
    MixQuery q;
    q.group_by = {MixDim::Isa, MixDim::Packing};
    for (const PivotRow &row : mix.pivot(q))
        out.add(row.key[0] + "/" + row.key[1], row.count);
    return out;
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Quiet);
    headline("Table 8: HBBP view of CLForward vectorization",
             "AVX scalar 14.7 -> 0.4; AVX packed 1.5 -> 10.6; total "
             "19.2 -> 15.8 (billions)");

    Profiler profiler;
    Analyzed before = analyzeWorkload(
        profiler, makeClForward(ClForwardVersion::Before));
    Analyzed after = analyzeWorkload(
        profiler, makeClForward(ClForwardVersion::After));

    InstructionMix mix_before = before.analysis.hbbpMix();
    InstructionMix mix_after = after.analysis.hbbpMix();
    Counter<std::string> b = breakdown(mix_before);
    Counter<std::string> af = breakdown(mix_after);

    // Normalize so BEFORE totals the paper's 19.2 billion.
    double scale = 19.2 / mix_before.totalInstructions();

    TextTable table({"INST SET", "PACKING", "BEFORE", "AFTER"});
    table.setAlign(2, Align::Right);
    table.setAlign(3, Align::Right);
    auto row = [&](const char *iset, const char *packing,
                   const std::string &key) {
        table.addRow({iset, packing, format("%.1f", b.get(key) * scale),
                      format("%.1f", af.get(key) * scale)});
    };
    row("AVX", "NONE", "AVX/NONE");
    row("AVX", "SCALAR", "AVX/SCALAR");
    row("AVX", "PACKED", "AVX/PACKED");
    // Everything non-AVX in this code is base integer.
    row("BASE", "NONE", "BASE/NONE");
    table.addSeparator();
    table.addRow({"TOTAL", "",
                  format("%.1f", mix_before.totalInstructions() * scale),
                  format("%.1f", mix_after.totalInstructions() * scale)});
    std::printf("%s\n(billions at paper scale)\n\n",
                table.render().c_str());

    std::printf("accuracy of the HBBP views: before %s, after %s "
                "(avg weighted error vs SDE)\n",
                percentStr(before.accuracy.hbbp, 2).c_str(),
                percentStr(after.accuracy.hbbp, 2).c_str());
    return 0;
}
