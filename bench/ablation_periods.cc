/**
 * @file
 * Ablation: accuracy and collection overhead vs sampling period
 * (Section V.A notes the periods influence both). Denser sampling
 * buys accuracy at the cost of PMI overhead; the Table 4 defaults sit
 * on the flat part of the accuracy curve.
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

int
main()
{
    setLogLevel(LogLevel::Quiet);
    headline("Ablation: accuracy vs sampling period",
             "denser sampling improves accuracy with diminishing "
             "returns while PMI overhead grows linearly");

    Workload w = makeTest40();
    CollectionCostModel cost;

    TextTable table({"period divisor", "EBS period", "LBR period",
                     "HBBP err", "LBR err", "EBS err",
                     "overhead @paper"});
    for (size_t c = 1; c < 7; c++)
        table.setAlign(c, Align::Right);

    // Sweep the simulated periods; overhead is reported for the
    // equivalent paper-scale periods (paper period / divisor relative
    // to the Table 4 default).
    SamplingPeriods paper = paperPeriods(w.runtime_class);
    for (uint64_t divisor : {1ULL, 2ULL, 4ULL, 8ULL, 16ULL, 64ULL}) {
        // Sparser than the default when divisor is 1 would mean the
        // Table 4 scaling; here we start at the default and densify.
        SamplingPeriods sim{
            nextPrime(std::max<uint64_t>(997 / divisor, 13)),
            nextPrime(std::max<uint64_t>(97 / divisor, 7))};

        PmuConfig pmu_config;
        pmu_config.ebs_period = sim.ebs;
        pmu_config.lbr_period = sim.lbr;
        DualCollectionPmu pmu(pmu_config);
        Instrumenter counter(*w.program, true);
        ExecutionEngine engine(*w.program, MachineConfig{}, w.exec_seed);
        engine.addObserver(&pmu);
        engine.addObserver(&counter);
        ExecStats stats = engine.run(w.max_instructions);

        ProfileData pd;
        pd.runtime_class = w.runtime_class;
        pd.paper_periods = paper;
        pd.sim_periods = sim;
        pd.ebs = pmu.takeEbsSamples();
        pd.lbr = pmu.takeLbrSamples();
        pd.features = makeRunFeatures(stats, 0);

        Profiler profiler;
        AnalysisResult res = profiler.analyze(w, pd);

        // Ground truth.
        Counter<Mnemonic> ref;
        for (const BasicBlock &blk : w.program->blocks()) {
            uint64_t n = counter.bbec(blk.id);
            for (const Instruction &i : blk.instrs)
                ref.add(i.mnemonic, static_cast<double>(n));
        }
        double eh = avgWeightedError(
            ref, res.hbbpMix().mnemonicCounts());
        double el = avgWeightedError(ref, res.lbrMix().mnemonicCounts());
        double ee = avgWeightedError(ref, res.ebsMix().mnemonicCounts());

        // Equivalent paper-scale overhead when the Table 4 periods are
        // divided by the same factor.
        double ovh = cost.overheadFraction(
            pd.features, std::max<uint64_t>(paper.ebs / divisor, 1),
            std::max<uint64_t>(paper.lbr / divisor, 1));
        table.addRow({format("%llux denser",
                             static_cast<unsigned long long>(divisor)),
                      withSeparators(sim.ebs), withSeparators(sim.lbr),
                      percentStr(eh, 2), percentStr(el, 2),
                      percentStr(ee, 2), percentStr(ovh, 2)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
