/**
 * @file
 * Query-serving read-path benchmark.
 *
 * Measures the `hbbp-tool serve` query path end to end — a real
 * ShardListener with a co-hosted QueryEndpoint, queried over TCP by
 * QueryClient — in the regimes the epoch cache is built for:
 *
 *  - cold_qps: every query carries a distinct cutoff, so each one
 *    misses both caches and pays a full analyzer run;
 *  - cached_qps: the identical query repeated, served from the
 *    per-epoch result cache (cached_speedup = cached/cold);
 *  - batch_qps vs single_qps: one connection issuing N queries
 *    back-to-back against one fresh connection per query — what
 *    connection reuse is worth on the serving path;
 *  - cached_no_reanalysis: the service's `analyses` counter must not
 *    move across the cached repeats — the cached path never falls
 *    back to a full re-analysis. The bench fatal()s if it does, and
 *    the JSON records the check for scripts/check_bench.py.
 *
 * Output is machine-readable JSON on stdout (one object), so CI can
 * archive and diff runs. Pass --human for the table view, --quick for
 * a CI-sized run.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/service.hh"
#include "bench/common.hh"
#include "collect/collector.hh"
#include "fleet/aggregate.hh"
#include "fleet/manifest.hh"
#include "fleet/query.hh"
#include "fleet/transport.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "tools/registry.hh"

using namespace hbbp;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    using namespace std::chrono;
    return duration_cast<duration<double>>(steady_clock::now() - start)
        .count();
}

std::string
mixRequest(const std::string &cutoff)
{
    QueryRequest req;
    req.verb = "mix";
    if (!cutoff.empty())
        req.params["cutoff"] = cutoff;
    return req.renderText();
}

/** One query that must succeed; returns the reply. */
QueryReply
mustQuery(QueryClient &client, const std::string &body)
{
    QueryReply reply;
    std::string why;
    if (!client.query(body, &reply, &why))
        fatal("query failed: %s", why.c_str());
    if (!reply.ok)
        fatal("query rejected: %s", reply.error.c_str());
    return reply;
}

/** The `analyses=` counter out of a status reply payload. */
uint64_t
analysesFromStatus(QueryClient &client)
{
    QueryRequest req;
    req.verb = "status";
    QueryReply reply = mustQuery(client, req.renderText());
    size_t pos = reply.payload.find("analyses=");
    if (pos == std::string::npos)
        fatal("status payload lacks analyses=: %s",
              reply.payload.c_str());
    return std::strtoull(reply.payload.c_str() + pos + 9, nullptr, 10);
}

} // namespace

int
main(int argc, char **argv)
{
    bool human = false, quick = false;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--human") == 0)
            human = true;
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    const size_t n_hosts = quick ? 2 : 4;
    const size_t cold_iters = quick ? 8 : 32;
    const size_t cached_iters = quick ? 200 : 1000;
    const size_t batch_n = quick ? 100 : 400;

    Workload w = requireWorkloadByName("test40");
    CollectorConfig base_cc = collectorConfigFor(w);
    if (quick)
        base_cc.max_instructions = w.max_instructions / 4;

    // A small fleet's aggregate, folded in before the daemon starts —
    // this bench prices serving, not ingestion (scale_transport does
    // that).
    IncrementalAggregator agg;
    for (size_t h = 0; h < n_hosts; h++) {
        std::string host = format("host%03zu", h);
        CollectorConfig cc = base_cc;
        cc.seed = hostStreamSeed(cc.seed, host, 0);
        cc.pmu.seed =
            hostStreamSeed(cc.pmu.seed ^ 0x5851f42d4c957f2dULL, host, 0);
        ProfileData pd = Collector::collect(*w.program, MachineConfig{}, cc);
        ShardManifest m;
        m.host = host;
        m.workload = w.name;
        m.checksum = pd.payloadChecksum();
        if (!agg.addShard(m, pd))
            fatal("shard fold failed for %s", host.c_str());
    }

    AggregatorProfileSource source(agg);
    AnalysisService service(source, makeWorkloadByName);
    QueryEndpoint endpoint(service);
    ShardListener listener(0);
    ListenOptions lo;
    lo.idle_timeout_ms = -1;
    lo.on_query = [&](const std::string &body) {
        return endpoint.handle(body);
    };
    lo.should_stop = [&] { return endpoint.stopRequested(); };
    std::thread server([&] { listener.serve(agg, lo); });
    uint16_t port = listener.port();

    double cold_qps, cached_qps, batch_qps, single_qps;
    bool cached_no_reanalysis;
    {
        QueryClient client("127.0.0.1", port);

        // Cold: a distinct cutoff per query defeats both caches, so
        // every iteration pays the full analyzer run.
        auto start = std::chrono::steady_clock::now();
        for (size_t i = 0; i < cold_iters; i++)
            mustQuery(client,
                      mixRequest(format("%.3f", 18.0 + 0.001 * i)));
        cold_qps = cold_iters / secondsSince(start);

        // Cached: the identical query repeated within one epoch. The
        // first serve warms the cache; the analyses counter must not
        // move across the repeats.
        std::string warm = mixRequest("18.0");
        QueryReply first = mustQuery(client, warm);
        if (first.cached)
            fatal("warmup query unexpectedly cached");
        uint64_t analyses_before = analysesFromStatus(client);
        start = std::chrono::steady_clock::now();
        for (size_t i = 0; i < cached_iters; i++) {
            QueryReply r = mustQuery(client, warm);
            if (!r.cached)
                fatal("repeat %zu missed the epoch cache", i);
        }
        cached_qps = cached_iters / secondsSince(start);
        uint64_t analyses_after = analysesFromStatus(client);
        cached_no_reanalysis = analyses_after == analyses_before;
        if (!cached_no_reanalysis)
            fatal("cached path fell back to re-analysis "
                  "(analyses %llu -> %llu across cached repeats)",
                  static_cast<unsigned long long>(analyses_before),
                  static_cast<unsigned long long>(analyses_after));

        // Batch-of-N on this connection (already measured warm).
        start = std::chrono::steady_clock::now();
        for (size_t i = 0; i < batch_n; i++)
            mustQuery(client, warm);
        batch_qps = batch_n / secondsSince(start);

        // One fresh connection per query: what batching saves.
        start = std::chrono::steady_clock::now();
        for (size_t i = 0; i < batch_n; i++) {
            QueryClient one("127.0.0.1", port);
            mustQuery(one, warm);
        }
        single_qps = batch_n / secondsSince(start);
    }

    // Clean shutdown through the protocol, like the CLI daemon.
    {
        QueryClient client("127.0.0.1", port);
        QueryRequest req;
        req.verb = "shutdown";
        mustQuery(client, req.renderText());
    }
    server.join();

    double cached_speedup = cached_qps / cold_qps;
    double batch_speedup = batch_qps / single_qps;

    if (human) {
        bench::headline("Query serving scaling",
                        "fleet extension (no paper analogue)");
        TextTable table({"regime", "queries/s"});
        table.setAlign(1, Align::Right);
        table.addRow({"cold (distinct cutoffs)", format("%.1f", cold_qps)});
        table.addRow({"epoch-cached", format("%.1f", cached_qps)});
        table.addRow({"batch-of-N, one conn", format("%.1f", batch_qps)});
        table.addRow({"one conn per query", format("%.1f", single_qps)});
        std::printf("%s\n", table.render().c_str());
        std::printf("cached speedup: %.1fx   batch speedup: %.2fx   "
                    "no re-analysis when cached: %s\n",
                    cached_speedup, batch_speedup,
                    cached_no_reanalysis ? "yes" : "NO");
        return 0;
    }

    std::printf("{\n  \"bench\": \"scale_query\",\n");
    std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
    std::printf("  \"hosts\": %zu,\n", n_hosts);
    std::printf("  \"query\": {\n");
    std::printf("    \"cold_qps\": %.3f,\n", cold_qps);
    std::printf("    \"cached_qps\": %.3f,\n", cached_qps);
    std::printf("    \"cached_speedup\": %.3f,\n", cached_speedup);
    std::printf("    \"batch_qps\": %.3f,\n", batch_qps);
    std::printf("    \"single_qps\": %.3f,\n", single_qps);
    std::printf("    \"batch_speedup\": %.3f,\n", batch_speedup);
    std::printf("    \"cached_no_reanalysis\": %s\n",
                cached_no_reanalysis ? "true" : "false");
    std::printf("  }\n}\n");
    return 0;
}
