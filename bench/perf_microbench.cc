/**
 * @file
 * google-benchmark microbenchmarks backing the paper's "near real
 * time" claims: simulation/collection throughput, decoder speed, and
 * analyzer latency ("most workloads in a minute or less" — here,
 * milliseconds at simulation scale).
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"

using namespace hbbp;

namespace {

const Workload &
test40()
{
    static const Workload w = [] {
        Workload x = makeTest40();
        x.max_instructions = 1'000'000;
        return x;
    }();
    return w;
}

const ProfileData &
test40Profile()
{
    static const ProfileData pd = [] {
        CollectorConfig cc;
        cc.runtime_class = test40().runtime_class;
        cc.max_instructions = test40().max_instructions;
        cc.seed = test40().exec_seed;
        return Collector::collect(*test40().program, MachineConfig{}, cc);
    }();
    return pd;
}

void
BM_EngineThroughput(benchmark::State &state)
{
    const Workload &w = test40();
    for (auto _ : state) {
        ExecutionEngine engine(*w.program, MachineConfig{}, w.exec_seed);
        ExecStats stats = engine.run(w.max_instructions);
        benchmark::DoNotOptimize(stats.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(w.max_instructions));
}
BENCHMARK(BM_EngineThroughput)->Unit(benchmark::kMillisecond);

void
BM_CollectionThroughput(benchmark::State &state)
{
    const Workload &w = test40();
    CollectorConfig cc;
    cc.runtime_class = w.runtime_class;
    cc.max_instructions = w.max_instructions;
    cc.seed = w.exec_seed;
    for (auto _ : state) {
        ProfileData pd =
            Collector::collect(*w.program, MachineConfig{}, cc);
        benchmark::DoNotOptimize(pd.ebs.size());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(w.max_instructions));
}
BENCHMARK(BM_CollectionThroughput)->Unit(benchmark::kMillisecond);

void
BM_Decoder(benchmark::State &state)
{
    const Module &mod = test40().program->modules()[0];
    for (auto _ : state) {
        auto instrs = decodeAll(mod.live_text, mod.base);
        benchmark::DoNotOptimize(instrs.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(mod.live_text.size()));
}
BENCHMARK(BM_Decoder);

void
BM_BlockMapConstruction(benchmark::State &state)
{
    const Program &p = *test40().program;
    for (auto _ : state) {
        BlockMap map(p);
        benchmark::DoNotOptimize(map.blocks().size());
    }
}
BENCHMARK(BM_BlockMapConstruction);

void
BM_BbecEstimation(benchmark::State &state)
{
    const Program &p = *test40().program;
    BlockMap map(p);
    const ProfileData &pd = test40Profile();
    BbecEstimator estimator;
    for (auto _ : state) {
        BbecEstimates est = estimator.estimate(map, pd);
        benchmark::DoNotOptimize(est.lbr.size());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(pd.ebs.size() + pd.lbr.size()));
}
BENCHMARK(BM_BbecEstimation)->Unit(benchmark::kMillisecond);

void
BM_FullAnalysis(benchmark::State &state)
{
    const Workload &w = test40();
    const ProfileData &pd = test40Profile();
    Analyzer analyzer;
    for (auto _ : state) {
        AnalysisResult res = analyzer.analyze(*w.program, pd);
        benchmark::DoNotOptimize(res.hbbp.size());
    }
}
BENCHMARK(BM_FullAnalysis)->Unit(benchmark::kMillisecond);

void
BM_MixPivot(benchmark::State &state)
{
    const Workload &w = test40();
    Analyzer analyzer;
    AnalysisResult res = analyzer.analyze(*w.program, test40Profile());
    InstructionMix mix = res.hbbpMix();
    MixQuery q;
    q.group_by = {MixDim::Function, MixDim::Mnemonic};
    for (auto _ : state) {
        auto rows = mix.pivot(q);
        benchmark::DoNotOptimize(rows.size());
    }
}
BENCHMARK(BM_MixPivot)->Unit(benchmark::kMillisecond);

void
BM_TreePredict(benchmark::State &state)
{
    // Train once on synthetic labels, then measure prediction cost.
    Dataset d(HbbpTrainer::featureNames());
    Rng rng(3);
    for (int i = 0; i < 1000; i++) {
        BlockFeatures f;
        f.length = static_cast<double>(rng.nextRange(1, 60));
        f.bytes = f.length * 5;
        f.exec_estimate = rng.nextDouble() * 1e6;
        d.add(f.toVector(), f.length <= 18 ? 1 : 0);
    }
    DecisionTree tree;
    tree.fit(d);
    std::vector<double> x = {10, 50, 1000, 0, 0, 0.1};
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.predict(x));
        x[0] = x[0] >= 60 ? 1 : x[0] + 1;
    }
}
BENCHMARK(BM_TreePredict);

} // namespace

BENCHMARK_MAIN();
