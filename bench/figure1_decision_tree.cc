/**
 * @file
 * Reproduces Figure 1: the decision tree learned by the HBBP criteria
 * search. Trains classification trees on the non-SPEC training
 * workloads (~1,100 labelled basic blocks in the paper), prints the
 * scikit-style tree with Gini impurities and sample counts, the
 * feature importances (block length dominates, > 0.7 in the paper
 * when bytes and length are one feature), and the root cutoff
 * (consistently close to 18 in the paper).
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

int
main()
{
    setLogLevel(LogLevel::Quiet);
    headline("Figure 1: the HBBP decision tree",
             "root split on block length with cutoff ~18; gini and "
             "sample counts per node; length importance > 0.7");

    Profiler profiler;
    HbbpTrainer trainer(profiler);
    std::vector<Workload> suite = makeTrainingSuite();
    std::vector<LabeledBlock> blocks = trainer.labelBlocks(suite);

    int ebs_labels = 0;
    for (const LabeledBlock &lb : blocks)
        ebs_labels += lb.label == kLabelEbs;
    std::printf("training set: %zu basic blocks from %zu non-SPEC "
                "workloads (%d labelled EBS, %d LBR)\n\n",
                blocks.size(), suite.size(), ebs_labels,
                static_cast<int>(blocks.size()) - ebs_labels);

    DecisionTree tree = trainer.fitTree(blocks);
    std::printf("%s\n", tree.toText(HbbpTrainer::featureNames(),
                                    HbbpTrainer::classNames()).c_str());

    std::vector<double> imp = tree.featureImportances();
    TextTable table({"feature", "importance"});
    table.setAlign(1, Align::Right);
    for (size_t i = 0; i < imp.size(); i++)
        table.addRow({BlockFeatures::featureName(i),
                      format("%.3f", imp[i])});
    std::printf("%s\n", table.render().c_str());
    std::printf("block size importance (length + bytes): %.3f\n",
                imp[0] + imp[1]);

    double cutoff = HbbpTrainer::rootLengthCutoff(tree);
    if (cutoff >= 0)
        std::printf("root block-length cutoff: %.1f (paper: ~18)\n",
                    cutoff);
    else
        std::printf("root split is on the bias flag in this draw: the "
                    "simulated LBR anomaly is detected more cleanly "
                    "than on the paper's hardware, so bias separates "
                    "first. The length rule appears one level down.\n");

    // The headline length rule: ablate the bias feature (the paper
    // notes bias on its own does not suffice and that block length
    // dominates) and refit a depth-1 stump.
    std::vector<LabeledBlock> no_bias = blocks;
    for (LabeledBlock &lb : no_bias)
        lb.features.bias = 0.0;
    TrainerOptions opts;
    opts.tree.max_depth = 1;
    HbbpTrainer shallow_trainer(profiler, opts);
    DecisionTree stump = shallow_trainer.fitTree(no_bias);
    std::printf("\ndepth-1 stump over the remaining features (the "
                "deployed length rule):\n%s",
                stump.toText(HbbpTrainer::featureNames(),
                             HbbpTrainer::classNames()).c_str());
    double stump_cutoff = HbbpTrainer::rootLengthCutoff(stump);
    if (stump_cutoff >= 0)
        std::printf("=> blocks with <= %.0f instructions use LBR, "
                    "longer blocks use EBS (paper: 18)\n", stump_cutoff);
    std::vector<double> imp_nb;
    {
        DecisionTree deep;
        HbbpTrainer deep_trainer(profiler);
        deep = deep_trainer.fitTree(no_bias);
        imp_nb = deep.featureImportances();
        std::printf("block size importance without the bias feature: "
                    "%.3f (paper reports > 0.7 for block length)\n",
                    imp_nb[0] + imp_nb[1]);
    }

    std::printf("\nGraphviz export:\n%s",
                tree.toDot(HbbpTrainer::featureNames(),
                           HbbpTrainer::classNames()).c_str());
    return 0;
}
