/**
 * @file
 * Reproduces Table 7: the synthetic kernel benchmark. The same
 * prime-search code runs as a user-space function (hello_u) and as a
 * kernel module (hello_k) triggered by reads; SDE can only see the
 * user side, HBBP profiles both, and the three columns agree.
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

int
main()
{
    setLogLevel(LogLevel::Quiet);
    headline("Table 7: instructions in the kernel sample",
             "SDE(hello_u) ~= HBBP(hello_u) ~= HBBP(hello_k); EBS "
             "errors reach 15%, LBR/HBBP stay around 1%");

    // The kernel analyzer applies the live-text patching fix
    // (Section III.C) to handle the module's NOP'd tracepoints.
    Profiler profiler(MachineConfig{}, CollectorConfig{},
                      AnalyzerOptions::kernelPatched());
    Workload w = makeKernelBench();
    Analyzed a = analyzeWorkload(profiler, w);

    auto in_function = [&](const char *fn) {
        std::string fname = fn;
        return [&map = a.analysis.map, fname](const MixContext &ctx) {
            return map.functionName(*ctx.block) == fname;
        };
    };

    // Reference: the user-side function from software instrumentation.
    Counter<Mnemonic> sde_user;
    {
        const Program &p = *w.program;
        Instrumenter instr(p, false);
        ExecutionEngine engine(p, MachineConfig{}, w.exec_seed);
        engine.addObserver(&instr);
        engine.run(w.max_instructions);
        for (const BasicBlock &blk : p.blocks()) {
            if (p.function(blk.func).name != kKernelBenchUserFunc)
                continue;
            for (const Instruction &i : blk.instrs)
                sde_user.add(i.mnemonic,
                             static_cast<double>(instr.bbec(blk.id)));
        }
    }

    InstructionMix hbbp_mix = a.analysis.hbbpMix();
    Counter<Mnemonic> hbbp_user =
        hbbp_mix.mnemonicCounts(in_function(kKernelBenchUserFunc));
    Counter<Mnemonic> hbbp_kernel =
        hbbp_mix.mnemonicCounts(in_function(kKernelBenchKernelFunc));

    TextTable table({"Function", "hello_u (SDE)", "hello_k (HBBP)",
                     "hello_u (HBBP)"});
    for (size_t c = 1; c < 4; c++)
        table.setAlign(c, Align::Right);
    double tot_sde = 0, tot_hk = 0, tot_hu = 0;
    for (const auto &[m, ref] : sde_user.sorted()) {
        if (ref < 1000)
            continue;
        table.addRow({info(m).name, millions(ref),
                      millions(hbbp_kernel.get(m)),
                      millions(hbbp_user.get(m))});
        tot_sde += ref;
        tot_hk += hbbp_kernel.get(m);
        tot_hu += hbbp_user.get(m);
    }
    table.addSeparator();
    table.addRow({"Total", millions(tot_sde), millions(tot_hk),
                  millions(tot_hu)});
    std::printf("%s\n(counts in millions at simulation scale)\n\n",
                table.render().c_str());

    // Method comparison on the user side, as reported in the text.
    double hbbp_err = avgWeightedError(sde_user, hbbp_user);
    Counter<Mnemonic> ebs_user =
        a.analysis.ebsMix().mnemonicCounts(
            in_function(kKernelBenchUserFunc));
    Counter<Mnemonic> lbr_user =
        a.analysis.lbrMix().mnemonicCounts(
            in_function(kKernelBenchUserFunc));
    std::printf("hello_u errors vs SDE: HBBP %s, LBR %s, EBS %s\n",
                percentStr(hbbp_err, 2).c_str(),
                percentStr(avgWeightedError(sde_user, lbr_user), 2)
                    .c_str(),
                percentStr(avgWeightedError(sde_user, ebs_user), 2)
                    .c_str());

    // Kernel-side agreement: HBBP(hello_k) vs the simulator's exact
    // kernel reference (which stands in for ground truth SDE cannot
    // provide).
    Counter<Mnemonic> true_kernel;
    {
        const Program &p = *w.program;
        Instrumenter instr(p, true);
        ExecutionEngine engine(p, MachineConfig{}, w.exec_seed);
        engine.addObserver(&instr);
        engine.run(w.max_instructions);
        for (const BasicBlock &blk : p.blocks()) {
            if (p.function(blk.func).name != kKernelBenchKernelFunc)
                continue;
            for (const Instruction &i : blk.instrs)
                true_kernel.add(i.mnemonic,
                                static_cast<double>(instr.bbec(blk.id)));
        }
    }
    std::printf("hello_k HBBP error vs simulator ground truth: %s\n",
                percentStr(avgWeightedError(true_kernel, hbbp_kernel), 2)
                    .c_str());
    return 0;
}
