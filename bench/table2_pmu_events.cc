/**
 * @file
 * Reproduces Table 2: the evolution of instruction-specific counting
 * event support on Intel server PMUs — the motivating trend that
 * dedicated computational-instruction counters are disappearing.
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

int
main()
{
    headline("Table 2: instruction-specific PMU event support",
             "support shrinks from Westmere (2010) to Haswell (2015); "
             "only DIV cycles survive on Haswell");

    const PmuGeneration gens[] = {PmuGeneration::Westmere,
                                  PmuGeneration::IvyBridge,
                                  PmuGeneration::Haswell};

    std::vector<std::string> headers{"Event class"};
    for (PmuGeneration g : gens)
        headers.push_back(format("%s (%d)", name(g), releaseYear(g)));
    TextTable table(headers);

    for (int c = 0;
         c < static_cast<int>(CountingEventClass::NumClasses); c++) {
        CountingEventClass cls = static_cast<CountingEventClass>(c);
        std::vector<std::string> row{name(cls)};
        for (PmuGeneration g : gens) {
            switch (countingEventSupport(g, cls)) {
              case EventSupport::Supported:
                row.emplace_back("yes");
                break;
              case EventSupport::NotSupported:
                row.emplace_back("no");
                break;
              case EventSupport::NotApplicable:
                row.emplace_back("N/A");
                break;
            }
        }
        table.addRow(std::move(row));
    }
    table.addSeparator();
    std::vector<std::string> totals{"supported classes"};
    for (PmuGeneration g : gens)
        totals.push_back(std::to_string(supportedEventClassCount(g)));
    table.addRow(std::move(totals));

    std::printf("%s\n", table.render().c_str());
    std::printf("HBBP needs none of these: it derives every mnemonic's "
                "count from BBECs.\n");
    return 0;
}
