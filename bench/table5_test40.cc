/**
 * @file
 * Reproduces Table 5: the Test40 (Geant4 particle simulation)
 * evaluation — runtime penalties of HBBP collection vs SDE
 * instrumentation, and HBBP's average weighted error.
 *
 * Paper values: clean 27.1s, HBBP 27.7s (2.3% penalty), SDE 277.0s
 * (923% penalty); HBBP avg weighted error 0.94%.
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

int
main()
{
    setLogLevel(LogLevel::Quiet);
    headline("Table 5: Test40 evaluation",
             "clean 27.1s; HBBP +2.3%; SDE 9.23x; HBBP error 0.94%");

    Profiler profiler;
    Workload w = makeTest40();
    Analyzed a = analyzeWorkload(profiler, w);

    InstrumentationCostModel sde_model;
    CollectionCostModel hbbp_model;
    const RunFeatures &f = a.run.profile.features;
    double sde_slowdown = sde_model.slowdown(f);
    double hbbp_overhead = hbbp_model.overheadFraction(
        f, a.run.profile.paper_periods.ebs,
        a.run.profile.paper_periods.lbr);

    double clean = w.paper_clean_seconds;
    TextTable table({"", "Clean", "HBBP", "SDE"});
    for (size_t c = 1; c < 4; c++)
        table.setAlign(c, Align::Right);
    table.addRow({"Runtime [s]", format("%.1f", clean),
                  format("%.1f", clean * (1 + hbbp_overhead)),
                  format("%.1f", clean * sde_slowdown)});
    table.addRow({"Time penalty", "N/A",
                  percentStr(hbbp_overhead, 1),
                  percentStr(sde_slowdown - 1.0, 0)});
    table.addRow({"Avg W Error", "N/A",
                  percentStr(a.accuracy.hbbp, 2), "0%"});
    std::printf("%s\n", table.render().c_str());

    std::printf("baselines on the same run: LBR %s, EBS %s\n",
                percentStr(a.accuracy.lbr, 2).c_str(),
                percentStr(a.accuracy.ebs, 2).c_str());
    return 0;
}
