/**
 * @file
 * Fleet batch scaling benchmark.
 *
 * Measures the two fleet hot paths so future PRs can track scaling
 * regressions:
 *
 *  - batch throughput: workloads/sec for the same workload list at
 *    jobs = 1, 2, 4, 8 (collection + analysis fan-out on the pool);
 *  - merge throughput: samples/sec for folding shard profiles into one
 *    aggregate.
 *
 * Output is machine-readable JSON on stdout (one object), so CI can
 * archive and diff runs. Pass --human for the table view instead, and
 * --quick for a CI-sized run (smaller workload list, fewer job
 * counts).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "bench/foldbench.hh"
#include "fleet/batch.hh"
#include "fleet/merge.hh"
#include "fleet/shard.hh"

using namespace hbbp;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    using namespace std::chrono;
    return duration_cast<duration<double>>(steady_clock::now() - start)
        .count();
}

/** One batch timing sample. */
struct BatchPoint
{
    unsigned jobs = 0;
    double seconds = 0.0;
    double workloads_per_sec = 0.0;
    double speedup = 0.0; ///< vs jobs=1.
};

/** Merge timing sample. */
struct MergePoint
{
    size_t shards = 0;
    uint64_t samples = 0;
    double seconds = 0.0;
    double samples_per_sec = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool human = false, quick = false;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--human") == 0)
            human = true;
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    // A mixed list: branchy, kernel-heavy and vector-heavy codes, twice
    // over so there is enough fan-out to keep 8 workers busy (--quick
    // keeps one rep and stops at 4 jobs for CI smoke runs).
    std::vector<std::string> workloads;
    for (int rep = 0; rep < (quick ? 1 : 2); rep++)
        for (const char *w :
             {"test40", "kernelbench", "fitter_sse", "fitter_avx_fix",
              "clforward_before", "clforward_after"})
            workloads.push_back(w);

    std::vector<unsigned> job_counts =
        quick ? std::vector<unsigned>{1, 4}
              : std::vector<unsigned>{1, 2, 4, 8};
    std::vector<BatchPoint> batch_points;
    double base_seconds = 0.0;
    for (unsigned jobs : job_counts) {
        BatchConfig bc;
        bc.shards = 2;
        bc.jobs = jobs;
        auto start = std::chrono::steady_clock::now();
        BatchResult res = runBatch(workloads, bc);
        BatchPoint p;
        p.jobs = jobs;
        p.seconds = secondsSince(start);
        p.workloads_per_sec = res.entries.size() / p.seconds;
        if (jobs == 1)
            base_seconds = p.seconds;
        p.speedup = base_seconds / p.seconds;
        batch_points.push_back(p);
    }

    // Merge throughput: fold 16 shards of one big collection (8 shards
    // of a regular-sized one under --quick).
    Workload w = requireWorkloadByName("test40");
    CollectorConfig cc = collectorConfigFor(w);
    cc.max_instructions = w.max_instructions * (quick ? 1 : 4);
    ShardPlan plan;
    plan.shards = quick ? 8 : 16;
    plan.jobs = ThreadPool::defaultThreadCount();
    std::vector<ProfileData> shards =
        collectShards(*w.program, MachineConfig{}, cc, plan);

    MergePoint mp;
    mp.shards = shards.size();
    auto start = std::chrono::steady_clock::now();
    ProfileData merged = mergeProfiles(shards);
    mp.seconds = secondsSince(start);
    mp.samples = merged.ebs.size() + merged.lbr.size();
    mp.samples_per_sec = mp.seconds > 0 ? mp.samples / mp.seconds : 0.0;

    // Per-backend fold math on the same shard set (see foldbench.hh).
    bench::FoldBench fb =
        bench::runFoldBench(shards, 4096, quick ? 500 : 2000);

    if (human) {
        bench::headline("Fleet batch scaling",
                        "fleet extension (no paper analogue)");
        TextTable table({"jobs", "seconds", "workloads/s", "speedup"});
        for (size_t col = 0; col < 4; col++)
            table.setAlign(col, Align::Right);
        for (const BatchPoint &p : batch_points)
            table.addRow({format("%u", p.jobs),
                          format("%.3f", p.seconds),
                          format("%.1f", p.workloads_per_sec),
                          format("%.2fx", p.speedup)});
        std::printf("%s\n", table.render().c_str());
        std::printf("merge: %zu shards, %llu samples in %.4fs "
                    "(%.0f samples/sec)\n", mp.shards,
                    static_cast<unsigned long long>(mp.samples),
                    mp.seconds, mp.samples_per_sec);
        for (const bench::FoldBackendPoint &p : fb.backends)
            std::printf("fold[%s]: %.0f ns/fold, %.0f shards/s%s\n",
                        p.name.c_str(), p.kernel_ns_per_fold,
                        p.shards_per_s,
                        p.name == fb.dispatch ? " (dispatch)" : "");
        return 0;
    }

    std::printf("{\n  \"bench\": \"scale_batch\",\n");
    std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
    std::printf("  %s,\n", bench::foldBenchJson(fb).c_str());
    std::printf("  \"workloads\": %zu,\n", workloads.size());
    std::printf("  \"shards_per_workload\": 2,\n");
    std::printf("  \"batch\": [\n");
    for (size_t i = 0; i < batch_points.size(); i++) {
        const BatchPoint &p = batch_points[i];
        std::printf("    {\"jobs\": %u, \"seconds\": %.6f, "
                    "\"workloads_per_sec\": %.3f, \"speedup\": %.3f}%s\n",
                    p.jobs, p.seconds, p.workloads_per_sec, p.speedup,
                    i + 1 < batch_points.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"merge\": {\"shards\": %zu, \"samples\": %llu, "
                "\"seconds\": %.6f, \"samples_per_sec\": %.0f}\n",
                mp.shards, static_cast<unsigned long long>(mp.samples),
                mp.seconds, mp.samples_per_sec);
    std::printf("}\n");
    return 0;
}
