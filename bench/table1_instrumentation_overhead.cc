/**
 * @file
 * Reproduces Table 1: wall-clock runtimes of select benchmarks, clean
 * vs under software instrumentation (SDE).
 *
 * Paper values: SPEC all 15'897s -> 65'419s (4.11x); povray 224s ->
 * 2710s (12.1x); omnetpp 281s -> 2122s (7.56x); all other benchmarks
 * 717s -> 48'725s (68x); hydro-post 287s -> 21'959s (76.6x).
 *
 * The clean runtimes are reported at paper scale (the workload's
 * reference runtime); instrumented runtimes come from the calibrated
 * SDE cost model applied to the simulated run's dynamic features.
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

namespace {

/** Clean-run features of a workload (no collection attached). */
RunFeatures
features(const Workload &w)
{
    Instrumenter instr(*w.program, true);
    ExecutionEngine engine(*w.program, MachineConfig{}, w.exec_seed);
    engine.addObserver(&instr);
    ExecStats stats = engine.run(w.max_instructions);
    uint64_t simd = 0;
    Counter<Mnemonic> counts = instr.mnemonicCounts();
    for (const auto &[m, c] : counts.items()) {
        IsaExt ext = info(m).ext;
        if (ext == IsaExt::Sse || ext == IsaExt::Avx ||
            ext == IsaExt::Avx2)
            simd += static_cast<uint64_t>(c);
    }
    return makeRunFeatures(stats, simd);
}

struct Row
{
    std::string name;
    double clean_s = 0;   ///< Paper-scale clean runtime.
    double slowdown = 0;  ///< Modeled SDE slowdown.
    double paper_clean = 0;
    double paper_slowdown = 0;
};

Row
sumRows(const std::string &name, const std::vector<Row> &rows,
        double paper_clean, double paper_slowdown)
{
    Row out;
    out.name = name;
    double sde = 0;
    for (const Row &r : rows) {
        out.clean_s += r.clean_s;
        sde += r.clean_s * r.slowdown;
    }
    out.slowdown = out.clean_s > 0 ? sde / out.clean_s : 0;
    out.paper_clean = paper_clean;
    out.paper_slowdown = paper_slowdown;
    return out;
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Quiet);
    headline("Table 1: clean vs software-instrumented runtimes",
             "SPEC all 4.11x; povray 12.1x; omnetpp 7.56x; "
             "other benchmarks 68x; hydro-post 76.6x");

    InstrumentationCostModel sde;

    // The non-SPEC codes (scientific benchmarks extracted from large
    // codebases) run under SDE's full ISA emulation, as in the paper
    // where they slow down 68-77x vs ~4x for native-ISA SPEC.
    auto measure = [&](const Workload &w, double paper_slow,
                       bool emulated = false) {
        Row r;
        r.name = w.name;
        r.clean_s = w.paper_clean_seconds;
        r.slowdown = sde.slowdown(features(w), emulated);
        r.paper_clean = w.paper_clean_seconds;
        r.paper_slowdown = paper_slow;
        return r;
    };

    // SPEC suite.
    std::vector<Row> spec_rows;
    Row povray, omnetpp;
    for (const Workload &w : makeSpecSuite()) {
        Row r = measure(w, 0);
        if (w.name == "453.povray")
            povray = r;
        if (w.name == "471.omnetpp")
            omnetpp = r;
        spec_rows.push_back(r);
    }
    Row spec_all = sumRows("SPEC all", spec_rows, 15'897, 4.11);
    povray.name = "SPEC povray";
    povray.paper_slowdown = 12.1;
    omnetpp.name = "SPEC omnetpp";
    omnetpp.paper_slowdown = 7.56;

    // Non-SPEC benchmarks (the paper's "all other benchmarks" row).
    std::vector<Row> other_rows;
    for (const Workload &w : makeTrainingSuite()) {
        Workload scaled = w;
        scaled.paper_clean_seconds = 40.0; // reference-level
        other_rows.push_back(measure(scaled, 0, /*emulated=*/true));
    }
    other_rows.push_back(measure(makeTest40(), 0, /*emulated=*/true));
    for (FitterVariant v : {FitterVariant::X87, FitterVariant::Sse,
                            FitterVariant::AvxFix})
        other_rows.push_back(measure(makeFitter(v), 0,
                                     /*emulated=*/true));
    Row other = sumRows("All other benchmarks", other_rows, 717, 68);

    Row hydro = measure(makeHydroPost(), 76.6, /*emulated=*/true);
    hydro.name = "Hydro-post benchmark";

    TextTable table({"Benchmark", "(1) Clean", "(2) SDE",
                     "slowdown", "paper clean", "paper slowdown"});
    for (size_t c = 1; c < 6; c++)
        table.setAlign(c, Align::Right);
    for (const Row &r : {spec_all, povray, omnetpp, other, hydro}) {
        table.addRow({r.name, seconds(r.clean_s),
                      seconds(r.clean_s * r.slowdown),
                      format("%.2fx", r.slowdown),
                      seconds(r.paper_clean),
                      r.paper_slowdown > 0
                          ? format("%.2fx", r.paper_slowdown) : "-"});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
