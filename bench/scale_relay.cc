/**
 * @file
 * Hierarchical relay aggregation scaling benchmark.
 *
 * Measures a fleet's shards reaching one root aggregate two ways as
 * host counts grow: flat (every host pushes straight to the root
 * listener, the PR-4 topology) against a depth-2 tree (hosts split
 * across two relay nodes that fold locally and push partial
 * aggregates upstream). The tree pays an extra hop but the root folds
 * a handful of aggregate arrivals instead of every collector's
 * stream — the shape that keeps a root alive at fleet scale. Both
 * topologies must produce byte-identical aggregates; the bench fails
 * loudly if they ever disagree.
 *
 * Output is machine-readable JSON on stdout (one object), so CI can
 * archive and diff runs. Pass --human for the table view, --quick for
 * a CI-sized run.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "bench/foldbench.hh"
#include "fleet/aggregate.hh"
#include "fleet/manifest.hh"
#include "fleet/merge.hh"
#include "fleet/metrics.hh"
#include "fleet/relay.hh"
#include "fleet/shard.hh"
#include "fleet/transport.hh"
#include "support/telemetry.hh"

using namespace hbbp;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    using namespace std::chrono;
    return duration_cast<duration<double>>(steady_clock::now() - start)
        .count();
}

/** One topology timing point. */
struct RelayPoint
{
    size_t hosts = 0;
    size_t relays = 0;
    uint64_t samples = 0;
    double flat_seconds = 0.0;
    double tree_seconds = 0.0;
    size_t root_arrivals_flat = 0;
    size_t root_arrivals_tree = 0;
};

/** What the compiled-in metrics cost on the fold hot path. */
struct TelemetryOverhead
{
    int reps = 0;
    size_t shards = 0;
    double enabled_seconds = 0.0;  ///< Min-of-reps, telemetry on.
    double disabled_seconds = 0.0; ///< Min-of-reps, setEnabled(false).
    double overhead_pct = 0.0;     ///< (enabled-disabled)/disabled.
    double noise_pct = 0.0;        ///< A/A delta: the run's noise floor.
};

/**
 * Price the instrumentation on the aggregator fold path: fold the
 * same shard set repeatedly with telemetry enabled and disabled
 * (compiled in but idle), keeping the fastest rep of each. The
 * enabled/disabled delta is the whole cost of the counters and fold
 * timers on the hot path — the ISSUE gate holds it under 2%.
 */
TelemetryOverhead
measureTelemetryOverhead(const std::vector<ShardManifest> &manifests,
                         const std::vector<ProfileData> &profiles,
                         int reps)
{
    TelemetryOverhead to;
    to.reps = reps;
    to.shards = profiles.size();
    auto fold_set = [&]() {
        IncrementalAggregator agg;
        for (size_t h = 0; h < profiles.size(); h++) {
            std::string why;
            if (!agg.addShard(manifests[h], profiles[h], &why))
                fatal("overhead bench fold rejected: %s", why.c_str());
        }
    };
    // Warm up and calibrate. Batch size is a balance: a single fold
    // of a quick-mode shard set runs in fractions of a millisecond —
    // too short to resolve a sub-2% delta against timer granularity —
    // while a long batch is near-certain to absorb a preemption on a
    // shared runner. ~5ms batches are long enough to amortize the
    // timer and short enough that many of them land entirely inside
    // quiet scheduler gaps, which is what the min-of-reps needs.
    auto cal_start = std::chrono::steady_clock::now();
    fold_set();
    double single = secondsSince(cal_start);
    int iters = 1;
    if (single > 0.0 && single < 0.005)
        iters = std::min(1000, static_cast<int>(0.005 / single) + 1);
    auto fold_batch = [&]() {
        auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; i++)
            fold_set();
        return secondsSince(start) / iters;
    };
    // Sample enabled/disabled as adjacent pairs, alternating which
    // mode goes first each rep: running all of one mode before the
    // other would hand any slow machine drift (frequency scaling, a
    // background task) entirely to one side and fake an overhead.
    // The workload is deterministic, so every timing is the true
    // cost plus non-negative noise — min-of-reps per mode converges
    // on the clean sample, and the min/min ratio prices exactly the
    // instrumentation. Shared runners need many reps for both mins
    // to land on a quiet slice; that is what `reps` buys.
    std::vector<double> en_samples, dis_samples;
    en_samples.reserve(reps);
    dis_samples.reserve(reps);
    for (int r = 0; r < reps; r++) {
        bool en_first = (r % 2 == 0);
        for (int k = 0; k < 2; k++) {
            bool enabled = en_first ? (k == 0) : (k == 1);
            telemetry::setEnabled(enabled);
            double s = fold_batch();
            (enabled ? en_samples : dis_samples).push_back(s);
        }
    }
    telemetry::setEnabled(true);
    to.enabled_seconds =
        *std::min_element(en_samples.begin(), en_samples.end());
    to.disabled_seconds =
        *std::min_element(dis_samples.begin(), dis_samples.end());
    // A/A control: min-vs-min between the two halves of the disabled
    // samples (even vs odd reps) measures the same statistic the
    // overhead uses, on data with zero true difference. Whatever it
    // reports is pure runner noise — the floor below which the
    // overhead number is unresolvable. CI gates compare the overhead
    // against their budget *plus* this floor instead of flaking on a
    // busy machine.
    double aa_even = dis_samples[0], aa_odd = dis_samples[1 % reps];
    for (int r = 0; r < reps; r++)
        (r % 2 == 0 ? aa_even : aa_odd) =
            std::min(r % 2 == 0 ? aa_even : aa_odd, dis_samples[r]);
    if (reps >= 2 && to.disabled_seconds > 0.0)
        to.noise_pct =
            std::abs(aa_even - aa_odd) / to.disabled_seconds * 100.0;
    to.overhead_pct = to.disabled_seconds > 0.0
                          ? (to.enabled_seconds - to.disabled_seconds) /
                                to.disabled_seconds * 100.0
                          : 0.0;
    return to;
}

/** What the federation plane itself costs and whether it adds up. */
struct FederationBench
{
    size_t children = 0;
    size_t merged_series = 0; ///< Non-comment lines in one merge.
    double merges_per_s = 0.0; ///< federateMetricsText() throughput.
    double scrape_ms = 0.0; ///< Min loopback /metrics round-trip.
    bool rollup_consistent = false; ///< subtree == own + child sum.
};

/**
 * Price the federation plane: the scrape round-trip against a live
 * MetricsServer and the pure-merge throughput of federateMetricsText
 * over the federator's real snapshots. Both the bench child and the
 * "parent" render the same process registry, so a marker counter set
 * to V must roll up to exactly 2*V in the merged view — a cheap
 * end-to-end check that the rollup arithmetic holds on live scrapes,
 * not just in unit tests.
 */
FederationBench
measureFederation(MetricsFederator &fed, uint16_t child_port,
                  int merge_iters)
{
    FederationBench fb;
    fb.children = fed.childCount();
    fb.scrape_ms = 1e9;
    for (int i = 0; i < 25; i++) {
        std::string body, why;
        auto start = std::chrono::steady_clock::now();
        if (!fetchMetricsText("127.0.0.1", child_port, &body, &why))
            fatal("federation bench scrape failed: %s", why.c_str());
        fb.scrape_ms = std::min(fb.scrape_ms, secondsSince(start) * 1e3);
    }
    std::string own = telemetry::registry().renderPrometheus();
    std::vector<PeerSnapshot> snaps = fed.snapshots();
    std::string merged = federateMetricsText(own, snaps);
    for (size_t pos = 0; pos < merged.size();) {
        size_t eol = merged.find('\n', pos);
        if (eol == std::string::npos)
            eol = merged.size();
        if (eol > pos && merged[pos] != '#')
            fb.merged_series++;
        pos = eol + 1;
    }
    uint64_t marker =
        telemetry::counter("hbbp_bench_federation_marker_total")
            .value();
    fb.rollup_consistent =
        merged.find(format("hbbp_bench_federation_marker_total"
                           "{agg=\"subtree\"} %llu",
                           static_cast<unsigned long long>(2 * marker)))
        != std::string::npos;
    auto start = std::chrono::steady_clock::now();
    size_t sink = 0;
    for (int i = 0; i < merge_iters; i++)
        sink += federateMetricsText(own, snaps).size();
    double s = secondsSince(start);
    if (sink == 0)
        fatal("federation bench merged nothing");
    fb.merges_per_s = s > 0.0 ? merge_iters / s : 0.0;
    return fb;
}

} // namespace

int
main(int argc, char **argv)
{
    bool human = false, quick = false;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--human") == 0)
            human = true;
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    std::vector<size_t> host_counts =
        quick ? std::vector<size_t>{2, 4}
              : std::vector<size_t>{2, 4, 8, 16};
    constexpr size_t kRelays = 2;
    Workload w = requireWorkloadByName("test40");
    CollectorConfig base_cc = collectorConfigFor(w);
    if (quick)
        base_cc.max_instructions = w.max_instructions / 4;

    std::vector<RelayPoint> points;
    std::vector<ProfileData> fold_profiles; // Largest round, foldbench.
    std::vector<ShardManifest> fold_manifests;
    for (size_t n_hosts : host_counts) {
        // Host-seeded collections prepared up front so both
        // topologies move the same bytes.
        std::vector<ShardManifest> manifests(n_hosts);
        std::vector<std::string> shard_bytes(n_hosts);
        std::vector<ProfileData> profiles(n_hosts);
        for (size_t h = 0; h < n_hosts; h++) {
            std::string host = format("host%03zu", h);
            CollectorConfig cc = base_cc;
            cc.seed = hostStreamSeed(cc.seed, host, 0);
            ShardPlan plan;
            plan.shards = 1;
            plan.jobs = 1;
            profiles[h] = collectSharded(*w.program, MachineConfig{},
                                         cc, plan);
            manifests[h].host = host;
            manifests[h].workload = w.name;
            shard_bytes[h] =
                profiles[h].serialize(&manifests[h].checksum);
        }
        ProfileData reference = mergeProfiles(profiles);

        RelayPoint p;
        p.hosts = n_hosts;
        p.relays = kRelays;
        p.samples = reference.ebs.size() + reference.lbr.size();

        auto push_to = [&](size_t h, uint16_t port) {
            SocketTransportOptions so;
            so.port = port;
            SocketTransport t(so);
            SendResult res =
                t.sendShard(manifests[h], {shard_bytes[h]});
            if (!res.ok)
                fatal("push failed: %s", res.error.c_str());
        };

        // Flat: every host dials the root.
        auto start = std::chrono::steady_clock::now();
        {
            IncrementalAggregator agg;
            ShardListener listener(0);
            ListenOptions lo;
            lo.expect = n_hosts;
            std::thread server([&] { listener.serve(agg, lo); });
            std::vector<std::thread> senders;
            for (size_t h = 0; h < n_hosts; h++)
                senders.emplace_back(
                    [&, h] { push_to(h, listener.port()); });
            for (std::thread &t : senders)
                t.join();
            server.join();
            p.root_arrivals_flat = agg.stats().accepted;
            if (!(agg.aggregate() == reference))
                fatal("flat aggregate disagrees at %zu hosts", n_hosts);
        }
        p.flat_seconds = secondsSince(start);

        // Tree: hosts split across relays, relays push partials up.
        start = std::chrono::steady_clock::now();
        {
            IncrementalAggregator agg;
            ShardListener root(0);
            ListenOptions lo;
            lo.expect = n_hosts; // Covered leaves, via the relays.
            std::thread server([&] { root.serve(agg, lo); });

            std::vector<std::unique_ptr<RelayNode>> relays;
            std::vector<std::thread> relay_threads;
            for (size_t r = 0; r < kRelays; r++) {
                RelayOptions ro;
                ro.upstream_port = root.port();
                ro.relay_id = format("relay%zu", r);
                // Each relay serves its slice of the fleet.
                ro.expect = n_hosts / kRelays +
                            (r < n_hosts % kRelays ? 1 : 0);
                relays.push_back(std::make_unique<RelayNode>(ro));
            }
            for (size_t r = 0; r < kRelays; r++)
                relay_threads.emplace_back([&, r] {
                    RelayStats rs = relays[r]->run();
                    if (!rs.upstream_ok)
                        fatal("relay flush failed: %s",
                              rs.error.c_str());
                });
            std::vector<std::thread> senders;
            for (size_t h = 0; h < n_hosts; h++)
                senders.emplace_back([&, h] {
                    push_to(h, relays[h % kRelays]->port());
                });
            for (std::thread &t : senders)
                t.join();
            for (std::thread &t : relay_threads)
                t.join();
            server.join();
            p.root_arrivals_tree = agg.stats().accepted;
            if (!(agg.aggregate() == reference))
                fatal("tree aggregate disagrees at %zu hosts", n_hosts);
        }
        p.tree_seconds = secondsSince(start);
        points.push_back(p);
        fold_manifests = manifests;
        fold_profiles = std::move(profiles);
    }

    // Per-backend root fold on the largest host set (foldbench.hh):
    // the root aggregate's bytes must be identical whatever backend
    // folds it — the relay-tree equivalent of the flat/tree identity
    // asserted above.
    bench::FoldBench fb =
        bench::runFoldBench(fold_profiles, 4096, quick ? 500 : 2000);

    // Federation plane, live for the rest of the run: a child
    // MetricsServer scraped in the background while the fold-path
    // overhead is measured. The ISSUE's <2% telemetry budget must
    // hold with federation enabled, not just with idle counters.
    telemetry::counter("hbbp_bench_federation_marker_total").add(7);
    MetricsServer fed_child(0);
    MetricsFederator federator(/*interval_s=*/0.05);
    federator.noteChild("bench-child",
                        format("127.0.0.1:%u",
                               static_cast<unsigned>(fed_child.port())));
    {
        // Wait for the first successful scrape so the merge below
        // sees real child series (including the marker counter).
        auto wait_start = std::chrono::steady_clock::now();
        for (;;) {
            std::vector<PeerSnapshot> snaps = federator.snapshots();
            if (!snaps.empty() && snaps[0].fresh &&
                snaps[0].text.find(
                    "hbbp_bench_federation_marker_total") !=
                    std::string::npos)
                break;
            if (secondsSince(wait_start) > 10.0)
                fatal("federation bench child never became fresh");
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    }

    TelemetryOverhead to = measureTelemetryOverhead(
        fold_manifests, fold_profiles, quick ? 120 : 160);

    FederationBench fed = measureFederation(federator, fed_child.port(),
                                            quick ? 400 : 1500);
    federator.stop();
    fed_child.stop();

    if (human) {
        bench::headline("Relay tree scaling",
                        "fleet extension (no paper analogue)");
        TextTable table({"hosts", "relays", "samples", "flat s",
                         "tree s", "root arrivals flat/tree"});
        for (size_t col = 0; col < 6; col++)
            table.setAlign(col, Align::Right);
        for (const RelayPoint &p : points)
            table.addRow(
                {format("%zu", p.hosts), format("%zu", p.relays),
                 format("%llu",
                        static_cast<unsigned long long>(p.samples)),
                 format("%.4f", p.flat_seconds),
                 format("%.4f", p.tree_seconds),
                 format("%zu/%zu", p.root_arrivals_flat,
                        p.root_arrivals_tree)});
        std::printf("%s\n", table.render().c_str());
        for (const bench::FoldBackendPoint &p : fb.backends)
            std::printf("fold[%s]: %.0f ns/fold, %.0f shards/s%s\n",
                        p.name.c_str(), p.kernel_ns_per_fold,
                        p.shards_per_s,
                        p.name == fb.dispatch ? " (dispatch)" : "");
        std::printf("telemetry overhead: %.2f%% on the fold path "
                    "(%.6fs on vs %.6fs off, %zu shards, "
                    "min of %d reps, A/A noise floor %.2f%%)\n",
                    to.overhead_pct, to.enabled_seconds,
                    to.disabled_seconds, to.shards, to.reps,
                    to.noise_pct);
        std::printf("federation: %zu child, %zu merged series, "
                    "%.0f merges/s, %.3f ms scrape, rollup %s\n",
                    fed.children, fed.merged_series, fed.merges_per_s,
                    fed.scrape_ms,
                    fed.rollup_consistent ? "consistent"
                                          : "INCONSISTENT");
        return 0;
    }

    std::printf("{\n  \"bench\": \"scale_relay\",\n");
    std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
    std::printf("  %s,\n", bench::foldBenchJson(fb).c_str());
    std::printf("  \"telemetry\": {\"reps\": %d, \"shards\": %zu, "
                "\"enabled_seconds\": %.6f, \"disabled_seconds\": %.6f, "
                "\"overhead_pct\": %.3f, \"noise_pct\": %.3f},\n",
                to.reps, to.shards, to.enabled_seconds,
                to.disabled_seconds, to.overhead_pct, to.noise_pct);
    std::printf("  \"federation\": {\"children\": %zu, "
                "\"merged_series\": %zu, \"merges_per_s\": %.1f, "
                "\"scrape_ms\": %.3f, \"rollup_consistent\": %s},\n",
                fed.children, fed.merged_series, fed.merges_per_s,
                fed.scrape_ms, fed.rollup_consistent ? "true" : "false");
    std::printf("  \"points\": [\n");
    for (size_t i = 0; i < points.size(); i++) {
        const RelayPoint &p = points[i];
        std::printf(
            "    {\"hosts\": %zu, \"relays\": %zu, \"samples\": %llu, "
            "\"flat_seconds\": %.6f, \"tree_seconds\": %.6f, "
            "\"root_arrivals_flat\": %zu, "
            "\"root_arrivals_tree\": %zu}%s\n",
            p.hosts, p.relays,
            static_cast<unsigned long long>(p.samples),
            p.flat_seconds, p.tree_seconds, p.root_arrivals_flat,
            p.root_arrivals_tree,
            i + 1 < points.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
