/**
 * @file
 * Reproduces Figure 2: the SPEC CPU2006 evaluation — per-benchmark
 * SDE slowdown and HBBP collection overhead, plus average weighted
 * errors for HBBP, LBR and EBS.
 *
 * Paper aggregates: SDE 4.11x overall (max 12.1x on povray); HBBP
 * collection ~0.5%; errors HBBP 1.83% (0.2-4.4% per benchmark), LBR
 * 3.15%, EBS 4.43%; LBM is the one benchmark where LBR beats HBBP;
 * x264ref (h264ref) excluded from error aggregation due to an SDE bug.
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

int
main()
{
    setLogLevel(LogLevel::Quiet);
    headline("Figure 2: SPEC CPU2006 overhead and accuracy",
             "HBBP 1.83% / LBR 3.15% / EBS 4.43% overall; SDE 4.11x; "
             "LBR beats HBBP only on LBM");

    Profiler profiler;
    InstrumentationCostModel sde_model;
    CollectionCostModel hbbp_model;

    TextTable table({"benchmark", "SDE slowdn", "HBBP ovh", "HBBP err",
                     "LBR err", "EBS err", "best"});
    for (size_t c = 1; c < 6; c++)
        table.setAlign(c, Align::Right);

    double sum_hbbp = 0, sum_lbr = 0, sum_ebs = 0;
    double clean_s = 0, sde_s = 0;
    int counted = 0, lbr_beats_hbbp = 0;
    std::string lbr_win_names;

    for (const Workload &w : makeSpecSuite()) {
        Analyzed a = analyzeWorkload(profiler, w);
        const RunFeatures &f = a.run.profile.features;
        double sde = sde_model.slowdown(f);
        double ovh = hbbp_model.overheadFraction(
            f, a.run.profile.paper_periods.ebs,
            a.run.profile.paper_periods.lbr);

        const SpecEntry &entry = specEntry(w.name);
        clean_s += entry.paper_clean_seconds;
        sde_s += entry.paper_clean_seconds * sde;

        const char *best = "HBBP";
        double m = a.accuracy.hbbp;
        if (a.accuracy.lbr < m) {
            best = "LBR";
            m = a.accuracy.lbr;
        }
        if (a.accuracy.ebs < m)
            best = "EBS";

        std::string label = w.name;
        if (entry.excluded_from_error)
            label += " (excl)";
        table.addRow({label, format("%.2fx", sde),
                      percentStr(ovh, 2),
                      percentStr(a.accuracy.hbbp, 2),
                      percentStr(a.accuracy.lbr, 2),
                      percentStr(a.accuracy.ebs, 2), best});

        if (entry.excluded_from_error)
            continue;
        counted++;
        sum_hbbp += a.accuracy.hbbp;
        sum_lbr += a.accuracy.lbr;
        sum_ebs += a.accuracy.ebs;
        if (a.accuracy.lbr < a.accuracy.hbbp) {
            lbr_beats_hbbp++;
            lbr_win_names += " " + w.name;
        }
    }

    table.addSeparator();
    table.addRow({"overall", format("%.2fx", sde_s / clean_s), "",
                  percentStr(sum_hbbp / counted, 2),
                  percentStr(sum_lbr / counted, 2),
                  percentStr(sum_ebs / counted, 2), ""});
    std::printf("%s\n", table.render().c_str());

    std::printf("benchmarks where LBR alone beats HBBP: %d (%s)\n",
                lbr_beats_hbbp,
                lbr_win_names.empty() ? " none"
                                      : lbr_win_names.c_str());
    std::printf("suite wall clock at paper scale: clean %s, SDE %s "
                "(paper: 4h25m vs 18h10m)\n",
                seconds(clean_s).c_str(), seconds(sde_s).c_str());
    return 0;
}
