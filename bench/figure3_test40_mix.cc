/**
 * @file
 * Reproduces Figure 3: Test40 execution counts and HBBP error
 * percentages for the top-20 instruction-retiring mnemonics.
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

int
main()
{
    setLogLevel(LogLevel::Quiet);
    headline("Figure 3: Test40 top-20 mnemonic counts and HBBP errors",
             "bar chart of counts (left axis) with per-mnemonic error "
             "dots (right axis); HBBP errors are low single digits");

    Profiler profiler;
    Workload w = makeTest40();
    Analyzed a = analyzeWorkload(profiler, w);

    Counter<Mnemonic> hbbp =
        Profiler::userMnemonics(a.analysis.hbbpMix());
    const Counter<Mnemonic> &ref = a.run.true_user_mnemonics;

    TextTable table({"mnemonic", "HBBP count", "share", "error",
                     "bar"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);
    table.setAlign(3, Align::Right);
    double total = ref.total();
    auto top = ref.top(20);
    double max_count = top.empty() ? 1.0 : top.front().second;
    for (const auto &[m, ref_count] : top) {
        double measured = hbbp.get(m);
        double err = blockError(ref_count, measured);
        int bar_len =
            static_cast<int>(40.0 * measured / max_count + 0.5);
        table.addRow({info(m).name, millions(measured),
                      percentStr(ref_count / total, 1),
                      percentStr(err, 2),
                      std::string(static_cast<size_t>(bar_len), '#')});
    }
    std::printf("%s\n(counts in millions at simulation scale)\n\n",
                table.render().c_str());
    std::printf("avg weighted error: %s (paper: 0.94%%)\n",
                percentStr(a.accuracy.hbbp, 2).c_str());
    return 0;
}
