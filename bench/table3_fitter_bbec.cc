/**
 * @file
 * Reproduces Table 3: per-block BBECs for the Fitter SSE build from
 * EBS and LBR, compared to software instrumentation (SDE), errors
 * above 25% flagged.
 *
 * Counts are normalized to the paper's scale (the paper's kernel runs
 * ~3.0M tracks; we express each block as count-per-track x 3.0 so the
 * columns read in the paper's "millions" units).
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

int
main()
{
    setLogLevel(LogLevel::Quiet);
    headline("Table 3: Fitter (SSE) per-block BBECs, EBS vs LBR vs SDE",
             "both base methods show major errors on different blocks; "
             "LBR suffers on bias-affected blocks, EBS on short ones");

    Profiler profiler;
    Workload w = makeFitter(FitterVariant::Sse);
    Analyzed a = analyzeWorkload(profiler, w);

    // Ground truth and track count.
    std::vector<double> truth =
        trueMapBbec(a.analysis.map, a.run.true_bbec_by_addr);
    Instrumenter instr(*w.program, true);
    ExecutionEngine engine(*w.program, MachineConfig{}, w.exec_seed);
    engine.addObserver(&instr);
    engine.run(w.max_instructions);
    uint64_t tracks = fitterTrackCount(*w.program, instr.bbecs());

    const double paper_scale = 3.0; // millions of tracks in the paper
    auto norm = [&](double count) {
        return count / static_cast<double>(tracks) * paper_scale;
    };
    auto cell = [&](double count, double ref) {
        std::string s = format("%.2f", norm(count));
        if (ref > 0 && blockError(ref, count) > 0.25)
            s += " !";
        return s;
    };

    TextTable table({"BB", "EBS", "LBR", "SDE", "bias", "HBBP source"});
    for (size_t c = 1; c < 4; c++)
        table.setAlign(c, Align::Right);
    std::vector<uint64_t> addrs = fitterKernelBlockAddrs(*w.program);
    for (size_t i = 0; i < addrs.size(); i++) {
        uint32_t mi = a.analysis.map.blockAt(addrs[i]);
        if (mi == BlockMap::npos)
            continue;
        double ref = truth[mi];
        table.addRow({std::to_string(i + 1),
                      cell(a.analysis.estimates.ebs[mi], ref),
                      cell(a.analysis.estimates.lbr[mi], ref),
                      format("%.2f", norm(ref)),
                      a.analysis.estimates.bias[mi] ? "*" : "",
                      name(a.analysis.choice[mi])});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("('!' marks errors above 25%% as in the paper; '*' "
                "marks bias-flagged blocks)\n\n");
    std::printf("aggregate avg weighted errors: HBBP %s, LBR %s, "
                "EBS %s\n", percentStr(a.accuracy.hbbp, 2).c_str(),
                percentStr(a.accuracy.lbr, 2).c_str(),
                percentStr(a.accuracy.ebs, 2).c_str());
    return 0;
}
