/**
 * @file
 * Reproduces Table 6: expected vs measured instruction counts for the
 * Fitter benchmark across its x87 / SSE / AVX (broken) / AVX fix
 * builds — the compiler-regression diagnosis story. The broken AVX
 * build shows an explosion of CALLs (and scalar x87 fallback work)
 * while the packed AVX count stays roughly unchanged, pointing at a
 * lost-inlining regression rather than bad vector codegen.
 *
 * "Expected" is the SDE reference of the healthy build (what earlier
 * compilations established); "Measured" is HBBP on the actual build.
 * Counts are in millions at simulation scale.
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

namespace {

struct VariantResult
{
    double x87 = 0, sse = 0, avx = 0, calls = 0;
    double time_per_track_us = 0;
    double avg_w_err = 0;
};

double
isaCount(const Counter<Mnemonic> &counts, IsaExt ext)
{
    double n = 0;
    for (const auto &[m, c] : counts.items())
        if (info(m).ext == ext)
            n += c;
    return n;
}

VariantResult
fromCounts(const Counter<Mnemonic> &counts, double seconds_per_track)
{
    VariantResult r;
    r.x87 = isaCount(counts, IsaExt::X87);
    r.sse = isaCount(counts, IsaExt::Sse);
    r.avx = isaCount(counts, IsaExt::Avx) + isaCount(counts, IsaExt::Avx2);
    r.calls = counts.get(Mnemonic::CALL) + counts.get(Mnemonic::CALL_IND);
    r.time_per_track_us = seconds_per_track * 1e6;
    return r;
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Quiet);
    headline("Table 6: Fitter expected vs measured per build",
             "broken AVX: CALLs explode ~62x and x87 ~9x while AVX "
             "counts stay put -> inlining regression, not AVX codegen");

    Profiler profiler;
    const FitterVariant variants[] = {
        FitterVariant::X87, FitterVariant::Sse, FitterVariant::AvxBroken,
        FitterVariant::AvxFix};

    std::vector<VariantResult> expected, measured;
    for (FitterVariant v : variants) {
        // "Expected": the SDE reference of the healthy equivalent.
        FitterVariant healthy =
            v == FitterVariant::AvxBroken ? FitterVariant::AvxFix : v;
        Workload ref_w = makeFitter(healthy);
        Profiler ref_profiler;
        ProfiledRun ref_run = ref_profiler.run(ref_w);
        Instrumenter ref_instr(*ref_w.program, true);
        ExecutionEngine ref_engine(*ref_w.program, MachineConfig{},
                                   ref_w.exec_seed);
        ref_engine.addObserver(&ref_instr);
        ExecStats ref_stats = ref_engine.run(ref_w.max_instructions);
        uint64_t ref_tracks =
            fitterTrackCount(*ref_w.program, ref_instr.bbecs());
        expected.push_back(fromCounts(
            ref_run.true_user_mnemonics,
            MachineConfig{}.cyclesToSeconds(ref_stats.cycles) /
                static_cast<double>(ref_tracks)));

        // "Measured": HBBP on the actual build. Counts are normalized
        // to the same amount of work (tracks) as the healthy build's
        // run, since the broken build gets through far fewer tracks in
        // the same instruction budget.
        Workload w = makeFitter(v);
        Analyzed a = analyzeWorkload(profiler, w);
        Instrumenter instr(*w.program, true);
        ExecutionEngine engine(*w.program, MachineConfig{}, w.exec_seed);
        engine.addObserver(&instr);
        ExecStats stats = engine.run(w.max_instructions);
        uint64_t tracks = fitterTrackCount(*w.program, instr.bbecs());
        Counter<Mnemonic> counts =
            Profiler::userMnemonics(a.analysis.hbbpMix());
        counts.scale(static_cast<double>(ref_tracks) /
                     static_cast<double>(tracks));
        VariantResult m = fromCounts(
            counts, MachineConfig{}.cyclesToSeconds(stats.cycles) /
                        static_cast<double>(tracks));
        m.avg_w_err = a.accuracy.hbbp;
        measured.push_back(m);
    }

    std::vector<std::string> headers{""};
    for (FitterVariant v : variants)
        headers.emplace_back(name(v));
    TextTable table(headers);
    for (size_t c = 1; c < headers.size(); c++)
        table.setAlign(c, Align::Right);

    auto add_section = [&](const char *label,
                           const std::vector<VariantResult> &rs) {
        auto row = [&](const char *nm, auto getter, bool is_time) {
            std::vector<std::string> cells{nm};
            for (const VariantResult &r : rs)
                cells.push_back(is_time
                                    ? format("%.2fus", getter(r))
                                    : millions(getter(r)));
            table.addRow(std::move(cells));
        };
        table.addRow({std::string("[") + label + "]", "", "", "", ""});
        row("x87 inst", [](const VariantResult &r) { return r.x87; },
            false);
        row("SSE inst", [](const VariantResult &r) { return r.sse; },
            false);
        row("AVX inst", [](const VariantResult &r) { return r.avx; },
            false);
        row("CALLs", [](const VariantResult &r) { return r.calls; },
            false);
        row("Time/track",
            [](const VariantResult &r) { return r.time_per_track_us; },
            true);
    };
    add_section("Expected", expected);
    table.addSeparator();
    add_section("Measured", measured);
    table.addSeparator();
    std::vector<std::string> err_row{"AvgW Err"};
    for (const VariantResult &r : measured)
        err_row.push_back(percentStr(r.avg_w_err, 2));
    table.addRow(std::move(err_row));

    std::printf("%s\n", table.render().c_str());
    std::printf("broken-vs-fix ratios: CALLs %.1fx, x87 %.1fx, "
                "AVX %.2fx, time/track %.1fx\n",
                measured[2].calls / measured[3].calls,
                measured[2].x87 / measured[3].x87,
                measured[2].avx / measured[3].avx,
                measured[2].time_per_track_us /
                    measured[3].time_per_track_us);
    return 0;
}
