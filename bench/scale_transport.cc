/**
 * @file
 * Shard transport scaling benchmark.
 *
 * Measures the two ShardTransport implementations moving a fleet's
 * shards into one aggregator as host counts grow: the socket push
 * path (chunked frames to a ShardListener, acked per frame) against
 * the drop-directory path (write files, poll the directory). The
 * socket path pays per-frame round trips but needs no shared
 * filesystem and no polling latency; the drop-dir path is one write
 * plus a scan. Both must produce byte-identical aggregates — the
 * bench fails loudly if they ever disagree.
 *
 * Output is machine-readable JSON on stdout (one object), so CI can
 * archive and diff runs. Pass --human for the table view, --quick for
 * a CI-sized run.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "fleet/aggregate.hh"
#include "fleet/manifest.hh"
#include "fleet/merge.hh"
#include "fleet/shard.hh"
#include "fleet/transport.hh"

using namespace hbbp;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    using namespace std::chrono;
    return duration_cast<duration<double>>(steady_clock::now() - start)
        .count();
}

/** One transport timing point. */
struct TransportPoint
{
    size_t hosts = 0;
    size_t chunks_per_shard = 0;
    uint64_t samples = 0;
    double socket_seconds = 0.0;
    double dropdir_seconds = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool human = false, quick = false;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--human") == 0)
            human = true;
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    std::vector<size_t> host_counts =
        quick ? std::vector<size_t>{2, 4}
              : std::vector<size_t>{2, 4, 8, 16};
    constexpr size_t kChunks = 2;
    Workload w = requireWorkloadByName("test40");
    CollectorConfig base_cc = collectorConfigFor(w);
    if (quick)
        base_cc.max_instructions = w.max_instructions / 4;

    std::string dir =
        (std::filesystem::temp_directory_path() / "hbbp_scale_transport")
            .string();

    std::vector<TransportPoint> points;
    for (size_t n_hosts : host_counts) {
        // Host-seeded collections, chunked the way `push --chunks`
        // streams them; prepared up front so both transports move the
        // same bytes.
        std::vector<ShardManifest> manifests(n_hosts);
        std::vector<std::vector<std::string>> chunk_bytes(n_hosts);
        std::vector<ProfileData> merged(n_hosts);
        for (size_t h = 0; h < n_hosts; h++) {
            std::string host = format("host%03zu", h);
            CollectorConfig cc = base_cc;
            cc.seed = hostStreamSeed(cc.seed, host, 0);
            ShardPlan plan;
            plan.shards = kChunks;
            plan.jobs = 1;
            std::vector<ProfileData> parts =
                collectShards(*w.program, MachineConfig{}, cc, plan);
            merged[h] = mergeProfiles(parts);
            manifests[h].host = host;
            manifests[h].workload = w.name;
            manifests[h].checksum = merged[h].payloadChecksum();
            for (const ProfileData &part : parts)
                chunk_bytes[h].push_back(part.serialize());
        }
        ProfileData reference = mergeProfiles(merged);

        TransportPoint p;
        p.hosts = n_hosts;
        p.chunks_per_shard = kChunks;
        p.samples = reference.ebs.size() + reference.lbr.size();

        // Socket push: every host streams its chunks concurrently.
        auto start = std::chrono::steady_clock::now();
        {
            IncrementalAggregator agg;
            ShardListener listener(0);
            ListenOptions lo;
            lo.expect = n_hosts;
            std::thread server(
                [&] { listener.serve(agg, lo); });
            std::vector<std::thread> senders;
            for (size_t h = 0; h < n_hosts; h++)
                senders.emplace_back([&, h] {
                    SocketTransportOptions so;
                    so.port = listener.port();
                    SocketTransport t(so);
                    SendResult res =
                        t.sendShard(manifests[h], chunk_bytes[h]);
                    if (!res.ok)
                        fatal("socket push failed: %s",
                              res.error.c_str());
                });
            for (std::thread &t : senders)
                t.join();
            server.join();
            if (!(agg.aggregate() == reference))
                fatal("socket aggregate disagrees at %zu hosts",
                      n_hosts);
        }
        p.socket_seconds = secondsSince(start);

        // Drop directory: every host writes, one watcher folds.
        std::filesystem::remove_all(dir);
        start = std::chrono::steady_clock::now();
        {
            IncrementalAggregator agg;
            std::vector<std::thread> senders;
            for (size_t h = 0; h < n_hosts; h++)
                senders.emplace_back([&, h] {
                    DropDirTransport t(dir);
                    SendResult res =
                        t.sendShard(manifests[h], chunk_bytes[h]);
                    if (!res.ok)
                        fatal("drop-dir push failed: %s",
                              res.error.c_str());
                });
            for (std::thread &t : senders)
                t.join();
            WatchOptions wo;
            wo.expect = n_hosts;
            watchAndAggregate(agg, dir, wo);
            if (!(agg.aggregate() == reference))
                fatal("drop-dir aggregate disagrees at %zu hosts",
                      n_hosts);
        }
        p.dropdir_seconds = secondsSince(start);
        points.push_back(p);
    }
    std::filesystem::remove_all(dir);

    if (human) {
        bench::headline("Shard transport scaling",
                        "fleet extension (no paper analogue)");
        TextTable table({"hosts", "chunks", "samples", "socket s",
                         "drop-dir s"});
        for (size_t col = 0; col < 5; col++)
            table.setAlign(col, Align::Right);
        for (const TransportPoint &p : points)
            table.addRow({format("%zu", p.hosts),
                          format("%zu", p.chunks_per_shard),
                          format("%llu", static_cast<unsigned long long>(
                                             p.samples)),
                          format("%.4f", p.socket_seconds),
                          format("%.4f", p.dropdir_seconds)});
        std::printf("%s\n", table.render().c_str());
        return 0;
    }

    std::printf("{\n  \"bench\": \"scale_transport\",\n");
    std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
    std::printf("  \"points\": [\n");
    for (size_t i = 0; i < points.size(); i++) {
        const TransportPoint &p = points[i];
        std::printf("    {\"hosts\": %zu, \"chunks_per_shard\": %zu, "
                    "\"samples\": %llu, \"socket_seconds\": %.6f, "
                    "\"dropdir_seconds\": %.6f}%s\n",
                    p.hosts, p.chunks_per_shard,
                    static_cast<unsigned long long>(p.samples),
                    p.socket_seconds, p.dropdir_seconds,
                    i + 1 < points.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
