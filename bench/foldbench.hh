/**
 * @file
 * Shared per-backend fold measurement for the scale_* benches.
 *
 * Every scale bench embeds one "fold" section in its JSON output: for
 * each vector backend usable on this machine it records
 *
 *  - kernel_ns_per_fold: nanoseconds for one fold pass (sum + dot +
 *    saxpy + saturating-u64 accumulate) over a representative span —
 *    the pure vectorops signal, where SIMD width shows directly;
 *  - fold_seconds / shards_per_s: wall time to fold the bench's shard
 *    set into one aggregate with dispatch pinned to the backend — the
 *    end-to-end number, diluted by sample concatenation;
 *  - bytes_identical: whether the serialized aggregate matches the
 *    scalar backend's bytes exactly (the bit-stability contract; the
 *    bench fatal()s if it ever goes false).
 *
 * plus the dispatch backend the process actually resolved at startup
 * and simd_speedup (scalar kernel time over the best SIMD kernel
 * time). scripts/check_bench.py gates committed BENCH_scale_*.json
 * baselines against fresh runs of these numbers.
 */

#ifndef HBBP_BENCH_FOLDBENCH_HH
#define HBBP_BENCH_FOLDBENCH_HH

#include <chrono>
#include <string>
#include <vector>

#include "fleet/merge.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/vectorops.hh"

namespace hbbp::bench {

/** One backend's fold measurements. */
struct FoldBackendPoint
{
    std::string name;
    double kernel_ns_per_fold = 0.0;
    double fold_seconds = 0.0;
    double shards_per_s = 0.0;
    bool bytes_identical = false;
};

/** The per-backend fold section of a scale bench. */
struct FoldBench
{
    std::string dispatch;  ///< Backend resolved by runtime dispatch.
    size_t kernel_span = 0;
    size_t shards = 0;
    std::vector<FoldBackendPoint> backends;
    /** Scalar kernel ns over the fastest SIMD kernel ns (1.0 when no
     *  SIMD backend is usable on this machine). */
    double simd_speedup = 1.0;
};

namespace detail {

inline double
foldSecondsSince(std::chrono::steady_clock::time_point start)
{
    using namespace std::chrono;
    return duration_cast<duration<double>>(steady_clock::now() - start)
        .count();
}

/** One fold pass over the kernel spans; returns a value the optimizer
 *  must keep (the kernels live behind function pointers, but cheap
 *  insurance is cheap). */
inline double
kernelFoldPass(std::vector<double> &x, const std::vector<double> &y,
               std::vector<uint64_t> &acc,
               const std::vector<uint64_t> &inc)
{
    double s = vecops::sum(x.data(), x.size());
    s += vecops::dot(x.data(), y.data(), x.size());
    vecops::saxpy(x.data(), 1.0 / 1048576.0, y.data(), x.size());
    vecops::accumulateSatU64(acc.data(), inc.data(), acc.size());
    return s;
}

} // namespace detail

/**
 * Measure every usable backend folding @p shards, with kernel timing
 * over spans of @p kernel_span doubles/u64s. Restores the dispatch
 * backend it found active. fatal()s if any backend's aggregate bytes
 * differ from scalar's.
 */
inline FoldBench
runFoldBench(const std::vector<ProfileData> &shards,
             size_t kernel_span = 4096, int kernel_reps = 2000)
{
    FoldBench fb;
    VectorBackend before = activeVectorBackend();
    fb.dispatch = name(before);
    fb.kernel_span = kernel_span;
    fb.shards = shards.size();

    // Deterministic kernel operands: values around 1.0 so repeated
    // saxpy passes neither overflow nor denormalize.
    std::vector<double> x(kernel_span), y(kernel_span);
    std::vector<uint64_t> acc(kernel_span), inc(kernel_span);
    for (size_t i = 0; i < kernel_span; i++) {
        x[i] = 1.0 + static_cast<double>(i % 97) / 97.0;
        y[i] = 1.0 - static_cast<double>(i % 89) / 178.0;
        acc[i] = i;
        inc[i] = i * 3 + 1;
    }

    std::string scalar_bytes;
    double scalar_kernel_ns = 0.0, best_simd_kernel_ns = 0.0;
    double sink = 0.0;
    for (VectorBackend b : usableVectorBackends()) {
        std::string why;
        if (!setVectorBackend(b, &why))
            fatal("fold bench: %s", why.c_str());

        FoldBackendPoint p;
        p.name = name(b);

        // Kernel timing: one warmup pass, then the measured reps.
        std::vector<double> xk = x;
        std::vector<uint64_t> acck = acc;
        sink += detail::kernelFoldPass(xk, y, acck, inc);
        auto start = std::chrono::steady_clock::now();
        for (int rep = 0; rep < kernel_reps; rep++)
            sink += detail::kernelFoldPass(xk, y, acck, inc);
        p.kernel_ns_per_fold = detail::foldSecondsSince(start) * 1e9 /
                               kernel_reps;

        // End-to-end fold of the bench's shards.
        start = std::chrono::steady_clock::now();
        ProfileData folded = mergeProfiles(shards);
        p.fold_seconds = detail::foldSecondsSince(start);
        p.shards_per_s = p.fold_seconds > 0
                             ? static_cast<double>(shards.size()) /
                                   p.fold_seconds
                             : 0.0;

        std::string bytes = folded.serialize();
        if (b == VectorBackend::Scalar) {
            scalar_bytes = bytes;
            scalar_kernel_ns = p.kernel_ns_per_fold;
        }
        p.bytes_identical = bytes == scalar_bytes;
        if (!p.bytes_identical)
            fatal("fold bench: %s aggregate bytes differ from scalar",
                  p.name.c_str());
        if (b != VectorBackend::Scalar &&
            (best_simd_kernel_ns == 0.0 ||
             p.kernel_ns_per_fold < best_simd_kernel_ns))
            best_simd_kernel_ns = p.kernel_ns_per_fold;
        fb.backends.push_back(p);
    }
    if (best_simd_kernel_ns > 0.0)
        fb.simd_speedup = scalar_kernel_ns / best_simd_kernel_ns;
    if (sink == 0.12345) // Keep the fold results observable.
        warn("fold bench sink: %f", sink);

    if (!setVectorBackend(before))
        fatal("fold bench: could not restore dispatch backend");
    return fb;
}

/** Render the fold section as JSON (no trailing newline/comma). */
inline std::string
foldBenchJson(const FoldBench &fb)
{
    std::string out;
    out += format("\"vector_backend\": \"%s\",\n", fb.dispatch.c_str());
    out += "  \"fold\": {\n";
    out += format("    \"kernel_span\": %zu,\n", fb.kernel_span);
    out += format("    \"shards\": %zu,\n", fb.shards);
    out += format("    \"simd_speedup\": %.3f,\n", fb.simd_speedup);
    out += "    \"backends\": [\n";
    for (size_t i = 0; i < fb.backends.size(); i++) {
        const FoldBackendPoint &p = fb.backends[i];
        out += format(
            "      {\"name\": \"%s\", \"kernel_ns_per_fold\": %.1f, "
            "\"fold_seconds\": %.6f, \"shards_per_s\": %.1f, "
            "\"bytes_identical\": %s}%s\n",
            p.name.c_str(), p.kernel_ns_per_fold, p.fold_seconds,
            p.shards_per_s, p.bytes_identical ? "true" : "false",
            i + 1 < fb.backends.size() ? "," : "");
    }
    out += "    ]\n";
    out += "  }";
    return out;
}

} // namespace hbbp::bench

#endif // HBBP_BENCH_FOLDBENCH_HH
