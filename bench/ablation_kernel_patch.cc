/**
 * @file
 * Ablation: the kernel self-modifying-code fix (Section III.C). The
 * analyzer's default view disassembles the static kernel image, whose
 * tracepoint JMPs the live kernel has patched to NOPs; LBR streams
 * then look like execution "ignores" unconditional branches and get
 * discarded. Patching the static image with the live .text (the
 * paper's remedy) restores accuracy.
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

int
main()
{
    setLogLevel(LogLevel::Quiet);
    headline("Ablation: kernel live-text patching on/off",
             "stale static disassembly distorts kernel-side LBR; the "
             "live-text patch fixes it");

    Workload w = makeKernelBench();

    Profiler collector;
    ProfiledRun run = collector.run(w);

    TextTable table({"analyzer view", "streams discarded",
                     "all-ring HBBP err", "kernel HBBP err"});
    for (size_t c = 1; c < 4; c++)
        table.setAlign(c, Align::Right);

    for (bool patch : {false, true}) {
        AnalyzerOptions aopts;
        aopts.map.patch_kernel_text = patch;
        Profiler analyzer(MachineConfig{}, CollectorConfig{}, aopts);
        AnalysisResult res = analyzer.analyze(w, run.profile);

        double err_all = avgWeightedError(
            run.true_all_mnemonics, res.hbbpMix().mnemonicCounts());

        // Kernel-only comparison.
        Counter<Mnemonic> true_kernel;
        {
            const Program &p = *w.program;
            Instrumenter instr(p, true);
            ExecutionEngine engine(p, MachineConfig{}, w.exec_seed);
            engine.addObserver(&instr);
            engine.run(w.max_instructions);
            for (const BasicBlock &blk : p.blocks()) {
                const Function &fn = p.function(blk.func);
                if (!p.module(fn.module).isKernel())
                    continue;
                for (const Instruction &i : blk.instrs)
                    true_kernel.add(
                        i.mnemonic,
                        static_cast<double>(instr.bbec(blk.id)));
            }
        }
        Counter<Mnemonic> hbbp_kernel = res.hbbpMix().mnemonicCounts(
            [](const MixContext &ctx) {
                return ctx.ring == Ring::Kernel;
            });
        double err_kernel = avgWeightedError(true_kernel, hbbp_kernel);

        table.addRow({patch ? "live text (fix)" : "static text (stale)",
                      percentStr(res.estimates.discardFraction(), 2),
                      percentStr(err_all, 2),
                      percentStr(err_kernel, 2)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
