/**
 * @file
 * Profile store v2 scaling benchmark.
 *
 * Prices the three claims the indexed store makes (see
 * src/fleet/store.hh) at fleet scale — 10k entries:
 *
 *  - indexed_speedup: membership tests answered from the in-memory
 *    index vs an honest directory enumeration (what any
 *    "list-the-store" scheme costs at this entry count). The index is
 *    the reason `aggregate --listen` can dedup every arrival without
 *    a readdir.
 *  - deposit_per_s: deposit throughput with several depositors
 *    hammering one store directory concurrently, each through its own
 *    ProfileStore handle (its own flock file description), so the
 *    cross-process lock contention is real even in one process.
 *  - mmap_mb_s vs read_mb_s: entry bytes consumed through MappedBytes
 *    in forced-mmap vs forced-read mode, with mmap_bytes_identical
 *    recording that both paths saw the same bytes — the correctness
 *    half of the zero-copy read claim, gated by check_bench.py.
 *
 * Output is machine-readable JSON on stdout (one object), so CI can
 * archive and diff runs. Pass --human for the table view, --quick for
 * a CI-sized run.
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "collect/profile.hh"
#include "fleet/store.hh"
#include "support/bytes.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/table.hh"

using namespace hbbp;
namespace fs = std::filesystem;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    using namespace std::chrono;
    return duration_cast<duration<double>>(steady_clock::now() - start)
        .count();
}

/** A synthetic profile; @p samples sizes the serialized entry. */
ProfileData
syntheticProfile(uint64_t tag, size_t samples)
{
    ProfileData pd;
    pd.sim_periods = {1009, 101};
    pd.paper_periods = {100'000'007, 10'000'019};
    pd.runtime_class = RuntimeClass::MinutesMany;
    pd.features = {1000 + tag, 2000 + tag, 30 + tag, 40 + tag, 5 + tag};
    pd.pmi_count = 10 + tag;
    pd.mmaps.push_back({"app.bin", 0x400000, 0x100000, false});
    pd.ebs.reserve(samples);
    for (size_t i = 0; i < samples; i++)
        pd.ebs.push_back({0x400000 + (i % 0x10000), tag + i, Ring::User});
    return pd;
}

/**
 * Membership by directory enumeration — the honest non-indexed
 * contrast: walk the directory until the entry's file name appears.
 */
bool
scanContains(const std::string &dir, const std::string &want)
{
    for (const fs::directory_entry &e : fs::directory_iterator(dir))
        if (e.path().filename() == want)
            return true;
    return false;
}

std::string
freshDir(const char *tag)
{
    std::string dir = format("/tmp/hbbp_bench_store_%s_%d", tag,
                             static_cast<int>(::getpid()));
    fs::remove_all(dir);
    return dir;
}

} // namespace

int
main(int argc, char **argv)
{
    bool human = false, quick = false;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--human") == 0)
            human = true;
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    const size_t entries = quick ? 2'000 : 10'000;
    const size_t indexed_probes = quick ? 100'000 : 400'000;
    const size_t scan_probes = quick ? 40 : 150;
    const size_t deposit_threads = 4;
    const size_t deposits_per_thread = quick ? 150 : 500;
    const size_t big_samples = quick ? 200'000 : 500'000;
    const size_t io_iters = quick ? 12 : 40;

    // ----------------------------------------------------------------
    // Populate one store with `entries` distinct small shard entries.
    // The entry bytes are shared (content-addressing only cares about
    // the checksum key), so population time is deposit cost, not
    // serialization cost.
    // ----------------------------------------------------------------
    std::string dir = freshDir("lookup");
    ProfileStore store(dir);
    std::string small_path = dir + "/.seed.tmp";
    syntheticProfile(1, 64).saveAtomically(small_path);
    std::string why;
    std::string small_bytes = readFileBytes(small_path, &why);
    if (small_bytes.empty())
        fatal("seed profile read failed: %s", why.c_str());
    fs::remove(small_path);

    for (size_t i = 0; i < entries; i++)
        store.depositBytesByChecksum(0x1000'0000 + i, small_bytes);
    if (store.entryCount() != entries)
        fatal("populate failed: %zu entries, want %zu",
              store.entryCount(), entries);

    // Indexed membership: hit and miss alternating, so the measured
    // path is the map probe, not one hot bucket.
    auto start = std::chrono::steady_clock::now();
    size_t hits = 0;
    for (size_t i = 0; i < indexed_probes; i++)
        hits += store.containsChecksum(0x1000'0000 +
                                       (i % (2 * entries)));
    double indexed_s = secondsSince(start);
    if (hits != indexed_probes / 2)
        fatal("indexed probe miscounted: %zu hits", hits);
    double indexed_per_s = indexed_probes / indexed_s;

    // Directory-enumeration membership, alternating hit and miss
    // explicitly (too few probes to wrap the entry range).
    start = std::chrono::steady_clock::now();
    hits = 0;
    for (size_t i = 0; i < scan_probes; i++) {
        uint64_t idx = i % 2 == 0 ? (i / 2) % entries : entries + i;
        std::string want =
            fs::path(store.pathForChecksum(0x1000'0000 + idx))
                .filename();
        hits += scanContains(dir, want);
    }
    double scan_s = secondsSince(start);
    if (hits != (scan_probes + 1) / 2)
        fatal("scan probe miscounted: %zu hits", hits);
    double scan_per_s = scan_probes / scan_s;
    double indexed_speedup = indexed_per_s / scan_per_s;

    // ----------------------------------------------------------------
    // Deposit throughput under contention: every thread drives its
    // own ProfileStore handle at one shared directory — separate open
    // file descriptions, so the flock serialization is the real
    // cross-process discipline, and every append contends for it.
    // ----------------------------------------------------------------
    std::string contended_dir = freshDir("deposit");
    {
        ProfileStore init(contended_dir); // Create dir + index.
    }
    start = std::chrono::steady_clock::now();
    std::vector<std::thread> depositors;
    for (size_t t = 0; t < deposit_threads; t++)
        depositors.emplace_back([&, t] {
            ProfileStore mine(contended_dir);
            for (size_t i = 0; i < deposits_per_thread; i++)
                mine.depositBytesByChecksum(
                    0x2000'0000 + t * deposits_per_thread + i,
                    small_bytes);
        });
    for (std::thread &th : depositors)
        th.join();
    double deposit_s = secondsSince(start);
    double deposit_per_s =
        deposit_threads * deposits_per_thread / deposit_s;
    {
        ProfileStore check(contended_dir);
        if (check.entryCount() != deposit_threads * deposits_per_thread)
            fatal("contended deposits lost entries: %zu, want %zu",
                  check.entryCount(),
                  deposit_threads * deposits_per_thread);
    }

    // ----------------------------------------------------------------
    // mmap vs plain-read consumption of one large entry. fnv1a over
    // the view forces every byte through the CPU on both paths, and
    // its equality is the byte-identity check check_bench.py gates.
    // ----------------------------------------------------------------
    std::string big_path = dir + "/.big.tmp";
    syntheticProfile(2, big_samples).saveAtomically(big_path);
    uint64_t big_size = fs::file_size(big_path);

    uint64_t map_digest = 0, read_digest = 0;
    start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < io_iters; i++) {
        MappedBytes mb;
        if (!mb.open(big_path, &why, MappedBytes::Mode::Map))
            fatal("mmap open failed: %s", why.c_str());
        map_digest = fnv1a(mb.view());
    }
    double map_s = secondsSince(start);
    start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < io_iters; i++) {
        MappedBytes mb;
        if (!mb.open(big_path, &why, MappedBytes::Mode::Read))
            fatal("read open failed: %s", why.c_str());
        read_digest = fnv1a(mb.view());
    }
    double read_s = secondsSince(start);
    bool bytes_identical = map_digest == read_digest;
    double mb = 1024.0 * 1024.0;
    double mmap_mb_s = big_size * io_iters / map_s / mb;
    double read_mb_s = big_size * io_iters / read_s / mb;

    fs::remove_all(dir);
    fs::remove_all(contended_dir);

    if (human) {
        bench::headline("Profile store scaling",
                        "fleet extension (no paper analogue)");
        TextTable table({"measure", "value"});
        table.setAlign(1, Align::Right);
        table.addRow({format("indexed lookups/s (%zu entries)", entries),
                      format("%.0f", indexed_per_s)});
        table.addRow({"dir-scan lookups/s", format("%.1f", scan_per_s)});
        table.addRow({"indexed speedup", format("%.0fx", indexed_speedup)});
        table.addRow({format("deposits/s (%zu threads)", deposit_threads),
                      format("%.0f", deposit_per_s)});
        table.addRow({"mmap MB/s", format("%.0f", mmap_mb_s)});
        table.addRow({"plain-read MB/s", format("%.0f", read_mb_s)});
        std::printf("%s\n", table.render().c_str());
        std::printf("mmap/read bytes identical: %s\n",
                    bytes_identical ? "yes" : "NO");
        return 0;
    }

    std::printf("{\n  \"bench\": \"scale_store\",\n");
    std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
    std::printf("  \"store\": {\n");
    std::printf("    \"entries\": %zu,\n", entries);
    std::printf("    \"indexed_lookup_per_s\": %.1f,\n", indexed_per_s);
    std::printf("    \"scan_lookup_per_s\": %.1f,\n", scan_per_s);
    std::printf("    \"indexed_speedup\": %.3f,\n", indexed_speedup);
    std::printf("    \"deposit_threads\": %zu,\n", deposit_threads);
    std::printf("    \"deposit_per_s\": %.1f,\n", deposit_per_s);
    std::printf("    \"entry_mb\": %.3f,\n", big_size / mb);
    std::printf("    \"mmap_mb_s\": %.1f,\n", mmap_mb_s);
    std::printf("    \"read_mb_s\": %.1f,\n", read_mb_s);
    std::printf("    \"mmap_bytes_identical\": %s\n",
                bytes_identical ? "true" : "false");
    std::printf("  }\n}\n");
    return 0;
}
