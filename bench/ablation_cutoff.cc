/**
 * @file
 * Ablation: sweep the HBBP length cutoff (DESIGN.md experiment
 * index). The paper's criteria search settles on 18; this sweep shows
 * the error as a function of the cutoff on a mixed workload set —
 * pure-LBR at one end, pure-EBS at the other — plus the effect of the
 * bias->EBS term.
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

int
main()
{
    setLogLevel(LogLevel::Quiet);
    headline("Ablation: HBBP cutoff sweep",
             "error minimized in a band around the paper's cutoff of "
             "18; the bias term protects against LBR anomalies");

    std::vector<Workload> set;
    set.push_back(makeTest40());
    set.push_back(makeFitter(FitterVariant::Sse));
    set.push_back(makeFitter(FitterVariant::AvxFix));
    set.push_back(makeSpecBenchmark("453.povray"));
    set.push_back(makeSpecBenchmark("471.omnetpp"));
    set.push_back(makeSpecBenchmark("456.hmmer"));
    set.push_back(makeSpecBenchmark("433.milc"));

    // Collect once per workload; re-analyze per cutoff.
    struct Captured
    {
        Workload w;
        ProfiledRun run;
    };
    std::vector<Captured> captured;
    Profiler collector;
    for (Workload &w : set)
        captured.push_back({w, collector.run(w)});

    TextTable table({"cutoff", "avg err (bias->EBS)",
                     "avg err (length only)"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);

    double best_err = 1e9;
    int best_cutoff = -1;
    for (int cutoff : {0, 2, 4, 8, 12, 16, 18, 22, 26, 32, 48, 1000}) {
        double sum_bias = 0, sum_plain = 0;
        for (const Captured &c : captured) {
            AnalyzerOptions with_bias;
            with_bias.classifier = std::make_shared<CutoffClassifier>(
                static_cast<double>(cutoff), true);
            Profiler p1(MachineConfig{}, CollectorConfig{}, with_bias);
            AnalysisResult r1 = p1.analyze(c.w, c.run.profile);
            sum_bias += p1.accuracy(c.run, r1).hbbp;

            AnalyzerOptions plain;
            plain.classifier = std::make_shared<CutoffClassifier>(
                static_cast<double>(cutoff), false);
            Profiler p2(MachineConfig{}, CollectorConfig{}, plain);
            AnalysisResult r2 = p2.analyze(c.w, c.run.profile);
            sum_plain += p2.accuracy(c.run, r2).hbbp;
        }
        double avg_bias = sum_bias / static_cast<double>(captured.size());
        double avg_plain =
            sum_plain / static_cast<double>(captured.size());
        std::string label = cutoff == 0 ? "0 (pure EBS)"
                            : cutoff == 1000 ? "inf (pure LBR)"
                                             : std::to_string(cutoff);
        table.addRow({label, percentStr(avg_bias, 2),
                      percentStr(avg_plain, 2)});
        if (avg_bias < best_err) {
            best_err = avg_bias;
            best_cutoff = cutoff;
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("best cutoff in sweep: %d (avg err %s); paper uses 18\n",
                best_cutoff, percentStr(best_err, 2).c_str());
    return 0;
}
