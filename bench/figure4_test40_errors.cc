/**
 * @file
 * Reproduces Figure 4: Test40 per-mnemonic error percentages for
 * HBBP, LBR and EBS over the top-20 instruction-retiring mnemonics.
 *
 * Paper: on the top-5 mnemonics LBR errors run 4-7% while HBBP stays
 * under 2%; further down EBS reaches 15-25% on POP, RET_NEAR and JMP
 * while HBBP stays under 1%.
 */

#include "bench/common.hh"

using namespace hbbp;
using namespace hbbp::bench;

int
main()
{
    setLogLevel(LogLevel::Quiet);
    headline("Figure 4: Test40 per-mnemonic errors, HBBP vs LBR vs EBS",
             "HBBP under ~2% throughout; LBR 4-7% on the top "
             "mnemonics; EBS 15-25% spikes on POP/RET_NEAR/JMP");

    Profiler profiler;
    Workload w = makeTest40();
    Analyzed a = analyzeWorkload(profiler, w);

    Counter<Mnemonic> hbbp =
        Profiler::userMnemonics(a.analysis.hbbpMix());
    Counter<Mnemonic> ebs = Profiler::userMnemonics(a.analysis.ebsMix());
    Counter<Mnemonic> lbr = Profiler::userMnemonics(a.analysis.lbrMix());
    const Counter<Mnemonic> &ref = a.run.true_user_mnemonics;

    TextTable table({"mnemonic", "share", "HBBP err", "LBR err",
                     "EBS err", "HBBP best?"});
    for (size_t c = 1; c < 5; c++)
        table.setAlign(c, Align::Right);
    double total = ref.total();
    int hbbp_best_or_tied = 0, rows = 0;
    for (const auto &[m, ref_count] : ref.top(20)) {
        double eh = blockError(ref_count, hbbp.get(m));
        double el = blockError(ref_count, lbr.get(m));
        double ee = blockError(ref_count, ebs.get(m));
        bool best = eh <= el + 0.005 && eh <= ee + 0.005;
        hbbp_best_or_tied += best;
        rows++;
        table.addRow({info(m).name, percentStr(ref_count / total, 1),
                      percentStr(eh, 2), percentStr(el, 2),
                      percentStr(ee, 2), best ? "yes" : ""});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("HBBP best or tied on %d of %d top mnemonics\n",
                hbbp_best_or_tied, rows);
    std::printf("aggregate: HBBP %s, LBR %s, EBS %s\n",
                percentStr(a.accuracy.hbbp, 2).c_str(),
                percentStr(a.accuracy.lbr, 2).c_str(),
                percentStr(a.accuracy.ebs, 2).c_str());
    return 0;
}
