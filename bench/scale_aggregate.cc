/**
 * @file
 * Distributed aggregation scaling benchmark.
 *
 * Measures the incremental aggregator against the naive baseline it
 * replaces: re-aggregating a drop directory from scratch every time a
 * shard arrives. With S shards, the incremental path reads and folds
 * each shard once (O(S) work overall, plus one canonical rebuild when
 * the aggregate is requested); the batch-rescan path reloads and
 * re-merges everything on each arrival (O(S^2)). The gap is the point
 * of partial-aggregate caching, and this bench tracks it as shard
 * counts grow.
 *
 * Output is machine-readable JSON on stdout (one object), so CI can
 * archive and diff runs. Pass --human for the table view, --quick for
 * a CI-sized run.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "bench/foldbench.hh"
#include "fleet/aggregate.hh"
#include "fleet/manifest.hh"
#include "fleet/merge.hh"
#include "fleet/shard.hh"
#include "support/thread_pool.hh"

using namespace hbbp;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    using namespace std::chrono;
    return duration_cast<duration<double>>(steady_clock::now() - start)
        .count();
}

/** One aggregation timing point. */
struct AggPoint
{
    size_t shards = 0;
    uint64_t samples = 0;
    double incremental_seconds = 0.0;
    double batch_rescan_seconds = 0.0;
    double speedup = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool human = false, quick = false;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--human") == 0)
            human = true;
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    // Simulated hosts export shards of one fleet-wide collection; the
    // shard counts sweep how far behind a naive re-aggregator falls.
    std::vector<size_t> shard_counts =
        quick ? std::vector<size_t>{4, 8}
              : std::vector<size_t>{4, 8, 16, 32};
    Workload w = requireWorkloadByName("test40");
    CollectorConfig cc = collectorConfigFor(w);
    if (quick)
        cc.max_instructions = w.max_instructions / 4;

    std::string dir =
        (std::filesystem::temp_directory_path() / "hbbp_scale_aggregate")
            .string();

    std::vector<AggPoint> points;
    std::vector<ProfileData> fold_shards; // Largest round, for foldbench.
    for (size_t n_shards : shard_counts) {
        std::filesystem::remove_all(dir);

        ShardPlan plan;
        plan.shards = static_cast<uint32_t>(n_shards);
        plan.jobs = ThreadPool::defaultThreadCount();
        std::vector<ProfileData> shards =
            collectShards(*w.program, MachineConfig{}, cc, plan);

        // One shard per simulated host, exported up front: both modes
        // then consume the same on-disk drop directory.
        std::vector<std::string> manifests;
        for (size_t i = 0; i < shards.size(); i++)
            manifests.push_back(exportShard(
                shards[i], format("host%03zu", i), w.name,
                /*seq=*/0, /*options_hash=*/0, dir));

        AggPoint p;
        p.shards = n_shards;

        // Incremental: fold each arrival once, rebuild on demand.
        auto start = std::chrono::steady_clock::now();
        IncrementalAggregator agg;
        for (const std::string &m : manifests)
            agg.importFile(m);
        const ProfileData &incremental = agg.aggregate();
        p.incremental_seconds = secondsSince(start);
        p.samples = incremental.ebs.size() + incremental.lbr.size();

        // Batch rescan: every arrival reloads and re-merges the whole
        // directory so far — the no-cache baseline.
        start = std::chrono::steady_clock::now();
        ProfileData batch;
        for (size_t arrived = 1; arrived <= manifests.size();
             arrived++) {
            std::vector<ProfileData> all;
            for (size_t i = 0; i < arrived; i++)
                all.push_back(
                    importShard(manifests[i], nullptr)->profile);
            batch = mergeProfiles(all);
        }
        p.batch_rescan_seconds = secondsSince(start);

        if (!(batch == incremental))
            fatal("incremental and batch aggregates disagree at %zu "
                  "shards", n_shards);
        p.speedup = p.incremental_seconds > 0
                        ? p.batch_rescan_seconds / p.incremental_seconds
                        : 0.0;
        points.push_back(p);
        fold_shards = std::move(shards);
    }
    std::filesystem::remove_all(dir);

    // Per-backend fold math on the largest shard set (foldbench.hh).
    bench::FoldBench fb =
        bench::runFoldBench(fold_shards, 4096, quick ? 500 : 2000);

    if (human) {
        bench::headline("Distributed aggregation scaling",
                        "fleet extension (no paper analogue)");
        TextTable table({"shards", "samples", "incremental s",
                         "batch-rescan s", "speedup"});
        for (size_t col = 0; col < 5; col++)
            table.setAlign(col, Align::Right);
        for (const AggPoint &p : points)
            table.addRow({format("%zu", p.shards),
                          format("%llu", static_cast<unsigned long long>(
                                             p.samples)),
                          format("%.4f", p.incremental_seconds),
                          format("%.4f", p.batch_rescan_seconds),
                          format("%.1fx", p.speedup)});
        std::printf("%s\n", table.render().c_str());
        for (const bench::FoldBackendPoint &p : fb.backends)
            std::printf("fold[%s]: %.0f ns/fold, %.0f shards/s%s\n",
                        p.name.c_str(), p.kernel_ns_per_fold,
                        p.shards_per_s,
                        p.name == fb.dispatch ? " (dispatch)" : "");
        return 0;
    }

    std::printf("{\n  \"bench\": \"scale_aggregate\",\n");
    std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
    std::printf("  %s,\n", bench::foldBenchJson(fb).c_str());
    std::printf("  \"points\": [\n");
    for (size_t i = 0; i < points.size(); i++) {
        const AggPoint &p = points[i];
        std::printf("    {\"shards\": %zu, \"samples\": %llu, "
                    "\"incremental_seconds\": %.6f, "
                    "\"batch_rescan_seconds\": %.6f, "
                    "\"speedup\": %.3f}%s\n",
                    p.shards,
                    static_cast<unsigned long long>(p.samples),
                    p.incremental_seconds, p.batch_rescan_seconds,
                    p.speedup, i + 1 < points.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
