#!/usr/bin/env python3
"""Gate a fresh scale-bench JSON against a committed BENCH_*.json baseline.

Usage:
    check_bench.py BASELINE FRESH [--tolerance X] [--speedup-floor Y]

Checks, failing loudly (exit 1) on the first violation:

  1. Structure: both files parse, name the same bench, and carry a
     "fold" section with a per-backend list.
  2. Bit stability: every backend in the fresh run reports
     bytes_identical=true (the SIMD and scalar folds produced the same
     aggregate bytes).
  3. Dispatch sanity: the fresh run's scalar backend is present (it is
     compiled unconditionally; its absence means the fold section is
     broken).
  4. Perf regression: for every backend present in BOTH files, the
     fresh kernel_ns_per_fold must be within --tolerance of the
     baseline (default 4.0 -- CI machines differ wildly from the
     machine that recorded the baseline; the gate catches order-of-
     magnitude regressions, e.g. a scalar fallback sneaking into a
     SIMD backend, not single-digit noise). Backends in the baseline
     but missing from the fresh run (different CPU) are skipped with a
     warning.
  5. SIMD win: when the fresh run has at least one SIMD backend, its
     simd_speedup must be >= --speedup-floor (default 1.1): the
     vectorized fold must actually beat scalar where SIMD exists.
  6. Telemetry overhead: when the fresh run carries a "telemetry"
     section (scale_relay does), its overhead_pct -- the fold-path
     cost of metrics enabled vs compiled-in-but-idle -- must stay
     under --telemetry-overhead-max (default 2.0%%) plus the run's
     own measured noise floor (telemetry.noise_pct, an A/A control
     the bench computes by comparing two halves of the
     telemetry-disabled samples; on a quiet machine it is ~0 and the
     budget applies as-is). Benches without the section (and
     baselines recorded before it existed) skip the gate with a
     warning.

Defaults can be overridden via HBBP_BENCH_TOLERANCE,
HBBP_BENCH_SPEEDUP_FLOOR and HBBP_BENCH_TELEMETRY_OVERHEAD_MAX for
one-off noisy runners.
"""

import argparse
import json
import os
import sys


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def warn(msg):
    print(f"check_bench: warning: {msg}", file=sys.stderr)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def fold_backends(doc, path):
    fold = doc.get("fold")
    if not isinstance(fold, dict):
        fail(f"{path} has no \"fold\" section")
    backends = fold.get("backends")
    if not isinstance(backends, list) or not backends:
        fail(f"{path} has an empty fold.backends list")
    return fold, {b["name"]: b for b in backends}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("HBBP_BENCH_TOLERANCE", "4.0")),
        help="max allowed fresh/baseline kernel_ns_per_fold ratio",
    )
    ap.add_argument(
        "--speedup-floor",
        type=float,
        default=float(os.environ.get("HBBP_BENCH_SPEEDUP_FLOOR", "1.1")),
        help="min simd_speedup when a SIMD backend is usable",
    )
    ap.add_argument(
        "--telemetry-overhead-max",
        type=float,
        default=float(
            os.environ.get("HBBP_BENCH_TELEMETRY_OVERHEAD_MAX", "2.0")
        ),
        help="max telemetry.overhead_pct when the section is present",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    if base.get("bench") != fresh.get("bench"):
        fail(
            f"bench name mismatch: baseline is "
            f"{base.get('bench')!r}, fresh is {fresh.get('bench')!r}"
        )
    bench = fresh.get("bench", "?")

    base_fold, base_by_name = fold_backends(base, args.baseline)
    fresh_fold, fresh_by_name = fold_backends(fresh, args.fresh)

    if "scalar" not in fresh_by_name:
        fail(f"{bench}: fresh run has no scalar backend")

    for name, b in fresh_by_name.items():
        if b.get("bytes_identical") is not True:
            fail(
                f"{bench}: backend {name} aggregate bytes differ "
                f"from scalar (bytes_identical={b.get('bytes_identical')})"
            )

    for name, bb in base_by_name.items():
        fb = fresh_by_name.get(name)
        if fb is None:
            warn(
                f"{bench}: baseline backend {name} not usable on this "
                f"machine; skipping its perf comparison"
            )
            continue
        base_ns = bb.get("kernel_ns_per_fold", 0.0)
        fresh_ns = fb.get("kernel_ns_per_fold", 0.0)
        if base_ns <= 0.0 or fresh_ns <= 0.0:
            fail(f"{bench}: backend {name} has non-positive ns_per_fold")
        if fresh_ns > base_ns * args.tolerance:
            fail(
                f"{bench}: backend {name} regressed: "
                f"{fresh_ns:.1f} ns/fold vs baseline {base_ns:.1f} "
                f"(tolerance {args.tolerance}x)"
            )
        print(
            f"check_bench: {bench}/{name}: {fresh_ns:.1f} ns/fold "
            f"(baseline {base_ns:.1f}, ratio "
            f"{fresh_ns / base_ns:.2f}, limit {args.tolerance}x)"
        )

    has_simd = any(n != "scalar" for n in fresh_by_name)
    if has_simd:
        speedup = fresh_fold.get("simd_speedup", 0.0)
        if speedup < args.speedup_floor:
            fail(
                f"{bench}: simd_speedup {speedup:.3f} below floor "
                f"{args.speedup_floor} with SIMD backends "
                f"{sorted(n for n in fresh_by_name if n != 'scalar')}"
            )
        print(
            f"check_bench: {bench}: simd_speedup {speedup:.3f} "
            f"(floor {args.speedup_floor}), dispatch "
            f"{fresh.get('vector_backend', '?')}"
        )
    else:
        warn(f"{bench}: no SIMD backend on this machine; speedup floor skipped")

    telemetry = fresh.get("telemetry")
    if telemetry is None:
        warn(f"{bench}: no telemetry section; overhead gate skipped")
    else:
        pct = telemetry.get("overhead_pct")
        if not isinstance(pct, (int, float)):
            fail(f"{bench}: telemetry section lacks a numeric overhead_pct")
        # The bench's A/A control (disabled vs disabled) prices the
        # runner's noise: an overhead smaller than that floor is not a
        # resolvable signal, so the budget stretches by it.
        noise = telemetry.get("noise_pct")
        noise = noise if isinstance(noise, (int, float)) else 0.0
        limit = args.telemetry_overhead_max + noise
        if pct > limit:
            fail(
                f"{bench}: telemetry overhead {pct:.3f}% on the fold "
                f"path exceeds the {args.telemetry_overhead_max}% budget "
                f"+ {noise:.3f}% measured noise floor "
                f"(enabled {telemetry.get('enabled_seconds')}s vs "
                f"disabled {telemetry.get('disabled_seconds')}s)"
            )
        print(
            f"check_bench: {bench}: telemetry overhead {pct:.3f}% "
            f"(budget {args.telemetry_overhead_max}% + noise floor "
            f"{noise:.3f}%)"
        )

    print(f"check_bench: {bench}: OK")


if __name__ == "__main__":
    main()
