#!/usr/bin/env python3
"""Gate a fresh scale-bench JSON against a committed BENCH_*.json baseline.

Usage:
    check_bench.py BASELINE FRESH [--tolerance X] [--speedup-floor Y]

Checks, failing loudly (exit 1) on the first violation:

  1. Structure: both files parse, name the same bench, and carry a
     "fold" section with a per-backend list.
  2. Bit stability: every backend in the fresh run reports
     bytes_identical=true (the SIMD and scalar folds produced the same
     aggregate bytes).
  3. Dispatch sanity: the fresh run's scalar backend is present (it is
     compiled unconditionally; its absence means the fold section is
     broken).
  4. Perf regression: for every backend present in BOTH files, the
     fresh kernel_ns_per_fold must be within --tolerance of the
     baseline (default 4.0 -- CI machines differ wildly from the
     machine that recorded the baseline; the gate catches order-of-
     magnitude regressions, e.g. a scalar fallback sneaking into a
     SIMD backend, not single-digit noise). Backends in the baseline
     but missing from the fresh run (different CPU) are skipped with a
     warning.
  5. SIMD win: when the fresh run has at least one SIMD backend, its
     simd_speedup must be >= --speedup-floor (default 1.1): the
     vectorized fold must actually beat scalar where SIMD exists.
  6. Telemetry overhead: when the fresh run carries a "telemetry"
     section (scale_relay does), its overhead_pct -- the fold-path
     cost of metrics enabled vs compiled-in-but-idle -- must stay
     under --telemetry-overhead-max (default 2.0%%) plus the run's
     own measured noise floor (telemetry.noise_pct, an A/A control
     the bench computes by comparing two halves of the
     telemetry-disabled samples; on a quiet machine it is ~0 and the
     budget applies as-is). Benches without the section (and
     baselines recorded before it existed) skip the gate with a
     warning.
  7. Federation: when the fresh run carries a "federation" section
     (scale_relay does -- measured with a live MetricsFederator
     scraping a child endpoint while the telemetry overhead above is
     sampled), rollup_consistent must be true (the marker counter's
     agg="subtree" series equals own + child exactly), merges_per_s
     and scrape_ms must be positive, and merges_per_s must be within
     --tolerance of the baseline when the baseline has the section.

Benches whose JSON carries a "query" section instead of "fold"
(scale_query) take a different gate -- see check_query(): the cached
path must never re-analyze, cached_speedup must clear
--query-speedup-floor (default 2.0), and cold_qps must be within
--tolerance of the baseline.

Benches carrying a "store" section (scale_store) gate the profile
store's indexed read path -- see check_store():
mmap_bytes_identical must be true (the zero-copy and plain-read
paths saw the same bytes), indexed_speedup must clear
--store-speedup-floor (default 5.0 -- the in-memory index has to
beat enumerating the directory by far more than that at 10k
entries; the low floor only absorbs noisy-runner variance), and
deposit_per_s must be within --tolerance of the baseline.

Defaults can be overridden via HBBP_BENCH_TOLERANCE,
HBBP_BENCH_SPEEDUP_FLOOR, HBBP_BENCH_TELEMETRY_OVERHEAD_MAX,
HBBP_BENCH_QUERY_SPEEDUP_FLOOR and HBBP_BENCH_STORE_SPEEDUP_FLOOR
for one-off noisy runners.
"""

import argparse
import json
import os
import sys


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def warn(msg):
    print(f"check_bench: warning: {msg}", file=sys.stderr)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def check_query(base, fresh, args):
    """Gate a scale_query run: the epoch cache must pay for itself.

    - cached_no_reanalysis must be true (the bench itself fatal()s,
      but a hand-edited or stale JSON must not pass the gate);
    - cached_speedup must clear --query-speedup-floor: serving from
      the result cache has to beat re-running the analyzer by a
      healthy margin on any machine, loud or quiet;
    - cold_qps must be within --tolerance of the baseline (the same
      wide CI-machines-differ ratio the fold gate uses): a collapse
      here means the uncached serving path itself regressed.
    batch_speedup is reported, not gated -- on loopback the connect
    cost it prices is small enough to drown in scheduler noise.
    """
    bench = fresh.get("bench", "?")
    bq = base.get("query")
    fq = fresh.get("query")
    if not isinstance(fq, dict):
        fail(f"{bench}: fresh run has no \"query\" section")
    if not isinstance(bq, dict):
        fail(f"{bench}: baseline has no \"query\" section")

    if fq.get("cached_no_reanalysis") is not True:
        fail(
            f"{bench}: cached path fell back to re-analysis "
            f"(cached_no_reanalysis="
            f"{fq.get('cached_no_reanalysis')})"
        )

    speedup = fq.get("cached_speedup", 0.0)
    if not isinstance(speedup, (int, float)) or speedup < args.query_speedup_floor:
        fail(
            f"{bench}: cached_speedup {speedup} below floor "
            f"{args.query_speedup_floor} (cold "
            f"{fq.get('cold_qps')} qps vs cached "
            f"{fq.get('cached_qps')} qps)"
        )

    base_cold = bq.get("cold_qps", 0.0)
    fresh_cold = fq.get("cold_qps", 0.0)
    if base_cold <= 0.0 or fresh_cold <= 0.0:
        fail(f"{bench}: non-positive cold_qps")
    if fresh_cold * args.tolerance < base_cold:
        fail(
            f"{bench}: cold path regressed: {fresh_cold:.1f} qps vs "
            f"baseline {base_cold:.1f} (tolerance {args.tolerance}x)"
        )
    print(
        f"check_bench: {bench}: cold {fresh_cold:.1f} qps (baseline "
        f"{base_cold:.1f}), cached {fq.get('cached_qps', 0.0):.1f} qps "
        f"({speedup:.1f}x, floor {args.query_speedup_floor}), batch "
        f"{fq.get('batch_speedup', 0.0):.2f}x over per-query connects"
    )
    print(f"check_bench: {bench}: OK")


def check_store(base, fresh, args):
    """Gate a scale_store run: the index must pay for itself.

    - mmap_bytes_identical must be true: the mmap'd and plain-read
      consumption of the same entry digested to the same bytes --
      the correctness half of the zero-copy read path;
    - indexed_speedup must clear --store-speedup-floor: membership
      from the in-memory index has to beat a directory enumeration
      decisively at bench scale, or contains() silently became a
      readdir again;
    - deposit_per_s must be within --tolerance of the baseline: a
      collapse means the flock'd deposit critical section grew
      (e.g. an accidental full index reload per deposit).
    indexed_lookup_per_s and the MB/s figures are reported, not
    gated -- absolute rates are machine property, the ratios are
    the contract.
    """
    bench = fresh.get("bench", "?")
    bs = base.get("store")
    fs_ = fresh.get("store")
    if not isinstance(fs_, dict):
        fail(f"{bench}: fresh run has no \"store\" section")
    if not isinstance(bs, dict):
        fail(f"{bench}: baseline has no \"store\" section")

    if fs_.get("mmap_bytes_identical") is not True:
        fail(
            f"{bench}: mmap and plain-read paths disagree "
            f"(mmap_bytes_identical="
            f"{fs_.get('mmap_bytes_identical')})"
        )

    speedup = fs_.get("indexed_speedup", 0.0)
    if not isinstance(speedup, (int, float)) or speedup < args.store_speedup_floor:
        fail(
            f"{bench}: indexed_speedup {speedup} below floor "
            f"{args.store_speedup_floor} (indexed "
            f"{fs_.get('indexed_lookup_per_s')}/s vs scan "
            f"{fs_.get('scan_lookup_per_s')}/s at "
            f"{fs_.get('entries')} entries)"
        )

    base_dep = bs.get("deposit_per_s", 0.0)
    fresh_dep = fs_.get("deposit_per_s", 0.0)
    if base_dep <= 0.0 or fresh_dep <= 0.0:
        fail(f"{bench}: non-positive deposit_per_s")
    if fresh_dep * args.tolerance < base_dep:
        fail(
            f"{bench}: contended deposit path regressed: "
            f"{fresh_dep:.1f}/s vs baseline {base_dep:.1f} "
            f"(tolerance {args.tolerance}x)"
        )
    print(
        f"check_bench: {bench}: indexed {speedup:.0f}x over dir scan "
        f"(floor {args.store_speedup_floor}) at {fs_.get('entries')} "
        f"entries, deposits {fresh_dep:.0f}/s (baseline "
        f"{base_dep:.0f}), mmap {fs_.get('mmap_mb_s', 0.0):.0f} MB/s "
        f"vs read {fs_.get('read_mb_s', 0.0):.0f} MB/s"
    )
    print(f"check_bench: {bench}: OK")


def fold_backends(doc, path):
    fold = doc.get("fold")
    if not isinstance(fold, dict):
        fail(f"{path} has no \"fold\" section")
    backends = fold.get("backends")
    if not isinstance(backends, list) or not backends:
        fail(f"{path} has an empty fold.backends list")
    return fold, {b["name"]: b for b in backends}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("HBBP_BENCH_TOLERANCE", "4.0")),
        help="max allowed fresh/baseline kernel_ns_per_fold ratio",
    )
    ap.add_argument(
        "--speedup-floor",
        type=float,
        default=float(os.environ.get("HBBP_BENCH_SPEEDUP_FLOOR", "1.1")),
        help="min simd_speedup when a SIMD backend is usable",
    )
    ap.add_argument(
        "--telemetry-overhead-max",
        type=float,
        default=float(
            os.environ.get("HBBP_BENCH_TELEMETRY_OVERHEAD_MAX", "2.0")
        ),
        help="max telemetry.overhead_pct when the section is present",
    )
    ap.add_argument(
        "--query-speedup-floor",
        type=float,
        default=float(
            os.environ.get("HBBP_BENCH_QUERY_SPEEDUP_FLOOR", "2.0")
        ),
        help="min cached_speedup for query-section benches",
    )
    ap.add_argument(
        "--store-speedup-floor",
        type=float,
        default=float(
            os.environ.get("HBBP_BENCH_STORE_SPEEDUP_FLOOR", "5.0")
        ),
        help="min indexed_speedup for store-section benches",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    if base.get("bench") != fresh.get("bench"):
        fail(
            f"bench name mismatch: baseline is "
            f"{base.get('bench')!r}, fresh is {fresh.get('bench')!r}"
        )
    bench = fresh.get("bench", "?")

    # Query-path benches carry a "query" section instead of "fold":
    # the read path has no per-backend SIMD story to gate, it has a
    # cache story.
    if "query" in fresh or "query" in base:
        check_query(base, fresh, args)
        return

    # Store-path benches carry a "store" section: the embedded-index
    # read path has no SIMD story either, it has an index story.
    if "store" in fresh or "store" in base:
        check_store(base, fresh, args)
        return

    base_fold, base_by_name = fold_backends(base, args.baseline)
    fresh_fold, fresh_by_name = fold_backends(fresh, args.fresh)

    if "scalar" not in fresh_by_name:
        fail(f"{bench}: fresh run has no scalar backend")

    for name, b in fresh_by_name.items():
        if b.get("bytes_identical") is not True:
            fail(
                f"{bench}: backend {name} aggregate bytes differ "
                f"from scalar (bytes_identical={b.get('bytes_identical')})"
            )

    for name, bb in base_by_name.items():
        fb = fresh_by_name.get(name)
        if fb is None:
            warn(
                f"{bench}: baseline backend {name} not usable on this "
                f"machine; skipping its perf comparison"
            )
            continue
        base_ns = bb.get("kernel_ns_per_fold", 0.0)
        fresh_ns = fb.get("kernel_ns_per_fold", 0.0)
        if base_ns <= 0.0 or fresh_ns <= 0.0:
            fail(f"{bench}: backend {name} has non-positive ns_per_fold")
        if fresh_ns > base_ns * args.tolerance:
            fail(
                f"{bench}: backend {name} regressed: "
                f"{fresh_ns:.1f} ns/fold vs baseline {base_ns:.1f} "
                f"(tolerance {args.tolerance}x)"
            )
        print(
            f"check_bench: {bench}/{name}: {fresh_ns:.1f} ns/fold "
            f"(baseline {base_ns:.1f}, ratio "
            f"{fresh_ns / base_ns:.2f}, limit {args.tolerance}x)"
        )

    has_simd = any(n != "scalar" for n in fresh_by_name)
    if has_simd:
        speedup = fresh_fold.get("simd_speedup", 0.0)
        if speedup < args.speedup_floor:
            fail(
                f"{bench}: simd_speedup {speedup:.3f} below floor "
                f"{args.speedup_floor} with SIMD backends "
                f"{sorted(n for n in fresh_by_name if n != 'scalar')}"
            )
        print(
            f"check_bench: {bench}: simd_speedup {speedup:.3f} "
            f"(floor {args.speedup_floor}), dispatch "
            f"{fresh.get('vector_backend', '?')}"
        )
    else:
        warn(f"{bench}: no SIMD backend on this machine; speedup floor skipped")

    telemetry = fresh.get("telemetry")
    if telemetry is None:
        warn(f"{bench}: no telemetry section; overhead gate skipped")
    else:
        pct = telemetry.get("overhead_pct")
        if not isinstance(pct, (int, float)):
            fail(f"{bench}: telemetry section lacks a numeric overhead_pct")
        # The bench's A/A control (disabled vs disabled) prices the
        # runner's noise: an overhead smaller than that floor is not a
        # resolvable signal, so the budget stretches by it.
        noise = telemetry.get("noise_pct")
        noise = noise if isinstance(noise, (int, float)) else 0.0
        limit = args.telemetry_overhead_max + noise
        if pct > limit:
            fail(
                f"{bench}: telemetry overhead {pct:.3f}% on the fold "
                f"path exceeds the {args.telemetry_overhead_max}% budget "
                f"+ {noise:.3f}% measured noise floor "
                f"(enabled {telemetry.get('enabled_seconds')}s vs "
                f"disabled {telemetry.get('disabled_seconds')}s)"
            )
        print(
            f"check_bench: {bench}: telemetry overhead {pct:.3f}% "
            f"(budget {args.telemetry_overhead_max}% + noise floor "
            f"{noise:.3f}%)"
        )

    federation = fresh.get("federation")
    if federation is None:
        warn(f"{bench}: no federation section; federation gate skipped")
    else:
        if federation.get("rollup_consistent") is not True:
            fail(
                f"{bench}: federated rollup arithmetic broken "
                f"(rollup_consistent="
                f"{federation.get('rollup_consistent')})"
            )
        merges = federation.get("merges_per_s", 0.0)
        scrape_ms = federation.get("scrape_ms", 0.0)
        if not isinstance(merges, (int, float)) or merges <= 0.0:
            fail(f"{bench}: non-positive federation merges_per_s")
        if not isinstance(scrape_ms, (int, float)) or scrape_ms <= 0.0:
            fail(f"{bench}: non-positive federation scrape_ms")
        base_fed = base.get("federation")
        if isinstance(base_fed, dict) and base_fed.get("merges_per_s", 0.0) > 0.0:
            base_merges = base_fed["merges_per_s"]
            if merges * args.tolerance < base_merges:
                fail(
                    f"{bench}: federated merge regressed: "
                    f"{merges:.0f} merges/s vs baseline "
                    f"{base_merges:.0f} (tolerance {args.tolerance}x)"
                )
            print(
                f"check_bench: {bench}: federation merge "
                f"{merges:.0f}/s (baseline {base_merges:.0f}), "
                f"scrape {scrape_ms:.3f} ms, rollup consistent"
            )
        else:
            warn(
                f"{bench}: baseline predates the federation section; "
                f"merge-rate comparison skipped"
            )
            print(
                f"check_bench: {bench}: federation merge {merges:.0f}/s, "
                f"scrape {scrape_ms:.3f} ms, rollup consistent"
            )

    print(f"check_bench: {bench}: OK")


if __name__ == "__main__":
    main()
