# Opt-in sanitizer instrumentation:
#   -DHBBP_SANITIZE=ON         AddressSanitizer + UBSan (CI sanitizer job)
#   -DHBBP_SANITIZE_THREAD=ON  ThreadSanitizer (CI fleet/tsan job)
# The two are mutually exclusive (TSan cannot link with ASan).
option(HBBP_SANITIZE "Build with AddressSanitizer + UBSan" OFF)
option(HBBP_SANITIZE_THREAD "Build with ThreadSanitizer" OFF)

function(hbbp_enable_sanitizers)
    if(NOT HBBP_SANITIZE AND NOT HBBP_SANITIZE_THREAD)
        return()
    endif()
    if(HBBP_SANITIZE AND HBBP_SANITIZE_THREAD)
        message(FATAL_ERROR "HBBP_SANITIZE and HBBP_SANITIZE_THREAD are "
                            "mutually exclusive (ASan and TSan cannot be "
                            "combined)")
    endif()
    if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
        message(WARNING "sanitizers requested but compiler "
                        "'${CMAKE_CXX_COMPILER_ID}' is not gcc/clang — skipping")
        return()
    endif()
    if(HBBP_SANITIZE)
        add_compile_options(-fsanitize=address,undefined
                            -fno-sanitize-recover=undefined
                            -fno-omit-frame-pointer)
        add_link_options(-fsanitize=address,undefined)
        message(STATUS "Building with ASan + UBSan")
    else()
        add_compile_options(-fsanitize=thread -fno-omit-frame-pointer)
        add_link_options(-fsanitize=thread)
        message(STATUS "Building with TSan")
    endif()
endfunction()
