# Opt-in Address + UndefinedBehavior sanitizer instrumentation,
# enabled with -DHBBP_SANITIZE=ON (used by the CI sanitizer job).
option(HBBP_SANITIZE "Build with AddressSanitizer + UBSan" OFF)

function(hbbp_enable_sanitizers)
    if(NOT HBBP_SANITIZE)
        return()
    endif()
    if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
        message(WARNING "HBBP_SANITIZE requested but compiler "
                        "'${CMAKE_CXX_COMPILER_ID}' is not gcc/clang — skipping")
        return()
    endif()
    add_compile_options(-fsanitize=address,undefined
                        -fno-sanitize-recover=undefined
                        -fno-omit-frame-pointer)
    add_link_options(-fsanitize=address,undefined)
    message(STATUS "Building with ASan + UBSan")
endfunction()
