/**
 * @file
 * PMU events and the per-generation capability database.
 *
 * Two things live here. First, the two sampling events HBBP's collector
 * programs (Section V.A of the paper): the precise instructions-retired
 * event used as the EBS source and the taken-branches event used as the
 * LBR source. Second, the instruction-specific counting-event support
 * matrix across processor generations that motivates the paper's Table 2
 * (support for counting specific computational instructions is shrinking,
 * hence the need for a general method like HBBP).
 */

#ifndef HBBP_PMU_EVENTS_HH
#define HBBP_PMU_EVENTS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hbbp {

/** Sampling events the collector can program. */
enum class PmuEvent : uint8_t {
    InstRetiredPrecDist,    ///< INST_RETIRED:PREC_DIST (precise).
    BrInstRetiredNearTaken, ///< BR_INST_RETIRED:NEAR_TAKEN.
};

/** libpfm4-style event string for @p event. */
const char *eventName(PmuEvent event);

/** Parse a libpfm4-style event string; fatal() on unknown names. */
PmuEvent eventFromName(const std::string &name);

/** Instruction-specific counting-event classes from Table 2. */
enum class CountingEventClass : uint8_t {
    DivCycles,  ///< DIV (cycles).
    MathSseFp,  ///< Computational SSE FP instructions.
    MathAvxFp,  ///< Computational AVX FP instructions.
    IntSimd,    ///< Integer SIMD instructions.
    X87,        ///< x87 instructions.
    NumClasses
};

/** Printable name of a counting-event class. */
const char *name(CountingEventClass cls);

/** Server PMU generations from Table 2. */
enum class PmuGeneration : uint8_t {
    Westmere,  ///< 2010.
    IvyBridge, ///< 2013.
    Haswell,   ///< 2015.
    NumGenerations
};

/** Printable name of a PMU generation. */
const char *name(PmuGeneration gen);

/** Release year of a PMU generation. */
int releaseYear(PmuGeneration gen);

/** Support status of a counting-event class on a generation. */
enum class EventSupport : uint8_t {
    Supported,
    NotSupported,
    NotApplicable, ///< ISA extension did not exist yet.
};

/** Table 2 lookup: support of @p cls on @p gen. */
EventSupport countingEventSupport(PmuGeneration gen,
                                  CountingEventClass cls);

/** Number of Supported cells for @p gen (the declining trend). */
int supportedEventClassCount(PmuGeneration gen);

} // namespace hbbp

#endif // HBBP_PMU_EVENTS_HH
