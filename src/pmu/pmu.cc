#include "pmu/pmu.hh"

#include "support/logging.hh"

namespace hbbp {

DualCollectionPmu::DualCollectionPmu(const PmuConfig &config)
    : config_(config), rng_(config.seed),
      ring_(config.lbr_depth, config.quirk, splitmix64(config.seed))
{
    if (config_.ebs_period == 0 || config_.lbr_period == 0)
        fatal("DualCollectionPmu: sampling periods must be non-zero");
}

void
DualCollectionPmu::onRetire(const Instruction &instr, const BasicBlock &blk,
                            uint64_t cycle_start, uint64_t cycle_end,
                            Ring ring)
{
    (void)blk;
    (void)cycle_start;
    if (!config_.monitor_kernel && ring == Ring::Kernel)
        return;

    // Deliver any pending PMIs whose delay has elapsed. The sampled IP is
    // the instruction retiring at delivery time — this is where skid and
    // shadowing come from: during a retirement stall, cycle_end jumps
    // forward and this instruction absorbs every PMI initiated in the
    // stall window.
    if (ebs_pmi_pending_ && cycle_end >= ebs_pmi_cycle_) {
        ebs_pmi_pending_ = false;
        pmi_count_++;
        // Eventing IP kept; LBR payload of this collection is discarded
        // at analysis time, so it is not stored at all.
        ebs_.push_back({instr.addr, cycle_end, ring});
    }
    if (lbr_pmi_pending_ && cycle_end >= lbr_pmi_cycle_) {
        lbr_pmi_pending_ = false;
        pmi_count_++;
        LbrStackSample sample;
        sample.entries = ring_.snapshot();
        sample.cycle = cycle_end;
        sample.ring = ring;
        sample.eventing_ip = instr.addr; // discarded by analysis
        lbr_.push_back(std::move(sample));
    }

    // Counter A: instructions retired.
    ebs_counter_++;
    if (ebs_counter_ >= config_.ebs_period && !ebs_pmi_pending_) {
        ebs_counter_ = 0;
        uint64_t span = config_.precise_skid_max_cycles -
                        config_.precise_skid_min_cycles;
        uint64_t skid = config_.precise_skid_min_cycles +
                        (span ? rng_.nextBelow(span + 1) : 0);
        ebs_pmi_cycle_ = cycle_end + skid;
        ebs_pmi_pending_ = true;
    }
}

void
DualCollectionPmu::onTakenBranch(const TakenBranch &branch)
{
    if (!config_.monitor_kernel && branch.ring == Ring::Kernel)
        return;

    // LBR hardware logs every taken branch.
    ring_.insert(branch.source, branch.target);

    // Counter B: taken branches retired.
    lbr_counter_++;
    if (lbr_counter_ >= config_.lbr_period && !lbr_pmi_pending_) {
        lbr_counter_ = 0;
        lbr_pmi_cycle_ = branch.cycle + config_.lbr_pmi_delay_cycles;
        lbr_pmi_pending_ = true;
    }
}

} // namespace hbbp
