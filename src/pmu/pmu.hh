/**
 * @file
 * The dual-collection PMU observer.
 *
 * Models the paper's collector hardware interface (Section V.A): since
 * simultaneous EBS and LBR collection is not supported, two PMU counters
 * both run in LBR mode during a single execution —
 *
 *  - counter A samples on INST_RETIRED:PREC_DIST; at each PMI the
 *    "eventing IP" is kept as the EBS data source (the LBR payload is
 *    discarded at analysis time);
 *  - counter B samples on BR_INST_RETIRED:NEAR_TAKEN; at each PMI the
 *    LBR stack is kept as the LBR data source (the eventing IP is
 *    discarded).
 *
 * The model reproduces the documented PMU inaccuracies:
 *
 *  - skid: a PMI scheduled at counter overflow is delivered a few cycles
 *    later; the sampled IP is whatever retires then;
 *  - shadowing: retirement stalls on long-latency instructions make the
 *    instruction after the stall absorb all PMIs initiated during it;
 *  - LBR entry[0] bias: see lbr.hh.
 */

#ifndef HBBP_PMU_PMU_HH
#define HBBP_PMU_PMU_HH

#include <cstdint>
#include <vector>

#include "pmu/events.hh"
#include "pmu/lbr.hh"
#include "sim/observer.hh"
#include "support/rng.hh"

namespace hbbp {

/** One EBS sample: the eventing IP of an INST_RETIRED PMI. */
struct EbsSample
{
    uint64_t ip = 0;
    uint64_t cycle = 0;
    Ring ring = Ring::User;

    bool operator==(const EbsSample &other) const = default;
};

/** One LBR sample: the stack captured at a BR_INST_RETIRED PMI. */
struct LbrStackSample
{
    /** Entries oldest-first (entry[0] has no preceding target). */
    std::vector<LbrEntry> entries;
    uint64_t cycle = 0;
    Ring ring = Ring::User;
    /** Eventing IP as captured; discarded by the LBR analysis path. */
    uint64_t eventing_ip = 0;

    bool operator==(const LbrStackSample &other) const = default;
};

/** PMU sampling configuration. */
struct PmuConfig
{
    /** Sampling period of the EBS (instructions retired) counter. */
    uint64_t ebs_period = 9973;
    /** Sampling period of the LBR (taken branches) counter. */
    uint64_t lbr_period = 997;

    /**
     * PMI delivery delay for the precise EBS event, in cycles. Even
     * precise events skid: the sampled IP is the first instruction
     * retiring after the delay, so retirement stalls (long-latency
     * instructions) absorb samples — the shadowing effect.
     */
    uint32_t precise_skid_min_cycles = 1;
    uint32_t precise_skid_max_cycles = 4;

    /** PMI delivery delay for the taken-branches counter, in cycles. */
    uint32_t lbr_pmi_delay_cycles = 2;

    /** LBR stack depth. */
    uint32_t lbr_depth = 16;

    /** Entry[0] bias quirk parameters. */
    LbrQuirkConfig quirk;

    /** Monitor ring 0 in addition to user code. */
    bool monitor_kernel = true;

    /** Seed for skid and quirk randomness. */
    uint64_t seed = 0x9e3779b9ULL;
};

/** Execution observer implementing the dual LBR-mode collection. */
class DualCollectionPmu : public ExecObserver
{
  public:
    explicit DualCollectionPmu(const PmuConfig &config);

    void onRetire(const Instruction &instr, const BasicBlock &blk,
                  uint64_t cycle_start, uint64_t cycle_end,
                  Ring ring) override;
    void onTakenBranch(const TakenBranch &branch) override;

    /** EBS samples collected so far. */
    const std::vector<EbsSample> &ebsSamples() const { return ebs_; }

    /** LBR stack samples collected so far. */
    const std::vector<LbrStackSample> &lbrSamples() const { return lbr_; }

    /** Total PMIs delivered (both counters); drives overhead models. */
    uint64_t pmiCount() const { return pmi_count_; }

    /** Configuration in use. */
    const PmuConfig &config() const { return config_; }

    /** Move samples out (leaves the PMU empty). */
    std::vector<EbsSample> takeEbsSamples() { return std::move(ebs_); }
    std::vector<LbrStackSample> takeLbrSamples() { return std::move(lbr_); }

  private:
    PmuConfig config_;
    Rng rng_;
    LbrRing ring_;

    uint64_t ebs_counter_ = 0;
    uint64_t lbr_counter_ = 0;

    bool ebs_pmi_pending_ = false;
    uint64_t ebs_pmi_cycle_ = 0;
    bool lbr_pmi_pending_ = false;
    uint64_t lbr_pmi_cycle_ = 0;

    uint64_t pmi_count_ = 0;

    std::vector<EbsSample> ebs_;
    std::vector<LbrStackSample> lbr_;
};

} // namespace hbbp

#endif // HBBP_PMU_PMU_HH
