#include "pmu/lbr.hh"

#include "support/logging.hh"

namespace hbbp {

LbrRing::LbrRing(uint32_t depth, LbrQuirkConfig quirk, uint64_t seed)
    : depth_(depth), quirk_(quirk), rng_(seed)
{
    if (depth_ == 0)
        panic("LbrRing: depth must be >= 1");
    ring_.reserve(depth_);
}

bool
LbrRing::isSticky(uint64_t source) const
{
    if (!quirk_.enabled || quirk_.sticky_hash_mod == 0)
        return false;
    return hashAddr(source) % quirk_.sticky_hash_mod == 0;
}

void
LbrRing::insert(uint64_t source, uint64_t target)
{
    if (ring_.size() < depth_) {
        ring_.push_back({source, target});
        return;
    }
    // Ring is full: evict the oldest entry — unless the quirk freezes
    // the ring while a sticky branch occupies the oldest slot. A frozen
    // ring drops incoming branches entirely, so snapshots taken during
    // the freeze return stale content with the sticky branch pinned at
    // entry[0]; execution that has moved on is under-represented and the
    // pre-freeze window over-represented, which is exactly the
    // disproportionate-entry[0] distortion of Section III.C.
    bool freeze = isSticky(ring_.front().source) &&
                  persist_count_ < quirk_.sticky_max_persist &&
                  rng_.chance(quirk_.sticky_persist_prob);
    if (freeze) {
        persist_count_++;
        return;
    }
    persist_count_ = 0;
    ring_.erase(ring_.begin());
    ring_.push_back({source, target});
}

std::vector<LbrEntry>
LbrRing::snapshot() const
{
    return ring_;
}

void
LbrRing::clear()
{
    ring_.clear();
    persist_count_ = 0;
}

} // namespace hbbp
