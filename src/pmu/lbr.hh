/**
 * @file
 * The Last Branch Record ring buffer, including the entry[0] bias quirk.
 *
 * The real LBR is a circular hardware buffer of the most recent taken
 * branches, each a <source, target> pair. Section III.C of the paper
 * documents an anomaly in which one particular branch occupies entry[0]
 * (the oldest slot in the paper's indexing) up to 50% of the time,
 * rendering the affected streams unusable; the authors reported it to
 * the manufacturer. We model the anomaly mechanically: a deterministic,
 * address-hash-selected subset of branches is "sticky" — while a sticky
 * branch is the oldest entry, eviction fails with high probability, so
 * the oldest slot goes stale and the <target[0], source[1]> stream
 * becomes temporally inconsistent.
 *
 * Snapshots are returned oldest-first, matching the paper's indexing
 * where source[0] has no corresponding target[-1].
 */

#ifndef HBBP_PMU_LBR_HH
#define HBBP_PMU_LBR_HH

#include <cstdint>
#include <vector>

#include "support/rng.hh"

namespace hbbp {

/** One LBR record: a taken branch's source and target addresses. */
struct LbrEntry
{
    uint64_t source = 0;
    uint64_t target = 0;

    bool operator==(const LbrEntry &other) const = default;
};

/** Parameters of the entry[0] bias quirk. */
struct LbrQuirkConfig
{
    bool enabled = true;
    /** A branch source is sticky when hashAddr(src) % mod == 0. */
    uint32_t sticky_hash_mod = 47;
    /** Probability a sticky oldest entry survives an eviction. */
    double sticky_persist_prob = 0.95;
    /** Hard cap on consecutive survived evictions. */
    uint32_t sticky_max_persist = 150;
};

/** The LBR circular buffer. */
class LbrRing
{
  public:
    /** @param depth hardware stack depth (16 on Ivy Bridge). */
    explicit LbrRing(uint32_t depth = 16, LbrQuirkConfig quirk = {},
                     uint64_t seed = 0x5eedf00d);

    /** Record a taken branch, applying the sticky-eviction quirk. */
    void insert(uint64_t source, uint64_t target);

    /** Snapshot the ring, oldest entry first. */
    std::vector<LbrEntry> snapshot() const;

    /** Number of valid entries (== depth once warmed up). */
    uint32_t size() const { return static_cast<uint32_t>(ring_.size()); }

    /** Configured depth. */
    uint32_t depth() const { return depth_; }

    /** True when @p source is a quirk-selected sticky branch. */
    bool isSticky(uint64_t source) const;

    /** Discard all entries (context switch / freeze modelling). */
    void clear();

  private:
    uint32_t depth_;
    LbrQuirkConfig quirk_;
    Rng rng_;
    /** ring_[0] is oldest. */
    std::vector<LbrEntry> ring_;
    uint32_t persist_count_ = 0;
};

} // namespace hbbp

#endif // HBBP_PMU_LBR_HH
