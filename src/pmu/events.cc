#include "pmu/events.hh"

#include "support/logging.hh"

namespace hbbp {

const char *
eventName(PmuEvent event)
{
    switch (event) {
      case PmuEvent::InstRetiredPrecDist:
        return "INST_RETIRED:PREC_DIST";
      case PmuEvent::BrInstRetiredNearTaken:
        return "BR_INST_RETIRED:NEAR_TAKEN";
      default:
        panic("eventName: bad event %d", static_cast<int>(event));
    }
}

PmuEvent
eventFromName(const std::string &name)
{
    if (name == "INST_RETIRED:PREC_DIST")
        return PmuEvent::InstRetiredPrecDist;
    if (name == "BR_INST_RETIRED:NEAR_TAKEN")
        return PmuEvent::BrInstRetiredNearTaken;
    fatal("unknown PMU event '%s'", name.c_str());
}

const char *
name(CountingEventClass cls)
{
    switch (cls) {
      case CountingEventClass::DivCycles: return "DIV (cycles)";
      case CountingEventClass::MathSseFp: return "Math SSE FP";
      case CountingEventClass::MathAvxFp: return "Math AVX FP";
      case CountingEventClass::IntSimd: return "INT SIMD";
      case CountingEventClass::X87: return "X87";
      default:
        panic("name: bad CountingEventClass %d", static_cast<int>(cls));
    }
}

const char *
name(PmuGeneration gen)
{
    switch (gen) {
      case PmuGeneration::Westmere: return "Westmere";
      case PmuGeneration::IvyBridge: return "Ivy Bridge";
      case PmuGeneration::Haswell: return "Haswell";
      default:
        panic("name: bad PmuGeneration %d", static_cast<int>(gen));
    }
}

int
releaseYear(PmuGeneration gen)
{
    switch (gen) {
      case PmuGeneration::Westmere: return 2010;
      case PmuGeneration::IvyBridge: return 2013;
      case PmuGeneration::Haswell: return 2015;
      default:
        panic("releaseYear: bad PmuGeneration %d", static_cast<int>(gen));
    }
}

EventSupport
countingEventSupport(PmuGeneration gen, CountingEventClass cls)
{
    // Encodes Table 2 of the paper: instruction-specific counting events
    // were broadly available on Westmere and Ivy Bridge; Haswell removed
    // the computational FP/SIMD/x87 counters, keeping only DIV cycles.
    switch (gen) {
      case PmuGeneration::Westmere:
        return cls == CountingEventClass::MathAvxFp
                   ? EventSupport::NotApplicable
                   : EventSupport::Supported;
      case PmuGeneration::IvyBridge:
        return EventSupport::Supported;
      case PmuGeneration::Haswell:
        return cls == CountingEventClass::DivCycles
                   ? EventSupport::Supported
                   : EventSupport::NotSupported;
      default:
        panic("countingEventSupport: bad generation %d",
              static_cast<int>(gen));
    }
}

int
supportedEventClassCount(PmuGeneration gen)
{
    int n = 0;
    for (int c = 0;
         c < static_cast<int>(CountingEventClass::NumClasses); c++) {
        if (countingEventSupport(gen, static_cast<CountingEventClass>(c)) ==
            EventSupport::Supported)
            n++;
    }
    return n;
}

} // namespace hbbp
