/**
 * @file
 * A decoded instruction instance.
 *
 * An Instruction is a mnemonic plus the per-instance attributes that the
 * static registry cannot know: encoded length (variable, like x86), memory
 * operand flags, and — for direct control transfers — the branch
 * displacement. Once placed into a program it also knows its address.
 */

#ifndef HBBP_ISA_INSTRUCTION_HH
#define HBBP_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/mnemonic.hh"

namespace hbbp {

/** Minimum encoded instruction length in bytes. */
constexpr uint8_t kMinInstrBytes = 4;

/** Minimum encoded length of an instruction with a displacement. */
constexpr uint8_t kMinDispInstrBytes = 8;

/** Maximum encoded instruction length in bytes (mirrors x86's limit). */
constexpr uint8_t kMaxInstrBytes = 15;

/** A single decoded instruction instance. */
struct Instruction
{
    Mnemonic mnemonic = Mnemonic::NOP;
    uint8_t length = kMinInstrBytes; ///< Encoded length in bytes.
    bool mem_read = false;           ///< Has a memory source operand.
    bool mem_write = false;          ///< Has a memory destination operand.
    int32_t disp = 0;                ///< Displacement for direct transfers.
    uint64_t addr = 0;               ///< Virtual address once placed.

    /** Static attributes of the mnemonic. */
    const MnemonicInfo &info() const { return hbbp::info(mnemonic); }

    /** Address of the next sequential instruction. */
    uint64_t nextAddr() const { return addr + length; }

    /** Branch target; only meaningful when info().hasDisplacement(). */
    uint64_t
    target() const
    {
        return nextAddr() + static_cast<uint64_t>(
            static_cast<int64_t>(disp));
    }

    /** Human-readable one-line rendering (for debugging and reports). */
    std::string toString() const;

    /** Structural equality (address included). */
    bool operator==(const Instruction &other) const = default;
};

/**
 * Convenience factory for a plain instruction.
 *
 * @param m         mnemonic
 * @param mem_read  instruction reads memory
 * @param mem_write instruction writes memory
 * @param extra_len additional encoded bytes beyond the mnemonic default
 */
Instruction makeInstr(Mnemonic m, bool mem_read = false,
                      bool mem_write = false, uint8_t extra_len = 0);

} // namespace hbbp

#endif // HBBP_ISA_INSTRUCTION_HH
