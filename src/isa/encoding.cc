#include "isa/encoding.hh"

#include "support/logging.hh"

namespace hbbp {

namespace {

constexpr uint8_t kFlagMemRead = 0x01;
constexpr uint8_t kFlagMemWrite = 0x02;

} // namespace

void
encode(const Instruction &instr, std::vector<uint8_t> &out)
{
    const MnemonicInfo &mi = instr.info();
    uint8_t min_len =
        mi.hasDisplacement() ? kMinDispInstrBytes : kMinInstrBytes;
    if (instr.length < min_len || instr.length > kMaxInstrBytes)
        panic("encode: %s has invalid length %u", mi.name, instr.length);
    if (!mi.hasDisplacement() && instr.disp != 0)
        panic("encode: %s carries a displacement but has none", mi.name);

    uint16_t id = static_cast<uint16_t>(instr.mnemonic);
    size_t start = out.size();
    out.push_back(static_cast<uint8_t>(id & 0xff));
    out.push_back(static_cast<uint8_t>(id >> 8));
    uint8_t flags = 0;
    if (instr.mem_read)
        flags |= kFlagMemRead;
    if (instr.mem_write)
        flags |= kFlagMemWrite;
    out.push_back(flags);
    out.push_back(instr.length);
    if (mi.hasDisplacement()) {
        uint32_t d = static_cast<uint32_t>(instr.disp);
        out.push_back(static_cast<uint8_t>(d & 0xff));
        out.push_back(static_cast<uint8_t>((d >> 8) & 0xff));
        out.push_back(static_cast<uint8_t>((d >> 16) & 0xff));
        out.push_back(static_cast<uint8_t>((d >> 24) & 0xff));
    }
    while (out.size() - start < instr.length)
        out.push_back(0);
}

std::vector<uint8_t>
encodeAll(const std::vector<Instruction> &instrs)
{
    std::vector<uint8_t> out;
    for (const auto &instr : instrs)
        encode(instr, out);
    return out;
}

std::optional<DecodeResult>
decodeOne(const std::vector<uint8_t> &bytes, size_t offset,
          uint64_t base_addr)
{
    if (offset + kMinInstrBytes > bytes.size())
        return std::nullopt;
    uint16_t id = static_cast<uint16_t>(bytes[offset]) |
                  (static_cast<uint16_t>(bytes[offset + 1]) << 8);
    if (id >= kNumMnemonics)
        return std::nullopt;
    uint8_t flags = bytes[offset + 2];
    uint8_t length = bytes[offset + 3];

    Instruction instr;
    instr.mnemonic = static_cast<Mnemonic>(id);
    const MnemonicInfo &mi = instr.info();
    uint8_t min_len =
        mi.hasDisplacement() ? kMinDispInstrBytes : kMinInstrBytes;
    if (length < min_len || length > kMaxInstrBytes)
        return std::nullopt;
    if (offset + length > bytes.size())
        return std::nullopt;

    instr.length = length;
    instr.mem_read = (flags & kFlagMemRead) != 0;
    instr.mem_write = (flags & kFlagMemWrite) != 0;
    instr.addr = base_addr + offset;
    if (mi.hasDisplacement()) {
        uint32_t d = static_cast<uint32_t>(bytes[offset + 4]) |
                     (static_cast<uint32_t>(bytes[offset + 5]) << 8) |
                     (static_cast<uint32_t>(bytes[offset + 6]) << 16) |
                     (static_cast<uint32_t>(bytes[offset + 7]) << 24);
        instr.disp = static_cast<int32_t>(d);
    }
    return DecodeResult{instr, instr.addr + length};
}

std::vector<Instruction>
decodeAll(const std::vector<uint8_t> &bytes, uint64_t base_addr)
{
    std::vector<Instruction> out;
    size_t offset = 0;
    while (offset < bytes.size()) {
        auto res = decodeOne(bytes, offset, base_addr);
        if (!res)
            break;
        out.push_back(res->instr);
        offset += res->instr.length;
    }
    return out;
}

void
patchToNop(std::vector<uint8_t> &bytes, size_t offset)
{
    auto res = decodeOne(bytes, offset, 0);
    if (!res)
        panic("patchToNop: no valid instruction at offset %zu", offset);
    uint8_t length = res->instr.length;
    Instruction nop;
    nop.mnemonic = Mnemonic::NOP;
    nop.length = length;
    std::vector<uint8_t> enc;
    encode(nop, enc);
    for (size_t i = 0; i < enc.size(); i++)
        bytes[offset + i] = enc[i];
}

} // namespace hbbp
