#include "isa/instruction.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/strings.hh"

namespace hbbp {

std::string
Instruction::toString() const
{
    std::string out = format("%016llx  %-12s len=%u",
                             static_cast<unsigned long long>(addr),
                             info().name, length);
    if (mem_read)
        out += " [mr]";
    if (mem_write)
        out += " [mw]";
    if (info().hasDisplacement())
        out += format(" -> %016llx",
                      static_cast<unsigned long long>(target()));
    return out;
}

Instruction
makeInstr(Mnemonic m, bool mem_read, bool mem_write, uint8_t extra_len)
{
    const MnemonicInfo &mi = info(m);
    Instruction instr;
    instr.mnemonic = m;
    uint8_t len = static_cast<uint8_t>(mi.default_bytes + extra_len);
    uint8_t min_len =
        mi.hasDisplacement() ? kMinDispInstrBytes : kMinInstrBytes;
    instr.length = std::clamp(len, min_len, kMaxInstrBytes);
    instr.mem_read = mem_read;
    instr.mem_write = mem_write;
    return instr;
}

} // namespace hbbp
