#include "isa/taxonomy.hh"

#include <memory>
#include <unordered_set>

#include "support/logging.hh"

namespace hbbp {

void
Taxonomy::addGroup(const std::string &group,
                   const std::vector<Mnemonic> &members)
{
    auto set = std::make_shared<std::unordered_set<uint16_t>>();
    for (Mnemonic m : members)
        set->insert(static_cast<uint16_t>(m));
    groups_.push_back({group, [set](const MnemonicInfo &mi) {
        return set->count(static_cast<uint16_t>(mi.mnemonic)) > 0;
    }});
}

void
Taxonomy::addGroup(const std::string &group, Predicate predicate)
{
    if (!predicate)
        panic("Taxonomy::addGroup: empty predicate for group '%s'",
              group.c_str());
    groups_.push_back({group, std::move(predicate)});
}

std::vector<std::string>
Taxonomy::groupsOf(Mnemonic m) const
{
    std::vector<std::string> out;
    const MnemonicInfo &mi = info(m);
    for (const auto &g : groups_)
        if (g.predicate(mi))
            out.push_back(g.name);
    return out;
}

bool
Taxonomy::isIn(Mnemonic m, const std::string &group) const
{
    const MnemonicInfo &mi = info(m);
    for (const auto &g : groups_)
        if (g.name == group)
            return g.predicate(mi);
    return false;
}

std::vector<Mnemonic>
Taxonomy::membersOf(const std::string &group) const
{
    std::vector<Mnemonic> out;
    for (size_t i = 0; i < kNumMnemonics; i++) {
        Mnemonic m = static_cast<Mnemonic>(i);
        if (isIn(m, group))
            out.push_back(m);
    }
    return out;
}

std::vector<std::string>
Taxonomy::groupNames() const
{
    std::vector<std::string> out;
    for (const auto &g : groups_)
        out.push_back(g.name);
    return out;
}

Taxonomy
Taxonomy::standard()
{
    Taxonomy tax;
    tax.addGroup("long_latency", [](const MnemonicInfo &mi) {
        return mi.isLongLatency();
    });
    tax.addGroup("synchronization",
                 {Mnemonic::XCHG, Mnemonic::XADD});
    tax.addGroup("vector_packed", [](const MnemonicInfo &mi) {
        return mi.packing == Packing::Packed;
    });
    tax.addGroup("vector_scalar", [](const MnemonicInfo &mi) {
        return mi.packing == Packing::Scalar &&
               (mi.ext == IsaExt::Sse || mi.ext == IsaExt::Avx);
    });
    tax.addGroup("control_transfer", [](const MnemonicInfo &mi) {
        return mi.isControl();
    });
    tax.addGroup("floating_point", [](const MnemonicInfo &mi) {
        return mi.ext == IsaExt::X87 || mi.ext == IsaExt::Sse ||
               mi.ext == IsaExt::Avx;
    });
    return tax;
}

} // namespace hbbp
