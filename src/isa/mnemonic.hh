/**
 * @file
 * The synthetic ISA's mnemonic registry.
 *
 * This is the repository's stand-in for the x86 instruction set as seen
 * through XED in the paper: a fixed set of mnemonics, each carrying the
 * static attributes the analyzer needs (ISA extension, category, packing,
 * operand width, latency class, default encoded length). The registry is
 * generated from a single X-macro list so that the enum, the name table and
 * the attribute table can never drift apart.
 */

#ifndef HBBP_ISA_MNEMONIC_HH
#define HBBP_ISA_MNEMONIC_HH

#include <cstdint>
#include <optional>
#include <string>

namespace hbbp {

/** Instruction set extension an instruction belongs to. */
enum class IsaExt : uint8_t {
    Base, ///< Scalar integer / control x86.
    X87,  ///< Legacy floating point stack.
    Sse,  ///< 128-bit SSE/SSE2/SSE4 (FP and integer).
    Avx,  ///< 256-bit AVX floating point.
    Avx2, ///< 256-bit AVX2 integer (and gathers).
    NumIsaExt
};

/** Broad functional category used in instruction mix breakdowns. */
enum class Category : uint8_t {
    Move,          ///< Register/memory data movement.
    Alu,           ///< Add/sub/inc/dec/neg and friends.
    Logic,         ///< AND/OR/XOR/NOT and SIMD boolean.
    Shift,         ///< Shifts and rotates.
    Compare,       ///< CMP/TEST/COMIS and SIMD compares.
    Mul,           ///< Multiplies (and FMA).
    Div,           ///< Divisions.
    Sqrt,          ///< Square roots and reciprocal estimates.
    Transcend,     ///< Transcendentals (FSIN/FCOS/FPREM).
    Convert,       ///< Int/FP conversions.
    Stack,         ///< PUSH/POP/LEAVE.
    Shuffle,       ///< Shuffles, permutes, blends, broadcasts.
    Gather,        ///< SIMD gathers.
    CondBranch,    ///< Conditional direct branches.
    UncondBranch,  ///< Unconditional direct jumps.
    IndirectBranch,///< Register/memory-target jumps.
    Call,          ///< Direct calls.
    IndirectCall,  ///< Register/memory-target calls.
    Ret,           ///< Near returns.
    Nop,           ///< NOPs (including multi-byte forms).
    Sync,          ///< Locked read-modify-write (XCHG/XADD).
    System,        ///< SYSCALL/SYSRET/CPUID/RDTSC.
    NumCategories
};

/** Vector packing attribute. */
enum class Packing : uint8_t {
    None,   ///< Not a SIMD-register operation.
    Scalar, ///< SIMD register, scalar lane only.
    Packed, ///< Full-width SIMD operation.
    NumPackings
};

/**
 * The X-macro of all mnemonics.
 *
 * Columns: symbol, printable name, IsaExt, Category, Packing,
 * operand width in bits, retirement latency in cycles (approximate
 * Ivy Bridge numbers; what matters is the long- vs short-latency split the
 * PMU shadowing model keys on), default encoded length in bytes.
 */
#define HBBP_MNEMONIC_LIST(X)                                               \
    /* --- Base integer: moves ------------------------------------------ */\
    X(MOV,        "MOV",        Base, Move,      None,    64,  1, 4)        \
    X(MOVZX,      "MOVZX",      Base, Move,      None,    64,  1, 4)        \
    X(MOVSX,      "MOVSX",      Base, Move,      None,    64,  1, 4)        \
    X(MOVSXD,     "MOVSXD",     Base, Move,      None,    64,  1, 4)        \
    X(LEA,        "LEA",        Base, Move,      None,    64,  1, 4)        \
    X(CMOVZ,      "CMOVZ",      Base, Move,      None,    64,  2, 4)        \
    X(SETZ,       "SETZ",       Base, Move,      None,     8,  1, 4)        \
    X(MOVS,       "MOVS",       Base, Move,      None,    64,  4, 4)        \
    X(STOS,       "STOS",       Base, Move,      None,    64,  3, 4)        \
    /* --- Base integer: arithmetic / logic ----------------------------- */\
    X(ADD,        "ADD",        Base, Alu,       None,    64,  1, 4)        \
    X(SUB,        "SUB",        Base, Alu,       None,    64,  1, 4)        \
    X(ADC,        "ADC",        Base, Alu,       None,    64,  2, 4)        \
    X(SBB,        "SBB",        Base, Alu,       None,    64,  2, 4)        \
    X(INC,        "INC",        Base, Alu,       None,    64,  1, 4)        \
    X(DEC,        "DEC",        Base, Alu,       None,    64,  1, 4)        \
    X(NEG,        "NEG",        Base, Alu,       None,    64,  1, 4)        \
    X(NOT,        "NOT",        Base, Logic,     None,    64,  1, 4)        \
    X(AND,        "AND",        Base, Logic,     None,    64,  1, 4)        \
    X(OR,         "OR",         Base, Logic,     None,    64,  1, 4)        \
    X(XOR,        "XOR",        Base, Logic,     None,    64,  1, 4)        \
    X(SHL,        "SHL",        Base, Shift,     None,    64,  1, 4)        \
    X(SHR,        "SHR",        Base, Shift,     None,    64,  1, 4)        \
    X(SAR,        "SAR",        Base, Shift,     None,    64,  1, 4)        \
    X(ROL,        "ROL",        Base, Shift,     None,    64,  1, 4)        \
    X(TEST,       "TEST",       Base, Compare,   None,    64,  1, 4)        \
    X(CMP,        "CMP",        Base, Compare,   None,    64,  1, 4)        \
    X(IMUL,       "IMUL",       Base, Mul,       None,    64,  3, 4)        \
    X(MUL,        "MUL",        Base, Mul,       None,    64,  3, 4)        \
    X(IDIV,       "IDIV",       Base, Div,       None,    64, 25, 4)        \
    X(DIV,        "DIV",        Base, Div,       None,    64, 22, 4)        \
    X(CDQE,       "CDQE",       Base, Convert,   None,    64,  1, 4)        \
    X(CDQ,        "CDQ",        Base, Convert,   None,    64,  1, 4)        \
    /* --- Base integer: stack / sync / system -------------------------- */\
    X(PUSH,       "PUSH",       Base, Stack,     None,    64,  1, 4)        \
    X(POP,        "POP",        Base, Stack,     None,    64,  1, 4)        \
    X(LEAVE,      "LEAVE",      Base, Stack,     None,    64,  2, 4)        \
    X(XCHG,       "XCHG",       Base, Sync,      None,    64, 20, 4)        \
    X(XADD,       "XADD",       Base, Sync,      None,    64, 20, 4)        \
    X(NOP,        "NOP",        Base, Nop,       None,     0,  1, 4)        \
    X(SYSCALL,    "SYSCALL",    Base, System,    None,    64, 40, 4)        \
    X(SYSRET,     "SYSRET",     Base, System,    None,    64, 30, 4)        \
    X(CPUID,      "CPUID",      Base, System,    None,    64, 100, 4)       \
    X(RDTSC,      "RDTSC",      Base, System,    None,    64, 25, 4)        \
    /* --- Base integer: control transfer ------------------------------- */\
    X(JMP,        "JMP",        Base, UncondBranch, None, 64,  1, 8)        \
    X(JMP_IND,    "JMP_IND",    Base, IndirectBranch, None, 64, 2, 4)       \
    X(JZ,         "JZ",         Base, CondBranch, None,   64,  1, 8)        \
    X(JNZ,        "JNZ",        Base, CondBranch, None,   64,  1, 8)        \
    X(JL,         "JL",         Base, CondBranch, None,   64,  1, 8)        \
    X(JNL,        "JNL",        Base, CondBranch, None,   64,  1, 8)        \
    X(JLE,        "JLE",        Base, CondBranch, None,   64,  1, 8)        \
    X(JNLE,       "JNLE",       Base, CondBranch, None,   64,  1, 8)        \
    X(JB,         "JB",         Base, CondBranch, None,   64,  1, 8)        \
    X(JNB,        "JNB",        Base, CondBranch, None,   64,  1, 8)        \
    X(JBE,        "JBE",        Base, CondBranch, None,   64,  1, 8)        \
    X(JNBE,       "JNBE",       Base, CondBranch, None,   64,  1, 8)        \
    X(JS,         "JS",         Base, CondBranch, None,   64,  1, 8)        \
    X(JNS,        "JNS",        Base, CondBranch, None,   64,  1, 8)        \
    X(CALL,       "CALL",       Base, Call,      None,    64,  2, 8)        \
    X(CALL_IND,   "CALL_IND",   Base, IndirectCall, None, 64,  3, 4)        \
    X(RET_NEAR,   "RET_NEAR",   Base, Ret,       None,    64,  2, 4)        \
    /* --- x87 ----------------------------------------------------------- */\
    X(FLD,        "FLD",        X87,  Move,      Scalar,  80,  1, 4)        \
    X(FSTP,       "FSTP",       X87,  Move,      Scalar,  80,  2, 4)        \
    X(FXCH,       "FXCH",       X87,  Move,      Scalar,  80,  1, 4)        \
    X(FILD,       "FILD",       X87,  Convert,   Scalar,  80,  4, 4)        \
    X(FADD,       "FADD",       X87,  Alu,       Scalar,  80,  3, 4)        \
    X(FSUB,       "FSUB",       X87,  Alu,       Scalar,  80,  3, 4)        \
    X(FMUL,       "FMUL",       X87,  Mul,       Scalar,  80,  5, 4)        \
    X(FDIV,       "FDIV",       X87,  Div,       Scalar,  80, 24, 4)        \
    X(FSQRT,      "FSQRT",      X87,  Sqrt,      Scalar,  80, 27, 4)        \
    X(FSIN,       "FSIN",       X87,  Transcend, Scalar,  80, 90, 4)        \
    X(FCOS,       "FCOS",       X87,  Transcend, Scalar,  80, 90, 4)        \
    X(FPREM,      "FPREM",      X87,  Transcend, Scalar,  80, 25, 4)        \
    X(FCOMI,      "FCOMI",      X87,  Compare,   Scalar,  80,  2, 4)        \
    /* --- SSE scalar FP -------------------------------------------------*/\
    X(MOVSS,      "MOVSS",      Sse,  Move,      Scalar,  32,  1, 6)        \
    X(MOVSD_X,    "MOVSD_X",    Sse,  Move,      Scalar,  64,  1, 6)        \
    X(ADDSS,      "ADDSS",      Sse,  Alu,       Scalar,  32,  3, 6)        \
    X(ADDSD,      "ADDSD",      Sse,  Alu,       Scalar,  64,  3, 6)        \
    X(SUBSS,      "SUBSS",      Sse,  Alu,       Scalar,  32,  3, 6)        \
    X(SUBSD,      "SUBSD",      Sse,  Alu,       Scalar,  64,  3, 6)        \
    X(MULSS,      "MULSS",      Sse,  Mul,       Scalar,  32,  5, 6)        \
    X(MULSD,      "MULSD",      Sse,  Mul,       Scalar,  64,  5, 6)        \
    X(DIVSS,      "DIVSS",      Sse,  Div,       Scalar,  32, 13, 6)        \
    X(DIVSD,      "DIVSD",      Sse,  Div,       Scalar,  64, 20, 6)        \
    X(SQRTSS,     "SQRTSS",     Sse,  Sqrt,      Scalar,  32, 13, 6)        \
    X(SQRTSD,     "SQRTSD",     Sse,  Sqrt,      Scalar,  64, 20, 6)        \
    X(COMISS,     "COMISS",     Sse,  Compare,   Scalar,  32,  2, 6)        \
    X(UCOMISD,    "UCOMISD",    Sse,  Compare,   Scalar,  64,  2, 6)        \
    X(CVTSI2SD,   "CVTSI2SD",   Sse,  Convert,   Scalar,  64,  4, 6)        \
    X(CVTSD2SI,   "CVTSD2SI",   Sse,  Convert,   Scalar,  64,  4, 6)        \
    X(CVTSS2SD,   "CVTSS2SD",   Sse,  Convert,   Scalar,  64,  2, 6)        \
    X(CVTTSD2SI,  "CVTTSD2SI",  Sse,  Convert,   Scalar,  64,  4, 6)        \
    /* --- SSE packed FP --------------------------------------------------*/\
    X(MOVAPS,     "MOVAPS",     Sse,  Move,      Packed, 128,  1, 6)        \
    X(MOVUPS,     "MOVUPS",     Sse,  Move,      Packed, 128,  1, 6)        \
    X(ADDPS,      "ADDPS",      Sse,  Alu,       Packed, 128,  3, 6)        \
    X(ADDPD,      "ADDPD",      Sse,  Alu,       Packed, 128,  3, 6)        \
    X(SUBPS,      "SUBPS",      Sse,  Alu,       Packed, 128,  3, 6)        \
    X(SUBPD,      "SUBPD",      Sse,  Alu,       Packed, 128,  3, 6)        \
    X(MULPS,      "MULPS",      Sse,  Mul,       Packed, 128,  5, 6)        \
    X(MULPD,      "MULPD",      Sse,  Mul,       Packed, 128,  5, 6)        \
    X(DIVPS,      "DIVPS",      Sse,  Div,       Packed, 128, 13, 6)        \
    X(DIVPD,      "DIVPD",      Sse,  Div,       Packed, 128, 20, 6)        \
    X(SQRTPS,     "SQRTPS",     Sse,  Sqrt,      Packed, 128, 13, 6)        \
    X(RSQRTPS,    "RSQRTPS",    Sse,  Sqrt,      Packed, 128,  5, 6)        \
    X(XORPS,      "XORPS",      Sse,  Logic,     Packed, 128,  1, 6)        \
    X(ANDPS,      "ANDPS",      Sse,  Logic,     Packed, 128,  1, 6)        \
    X(ORPS,       "ORPS",       Sse,  Logic,     Packed, 128,  1, 6)        \
    X(CMPPS,      "CMPPS",      Sse,  Compare,   Packed, 128,  3, 6)        \
    X(SHUFPS,     "SHUFPS",     Sse,  Shuffle,   Packed, 128,  1, 6)        \
    X(UNPCKLPS,   "UNPCKLPS",   Sse,  Shuffle,   Packed, 128,  1, 6)        \
    X(MAXPS,      "MAXPS",      Sse,  Alu,       Packed, 128,  3, 6)        \
    X(MINPS,      "MINPS",      Sse,  Alu,       Packed, 128,  3, 6)        \
    X(HADDPS,     "HADDPS",     Sse,  Alu,       Packed, 128,  5, 6)        \
    /* --- SSE integer -----------------------------------------------------*/\
    X(MOVDQA,     "MOVDQA",     Sse,  Move,      Packed, 128,  1, 6)        \
    X(MOVDQU,     "MOVDQU",     Sse,  Move,      Packed, 128,  1, 6)        \
    X(PADDD,      "PADDD",      Sse,  Alu,       Packed, 128,  1, 6)        \
    X(PSUBD,      "PSUBD",      Sse,  Alu,       Packed, 128,  1, 6)        \
    X(PMULLD,     "PMULLD",     Sse,  Mul,       Packed, 128,  5, 6)        \
    X(PAND,       "PAND",       Sse,  Logic,     Packed, 128,  1, 6)        \
    X(POR,        "POR",        Sse,  Logic,     Packed, 128,  1, 6)        \
    X(PXOR,       "PXOR",       Sse,  Logic,     Packed, 128,  1, 6)        \
    X(PSLLD,      "PSLLD",      Sse,  Shift,     Packed, 128,  1, 6)        \
    X(PSRLD,      "PSRLD",      Sse,  Shift,     Packed, 128,  1, 6)        \
    X(PCMPEQD,    "PCMPEQD",    Sse,  Compare,   Packed, 128,  1, 6)        \
    X(PSHUFD,     "PSHUFD",     Sse,  Shuffle,   Packed, 128,  1, 6)        \
    X(PUNPCKLDQ,  "PUNPCKLDQ",  Sse,  Shuffle,   Packed, 128,  1, 6)        \
    X(PMOVMSKB,   "PMOVMSKB",   Sse,  Move,      Packed, 128,  2, 6)        \
    /* --- AVX float --------------------------------------------------------*/\
    X(VMOVSS,     "VMOVSS",     Avx,  Move,      Scalar,  32,  1, 7)        \
    X(VADDSS,     "VADDSS",     Avx,  Alu,       Scalar,  32,  3, 7)        \
    X(VMULSS,     "VMULSS",     Avx,  Mul,       Scalar,  32,  5, 7)        \
    X(VDIVSS,     "VDIVSS",     Avx,  Div,       Scalar,  32, 13, 7)        \
    X(VSQRTSS,    "VSQRTSS",    Avx,  Sqrt,      Scalar,  32, 13, 7)        \
    X(VCVTSI2SS,  "VCVTSI2SS",  Avx,  Convert,   Scalar,  32,  4, 7)        \
    X(VFMADD231SS,"VFMADD231SS",Avx,  Mul,       Scalar,  32,  5, 7)        \
    X(VMOVAPS,    "VMOVAPS",    Avx,  Move,      Packed, 256,  1, 7)        \
    X(VMOVUPS,    "VMOVUPS",    Avx,  Move,      Packed, 256,  1, 7)        \
    X(VADDPS,     "VADDPS",     Avx,  Alu,       Packed, 256,  3, 7)        \
    X(VSUBPS,     "VSUBPS",     Avx,  Alu,       Packed, 256,  3, 7)        \
    X(VMULPS,     "VMULPS",     Avx,  Mul,       Packed, 256,  5, 7)        \
    X(VDIVPS,     "VDIVPS",     Avx,  Div,       Packed, 256, 21, 7)        \
    X(VSQRTPS,    "VSQRTPS",    Avx,  Sqrt,      Packed, 256, 19, 7)        \
    X(VXORPS,     "VXORPS",     Avx,  Logic,     Packed, 256,  1, 7)        \
    X(VANDPS,     "VANDPS",     Avx,  Logic,     Packed, 256,  1, 7)        \
    X(VMAXPS,     "VMAXPS",     Avx,  Alu,       Packed, 256,  3, 7)        \
    X(VMINPS,     "VMINPS",     Avx,  Alu,       Packed, 256,  3, 7)        \
    X(VCMPPS,     "VCMPPS",     Avx,  Compare,   Packed, 256,  3, 7)        \
    X(VSHUFPS,    "VSHUFPS",    Avx,  Shuffle,   Packed, 256,  1, 7)        \
    X(VBLENDVPS,  "VBLENDVPS",  Avx,  Shuffle,   Packed, 256,  2, 7)        \
    X(VBROADCASTSS,"VBROADCASTSS",Avx,Shuffle,   Packed, 256,  1, 7)        \
    X(VINSERTF128,"VINSERTF128",Avx,  Shuffle,   Packed, 256,  3, 7)        \
    X(VEXTRACTF128,"VEXTRACTF128",Avx,Shuffle,   Packed, 256,  3, 7)        \
    X(VPERM2F128, "VPERM2F128", Avx,  Shuffle,   Packed, 256,  3, 7)        \
    X(VHADDPS,    "VHADDPS",    Avx,  Alu,       Packed, 256,  5, 7)        \
    X(VFMADD231PS,"VFMADD231PS",Avx,  Mul,       Packed, 256,  5, 7)        \
    X(VZEROUPPER, "VZEROUPPER", Avx,  System,    Packed, 256,  1, 7)        \
    X(VMOVD,      "VMOVD",      Avx,  Move,      None,    32,  1, 7)        \
    X(VMOVQ,      "VMOVQ",      Avx,  Move,      None,    64,  1, 7)        \
    /* --- AVX2 integer ------------------------------------------------------*/\
    X(VPADDD,     "VPADDD",     Avx2, Alu,       Packed, 256,  1, 7)        \
    X(VPSUBD,     "VPSUBD",     Avx2, Alu,       Packed, 256,  1, 7)        \
    X(VPMULLD,    "VPMULLD",    Avx2, Mul,       Packed, 256, 10, 7)        \
    X(VPAND,      "VPAND",      Avx2, Logic,     Packed, 256,  1, 7)        \
    X(VPXOR,      "VPXOR",      Avx2, Logic,     Packed, 256,  1, 7)        \
    X(VPSLLD,     "VPSLLD",     Avx2, Shift,     Packed, 256,  1, 7)        \
    X(VPCMPEQD,   "VPCMPEQD",   Avx2, Compare,   Packed, 256,  1, 7)        \
    X(VPSHUFD,    "VPSHUFD",    Avx2, Shuffle,   Packed, 256,  1, 7)        \
    X(VPBROADCASTD,"VPBROADCASTD",Avx2,Shuffle,  Packed, 256,  1, 7)        \
    X(VPGATHERDD, "VPGATHERDD", Avx2, Gather,    Packed, 256, 14, 7)

/** All mnemonics of the synthetic ISA. */
enum class Mnemonic : uint16_t {
#define X(sym, name, ext, cat, pack, width, lat, bytes) sym,
    HBBP_MNEMONIC_LIST(X)
#undef X
    NumMnemonics
};

/** Number of mnemonics in the registry. */
constexpr size_t kNumMnemonics = static_cast<size_t>(Mnemonic::NumMnemonics);

/** Static attributes of a mnemonic. */
struct MnemonicInfo
{
    Mnemonic mnemonic;      ///< Back-reference.
    const char *name;       ///< Printable mnemonic string.
    IsaExt ext;             ///< ISA extension.
    Category category;      ///< Functional category.
    Packing packing;        ///< SIMD packing attribute.
    uint16_t width_bits;    ///< Operand width in bits (0 for NOP).
    uint16_t latency;       ///< Retirement latency class in cycles.
    uint8_t default_bytes;  ///< Default encoded length in bytes.

    /** Any control transfer (jumps, calls, returns). */
    bool isControl() const;

    /** Control transfer that is architecturally always taken. */
    bool isAlwaysTaken() const;

    /** A conditional direct branch. */
    bool isCondBranch() const;

    /** Direct control transfer that encodes a displacement. */
    bool hasDisplacement() const;

    /** Call of either kind. */
    bool isCall() const;

    /** Long-latency instruction per the PMU shadowing model. */
    bool isLongLatency() const;
};

/** Latency at or above which an instruction counts as long-latency. */
constexpr uint16_t kLongLatencyThreshold = 12;

/** Attribute lookup; panics on out-of-range values. */
const MnemonicInfo &info(Mnemonic m);

/** Printable name of @p m. */
const char *name(Mnemonic m);

/** Reverse lookup by name; std::nullopt when unknown. */
std::optional<Mnemonic> mnemonicFromName(const std::string &name);

/** Printable name of an ISA extension. */
const char *name(IsaExt ext);

/** Printable name of a category. */
const char *name(Category cat);

/** Printable name of a packing attribute. */
const char *name(Packing packing);

} // namespace hbbp

#endif // HBBP_ISA_MNEMONIC_HH
