/**
 * @file
 * User-definable instruction taxonomies.
 *
 * Section V.B of the paper describes custom instruction groups such as
 * "long latency instructions" (DIV, SQRT, XCHG r,m) or "synchronization
 * instructions" (XADD, LOCK variants) that mix static attributes with
 * explicit mnemonic lists. Taxonomy provides exactly that: named groups
 * defined either by an explicit mnemonic set or by a predicate over
 * MnemonicInfo, with overlapping membership allowed.
 */

#ifndef HBBP_ISA_TAXONOMY_HH
#define HBBP_ISA_TAXONOMY_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/mnemonic.hh"

namespace hbbp {

/** A named, user-defined grouping of mnemonics. */
class Taxonomy
{
  public:
    using Predicate = std::function<bool(const MnemonicInfo &)>;

    /** Define a group from an explicit mnemonic list. */
    void addGroup(const std::string &group,
                  const std::vector<Mnemonic> &members);

    /** Define a group from a predicate over static attributes. */
    void addGroup(const std::string &group, Predicate predicate);

    /** All groups @p m belongs to, in definition order. */
    std::vector<std::string> groupsOf(Mnemonic m) const;

    /** True when @p m belongs to @p group. */
    bool isIn(Mnemonic m, const std::string &group) const;

    /** All mnemonics belonging to @p group. */
    std::vector<Mnemonic> membersOf(const std::string &group) const;

    /** Names of all defined groups, in definition order. */
    std::vector<std::string> groupNames() const;

    /**
     * The default taxonomy from the paper's examples: long-latency,
     * synchronization, memory-read, memory-write-capable, vector-packed,
     * vector-scalar and control-transfer groups.
     */
    static Taxonomy standard();

  private:
    struct Group
    {
        std::string name;
        Predicate predicate;
    };

    std::vector<Group> groups_;
};

} // namespace hbbp

#endif // HBBP_ISA_TAXONOMY_HH
