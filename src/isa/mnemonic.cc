#include "isa/mnemonic.hh"

#include <array>
#include <unordered_map>

#include "support/logging.hh"

namespace hbbp {

namespace {

constexpr std::array<MnemonicInfo, kNumMnemonics> kMnemonicTable = {{
#define X(sym, nm, ext, cat, pack, width, lat, bytes)                       \
    MnemonicInfo{Mnemonic::sym, nm, IsaExt::ext, Category::cat,             \
                 Packing::pack, width, lat, bytes},
    HBBP_MNEMONIC_LIST(X)
#undef X
}};

} // namespace

bool
MnemonicInfo::isControl() const
{
    // SYSCALL/SYSRET are far control transfers: they end basic blocks,
    // retire as taken branches and appear in the LBR, even though their
    // category is System.
    if (mnemonic == Mnemonic::SYSCALL || mnemonic == Mnemonic::SYSRET)
        return true;
    switch (category) {
      case Category::CondBranch:
      case Category::UncondBranch:
      case Category::IndirectBranch:
      case Category::Call:
      case Category::IndirectCall:
      case Category::Ret:
        return true;
      default:
        return false;
    }
}

bool
MnemonicInfo::isAlwaysTaken() const
{
    return isControl() && category != Category::CondBranch;
}

bool
MnemonicInfo::isCondBranch() const
{
    return category == Category::CondBranch;
}

bool
MnemonicInfo::hasDisplacement() const
{
    return category == Category::CondBranch ||
           category == Category::UncondBranch ||
           category == Category::Call;
}

bool
MnemonicInfo::isCall() const
{
    return category == Category::Call || category == Category::IndirectCall;
}

bool
MnemonicInfo::isLongLatency() const
{
    return latency >= kLongLatencyThreshold;
}

const MnemonicInfo &
info(Mnemonic m)
{
    auto idx = static_cast<size_t>(m);
    if (idx >= kNumMnemonics)
        panic("info(): mnemonic id %zu out of range", idx);
    return kMnemonicTable[idx];
}

const char *
name(Mnemonic m)
{
    return info(m).name;
}

std::optional<Mnemonic>
mnemonicFromName(const std::string &name)
{
    static const std::unordered_map<std::string, Mnemonic> kByName = [] {
        std::unordered_map<std::string, Mnemonic> map;
        for (const auto &mi : kMnemonicTable)
            map.emplace(mi.name, mi.mnemonic);
        return map;
    }();
    auto it = kByName.find(name);
    if (it == kByName.end())
        return std::nullopt;
    return it->second;
}

const char *
name(IsaExt ext)
{
    switch (ext) {
      case IsaExt::Base: return "BASE";
      case IsaExt::X87: return "X87";
      case IsaExt::Sse: return "SSE";
      case IsaExt::Avx: return "AVX";
      case IsaExt::Avx2: return "AVX2";
      default: panic("name(): bad IsaExt %d", static_cast<int>(ext));
    }
}

const char *
name(Category cat)
{
    switch (cat) {
      case Category::Move: return "MOVE";
      case Category::Alu: return "ALU";
      case Category::Logic: return "LOGIC";
      case Category::Shift: return "SHIFT";
      case Category::Compare: return "COMPARE";
      case Category::Mul: return "MUL";
      case Category::Div: return "DIV";
      case Category::Sqrt: return "SQRT";
      case Category::Transcend: return "TRANSCEND";
      case Category::Convert: return "CONVERT";
      case Category::Stack: return "STACK";
      case Category::Shuffle: return "SHUFFLE";
      case Category::Gather: return "GATHER";
      case Category::CondBranch: return "COND_BRANCH";
      case Category::UncondBranch: return "UNCOND_BRANCH";
      case Category::IndirectBranch: return "INDIRECT_BRANCH";
      case Category::Call: return "CALL";
      case Category::IndirectCall: return "INDIRECT_CALL";
      case Category::Ret: return "RET";
      case Category::Nop: return "NOP";
      case Category::Sync: return "SYNC";
      case Category::System: return "SYSTEM";
      default: panic("name(): bad Category %d", static_cast<int>(cat));
    }
}

const char *
name(Packing packing)
{
    switch (packing) {
      case Packing::None: return "NONE";
      case Packing::Scalar: return "SCALAR";
      case Packing::Packed: return "PACKED";
      default: panic("name(): bad Packing %d", static_cast<int>(packing));
    }
}

} // namespace hbbp
