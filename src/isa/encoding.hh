/**
 * @file
 * Byte-level instruction encoding and decoding.
 *
 * This is the repository's stand-in for a real machine encoding plus the
 * XED decoder the paper's analyzer uses. The format is synthetic but has
 * the properties the experiments depend on: variable lengths (4..15
 * bytes), explicit displacements for direct control transfers, and the
 * ability to overwrite a branch with a same-length NOP (the kernel
 * self-modifying-code experiment).
 *
 * Layout (little-endian):
 *   byte 0..1  mnemonic id
 *   byte 2     flags: bit0 mem_read, bit1 mem_write
 *   byte 3     total encoded length in bytes
 *   byte 4..7  int32 displacement (only for direct transfers)
 *   rest       zero padding up to the declared length
 */

#ifndef HBBP_ISA_ENCODING_HH
#define HBBP_ISA_ENCODING_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/instruction.hh"

namespace hbbp {

/** Append the encoding of @p instr to @p out. Panics on invalid fields. */
void encode(const Instruction &instr, std::vector<uint8_t> &out);

/** Encode a whole instruction sequence. */
std::vector<uint8_t> encodeAll(const std::vector<Instruction> &instrs);

/** Result of decoding one instruction. */
struct DecodeResult
{
    Instruction instr;   ///< Decoded instruction, addr filled from input.
    uint64_t next_addr;  ///< Address just past the instruction.
};

/**
 * Decode a single instruction.
 *
 * @param bytes      full code image of the enclosing region
 * @param offset     byte offset of the instruction within @p bytes
 * @param base_addr  virtual address of bytes[0]
 * @return the decoded instruction, or std::nullopt on malformed input
 */
std::optional<DecodeResult> decodeOne(const std::vector<uint8_t> &bytes,
                                      size_t offset, uint64_t base_addr);

/**
 * Decode a full region, stopping at the first malformed instruction.
 *
 * @param bytes      code image
 * @param base_addr  virtual address of bytes[0]
 */
std::vector<Instruction> decodeAll(const std::vector<uint8_t> &bytes,
                                   uint64_t base_addr);

/**
 * Overwrite the instruction at @p offset with a same-length NOP in place.
 *
 * Used to model the Linux kernel patching tracepoint jumps to NOPs at
 * boot. Panics if there is no valid instruction at @p offset.
 */
void patchToNop(std::vector<uint8_t> &bytes, size_t offset);

} // namespace hbbp

#endif // HBBP_ISA_ENCODING_HH
