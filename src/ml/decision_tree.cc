#include "ml/decision_tree.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "support/logging.hh"
#include "support/strings.hh"

namespace hbbp {

double
giniImpurity(const std::vector<double> &class_weights)
{
    double total = 0.0;
    for (double w : class_weights)
        total += w;
    if (total <= 0.0)
        return 0.0;
    double sum_sq = 0.0;
    for (double w : class_weights) {
        double p = w / total;
        sum_sq += p * p;
    }
    return 1.0 - sum_sq;
}

namespace {

/** Class-weight histogram over a range of dataset indices. */
std::vector<double>
classWeights(const Dataset &data, const std::vector<size_t> &indices,
             size_t begin, size_t end, int class_count)
{
    std::vector<double> weights(static_cast<size_t>(class_count), 0.0);
    for (size_t i = begin; i < end; i++)
        weights[static_cast<size_t>(data.label(indices[i]))] +=
            data.weight(indices[i]);
    return weights;
}

int
majorityClass(const std::vector<double> &class_weights)
{
    int best = 0;
    for (size_t c = 1; c < class_weights.size(); c++)
        if (class_weights[c] > class_weights[best])
            best = static_cast<int>(c);
    return best;
}

} // namespace

void
DecisionTree::fit(const Dataset &data, const TreeConfig &config)
{
    if (data.size() == 0)
        fatal("DecisionTree::fit: empty dataset");
    config_ = config;
    feature_count_ = data.featureCount();
    class_count_ = std::max(data.classCount(), 1);
    nodes_.clear();

    std::vector<size_t> indices(data.size());
    for (size_t i = 0; i < data.size(); i++)
        indices[i] = i;
    build(data, indices, 0, data.size(), 0);
}

int
DecisionTree::build(const Dataset &data, std::vector<size_t> &indices,
                    size_t begin, size_t end, size_t depth)
{
    Node node;
    node.class_weights =
        classWeights(data, indices, begin, end, class_count_);
    node.gini = giniImpurity(node.class_weights);
    node.samples = end - begin;
    for (double w : node.class_weights)
        node.weight += w;
    node.prediction = majorityClass(node.class_weights);

    int node_id = static_cast<int>(nodes_.size());
    nodes_.push_back(node);

    bool can_split = depth < config_.max_depth && node.gini > 0.0 &&
                     node.samples >= 2 * config_.min_samples_leaf;
    if (!can_split)
        return node_id;

    // Exhaustive search for the best (feature, threshold) split by
    // weighted Gini decrease.
    int best_feature = -1;
    double best_threshold = 0.0;
    double best_decrease = config_.min_impurity_decrease;
    size_t best_split_pos = 0;

    std::vector<size_t> sorted(indices.begin() +
                                   static_cast<ptrdiff_t>(begin),
                               indices.begin() +
                                   static_cast<ptrdiff_t>(end));
    const double parent_weight = node.weight;

    for (size_t f = 0; f < feature_count_; f++) {
        std::sort(sorted.begin(), sorted.end(),
                  [&](size_t a, size_t b) {
                      return data.x(a, f) < data.x(b, f);
                  });
        std::vector<double> left(static_cast<size_t>(class_count_), 0.0);
        std::vector<double> right = node.class_weights;
        double left_weight = 0.0;
        double right_weight = parent_weight;

        for (size_t pos = 1; pos < sorted.size(); pos++) {
            size_t prev = sorted[pos - 1];
            double w = data.weight(prev);
            size_t cls = static_cast<size_t>(data.label(prev));
            left[cls] += w;
            right[cls] -= w;
            left_weight += w;
            right_weight -= w;

            double prev_x = data.x(prev, f);
            double cur_x = data.x(sorted[pos], f);
            if (cur_x <= prev_x)
                continue; // no threshold separates equal values
            if (pos < config_.min_samples_leaf ||
                sorted.size() - pos < config_.min_samples_leaf)
                continue;
            if (left_weight < config_.min_weight_leaf ||
                right_weight < config_.min_weight_leaf)
                continue;

            double child_impurity =
                (left_weight * giniImpurity(left) +
                 right_weight * giniImpurity(right)) / parent_weight;
            double decrease = nodes_[static_cast<size_t>(node_id)].gini -
                              child_impurity;
            if (decrease > best_decrease) {
                best_decrease = decrease;
                best_feature = static_cast<int>(f);
                best_threshold = (prev_x + cur_x) / 2.0;
                best_split_pos = pos;
            }
        }
    }

    if (best_feature < 0)
        return node_id;
    (void)best_split_pos;

    // Partition the index range in place on the winning split.
    auto mid_it = std::stable_partition(
        indices.begin() + static_cast<ptrdiff_t>(begin),
        indices.begin() + static_cast<ptrdiff_t>(end), [&](size_t i) {
            return data.x(i, static_cast<size_t>(best_feature)) <=
                   best_threshold;
        });
    size_t mid = static_cast<size_t>(mid_it - indices.begin());
    if (mid == begin || mid == end)
        return node_id; // should not happen; defensive

    nodes_[static_cast<size_t>(node_id)].feature = best_feature;
    nodes_[static_cast<size_t>(node_id)].threshold = best_threshold;
    int left_id = build(data, indices, begin, mid, depth + 1);
    nodes_[static_cast<size_t>(node_id)].left = left_id;
    int right_id = build(data, indices, mid, end, depth + 1);
    nodes_[static_cast<size_t>(node_id)].right = right_id;
    return node_id;
}

int
DecisionTree::predict(const std::vector<double> &x) const
{
    if (nodes_.empty())
        panic("DecisionTree::predict called before fit");
    if (x.size() != feature_count_)
        panic("DecisionTree::predict: %zu features, expected %zu",
              x.size(), feature_count_);
    size_t cur = 0;
    for (;;) {
        const Node &node = nodes_[cur];
        if (node.isLeaf())
            return node.prediction;
        cur = static_cast<size_t>(
            x[static_cast<size_t>(node.feature)] <= node.threshold
                ? node.left : node.right);
    }
}

std::vector<double>
DecisionTree::featureImportances() const
{
    std::vector<double> importances(feature_count_, 0.0);
    double root_weight = nodes_.empty() ? 0.0 : nodes_[0].weight;
    if (root_weight <= 0.0)
        return importances;
    for (const Node &node : nodes_) {
        if (node.isLeaf())
            continue;
        const Node &left = nodes_[static_cast<size_t>(node.left)];
        const Node &right = nodes_[static_cast<size_t>(node.right)];
        double decrease =
            node.weight * node.gini -
            left.weight * left.gini - right.weight * right.gini;
        importances[static_cast<size_t>(node.feature)] +=
            decrease / root_weight;
    }
    double total = 0.0;
    for (double imp : importances)
        total += imp;
    if (total > 0.0)
        for (double &imp : importances)
            imp /= total;
    return importances;
}

size_t
DecisionTree::depth() const
{
    // Iterative depth computation over the implicit tree structure.
    size_t max_depth = 0;
    std::vector<std::pair<size_t, size_t>> stack;
    if (nodes_.empty())
        return 0;
    stack.push_back({0, 0});
    while (!stack.empty()) {
        auto [id, d] = stack.back();
        stack.pop_back();
        max_depth = std::max(max_depth, d);
        const Node &node = nodes_[id];
        if (!node.isLeaf()) {
            stack.push_back({static_cast<size_t>(node.left), d + 1});
            stack.push_back({static_cast<size_t>(node.right), d + 1});
        }
    }
    return max_depth;
}

size_t
DecisionTree::leafCount() const
{
    size_t n = 0;
    for (const Node &node : nodes_)
        if (node.isLeaf())
            n++;
    return n;
}

namespace {

std::string
className(const std::vector<std::string> &class_names, int cls)
{
    if (cls >= 0 && static_cast<size_t>(cls) < class_names.size())
        return class_names[static_cast<size_t>(cls)];
    return format("class_%d", cls);
}

} // namespace

std::string
DecisionTree::toText(const std::vector<std::string> &feature_names,
                     const std::vector<std::string> &class_names) const
{
    std::string out;
    // Recursive lambda via explicit stack of (node, depth, prefix).
    std::function<void(size_t, size_t)> emit = [&](size_t id,
                                                   size_t depth) {
        const Node &node = nodes_[id];
        std::string indent(depth * 2, ' ');
        if (node.isLeaf()) {
            out += format("%sleaf: class=%s gini=%.3f samples=%zu "
                          "weight=%.3g\n", indent.c_str(),
                          className(class_names, node.prediction).c_str(),
                          node.gini, node.samples, node.weight);
            return;
        }
        std::string fname =
            static_cast<size_t>(node.feature) < feature_names.size()
                ? feature_names[static_cast<size_t>(node.feature)]
                : format("x[%d]", node.feature);
        out += format("%s%s <= %.3f ? (gini=%.3f samples=%zu)\n",
                      indent.c_str(), fname.c_str(), node.threshold,
                      node.gini, node.samples);
        emit(static_cast<size_t>(node.left), depth + 1);
        out += format("%selse:\n", indent.c_str());
        emit(static_cast<size_t>(node.right), depth + 1);
    };
    if (!nodes_.empty())
        emit(0, 0);
    return out;
}

std::string
DecisionTree::toDot(const std::vector<std::string> &feature_names,
                    const std::vector<std::string> &class_names) const
{
    std::string out = "digraph hbbp_tree {\n  node [shape=box];\n";
    for (size_t id = 0; id < nodes_.size(); id++) {
        const Node &node = nodes_[id];
        std::string label;
        if (node.isLeaf()) {
            label = format("class = %s\\ngini = %.3f\\nsamples = %zu",
                           className(class_names, node.prediction).c_str(),
                           node.gini, node.samples);
        } else {
            std::string fname =
                static_cast<size_t>(node.feature) < feature_names.size()
                    ? feature_names[static_cast<size_t>(node.feature)]
                    : format("x[%d]", node.feature);
            label = format("%s <= %.3f\\ngini = %.3f\\nsamples = %zu",
                           fname.c_str(), node.threshold, node.gini,
                           node.samples);
        }
        out += format("  n%zu [label=\"%s\"];\n", id, label.c_str());
        if (!node.isLeaf()) {
            out += format("  n%zu -> n%d [label=\"true\"];\n", id,
                          node.left);
            out += format("  n%zu -> n%d [label=\"false\"];\n", id,
                          node.right);
        }
    }
    out += "}\n";
    return out;
}

} // namespace hbbp
