#include "ml/trainer.hh"

#include "analysis/error.hh"
#include "support/logging.hh"

namespace hbbp {

TreeClassifier::TreeClassifier(std::shared_ptr<const DecisionTree> tree)
    : tree_(std::move(tree))
{
    if (!tree_ || !tree_->fitted())
        panic("TreeClassifier requires a fitted tree");
}

BbecSource
TreeClassifier::choose(const BlockFeatures &features) const
{
    return tree_->predict(features.toVector()) == kLabelEbs
               ? BbecSource::Ebs : BbecSource::Lbr;
}

std::string
TreeClassifier::describe() const
{
    return format("decision tree (depth %zu, %zu leaves)",
                  tree_->depth(), tree_->leafCount());
}

HbbpTrainer::HbbpTrainer(const Profiler &profiler, TrainerOptions opts)
    : profiler_(profiler), opts_(opts)
{
}

std::vector<LabeledBlock>
HbbpTrainer::labelBlocks(const Workload &w) const
{
    ProfiledRun run = profiler_.run(w);
    AnalysisResult analysis = profiler_.analyze(w, run.profile);

    std::vector<double> truth =
        trueMapBbec(analysis.map, run.true_bbec_by_addr);

    std::vector<LabeledBlock> out;
    for (uint32_t i = 0; i < analysis.map.blocks().size(); i++) {
        double ref = truth[i];
        if (ref < opts_.min_true_count)
            continue;
        const MapBlock &blk = analysis.map.block(i);
        LabeledBlock lb;
        lb.features = analysis.features[i];
        lb.true_count = ref;
        lb.ebs_error = blockError(ref, analysis.estimates.ebs[i]);
        lb.lbr_error = blockError(ref, analysis.estimates.lbr[i]);
        lb.label = lb.ebs_error < lb.lbr_error ? kLabelEbs : kLabelLbr;
        lb.weight = ref * static_cast<double>(blk.size());
        lb.workload = w.name;
        lb.addr = blk.start;
        out.push_back(lb);
    }
    return out;
}

std::vector<LabeledBlock>
HbbpTrainer::labelBlocks(const std::vector<Workload> &ws) const
{
    std::vector<LabeledBlock> out;
    for (const Workload &w : ws) {
        std::vector<LabeledBlock> part = labelBlocks(w);
        out.insert(out.end(), part.begin(), part.end());
    }
    return out;
}

Dataset
HbbpTrainer::makeDataset(const std::vector<LabeledBlock> &blocks)
{
    Dataset data(featureNames());
    for (const LabeledBlock &lb : blocks)
        data.add(lb.features.toVector(), lb.label, lb.weight);
    return data;
}

DecisionTree
HbbpTrainer::fitTree(const std::vector<LabeledBlock> &blocks) const
{
    if (blocks.empty())
        fatal("HbbpTrainer::fitTree: no training examples — lower "
              "min_true_count or use hotter workloads");
    Dataset data = makeDataset(blocks);
    DecisionTree tree;
    tree.fit(data, opts_.tree);
    return tree;
}

double
HbbpTrainer::rootLengthCutoff(const DecisionTree &tree)
{
    if (!tree.fitted() || tree.nodes().empty())
        return -1.0;
    const DecisionTree::Node &root = tree.nodes().front();
    if (root.isLeaf() || root.feature != 0)
        return -1.0; // feature 0 is block_length
    return root.threshold;
}

std::vector<std::string>
HbbpTrainer::classNames()
{
    return {"EBS", "LBR"};
}

std::vector<std::string>
HbbpTrainer::featureNames()
{
    std::vector<std::string> names;
    for (size_t i = 0; i < BlockFeatures::kCount; i++)
        names.emplace_back(BlockFeatures::featureName(i));
    return names;
}

} // namespace hbbp
