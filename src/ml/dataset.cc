#include "ml/dataset.hh"

#include <algorithm>

#include "support/logging.hh"

namespace hbbp {

Dataset::Dataset(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names))
{
    if (feature_names_.empty())
        panic("Dataset: at least one feature required");
}

void
Dataset::add(const std::vector<double> &x, int label, double weight)
{
    if (x.size() != feature_names_.size())
        panic("Dataset::add: %zu features, expected %zu", x.size(),
              feature_names_.size());
    if (label < 0)
        panic("Dataset::add: negative label %d", label);
    if (weight <= 0.0)
        panic("Dataset::add: non-positive weight %f", weight);
    rows_.push_back(x);
    labels_.push_back(label);
    weights_.push_back(weight);
    num_classes_ = std::max(num_classes_, label + 1);
}

double
Dataset::totalWeight() const
{
    double total = 0.0;
    for (double w : weights_)
        total += w;
    return total;
}

} // namespace hbbp
