/**
 * @file
 * Tabular dataset for the classification tree.
 */

#ifndef HBBP_ML_DATASET_HH
#define HBBP_ML_DATASET_HH

#include <cstddef>
#include <string>
#include <vector>

namespace hbbp {

/** A weighted, labelled feature matrix. */
class Dataset
{
  public:
    /** @param feature_names column names, defining the width. */
    explicit Dataset(std::vector<std::string> feature_names);

    /** Append one example; @p x must match the feature count. */
    void add(const std::vector<double> &x, int label, double weight = 1.0);

    /** Number of examples. */
    size_t size() const { return labels_.size(); }

    /** Number of features. */
    size_t featureCount() const { return feature_names_.size(); }

    /** Number of distinct classes (max label + 1). */
    int classCount() const { return num_classes_; }

    /** Feature @p f of example @p i. */
    double x(size_t i, size_t f) const { return rows_[i][f]; }

    /** Label of example @p i. */
    int label(size_t i) const { return labels_[i]; }

    /** Weight of example @p i. */
    double weight(size_t i) const { return weights_[i]; }

    /** Column names. */
    const std::vector<std::string> &featureNames() const
    {
        return feature_names_;
    }

    /** Sum of all weights. */
    double totalWeight() const;

  private:
    std::vector<std::string> feature_names_;
    std::vector<std::vector<double>> rows_;
    std::vector<int> labels_;
    std::vector<double> weights_;
    int num_classes_ = 0;
};

} // namespace hbbp

#endif // HBBP_ML_DATASET_HH
