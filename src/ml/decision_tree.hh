/**
 * @file
 * CART classification trees (Breiman et al. 1984).
 *
 * The paper uses scikit-learn classification trees to formalize the HBBP
 * selection rule; this is the equivalent implementation: binary splits
 * minimizing weighted Gini impurity, sample weights, depth and leaf-size
 * controls, feature importances (normalized total impurity decrease) and
 * scikit-style text / Graphviz DOT export for Figure 1.
 */

#ifndef HBBP_ML_DECISION_TREE_HH
#define HBBP_ML_DECISION_TREE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dataset.hh"

namespace hbbp {

/** Tree growth controls. */
struct TreeConfig
{
    size_t max_depth = 3;            ///< Root is depth 0.
    size_t min_samples_leaf = 8;     ///< Minimum examples per leaf.
    double min_weight_leaf = 0.0;    ///< Minimum total weight per leaf.
    double min_impurity_decrease = 1e-4; ///< Gate on split usefulness.
};

/** A fitted classification tree. */
class DecisionTree
{
  public:
    /** One node; leaves have feature == -1. */
    struct Node
    {
        int feature = -1;      ///< Split feature index (-1 for leaves).
        double threshold = 0.0;///< Split: x[feature] <= threshold -> left.
        int left = -1;
        int right = -1;
        int prediction = 0;    ///< Majority class of node samples.
        double gini = 0.0;     ///< Node impurity.
        double weight = 0.0;   ///< Total sample weight in node.
        size_t samples = 0;    ///< Unweighted sample count.
        std::vector<double> class_weights; ///< Per-class weight in node.

        bool isLeaf() const { return feature < 0; }
    };

    /** Fit on @p data with the given config. */
    void fit(const Dataset &data, const TreeConfig &config = {});

    /** Predict the class of one feature vector. */
    int predict(const std::vector<double> &x) const;

    /**
     * Normalized feature importances (impurity-decrease based; sums to 1
     * when any split exists).
     */
    std::vector<double> featureImportances() const;

    /** All nodes; node 0 is the root. */
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Depth of the fitted tree (root = 0; empty tree = 0). */
    size_t depth() const;

    /** Number of leaves. */
    size_t leafCount() const;

    /** scikit-learn-style text rendering (gini, samples, class). */
    std::string toText(const std::vector<std::string> &feature_names,
                       const std::vector<std::string> &class_names) const;

    /** Graphviz DOT rendering. */
    std::string toDot(const std::vector<std::string> &feature_names,
                      const std::vector<std::string> &class_names) const;

    /** True once fit() succeeded. */
    bool fitted() const { return !nodes_.empty(); }

  private:
    int build(const Dataset &data, std::vector<size_t> &indices,
              size_t begin, size_t end, size_t depth);

    TreeConfig config_;
    size_t feature_count_ = 0;
    int class_count_ = 0;
    std::vector<Node> nodes_;
};

/** Weighted Gini impurity of a class-weight histogram. */
double giniImpurity(const std::vector<double> &class_weights);

} // namespace hbbp

#endif // HBBP_ML_DECISION_TREE_HH
