/**
 * @file
 * HBBP criteria search (Section IV.B of the paper).
 *
 * The trainer runs the full tool on training workloads, labels each
 * sufficiently-hot basic block "EBS" or "LBR" depending on which
 * estimate was closer to the software-instrumentation ground truth,
 * weights each example by its executed instruction volume, and fits a
 * classification tree on the BlockFeatures vector. The paper trains on
 * ~1,100 basic blocks of non-SPEC input and consistently finds block
 * instruction length dominating with a cutoff near 18.
 */

#ifndef HBBP_ML_TRAINER_HH
#define HBBP_ML_TRAINER_HH

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.hh"
#include "ml/decision_tree.hh"
#include "tools/profiler.hh"

namespace hbbp {

/** Label encoding used throughout the trainer. */
constexpr int kLabelEbs = 0;
constexpr int kLabelLbr = 1;

/** One labelled training example (diagnostics retained). */
struct LabeledBlock
{
    BlockFeatures features;
    int label = kLabelLbr;   ///< kLabelEbs or kLabelLbr.
    double weight = 1.0;     ///< Executed instruction volume.
    std::string workload;    ///< Source workload name.
    uint64_t addr = 0;       ///< Block start address.
    double true_count = 0.0; ///< Ground-truth BBEC.
    double ebs_error = 0.0;  ///< |truth - EBS| / truth.
    double lbr_error = 0.0;  ///< |truth - LBR| / truth.
};

/** Trainer configuration. */
struct TrainerOptions
{
    /** Minimum ground-truth executions for a block to be usable. */
    double min_true_count = 800.0;
    /** Tree growth controls. */
    TreeConfig tree;
};

/** Adapter: a fitted tree as an HBBP classifier. */
class TreeClassifier : public HbbpClassifier
{
  public:
    explicit TreeClassifier(std::shared_ptr<const DecisionTree> tree);

    BbecSource choose(const BlockFeatures &features) const override;
    std::string describe() const override;

    const DecisionTree &tree() const { return *tree_; }

  private:
    std::shared_ptr<const DecisionTree> tree_;
};

/** Runs the criteria search. */
class HbbpTrainer
{
  public:
    /**
     * @param profiler the configured tool (its analyzer only supplies
     *                 estimation options; classification is what is
     *                 being learned)
     * @param opts     trainer knobs
     */
    HbbpTrainer(const Profiler &profiler, TrainerOptions opts = {});

    /** Extract labelled blocks from one workload. */
    std::vector<LabeledBlock> labelBlocks(const Workload &w) const;

    /** Extract labelled blocks from many workloads. */
    std::vector<LabeledBlock>
    labelBlocks(const std::vector<Workload> &ws) const;

    /** Build a Dataset from labelled blocks. */
    static Dataset makeDataset(const std::vector<LabeledBlock> &blocks);

    /** Fit the classification tree on labelled blocks. */
    DecisionTree fitTree(const std::vector<LabeledBlock> &blocks) const;

    /**
     * Convenience: the learned single-feature cutoff. Returns the root
     * threshold if the root splits on block_length, else -1.
     */
    static double rootLengthCutoff(const DecisionTree &tree);

    /** Class names for tree export, index-matched to labels. */
    static std::vector<std::string> classNames();

    /** Feature names, index-matched to BlockFeatures. */
    static std::vector<std::string> featureNames();

  private:
    const Profiler &profiler_;
    TrainerOptions opts_;
};

} // namespace hbbp

#endif // HBBP_ML_TRAINER_HH
