#include "instr/instrumenter.hh"

namespace hbbp {

Instrumenter::Instrumenter(const Program &prog, bool include_kernel)
    : prog_(prog), include_kernel_(include_kernel),
      bbec_(prog.blocks().size(), 0)
{
}

void
Instrumenter::onBlockEntry(const BasicBlock &blk, Ring ring)
{
    if (ring == Ring::Kernel && !include_kernel_)
        return;
    bbec_[blk.id]++;
}

std::unordered_map<uint64_t, uint64_t>
Instrumenter::bbecByAddr() const
{
    std::unordered_map<uint64_t, uint64_t> out;
    out.reserve(bbec_.size());
    for (const BasicBlock &blk : prog_.blocks())
        out.emplace(blk.start, bbec_[blk.id]);
    return out;
}

Counter<Mnemonic>
Instrumenter::mnemonicCounts() const
{
    Counter<Mnemonic> counts;
    for (const BasicBlock &blk : prog_.blocks()) {
        uint64_t n = bbec_[blk.id];
        if (n == 0)
            continue;
        for (const Instruction &instr : blk.instrs)
            counts.add(instr.mnemonic, static_cast<double>(n));
    }
    return counts;
}

uint64_t
Instrumenter::totalInstructions() const
{
    uint64_t total = 0;
    for (const BasicBlock &blk : prog_.blocks())
        total += bbec_[blk.id] * blk.instrs.size();
    return total;
}

} // namespace hbbp
