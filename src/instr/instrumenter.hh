/**
 * @file
 * Software instrumentation: the ground-truth observer.
 *
 * Stands in for Intel SDE / PIN. Counts exact basic block execution
 * counts and derives exact per-mnemonic instruction counts. Like the
 * real tools it observes user-mode code only — kernel blocks are
 * invisible to it, which is one of HBBP's selling points.
 */

#ifndef HBBP_INSTR_INSTRUMENTER_HH
#define HBBP_INSTR_INSTRUMENTER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "program/program.hh"
#include "sim/observer.hh"
#include "support/histogram.hh"

namespace hbbp {

/** Exact BBEC / instruction mix reference collector (user mode only). */
class Instrumenter : public ExecObserver
{
  public:
    /**
     * @param prog           program being profiled
     * @param include_kernel count ring-0 blocks too (OFF by default to
     *                       match PIN/SDE; the kernel-mix experiment
     *                       enables it to obtain a kernel reference)
     */
    explicit Instrumenter(const Program &prog,
                          bool include_kernel = false);

    void onBlockEntry(const BasicBlock &blk, Ring ring) override;

    /** Exact execution count of program block @p id. */
    uint64_t bbec(BlockId id) const { return bbec_[id]; }

    /** Exact BBECs for all program blocks. */
    const std::vector<uint64_t> &bbecs() const { return bbec_; }

    /** Exact BBECs keyed by block start address. */
    std::unordered_map<uint64_t, uint64_t> bbecByAddr() const;

    /**
     * Exact per-mnemonic execution counts, derived by multiplying each
     * block's static mnemonic vector by its BBEC.
     */
    Counter<Mnemonic> mnemonicCounts() const;

    /** Total instructions executed in counted blocks. */
    uint64_t totalInstructions() const;

  private:
    const Program &prog_;
    bool include_kernel_;
    std::vector<uint64_t> bbec_;
};

} // namespace hbbp

#endif // HBBP_INSTR_INSTRUMENTER_HH
