/**
 * @file
 * Analytic runtime-overhead models.
 *
 * The simulation itself is non-invasive: neither the instrumenter nor
 * the PMU perturbs the cycle clock. Wall-clock comparisons (Table 1,
 * Table 5, Figure 2) instead come from cost models calibrated against
 * the paper's published factors:
 *
 *  - software instrumentation (SDE-like): a per-block probe, a per-
 *    instruction analysis cost, a per-branch cost and an extra per-SIMD-
 *    instruction emulation cost. Short-block and vector-heavy codes
 *    slow down the most (povray 12.1x, Fitter/hydro up to 76-120x);
 *  - HBBP collection: a fixed per-PMI service cost at the paper's
 *    sampling periods plus a small constant daemon/writeback fraction
 *    (sub-1% on SPEC-length runs, ~2% on seconds-long runs).
 */

#ifndef HBBP_INSTR_OVERHEAD_HH
#define HBBP_INSTR_OVERHEAD_HH

#include <cstdint>

namespace hbbp {

/** Dynamic run features the models consume. */
struct RunFeatures
{
    uint64_t cycles = 0;        ///< Clean run cycles.
    uint64_t instructions = 0;  ///< Retired instructions.
    uint64_t block_entries = 0; ///< Basic block executions.
    uint64_t taken_branches = 0;
    uint64_t simd_instructions = 0; ///< SSE/AVX instructions retired.

    bool operator==(const RunFeatures &other) const = default;
};

/** SDE/PIN-like software instrumentation cost model. */
struct InstrumentationCostModel
{
    double per_block_cycles = 30.0; ///< Basic block probe + dispatch.
    double per_instr_cycles = 2.0;  ///< Per-instruction analysis.
    double per_branch_cycles = 9.0; ///< Branch resolution bookkeeping.
    double per_simd_cycles = 3.0;   ///< Vector instruction surcharge.
    /**
     * Full ISA-emulation cost per instruction. SDE is an *emulator*;
     * when a binary uses ISA extensions the host lacks (or emulation
     * is forced), every instruction is interpreted. This is what makes
     * the paper's non-SPEC cases run at 68-77x while native-ISA SPEC
     * stays near 4x.
     */
    double emulated_per_instr_cycles = 55.0;

    /**
     * Instrumented-run cycles.
     * @param emulated apply the full-emulation per-instruction cost
     */
    double instrumentedCycles(const RunFeatures &f,
                              bool emulated = false) const;

    /** Slowdown factor vs the clean run (>= 1). */
    double slowdown(const RunFeatures &f, bool emulated = false) const;
};

/** HBBP collection cost model. */
struct CollectionCostModel
{
    /** Cycles to service one PMI (perf interrupt + record write). */
    double pmi_cycles = 9000.0;
    /** Constant collection daemon / writeback fraction of runtime. */
    double daemon_fraction = 0.003;

    /**
     * Fractional overhead of collection at the given (paper-scale)
     * sampling periods.
     */
    double overheadFraction(const RunFeatures &f, uint64_t ebs_period,
                            uint64_t lbr_period) const;

    /** Slowdown factor (1 + overheadFraction). */
    double slowdown(const RunFeatures &f, uint64_t ebs_period,
                    uint64_t lbr_period) const;
};

} // namespace hbbp

#endif // HBBP_INSTR_OVERHEAD_HH
