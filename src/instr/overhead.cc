#include "instr/overhead.hh"

#include "support/logging.hh"

namespace hbbp {

double
InstrumentationCostModel::instrumentedCycles(const RunFeatures &f,
                                             bool emulated) const
{
    double cycles =
        static_cast<double>(f.cycles) +
        per_block_cycles * static_cast<double>(f.block_entries) +
        per_instr_cycles * static_cast<double>(f.instructions) +
        per_branch_cycles * static_cast<double>(f.taken_branches) +
        per_simd_cycles * static_cast<double>(f.simd_instructions);
    if (emulated)
        cycles += emulated_per_instr_cycles *
                  static_cast<double>(f.instructions);
    return cycles;
}

double
InstrumentationCostModel::slowdown(const RunFeatures &f,
                                   bool emulated) const
{
    if (f.cycles == 0)
        panic("InstrumentationCostModel::slowdown: zero clean cycles");
    return instrumentedCycles(f, emulated) /
           static_cast<double>(f.cycles);
}

double
CollectionCostModel::overheadFraction(const RunFeatures &f,
                                      uint64_t ebs_period,
                                      uint64_t lbr_period) const
{
    if (f.cycles == 0)
        panic("CollectionCostModel::overheadFraction: zero clean cycles");
    if (ebs_period == 0 || lbr_period == 0)
        panic("CollectionCostModel: zero sampling period");
    double ebs_pmis = static_cast<double>(f.instructions) /
                      static_cast<double>(ebs_period);
    double lbr_pmis = static_cast<double>(f.taken_branches) /
                      static_cast<double>(lbr_period);
    double pmi_cost = (ebs_pmis + lbr_pmis) * pmi_cycles;
    return pmi_cost / static_cast<double>(f.cycles) + daemon_fraction;
}

double
CollectionCostModel::slowdown(const RunFeatures &f, uint64_t ebs_period,
                              uint64_t lbr_period) const
{
    return 1.0 + overheadFraction(f, ebs_period, lbr_period);
}

} // namespace hbbp
