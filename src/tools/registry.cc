#include "tools/registry.hh"

#include "support/logging.hh"
#include "support/strings.hh"
#include "workloads/clforward.hh"
#include "workloads/fitter.hh"
#include "workloads/kernelbench.hh"
#include "workloads/spec2006.hh"
#include "workloads/test40.hh"
#include "workloads/training.hh"

namespace hbbp {

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names = specBenchmarkNames();
    names.insert(names.end(),
                 {"test40", "kernelbench", "hydro_post", "fitter_x87",
                  "fitter_sse", "fitter_avx_broken", "fitter_avx_fix",
                  "clforward_before", "clforward_after"});
    for (const Workload &w : makeTrainingSuite())
        names.push_back(w.name);
    return names;
}

std::optional<Workload>
makeWorkloadByName(const std::string &name)
{
    if (name == "test40")
        return makeTest40();
    if (name == "kernelbench")
        return makeKernelBench();
    if (name == "hydro_post")
        return makeHydroPost();
    if (name == "fitter_x87")
        return makeFitter(FitterVariant::X87);
    if (name == "fitter_sse")
        return makeFitter(FitterVariant::Sse);
    if (name == "fitter_avx_broken")
        return makeFitter(FitterVariant::AvxBroken);
    if (name == "fitter_avx_fix")
        return makeFitter(FitterVariant::AvxFix);
    if (name == "clforward_before")
        return makeClForward(ClForwardVersion::Before);
    if (name == "clforward_after")
        return makeClForward(ClForwardVersion::After);
    for (const std::string &spec : specBenchmarkNames())
        if (spec == name)
            return makeSpecBenchmark(name);
    for (Workload &w : makeTrainingSuite())
        if (w.name == name)
            return w;
    return std::nullopt;
}

Workload
requireWorkloadByName(const std::string &name)
{
    std::optional<Workload> w = makeWorkloadByName(name);
    if (w)
        return std::move(*w);
    std::vector<std::string> near = closestMatches(name, workloadNames());
    if (near.empty())
        fatal("unknown workload '%s' (try `hbbp-tool list`)",
              name.c_str());
    fatal("unknown workload '%s' — did you mean %s? "
          "(try `hbbp-tool list`)",
          name.c_str(), join(near, " or ").c_str());
}

CollectorConfig
collectorConfigFor(const Workload &w)
{
    CollectorConfig cc;
    cc.runtime_class = w.runtime_class;
    cc.max_instructions = w.max_instructions;
    cc.seed = w.exec_seed;
    return cc;
}

} // namespace hbbp
