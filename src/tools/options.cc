#include "tools/options.hh"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>

#include "support/logging.hh"
#include "support/strings.hh"

namespace hbbp {

namespace {

/**
 * A positional sink that demands exactly @p want arguments; shared by
 * every command whose grammar is `command <arg> [flags]`.
 */
std::vector<std::string>
exactPositionals(ArgParser &parser, size_t want, const char *what)
{
    std::vector<std::string> positionals;
    parser.run(&positionals);
    if (positionals.size() < want)
        fatal("missing %s argument", what);
    if (positionals.size() > want)
        fatal("unexpected argument '%s'", positionals[want].c_str());
    return positionals;
}

} // namespace

// ---------------------------------------------------------------------------
// ArgParser.
// ---------------------------------------------------------------------------

std::string
ArgParser::needValue(const char *flag)
{
    if (i_ >= argc_)
        fatal("missing value for %s", flag);
    return argv_[i_++];
}

// std::stoul/stod would throw (or wrap negatives) on bad input; every
// malformed flag value should die with a fatal() diagnostic.
uint64_t
ArgParser::needCount(const char *flag, uint64_t max)
{
    std::string value = needValue(flag);
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0' || errno == ERANGE ||
        value[0] == '-')
        fatal("invalid value '%s' for %s (expected a non-negative "
              "integer)", value.c_str(), flag);
    // Narrowing would silently truncate (e.g. 2^32 shards -> 0).
    if (v > max)
        fatal("value '%s' for %s is out of range (max %llu)",
              value.c_str(), flag, static_cast<unsigned long long>(max));
    return v;
}

double
ArgParser::needNumber(const char *flag)
{
    std::string value = needValue(flag);
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (value.empty() || *end != '\0' || errno == ERANGE)
        fatal("invalid value '%s' for %s (expected a number)",
              value.c_str(), flag);
    return v;
}

void
ArgParser::value(const char *flag, std::string *out)
{
    handlers_[flag] = [this, flag, out] { *out = needValue(flag); };
}

void
ArgParser::list(const char *flag, std::vector<std::string> *out)
{
    handlers_[flag] = [this, flag, out] {
        *out = split(needValue(flag), ',');
    };
}

void
ArgParser::number(const char *flag, double *out)
{
    handlers_[flag] = [this, flag, out] { *out = needNumber(flag); };
}

void
ArgParser::boolean(const char *flag, bool *out, bool value)
{
    handlers_[flag] = [out, value] { *out = value; };
}

void
ArgParser::action(const char *flag, std::function<void()> action)
{
    handlers_[flag] = std::move(action);
}

void
ArgParser::run(std::vector<std::string> *positionals)
{
    while (i_ < argc_) {
        std::string arg = argv_[i_++];
        auto it = handlers_.find(arg);
        if (it != handlers_.end()) {
            it->second();
            continue;
        }
        if (!arg.empty() && arg[0] == '-')
            fatal("unknown option '%s'", arg.c_str());
        if (positionals) {
            positionals->push_back(arg);
            continue;
        }
        fatal("unexpected argument '%s'", arg.c_str());
    }
}

void
parseHostPort(const std::string &value, const char *flag,
              std::string *host, uint16_t *port)
{
    size_t colon = value.rfind(':');
    if (colon == std::string::npos || colon + 1 >= value.size())
        fatal("%s expects HOST:PORT, got '%s'", flag, value.c_str());
    *host = value.substr(0, colon);
    // Bare digits only: strtoul would skip whitespace and accept
    // signs, the exact laxity the manifest parser rejects.
    std::string port_str = value.substr(colon + 1);
    unsigned long parsed = 0;
    bool digits = port_str.size() <= 5;
    for (char c : port_str)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            digits = false;
    if (digits)
        parsed = std::strtoul(port_str.c_str(), nullptr, 10);
    if (!digits || parsed == 0 || parsed > UINT16_MAX)
        fatal("invalid port in '%s'", value.c_str());
    *port = static_cast<uint16_t>(parsed);
}

// ---------------------------------------------------------------------------
// Shared groups.
// ---------------------------------------------------------------------------

std::map<std::string, std::string>
AnalysisOptions::toQueryParams() const
{
    // Only the non-default knobs travel: the canonical (shortest)
    // request form, so in-process, socket and test-driven requests
    // for the same analysis hash to the same cache key.
    std::map<std::string, std::string> params;
    if (source != "hbbp")
        params["source"] = source;
    // The member `format` shadows hbbp::format() in this scope.
    if (cutoff != 18.0)
        params["cutoff"] = hbbp::format("%.17g", cutoff);
    if (!bias_rule)
        params["bias"] = "0";
    if (patch_kernel)
        params["patch"] = "1";
    if (!pivot.empty())
        params["pivot"] = join(pivot, ",");
    if (top != 0)
        params["top"] = hbbp::format("%zu", top);
    if (!function.empty())
        params["function"] = function;
    if (!host.empty())
        params["host"] = host;
    if (format != "text")
        params["format"] = format;
    return params;
}

void
addAnalysisFlags(ArgParser &parser, AnalysisOptions *opts)
{
    parser.value("--source", &opts->source);
    parser.number("--cutoff", &opts->cutoff);
    parser.boolean("--no-bias-rule", &opts->bias_rule, false);
    parser.boolean("--patch-kernel", &opts->patch_kernel, true);
    parser.list("--pivot", &opts->pivot);
    parser.count("--top", &opts->top);
    parser.value("--function", &opts->function);
    parser.value("--format", &opts->format);
    parser.action("--csv", [opts] { opts->format = "csv"; });
}

void
CollectionOptions::finalize()
{
    if (jobs == 0)
        fatal("--jobs must be >= 1");
    if (shards == 0)
        shards = jobs;
}

void
addCollectionFlags(ArgParser &parser, CollectionOptions *opts)
{
    parser.count("--jobs", &opts->jobs,
                 static_cast<uint64_t>(UINT_MAX));
    parser.count("--shards", &opts->shards, UINT32_MAX);
    parser.value("--store", &opts->store_dir);
}

void
addDaemonFlags(ArgParser &parser, DaemonOptions *opts)
{
    parser.count("--listen", &opts->listen_port, UINT16_MAX);
    parser.value("--bind", &opts->bind_addr);
    parser.value("--port-file", &opts->port_file);
    parser.value("--state", &opts->state_file);
    parser.count("--expect", &opts->expect);
    parser.count("--timeout-ms", &opts->timeout_ms,
                 static_cast<uint64_t>(INT_MAX));
    parser.count("--journal-every", &opts->journal_every);
    parser.count("--metrics-port", &opts->metrics_port, UINT16_MAX);
    parser.value("--metrics-port-file", &opts->metrics_port_file);
    parser.value("--trace-log", &opts->trace_log);
    parser.value("--event-log", &opts->event_log);
    parser.number("--stall-warn-s", &opts->stall_warn_s);
}

// ---------------------------------------------------------------------------
// Per-command parsers. All parse argv[2..): main() consumed the
// command name in argv[1].
// ---------------------------------------------------------------------------

CollectOptions
CollectOptions::parse(int argc, char **argv)
{
    CollectOptions opts;
    ArgParser p(argc, argv, 2);
    p.value("-o", &opts.profile_out);
    addCollectionFlags(p, &opts.coll);
    opts.workload = exactPositionals(p, 1, "workload")[0];
    opts.coll.finalize();
    return opts;
}

MergeOptions
MergeOptions::parse(int argc, char **argv)
{
    MergeOptions opts;
    ArgParser p(argc, argv, 2);
    p.value("-o", &opts.profile_out);
    p.run(&opts.inputs);
    return opts;
}

BatchOptions
BatchOptions::parse(int argc, char **argv)
{
    BatchOptions opts;
    ArgParser p(argc, argv, 2);
    addCollectionFlags(p, &opts.coll);
    addAnalysisFlags(p, &opts.analysis);
    opts.workloads = exactPositionals(p, 1, "workload list")[0];
    opts.coll.finalize();
    return opts;
}

ExportOptions
ExportOptions::parse(int argc, char **argv)
{
    ExportOptions opts;
    ArgParser p(argc, argv, 2);
    p.value("--host", &opts.host);
    p.value("--export-dir", &opts.export_dir);
    p.count("--seq", &opts.seq, UINT32_MAX);
    addCollectionFlags(p, &opts.coll);
    opts.workload = exactPositionals(p, 1, "workload")[0];
    opts.coll.finalize();
    return opts;
}

PushOptions
PushOptions::parse(int argc, char **argv)
{
    PushOptions opts;
    ArgParser p(argc, argv, 2);
    p.value("--host", &opts.host);
    p.value("--to", &opts.to);
    p.value("--export-dir", &opts.export_dir);
    p.value("-o", &opts.profile_out);
    p.value("--trace-log", &opts.trace_log);
    p.count("--seq", &opts.seq, UINT32_MAX);
    p.count("--chunks", &opts.chunks, UINT32_MAX);
    p.count("--retries", &opts.retries,
            static_cast<uint64_t>(INT_MAX));
    p.count("--fail-after", &opts.fail_after,
            static_cast<uint64_t>(INT_MAX));
    addCollectionFlags(p, &opts.coll);
    opts.workload = exactPositionals(p, 1, "workload")[0];
    opts.coll.finalize();
    return opts;
}

AggregateOptions
AggregateOptions::parse(int argc, char **argv)
{
    AggregateOptions opts;
    ArgParser p(argc, argv, 2);
    p.value("--watch-dir", &opts.watch_dir);
    p.value("-o", &opts.profile_out);
    p.value("--analyze", &opts.analyze_workload);
    p.value("--store", &opts.store_dir);
    addDaemonFlags(p, &opts.daemon);
    p.run();
    return opts;
}

RelayCliOptions
RelayCliOptions::parse(int argc, char **argv)
{
    RelayCliOptions opts;
    ArgParser p(argc, argv, 2);
    p.value("--to", &opts.to);
    p.value("--relay-id", &opts.relay_id);
    p.value("--store", &opts.store_dir);
    p.count("--flush-every", &opts.flush_every);
    p.count("--retries", &opts.retries,
            static_cast<uint64_t>(INT_MAX));
    addDaemonFlags(p, &opts.daemon);
    p.run();
    return opts;
}

StoreOptions
StoreOptions::parse(int argc, char **argv)
{
    StoreOptions opts;
    ArgParser p(argc, argv, 2);
    p.value("--store", &opts.store_dir);
    p.count("--max-age-s", &opts.max_age_s,
            static_cast<uint64_t>(INT64_MAX));
    p.count("--max-bytes", &opts.max_bytes,
            static_cast<uint64_t>(INT64_MAX));
    opts.action = exactPositionals(p, 1, "store action")[0];
    return opts;
}

StatsOptions
StatsOptions::parse(int argc, char **argv)
{
    StatsOptions opts;
    ArgParser p(argc, argv, 2);
    p.value("--from", &opts.from);
    p.boolean("--tree", &opts.tree, true);
    p.boolean("--healthz", &opts.healthz, true);
    p.number("--watch", &opts.watch_s);
    p.count("--count", &opts.watch_count);
    p.run();
    if (opts.watch_s < 0.0)
        fatal("--watch expects a non-negative interval in seconds");
    if ((opts.tree || opts.healthz || opts.watch_s > 0.0) &&
        opts.from.empty())
        fatal("--tree/--healthz/--watch need --from HOST:PORT");
    return opts;
}

EventsOptions
EventsOptions::parse(int argc, char **argv)
{
    EventsOptions opts;
    ArgParser p(argc, argv, 2);
    p.value("--from", &opts.from);
    p.value("--code", &opts.code);
    p.count("--since", &opts.since_ms);
    p.run();
    if (opts.from.empty())
        fatal("events needs --from FILE (an --event-log file)");
    return opts;
}

MigrateOptions
MigrateOptions::parse(int argc, char **argv)
{
    MigrateOptions opts;
    ArgParser p(argc, argv, 2);
    p.value("-o", &opts.profile_out);
    opts.input = exactPositionals(p, 1, "input profile")[0];
    return opts;
}

AnalyzeOptions
AnalyzeOptions::parse(int argc, char **argv)
{
    AnalyzeOptions opts;
    ArgParser p(argc, argv, 2);
    p.value("-i", &opts.profile_in);
    addAnalysisFlags(p, &opts.analysis);
    opts.workload = exactPositionals(p, 1, "workload")[0];
    return opts;
}

FdoOptions
FdoOptions::parse(int argc, char **argv)
{
    FdoOptions opts;
    ArgParser p(argc, argv, 2);
    p.value("-i", &opts.profile_in);
    p.value("-o", &opts.profile_out);
    addAnalysisFlags(p, &opts.analysis);
    opts.workload = exactPositionals(p, 1, "workload")[0];
    return opts;
}

ServeOptions
ServeOptions::parse(int argc, char **argv)
{
    ServeOptions opts;
    // A query daemon answers until told to stop: the aggregate-side
    // idle default (10 s) would kill it between queries. --timeout-ms
    // still arms the idle exit when a script wants one.
    opts.daemon.timeout_ms = -1;
    ArgParser p(argc, argv, 2);
    p.value("--store", &opts.store_dir);
    addDaemonFlags(p, &opts.daemon);
    p.run();
    return opts;
}

QueryCliOptions
QueryCliOptions::parse(int argc, char **argv)
{
    QueryCliOptions opts;
    ArgParser p(argc, argv, 2);
    p.value("--from", &opts.from);
    p.value("--host", &opts.analysis.host);
    addAnalysisFlags(p, &opts.analysis);
    opts.verb = exactPositionals(p, 1, "query verb")[0];
    return opts;
}

} // namespace hbbp
