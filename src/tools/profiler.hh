/**
 * @file
 * The end-to-end tool: run a workload, collect, analyze, compare.
 *
 * This is the equivalent of the paper's Section V tool: the collector
 * produces a profile from one (simulated) execution; the analyzer turns
 * it into instruction mixes; and — because the simulator is
 * deterministic for a fixed seed — a second, software-instrumented run
 * of the same workload provides the ground truth that the paper obtains
 * from SDE/PIN.
 */

#ifndef HBBP_TOOLS_PROFILER_HH
#define HBBP_TOOLS_PROFILER_HH

#include <unordered_map>

#include "analysis/analyzer.hh"
#include "analysis/error.hh"
#include "collect/collector.hh"
#include "instr/instrumenter.hh"
#include "instr/overhead.hh"
#include "sim/engine.hh"
#include "workloads/workload.hh"

namespace hbbp {

/** Output of one profiled run (collection + reference). */
struct ProfiledRun
{
    ProfileData profile;             ///< The collector's output.
    ExecStats stats;                 ///< Clean-run statistics.
    /** SDE/PIN-equivalent reference (user-mode blocks only). */
    Counter<Mnemonic> true_user_mnemonics;
    /** Full reference including kernel blocks (simulator privilege). */
    Counter<Mnemonic> true_all_mnemonics;
    /** Exact BBECs keyed by block start address (all rings). */
    std::unordered_map<uint64_t, uint64_t> true_bbec_by_addr;
};

/** Per-method accuracy summary against the user-mode reference. */
struct AccuracySummary
{
    double hbbp = 0.0; ///< Average weighted error of HBBP.
    double ebs = 0.0;  ///< Average weighted error of EBS alone.
    double lbr = 0.0;  ///< Average weighted error of LBR alone.
};

/** One-stop profiling facade. */
class Profiler
{
  public:
    /**
     * @param machine   machine timing model
     * @param collector collection configuration (periods are selected
     *                  per workload runtime class)
     * @param analyzer  analysis options (classifier, bias knobs, kernel
     *                  map patching)
     */
    Profiler(MachineConfig machine = {}, CollectorConfig collector = {},
             AnalyzerOptions analyzer = {});

    /** Collect a profile and the ground-truth reference for @p w. */
    ProfiledRun run(const Workload &w) const;

    /** Analyze a previously collected profile of @p w. */
    AnalysisResult analyze(const Workload &w,
                           const ProfileData &profile) const;

    /**
     * Compare HBBP/EBS/LBR mixes against the reference, restricted to
     * user-mode instructions (as the paper does — PIN cannot see ring 0).
     */
    AccuracySummary accuracy(const ProfiledRun &run,
                             const AnalysisResult &analysis) const;

    /** User-mode-only mnemonic counts of a mix. */
    static Counter<Mnemonic> userMnemonics(const InstructionMix &mix);

    /** Machine configuration. */
    const MachineConfig &machine() const { return machine_; }

    /** Collector configuration. */
    const CollectorConfig &collectorConfig() const { return collector_; }

    /** Analyzer options. */
    const AnalyzerOptions &analyzerOptions() const { return analyzer_; }

  private:
    MachineConfig machine_;
    CollectorConfig collector_;
    AnalyzerOptions analyzer_;
};

} // namespace hbbp

#endif // HBBP_TOOLS_PROFILER_HH
