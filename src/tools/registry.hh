/**
 * @file
 * Name-based workload registry: every benchmark the repository can
 * generate, addressable by string (used by the CLI tool and tests).
 */

#ifndef HBBP_TOOLS_REGISTRY_HH
#define HBBP_TOOLS_REGISTRY_HH

#include <optional>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace hbbp {

/** All registered workload names. */
std::vector<std::string> workloadNames();

/** Generate a workload by name; std::nullopt for unknown names. */
std::optional<Workload> makeWorkloadByName(const std::string &name);

} // namespace hbbp

#endif // HBBP_TOOLS_REGISTRY_HH
