/**
 * @file
 * Name-based workload registry: every benchmark the repository can
 * generate, addressable by string (used by the CLI tool and tests).
 */

#ifndef HBBP_TOOLS_REGISTRY_HH
#define HBBP_TOOLS_REGISTRY_HH

#include <optional>
#include <string>
#include <vector>

#include "collect/collector.hh"
#include "workloads/workload.hh"

namespace hbbp {

/** All registered workload names. */
std::vector<std::string> workloadNames();

/** Generate a workload by name; std::nullopt for unknown names. */
std::optional<Workload> makeWorkloadByName(const std::string &name);

/**
 * Generate a workload by name; fatal() on unknown names with nearest-
 * edit-distance suggestions from workloadNames().
 */
Workload requireWorkloadByName(const std::string &name);

/**
 * The collector configuration a workload asks for (runtime class,
 * instruction budget, execution seed). Every collection surface — CLI
 * collect/analyze, the batch driver, benches — must build configs here
 * so profile-store keys stay comparable across entry points.
 */
CollectorConfig collectorConfigFor(const Workload &w);

} // namespace hbbp

#endif // HBBP_TOOLS_REGISTRY_HH
