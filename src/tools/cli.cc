/**
 * @file
 * hbbp-tool — the command-line front end, mirroring the paper's
 * two-phase collector/analyzer workflow:
 *
 *   hbbp-tool version
 *   hbbp-tool list
 *   hbbp-tool collect <workload> -o <profile> [--jobs N] [--shards N]
 *                     [--store DIR]
 *   hbbp-tool merge   -o <profile> <in1> <in2> ...
 *   hbbp-tool batch   <w1,w2,...|all> [--jobs N] [--shards N]
 *                     [--store DIR] [--top N] [--csv]
 *   hbbp-tool export  <workload> --host ID --export-dir DIR [--seq N]
 *                     [--jobs N] [--shards N] [--store DIR]
 *   hbbp-tool push    <workload> --host ID (--to HOST:PORT |
 *                     --export-dir DIR) [--seq N] [--chunks N]
 *                     [--retries N] [--jobs N] [-o <profile>]
 *   hbbp-tool aggregate (--watch-dir DIR | --listen PORT)
 *                     [-o <profile>] [--expect N] [--timeout-ms N]
 *                     [--analyze <workload>] [--store DIR]
 *                     [--state FILE] [--port-file FILE]
 *                     [--journal-every N]
 *   hbbp-tool relay   --listen PORT --to HOST:PORT [--relay-id ID]
 *                     [--flush-every N] [--expect N] [--timeout-ms N]
 *                     [--state FILE] [--journal-every N] [--retries N]
 *                     [--bind ADDR] [--port-file FILE]
 *   hbbp-tool store   gc --store DIR [--max-age-s N] [--max-bytes N]
 *   hbbp-tool stats   [--from HOST:PORT]
 *   hbbp-tool migrate <profile-in> [-o <profile-out>]
 *   hbbp-tool analyze <workload> -i <profile> [options]
 *   hbbp-tool report  <workload> [-i <profile>] [options]
 *
 * collect/batch options:
 *   --jobs N                worker threads (default 1)
 *   --shards N              shards per collection (default: jobs)
 *   --store DIR             content-addressed profile cache directory
 *
 * export options (the simulated-host collector):
 *   --host ID               host id stamped into the shard manifest
 *   --export-dir DIR        drop directory shards are exported into
 *   --seq N                 shard sequence number (default 0)
 *
 * push options (export, but over a pluggable shard transport):
 *   --to HOST:PORT          push to an `aggregate --listen` socket
 *   --export-dir DIR        use the drop-directory transport instead
 *   --chunks N              stream the shard as N status=partial
 *                           chunks finalized by a complete frame
 *   --retries N             socket connection attempts (default 5)
 *   -o <profile>            also save the collected profile locally
 *
 * aggregate options (the central aggregation side):
 *   --watch-dir DIR         drop directory to poll for shard manifests
 *   --listen PORT           accept socket pushes on PORT (0 picks an
 *                           ephemeral port)
 *   --bind ADDR             listen address (default 127.0.0.1; pass
 *                           0.0.0.0 to accept remote collectors)
 *   --port-file FILE        write the bound port here (for scripts)
 *   --state FILE            checkpoint aggregator state per accepted
 *                           shard; restored on startup, so a restarted
 *                           job resumes instead of re-importing
 *   --expect N              wait until N leaf shards are covered (an
 *                           aggregate arrival covers all of its hosts'
 *                           leaves at once)
 *   --timeout-ms N          give up after N ms with no new import
 *                           (an idle timeout, default 10000)
 *   --analyze WORKLOAD      re-analyze after every accepted shard
 *   --store DIR             central store imported shards are copied to
 *   --journal-every N       with --state: append O(shard) journal
 *                           records per accept and rewrite the full
 *                           checkpoint every N records (default 32;
 *                           0 rewrites the checkpoint on every accept)
 *
 * relay options (a fan-in tree node: listen downstream, fold, push the
 * partial aggregate upstream as a first-class shard):
 *   --listen PORT           downstream port collectors/relays dial
 *   --to HOST:PORT          upstream aggregation point (relay or root)
 *   --relay-id ID           host id stamped on upstream aggregates
 *                           (default relay-<pid>: sibling relays must
 *                           not share an id)
 *   --flush-every N         push upstream every N accepted arrivals
 *                           (0: only on exit)
 *   --expect N              leaf shards to wait for downstream
 *   --state FILE            checkpoint+journal, as for aggregate
 *   --retries N             upstream connection attempts per flush
 *
 * store gc options (bounded eviction, oldest entries first):
 *   --max-age-s N           evict entries older than N seconds
 *   --max-bytes N           then evict until the store fits N bytes
 *
 * observability (aggregate --listen and relay; see README):
 *   --metrics-port N        serve the metrics registry as Prometheus
 *                           text on a second port (0 = ephemeral)
 *   --metrics-port-file F   write the bound metrics port here
 *   --trace-log FILE        append shard-lifecycle span records (JSONL)
 *                           — also on push, where it stamps the shard's
 *                           trace id into the manifest
 *   stats [--from H:P]      print a scraped endpoint's metrics (or this
 *                           process's own registry snapshot)
 *   SIGUSR1                 daemons dump the registry snapshot to
 *                           stderr at the next accept-loop poll
 *
 * analyze/report options:
 *   --source hbbp|ebs|lbr   data source for the mix (default hbbp)
 *   --cutoff N              HBBP length cutoff (default 18)
 *   --no-bias-rule          disable the bias->EBS term
 *   --patch-kernel          apply the live-kernel-text fix
 *   --pivot d1,d2,...       pivot dims: module,function,block,mnemonic,
 *                           isa,category,packing,width,ring,mem
 *   --top N                 keep the N largest rows
 *   --function NAME         print annotated disassembly of NAME
 *   --csv                   render pivots as CSV
 */

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <climits>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <filesystem>

#include "analysis/report.hh"
#include "fleet/aggregate.hh"
#include "fleet/batch.hh"
#include "fleet/journal.hh"
#include "fleet/manifest.hh"
#include "fleet/merge.hh"
#include "fleet/metrics.hh"
#include "fleet/relay.hh"
#include "fleet/shard.hh"
#include "fleet/store.hh"
#include "fleet/transport.hh"
#include "hbbp/version.hh"
#include "support/bytes.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"
#include "tools/profiler.hh"
#include "tools/registry.hh"

using namespace hbbp;

namespace {

struct CliOptions
{
    std::string command;
    std::string workload;
    std::string profile_in;
    std::string profile_out;
    std::vector<std::string> inputs; ///< Positional profiles for merge.
    std::string source = "hbbp";
    std::string store_dir;
    double cutoff = 18.0;
    bool bias_rule = true;
    bool patch_kernel = false;
    std::vector<std::string> pivot;
    size_t top = 0;
    unsigned jobs = 1;
    uint32_t shards = 0; ///< 0 = default to jobs.
    std::string function;
    bool csv = false;
    std::string host;             ///< export/push: simulated host id.
    std::string export_dir;       ///< export/push: shard drop directory.
    uint32_t seq = 0;             ///< export/push: shard sequence number.
    std::string to;               ///< push: HOST:PORT to stream to.
    uint32_t chunks = 1;          ///< push: frames to stream the shard as.
    int retries = 5;              ///< push: socket connection attempts.
    int fail_after = -1;          ///< push: test hook, die after N chunks.
    std::string watch_dir;        ///< aggregate: directory to poll.
    int listen_port = -1;         ///< aggregate: socket port (-1 = off).
    std::string bind_addr = "127.0.0.1"; ///< aggregate: listen address.
    std::string port_file;        ///< aggregate: bound-port report file.
    std::string state_file;       ///< aggregate: checkpoint/restore path.
    size_t expect = 0;            ///< aggregate/relay: coverage to wait for.
    int timeout_ms = 10'000;      ///< aggregate/relay: idle timeout.
    std::string analyze_workload; ///< aggregate: per-arrival analysis.
    size_t journal_every = 32;    ///< aggregate/relay: compact threshold.
    size_t flush_every = 0;       ///< relay: upstream flush cadence.
    std::string relay_id;         ///< relay: upstream host id.
    int64_t max_age_s = -1;       ///< store gc: age bound.
    int64_t max_bytes = -1;       ///< store gc: size bound.
    int metrics_port = -1;        ///< aggregate/relay: -1 = off.
    std::string metrics_port_file; ///< bound metrics port report file.
    std::string trace_log;        ///< span log path; empty = off.
    std::string stats_from;       ///< stats: HOST:PORT to scrape.
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: hbbp-tool version\n"
                 "       hbbp-tool list\n"
                 "       hbbp-tool collect <workload> -o <profile> "
                 "[--jobs N] [--shards N] [--store DIR]\n"
                 "       hbbp-tool merge -o <profile> <in1> <in2> ...\n"
                 "       hbbp-tool batch <w1,w2,...|all> [--jobs N] "
                 "[--shards N] [--store DIR]\n"
                 "                 [--top N] [--csv]\n"
                 "       hbbp-tool export <workload> --host ID "
                 "--export-dir DIR [--seq N]\n"
                 "                 [--jobs N] [--shards N] [--store DIR]\n"
                 "       hbbp-tool push <workload> --host ID "
                 "(--to HOST:PORT | --export-dir DIR)\n"
                 "                 [--seq N] [--chunks N] [--retries N] "
                 "[--jobs N] [-o <profile>]\n"
                 "       hbbp-tool aggregate (--watch-dir DIR | "
                 "--listen PORT) [-o <profile>]\n"
                 "                 [--expect N] [--timeout-ms N] "
                 "[--analyze <workload>] [--store DIR]\n"
                 "                 [--state FILE] [--port-file FILE] "
                 "[--bind ADDR] [--journal-every N]\n"
                 "       hbbp-tool relay --listen PORT --to HOST:PORT "
                 "[--relay-id ID]\n"
                 "                 [--flush-every N] [--expect N] "
                 "[--timeout-ms N] [--state FILE]\n"
                 "                 [--journal-every N] [--retries N] "
                 "[--bind ADDR] [--port-file FILE]\n"
                 "       hbbp-tool store gc --store DIR "
                 "[--max-age-s N] [--max-bytes N]\n"
                 "       hbbp-tool stats [--from HOST:PORT]\n"
                 "       hbbp-tool migrate <profile-in> "
                 "[-o <profile-out>]\n"
                 "       hbbp-tool analyze <workload> -i <profile> "
                 "[--source hbbp|ebs|lbr] [--cutoff N]\n"
                 "                 [--no-bias-rule] [--patch-kernel] "
                 "[--pivot dims] [--top N]\n"
                 "                 [--function NAME] [--csv]\n"
                 "       hbbp-tool report <workload> [-i <profile>]\n");
    std::exit(2);
}

CliOptions
parse(int argc, char **argv)
{
    CliOptions opts;
    if (argc < 2)
        usage();
    opts.command = argv[1];
    int i = 2;
    // merge takes positional profiles; aggregate, relay and stats only
    // flags; every other command (but list) leads with a positional
    // argument — a workload name, the input profile for migrate, or
    // the action for store.
    if (opts.command != "list" && opts.command != "merge" &&
        opts.command != "aggregate" && opts.command != "relay" &&
        opts.command != "stats") {
        if (i >= argc)
            usage();
        opts.workload = argv[i++];
    }
    auto need_value = [&](const char *flag) -> std::string {
        if (i >= argc)
            fatal("missing value for %s", flag);
        return argv[i++];
    };
    // std::stoul/stod would throw (or wrap negatives) on bad input;
    // every malformed flag value should die with a fatal() diagnostic.
    auto need_count = [&](const char *flag,
                          uint64_t max = UINT64_MAX) -> uint64_t {
        std::string value = need_value(flag);
        errno = 0;
        char *end = nullptr;
        unsigned long long v = std::strtoull(value.c_str(), &end, 10);
        if (value.empty() || *end != '\0' || errno == ERANGE ||
            value[0] == '-')
            fatal("invalid value '%s' for %s (expected a non-negative "
                  "integer)", value.c_str(), flag);
        // Narrowing would silently truncate (e.g. 2^32 shards -> 0).
        if (v > max)
            fatal("value '%s' for %s is out of range (max %llu)",
                  value.c_str(), flag,
                  static_cast<unsigned long long>(max));
        return v;
    };
    auto need_number = [&](const char *flag) -> double {
        std::string value = need_value(flag);
        errno = 0;
        char *end = nullptr;
        double v = std::strtod(value.c_str(), &end);
        if (value.empty() || *end != '\0' || errno == ERANGE)
            fatal("invalid value '%s' for %s (expected a number)",
                  value.c_str(), flag);
        return v;
    };
    while (i < argc) {
        std::string arg = argv[i++];
        if (arg == "-o")
            opts.profile_out = need_value("-o");
        else if (arg == "-i")
            opts.profile_in = need_value("-i");
        else if (arg == "--source")
            opts.source = need_value("--source");
        else if (arg == "--store")
            opts.store_dir = need_value("--store");
        else if (arg == "--cutoff")
            opts.cutoff = need_number("--cutoff");
        else if (arg == "--no-bias-rule")
            opts.bias_rule = false;
        else if (arg == "--patch-kernel")
            opts.patch_kernel = true;
        else if (arg == "--pivot")
            opts.pivot = split(need_value("--pivot"), ',');
        else if (arg == "--top")
            opts.top = static_cast<size_t>(need_count("--top"));
        else if (arg == "--jobs")
            opts.jobs = static_cast<unsigned>(
                need_count("--jobs", UINT_MAX));
        else if (arg == "--shards")
            opts.shards = static_cast<uint32_t>(
                need_count("--shards", UINT32_MAX));
        else if (arg == "--function")
            opts.function = need_value("--function");
        else if (arg == "--csv")
            opts.csv = true;
        else if (arg == "--host")
            opts.host = need_value("--host");
        else if (arg == "--export-dir")
            opts.export_dir = need_value("--export-dir");
        else if (arg == "--seq")
            opts.seq = static_cast<uint32_t>(
                need_count("--seq", UINT32_MAX));
        else if (arg == "--to")
            opts.to = need_value("--to");
        else if (arg == "--chunks")
            opts.chunks = static_cast<uint32_t>(
                need_count("--chunks", UINT32_MAX));
        else if (arg == "--retries")
            opts.retries = static_cast<int>(
                need_count("--retries", INT_MAX));
        else if (arg == "--fail-after")
            opts.fail_after = static_cast<int>(
                need_count("--fail-after", INT_MAX));
        else if (arg == "--watch-dir")
            opts.watch_dir = need_value("--watch-dir");
        else if (arg == "--listen")
            opts.listen_port = static_cast<int>(
                need_count("--listen", UINT16_MAX));
        else if (arg == "--bind")
            opts.bind_addr = need_value("--bind");
        else if (arg == "--port-file")
            opts.port_file = need_value("--port-file");
        else if (arg == "--state")
            opts.state_file = need_value("--state");
        else if (arg == "--expect")
            opts.expect = static_cast<size_t>(need_count("--expect"));
        else if (arg == "--timeout-ms")
            opts.timeout_ms = static_cast<int>(
                need_count("--timeout-ms", INT_MAX));
        else if (arg == "--analyze")
            opts.analyze_workload = need_value("--analyze");
        else if (arg == "--journal-every")
            opts.journal_every =
                static_cast<size_t>(need_count("--journal-every"));
        else if (arg == "--flush-every")
            opts.flush_every =
                static_cast<size_t>(need_count("--flush-every"));
        else if (arg == "--relay-id")
            opts.relay_id = need_value("--relay-id");
        else if (arg == "--max-age-s")
            opts.max_age_s = static_cast<int64_t>(
                need_count("--max-age-s", INT64_MAX));
        else if (arg == "--max-bytes")
            opts.max_bytes = static_cast<int64_t>(
                need_count("--max-bytes", INT64_MAX));
        else if (arg == "--metrics-port")
            opts.metrics_port = static_cast<int>(
                need_count("--metrics-port", UINT16_MAX));
        else if (arg == "--metrics-port-file")
            opts.metrics_port_file =
                need_value("--metrics-port-file");
        else if (arg == "--trace-log")
            opts.trace_log = need_value("--trace-log");
        else if (arg == "--from")
            opts.stats_from = need_value("--from");
        else if (!arg.empty() && arg[0] == '-')
            fatal("unknown option '%s'", arg.c_str());
        else if (opts.command == "merge")
            opts.inputs.push_back(arg);
        else
            fatal("unexpected argument '%s'", arg.c_str());
    }
    if (opts.jobs == 0)
        fatal("--jobs must be >= 1");
    if (opts.shards == 0)
        opts.shards = std::max(opts.jobs, 1u);
    return opts;
}

/** Split a HOST:PORT flag value; fatal() on malformed input. */
void
parseHostPort(const std::string &value, const char *flag,
              std::string *host, uint16_t *port)
{
    size_t colon = value.rfind(':');
    if (colon == std::string::npos || colon + 1 >= value.size())
        fatal("%s expects HOST:PORT, got '%s'", flag, value.c_str());
    *host = value.substr(0, colon);
    // Bare digits only: strtoul would skip whitespace and accept
    // signs, the exact laxity the manifest parser rejects.
    std::string port_str = value.substr(colon + 1);
    unsigned long parsed = 0;
    bool digits = port_str.size() <= 5;
    for (char c : port_str)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            digits = false;
    if (digits)
        parsed = std::strtoul(port_str.c_str(), nullptr, 10);
    if (!digits || parsed == 0 || parsed > UINT16_MAX)
        fatal("invalid port in '%s'", value.c_str());
    *port = static_cast<uint16_t>(parsed);
}

void
onSigUsr1(int)
{
    // Async-signal-safe: one relaxed store; the daemon's accept loop
    // polls dumpIfRequested() and prints the snapshot from there.
    telemetry::requestDump();
}

/**
 * Daemon observability setup shared by aggregate --listen and relay:
 * start the metrics endpoint when requested (reporting the bound port
 * for scripts) and arm the SIGUSR1 snapshot dump.
 */
std::unique_ptr<MetricsServer>
startObservability(const CliOptions &opts)
{
    std::signal(SIGUSR1, onSigUsr1);
    if (opts.metrics_port < 0)
        return nullptr;
    auto server = std::make_unique<MetricsServer>(
        static_cast<uint16_t>(opts.metrics_port));
    std::printf("metrics on port %u\n", server->port());
    std::fflush(stdout);
    if (!opts.metrics_port_file.empty())
        writeFileAtomically(opts.metrics_port_file,
                            format("%u\n", server->port()));
    return server;
}

MixDim
dimFromName(const std::string &dim_name)
{
    for (MixDim d : {MixDim::Module, MixDim::Function, MixDim::Block,
                     MixDim::Mnemonic, MixDim::Isa, MixDim::Category,
                     MixDim::Packing, MixDim::Width, MixDim::Ring,
                     MixDim::MemAccess}) {
        if (dim_name == name(d))
            return d;
    }
    fatal("unknown pivot dimension '%s'", dim_name.c_str());
}

int
cmdList()
{
    for (const std::string &w : workloadNames())
        std::printf("%s\n", w.c_str());
    return 0;
}

int
cmdCollect(const CliOptions &opts)
{
    if (opts.profile_out.empty())
        fatal("collect requires -o <profile>");
    Workload w = requireWorkloadByName(opts.workload);
    CollectorConfig cc = collectorConfigFor(w);

    ShardPlan plan;
    plan.shards = opts.shards;
    plan.jobs = opts.jobs;

    ProfileData pd;
    bool cache_hit = false;
    if (!opts.store_dir.empty()) {
        ProfileStore store(opts.store_dir);
        ProfileKey key{w.name, cc, plan.shards, MachineConfig{}};
        pd = store.getOrCollect(key, *w.program, plan.jobs, &cache_hit);
    } else {
        pd = collectSharded(*w.program, MachineConfig{}, cc, plan);
    }
    pd.save(opts.profile_out);
    std::printf("collected %zu EBS samples + %zu LBR stacks from %llu "
                "instructions (%u shard%s%s) -> %s\n",
                pd.ebs.size(), pd.lbr.size(),
                static_cast<unsigned long long>(
                    pd.features.instructions),
                plan.shards, plan.shards == 1 ? "" : "s",
                cache_hit ? ", store hit" : "",
                opts.profile_out.c_str());
    return 0;
}

int
cmdMerge(const CliOptions &opts)
{
    if (opts.profile_out.empty())
        fatal("merge requires -o <profile>");
    if (opts.inputs.size() < 2)
        fatal("merge requires at least two input profiles");
    std::vector<ProfileData> shards;
    shards.reserve(opts.inputs.size());
    for (const std::string &path : opts.inputs)
        shards.push_back(ProfileData::load(path));
    ProfileData merged = mergeProfiles(shards);
    merged.save(opts.profile_out);
    std::printf("merged %zu profiles: %zu EBS samples + %zu LBR stacks "
                "-> %s\n", shards.size(), merged.ebs.size(),
                merged.lbr.size(), opts.profile_out.c_str());
    return 0;
}

int
cmdBatch(const CliOptions &opts)
{
    std::vector<std::string> workloads;
    if (opts.workload == "all")
        workloads = workloadNames();
    else
        workloads = split(opts.workload, ',');

    BatchConfig bc;
    bc.shards = opts.shards;
    bc.jobs = opts.jobs;
    bc.store_dir = opts.store_dir;
    bc.analyzer.map.patch_kernel_text = opts.patch_kernel;
    bc.analyzer.classifier = std::make_shared<CutoffClassifier>(
        opts.cutoff, opts.bias_rule);

    BatchResult res = runBatch(workloads, bc);

    TextTable summary = res.summaryTable();
    TextTable mix = res.aggregateMixTable(opts.top);
    if (opts.csv) {
        std::printf("%s\n%s", summary.renderCsv().c_str(),
                    mix.renderCsv().c_str());
    } else {
        std::printf("batch: %zu workloads, %u shards each, %u jobs, "
                    "%zu store hit%s\n\n", res.entries.size(),
                    bc.shards, bc.jobs, res.cache_hits,
                    res.cache_hits == 1 ? "" : "s");
        std::printf("%s\n", summary.render().c_str());
        std::printf("aggregated fleet mix:\n%s", mix.render().c_str());
    }
    return 0;
}

/**
 * The simulated-host collector: collect (host-seeded, so distinct
 * hosts produce distinct but reproducible profiles) and export the
 * result as a shard into a drop directory.
 */
int
cmdExport(const CliOptions &opts)
{
    if (opts.host.empty())
        fatal("export requires --host <id>");
    if (opts.export_dir.empty())
        fatal("export requires --export-dir <dir>");
    Workload w = requireWorkloadByName(opts.workload);
    CollectorConfig cc = collectorConfigFor(w);
    cc.seed = hostStreamSeed(cc.seed, opts.host, opts.seq);
    cc.pmu.seed = hostStreamSeed(cc.pmu.seed ^ 0x5851f42d4c957f2dULL,
                                 opts.host, opts.seq);

    ShardPlan plan;
    plan.shards = opts.shards;
    plan.jobs = opts.jobs;
    ProfileKey key{w.name, cc, plan.shards, MachineConfig{}};

    ProfileData pd;
    bool cache_hit = false;
    if (!opts.store_dir.empty()) {
        ProfileStore store(opts.store_dir);
        pd = store.getOrCollect(key, *w.program, plan.jobs, &cache_hit);
    } else {
        pd = collectSharded(*w.program, MachineConfig{}, cc, plan);
    }

    ShardManifest manifest;
    std::string manifest_path =
        exportShard(pd, opts.host, w.name, opts.seq, key.hash(),
                    opts.export_dir, &manifest);
    std::printf("exported shard host=%s seq=%u workload=%s "
                "checksum=%016llx (%zu EBS samples + %zu LBR stacks%s) "
                "-> %s\n",
                opts.host.c_str(), opts.seq, w.name.c_str(),
                static_cast<unsigned long long>(manifest.checksum),
                pd.ebs.size(), pd.lbr.size(),
                cache_hit ? ", store hit" : "", manifest_path.c_str());
    return 0;
}

/**
 * Export's sibling over the pluggable transport layer: collect
 * host-seeded, then *push* the shard — to an `aggregate --listen`
 * socket (optionally streamed as N partial chunks) or through the
 * drop-directory transport.
 */
int
cmdPush(const CliOptions &opts)
{
    if (opts.host.empty())
        fatal("push requires --host <id>");
    // Fail here, not as a listener rejection after the collection ran.
    if (!validHostId(opts.host))
        fatal("invalid host id '%s' (must be non-empty, without "
              "whitespace, '/', ',' or ':')", opts.host.c_str());
    if (opts.to.empty() == opts.export_dir.empty())
        fatal("push requires exactly one of --to <host:port> or "
              "--export-dir <dir>");
    if (opts.chunks == 0)
        fatal("--chunks must be >= 1");
    Workload w = requireWorkloadByName(opts.workload);
    CollectorConfig cc = collectorConfigFor(w);
    cc.seed = hostStreamSeed(cc.seed, opts.host, opts.seq);
    cc.pmu.seed = hostStreamSeed(cc.pmu.seed ^ 0x5851f42d4c957f2dULL,
                                 opts.host, opts.seq);

    // The chunk is the streaming unit: collect --chunks shards whose
    // in-order merge is the shard profile, so long collections can
    // deliver incrementally as each chunk finishes.
    ShardPlan plan;
    plan.shards = opts.chunks;
    plan.jobs = opts.jobs;
    ProfileKey key{w.name, cc, plan.shards, MachineConfig{}};
    std::vector<ProfileData> parts =
        collectShards(*w.program, MachineConfig{}, cc, plan);
    ProfileData merged = mergeProfiles(parts);

    ShardManifest manifest;
    manifest.host = opts.host;
    manifest.workload = w.name;
    manifest.seq = opts.seq;
    manifest.options_hash = key.hash();

    std::vector<std::string> chunks;
    if (opts.chunks == 1) {
        chunks.push_back(merged.serialize(&manifest.checksum));
    } else {
        // Chunked mode sends the parts; the merged profile only
        // contributes its checksum, so skip serializing its bytes.
        manifest.checksum = merged.payloadChecksum();
        chunks.reserve(parts.size());
        for (const ProfileData &part : parts)
            chunks.push_back(part.serialize());
    }
    if (!opts.profile_out.empty())
        merged.save(opts.profile_out);

    // Tracing is opt-in: it stamps the shard's trace id into the
    // manifest (so relays and the root can attribute it), and an
    // unstamped push keeps the exact pre-tracing manifest bytes.
    telemetry::TraceLog trace;
    std::string trace_id;
    if (!opts.trace_log.empty()) {
        trace.open(opts.trace_log, "collector:" + opts.host);
        trace_id = shardTraceId(manifest);
        manifest.trace_ids.push_back(trace_id);
    }

    SendResult res;
    trace.span("push_start", trace_id,
               format("seq=%u chunks=%zu", opts.seq, chunks.size()));
    if (!opts.to.empty()) {
        SocketTransportOptions so;
        parseHostPort(opts.to, "--to", &so.host, &so.port);
        so.max_attempts = std::max(opts.retries, 1);
        SocketTransport transport(so);
        transport.fail_after_chunks = opts.fail_after;
        res = transport.sendShard(manifest, chunks);
    } else {
        DropDirTransport transport(opts.export_dir);
        res = transport.sendShard(manifest, chunks);
    }
    if (!res.ok)
        fatal("push failed: %s", res.error.c_str());
    trace.span("push_acked", trace_id,
               format("attempts=%d%s", res.attempts,
                      res.duplicate ? " duplicate" : ""));

    std::printf("pushed shard host=%s seq=%u workload=%s "
                "checksum=%016llx (%zu chunk%s, %d attempt%s%s) "
                "-> %s\n",
                opts.host.c_str(), opts.seq, w.name.c_str(),
                static_cast<unsigned long long>(manifest.checksum),
                chunks.size(), chunks.size() == 1 ? "" : "s",
                res.attempts, res.attempts == 1 ? "" : "s",
                res.duplicate ? ", duplicate" : "",
                opts.to.empty() ? opts.export_dir.c_str()
                                : opts.to.c_str());
    return 0;
}

/**
 * The central aggregation side: fold shards from N hosts as they
 * arrive — polled out of a drop directory or pushed to a listening
 * socket — optionally re-analyzing per arrival, checkpointing
 * restorable state per arrival, and persisting the canonical
 * aggregate.
 */
int
cmdAggregate(const CliOptions &opts)
{
    bool listening = opts.listen_port >= 0;
    if (opts.watch_dir.empty() == !listening)
        fatal("aggregate requires exactly one of --watch-dir <dir> or "
              "--listen <port>");

    std::unique_ptr<MetricsServer> metrics = startObservability(opts);
    telemetry::TraceLog trace;
    trace.open(opts.trace_log, "root");

    std::optional<ProfileStore> central;
    if (!opts.store_dir.empty())
        central.emplace(opts.store_dir);

    std::optional<Workload> aw;
    if (!opts.analyze_workload.empty())
        aw = requireWorkloadByName(opts.analyze_workload);
    Analyzer analyzer;

    IncrementalAggregator agg;
    std::optional<StateJournal> journal;
    if (!opts.state_file.empty() && opts.journal_every > 0)
        journal.emplace(opts.state_file, opts.journal_every);
    if (restoreAggregatorState(agg, journal, opts.state_file) > 0)
        std::printf("restored aggregator state from %s: "
                    "%zu shard%s across %zu host%s\n",
                    opts.state_file.c_str(), agg.restoredShards(),
                    agg.restoredShards() == 1 ? "" : "s",
                    agg.hostCount(),
                    agg.hostCount() == 1 ? "" : "s");
    // Persist after every accepted shard (and the per-arrival
    // analysis/deposit), before the arrival is acknowledged: a killed
    // aggregator restarted with the same --state resumes from its
    // partials instead of re-importing the fleet. With journaling
    // (the default) each accept appends one O(shard) record and the
    // full checkpoint is rewritten every --journal-every accepts;
    // --journal-every 0 keeps the PR-4 full rewrite per accept.
    auto per_accept = [&](const ShardManifest &m,
                          const ProfileData *profile,
                          const std::vector<std::string> *chunks) {
        // The root is the end of a traced shard's life: one root_fold
        // span per stamped id carried by this arrival closes the
        // collector -> relay -> root chain.
        for (const std::string &id : m.trace_ids)
            trace.span("root_fold", id,
                       format("from=%s", m.host.c_str()));
        if (central && !central->containsChecksum(m.checksum)) {
            if (profile)
                central->insertByChecksum(m.checksum, *profile);
            else
                central->depositFileByChecksum(
                    m.checksum, opts.watch_dir + "/" + m.profile_file);
        }
        if (aw)
            agg.analyzeWith(*aw->program, analyzer);
        if (opts.state_file.empty())
            return;
        if (journal && chunks) {
            journal->record(agg, m, *chunks);
        } else if (journal) {
            // Watch-dir import: the shard's verified bytes are the
            // file beside its manifest; journal them as-is. If they
            // vanished mid-run, fall back to a full checkpoint —
            // durability must not depend on the drop dir's hygiene.
            std::string why;
            std::string bytes = readFileBytes(
                opts.watch_dir + "/" + m.profile_file, &why);
            if (why.empty()) {
                journal->record(agg, m, {std::move(bytes)});
            } else {
                warn("cannot journal shard '%s' (%s); writing a full "
                     "checkpoint instead", m.profile_file.c_str(),
                     why.c_str());
                journal->compact(agg);
            }
        } else {
            agg.saveState(opts.state_file);
        }
    };

    if (listening) {
        ShardListener listener(
            static_cast<uint16_t>(opts.listen_port), opts.bind_addr);
        std::printf("listening on %s:%u\n", opts.bind_addr.c_str(),
                    listener.port());
        std::fflush(stdout);
        if (!opts.port_file.empty())
            writeFileAtomically(opts.port_file,
                                format("%u\n", listener.port()));
        ListenOptions lo;
        lo.expect = opts.expect;
        lo.idle_timeout_ms = opts.timeout_ms;
        lo.on_accept = [&](const ShardManifest &m,
                           const ProfileData &pd,
                           const std::vector<std::string> &chunks) {
            per_accept(m, &pd, &chunks);
        };
        listener.serve(agg, lo);
    } else {
        WatchOptions wo;
        wo.expect = opts.expect;
        wo.timeout_ms = opts.timeout_ms;
        wo.on_accept = [&](const ShardManifest &m) {
            // The shard's bytes were already verified during import,
            // so the deposit copies the file instead of re-parsing it.
            per_accept(m, nullptr, nullptr);
        };
        watchAndAggregate(agg, opts.watch_dir, wo);
    }

    const AggregatorStats &st = agg.stats();
    if (opts.expect > 0 && agg.coveredShards() < opts.expect)
        fatal("no shard for %d ms while waiting for %zu shards via "
              "'%s' (covered %zu, accepted %zu, duplicates %zu, "
              "incompatible %zu, malformed %zu)",
              opts.timeout_ms, opts.expect,
              listening ? "--listen" : opts.watch_dir.c_str(),
              agg.coveredShards(), st.accepted, st.duplicates,
              st.incompatible, st.malformed);
    if (!opts.profile_out.empty())
        agg.aggregate().save(opts.profile_out);

    std::printf("aggregate: accepted=%zu duplicates=%zu "
                "incompatible=%zu malformed=%zu analyses=%zu "
                "rebuilds=%zu restored=%zu hosts=%zu covered=%zu "
                "aggregates=%zu superseded=%zu saturated=%llu%s%s\n",
                st.accepted, st.duplicates, st.incompatible,
                st.malformed, st.analyses, st.rebuilds,
                agg.restoredShards(), agg.hostCount(),
                agg.coveredShards(), st.aggregates, st.superseded,
                static_cast<unsigned long long>(saturatedFoldLanes()),
                opts.profile_out.empty() ? "" : " -> ",
                opts.profile_out.c_str());
    if (metrics) {
        metrics->stop();
        telemetry::dumpSnapshot("aggregate exiting");
    }
    return 0;
}

/**
 * A fan-in tree node: serve collectors (or deeper relays) downstream,
 * fold their shards, push the partial aggregate upstream as a
 * first-class shard. The root of the tree is a plain
 * `aggregate --listen`.
 */
int
cmdRelay(const CliOptions &opts)
{
    if (opts.listen_port < 0)
        fatal("relay requires --listen <port>");
    if (opts.to.empty())
        fatal("relay requires --to <host:port>");

    RelayOptions ro;
    ro.listen_port = static_cast<uint16_t>(opts.listen_port);
    ro.bind_addr = opts.bind_addr;
    parseHostPort(opts.to, "--to", &ro.upstream_host,
                  &ro.upstream_port);
    // The relay id becomes the upstream manifest's host id: hold it
    // to the same rules as --host, and fail here rather than as a
    // rejection of every flush after collectors were already acked.
    if (!opts.relay_id.empty() && !validHostId(opts.relay_id))
        fatal("invalid --relay-id '%s' (must be without whitespace, "
              "'/', ',' or ':')", opts.relay_id.c_str());
    // Unique by default: two sibling relays sharing one id would also
    // share the upstream's per-(host, seq) staging slot, and their
    // interleaved multi-chunk flushes would clobber each other.
    ro.relay_id = opts.relay_id.empty()
                      ? format("relay-%ld", static_cast<long>(::getpid()))
                      : opts.relay_id;
    ro.flush_every = opts.flush_every;
    ro.expect = opts.expect;
    ro.idle_timeout_ms = opts.timeout_ms;
    ro.state_file = opts.state_file;
    ro.journal_every = opts.journal_every;
    ro.upstream_retries = std::max(opts.retries, 1);
    ro.trace_log = opts.trace_log;

    std::unique_ptr<MetricsServer> metrics = startObservability(opts);
    RelayNode relay(std::move(ro));
    std::printf("relaying %s:%u -> %s\n", opts.bind_addr.c_str(),
                relay.port(), opts.to.c_str());
    std::fflush(stdout);
    if (!opts.port_file.empty())
        writeFileAtomically(opts.port_file,
                            format("%u\n", relay.port()));

    RelayStats rs = relay.run();
    std::printf("relay: accepted=%zu covered=%zu restored=%zu "
                "flushes=%zu flush_failures=%zu orphans=%zu "
                "upstream_ok=%d\n",
                rs.accepted, rs.covered, rs.restored, rs.flushes,
                rs.flush_failures, rs.orphans_forwarded,
                rs.upstream_ok ? 1 : 0);
    if (metrics) {
        metrics->stop();
        telemetry::dumpSnapshot("relay exiting");
    }
    // Order matters: the final flush already ran, so these exits lose
    // nothing that --state does not hold.
    if (!rs.upstream_ok)
        fatal("final upstream flush failed: %s", rs.error.c_str());
    if (opts.expect > 0 && rs.covered < opts.expect)
        fatal("no shard for %d ms while waiting to cover %zu shards "
              "(covered %zu)", opts.timeout_ms, opts.expect,
              rs.covered);
    return 0;
}

/** Store maintenance: `hbbp-tool store gc` bounded eviction. */
int
cmdStore(const CliOptions &opts)
{
    // The positional argument slot carries the action here.
    if (opts.workload != "gc")
        fatal("unknown store action '%s' (expected: gc)",
              opts.workload.c_str());
    if (opts.store_dir.empty())
        fatal("store gc requires --store <dir>");
    if (opts.max_age_s < 0 && opts.max_bytes < 0)
        fatal("store gc requires --max-age-s and/or --max-bytes "
              "(unbounded gc would evict nothing)");

    ProfileStore store(opts.store_dir);
    ProfileStore::GcResult res =
        store.gc({opts.max_age_s, opts.max_bytes});
    std::printf("store gc: scanned=%zu evicted=%zu bytes_before=%llu "
                "bytes_after=%llu\n",
                res.scanned, res.evicted,
                static_cast<unsigned long long>(res.bytes_before),
                static_cast<unsigned long long>(res.bytes_after));
    return 0;
}

/**
 * Print metrics: scraped from a live daemon's --metrics-port endpoint
 * (Prometheus text passed through verbatim), or — with no --from —
 * this process's own registry snapshot in the compact deterministic
 * format daemons dump on SIGUSR1.
 */
int
cmdStats(const CliOptions &opts)
{
    if (!opts.stats_from.empty()) {
        std::string host;
        uint16_t port = 0;
        parseHostPort(opts.stats_from, "--from", &host, &port);
        std::string body, why;
        if (!fetchMetricsText(host, port, &body, &why))
            fatal("fetching metrics from %s: %s",
                  opts.stats_from.c_str(), why.c_str());
        std::fputs(body.c_str(), stdout);
        return 0;
    }
    std::fputs(telemetry::registry().renderSnapshot().c_str(), stdout);
    return 0;
}

/** Rewrite a legacy or stale-checksum profile in the current format. */
int
cmdMigrate(const CliOptions &opts)
{
    // The positional argument slot carries the input path here.
    const std::string &in = opts.workload;
    std::string out = opts.profile_out.empty() ? in : opts.profile_out;
    uint32_t version = 0;
    ProfileData pd = ProfileData::loadAnyVersion(in, &version);
    // Atomic: with no -o this overwrites the input, which may be the
    // only copy of the legacy profile — a failed write must not
    // destroy it.
    pd.saveAtomically(out);
    std::printf("migrated %s (format version %u, checksum %016llx) "
                "-> %s\n", in.c_str(), version,
                static_cast<unsigned long long>(pd.payloadChecksum()),
                out.c_str());
    return 0;
}

int
cmdAnalyze(const CliOptions &opts, bool full_report)
{
    Workload w = requireWorkloadByName(opts.workload);

    ProfileData pd;
    if (!opts.profile_in.empty()) {
        pd = ProfileData::load(opts.profile_in);
    } else {
        pd = Collector::collect(*w.program, MachineConfig{},
                                collectorConfigFor(w));
    }

    AnalyzerOptions aopts;
    aopts.map.patch_kernel_text = opts.patch_kernel;
    aopts.classifier = std::make_shared<CutoffClassifier>(
        opts.cutoff, opts.bias_rule);
    Analyzer analyzer(aopts);
    AnalysisResult res = analyzer.analyze(*w.program, pd);

    std::unique_ptr<InstructionMix> mix;
    if (opts.source == "hbbp")
        mix = std::make_unique<InstructionMix>(res.hbbpMix());
    else if (opts.source == "ebs")
        mix = std::make_unique<InstructionMix>(res.ebsMix());
    else if (opts.source == "lbr")
        mix = std::make_unique<InstructionMix>(res.lbrMix());
    else
        fatal("unknown source '%s'", opts.source.c_str());

    Reporter reporter(*mix);
    if (full_report) {
        std::printf("%s\n", reporter.summary().c_str());
        return 0;
    }

    if (!opts.function.empty()) {
        std::string listing =
            reporter.annotatedDisassembly(opts.function);
        if (listing.empty())
            fatal("no function named '%s'", opts.function.c_str());
        std::printf("%s", listing.c_str());
        return 0;
    }

    MixQuery q;
    if (!opts.pivot.empty()) {
        q.group_by.clear();
        for (const std::string &d : opts.pivot)
            q.group_by.push_back(dimFromName(d));
    }
    q.top_n = opts.top;
    TextTable table = mix->pivotTable(q);
    std::printf("%s", opts.csv ? table.renderCsv().c_str()
                               : table.render().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Normal, not Quiet: every warn() in the library marks an
    // exceptional condition a fleet operator needs to see (saturating
    // counter clamps, damaged journals, unusable HBBP_VECTOR_BACKEND
    // requests); nothing warns on the happy path, so normal runs stay
    // as quiet as before.
    setLogLevel(LogLevel::Normal);
    if (argc >= 2 && (std::strcmp(argv[1], "version") == 0 ||
                      std::strcmp(argv[1], "--version") == 0)) {
        std::printf("hbbp-tool %s\n", kVersion);
        return 0;
    }
    CliOptions opts = parse(argc, argv);
    if (opts.command == "list")
        return cmdList();
    if (opts.command == "collect")
        return cmdCollect(opts);
    if (opts.command == "merge")
        return cmdMerge(opts);
    if (opts.command == "batch")
        return cmdBatch(opts);
    if (opts.command == "export")
        return cmdExport(opts);
    if (opts.command == "push")
        return cmdPush(opts);
    if (opts.command == "aggregate")
        return cmdAggregate(opts);
    if (opts.command == "relay")
        return cmdRelay(opts);
    if (opts.command == "store")
        return cmdStore(opts);
    if (opts.command == "stats")
        return cmdStats(opts);
    if (opts.command == "migrate")
        return cmdMigrate(opts);
    if (opts.command == "analyze")
        return cmdAnalyze(opts, /*full_report=*/false);
    if (opts.command == "report")
        return cmdAnalyze(opts, /*full_report=*/true);
    usage();
}
