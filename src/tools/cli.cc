/**
 * @file
 * hbbp-tool — the command-line front end, mirroring the paper's
 * two-phase collector/analyzer workflow:
 *
 *   hbbp-tool version
 *   hbbp-tool list
 *   hbbp-tool collect <workload> -o <profile>
 *   hbbp-tool analyze <workload> -i <profile> [options]
 *   hbbp-tool report  <workload> [-i <profile>] [options]
 *
 * analyze/report options:
 *   --source hbbp|ebs|lbr   data source for the mix (default hbbp)
 *   --cutoff N              HBBP length cutoff (default 18)
 *   --no-bias-rule          disable the bias->EBS term
 *   --patch-kernel          apply the live-kernel-text fix
 *   --pivot d1,d2,...       pivot dims: module,function,block,mnemonic,
 *                           isa,category,packing,width,ring,mem
 *   --top N                 keep the N largest rows
 *   --function NAME         print annotated disassembly of NAME
 *   --csv                   render pivots as CSV
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "hbbp/version.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "tools/profiler.hh"
#include "tools/registry.hh"

using namespace hbbp;

namespace {

struct CliOptions
{
    std::string command;
    std::string workload;
    std::string profile_in;
    std::string profile_out;
    std::string source = "hbbp";
    double cutoff = 18.0;
    bool bias_rule = true;
    bool patch_kernel = false;
    std::vector<std::string> pivot;
    size_t top = 0;
    std::string function;
    bool csv = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: hbbp-tool version\n"
                 "       hbbp-tool list\n"
                 "       hbbp-tool collect <workload> -o <profile>\n"
                 "       hbbp-tool analyze <workload> -i <profile> "
                 "[--source hbbp|ebs|lbr] [--cutoff N]\n"
                 "                 [--no-bias-rule] [--patch-kernel] "
                 "[--pivot dims] [--top N]\n"
                 "                 [--function NAME] [--csv]\n"
                 "       hbbp-tool report <workload> [-i <profile>]\n");
    std::exit(2);
}

CliOptions
parse(int argc, char **argv)
{
    CliOptions opts;
    if (argc < 2)
        usage();
    opts.command = argv[1];
    int i = 2;
    if (opts.command != "list") {
        if (i >= argc)
            usage();
        opts.workload = argv[i++];
    }
    auto need_value = [&](const char *flag) -> std::string {
        if (i >= argc)
            fatal("missing value for %s", flag);
        return argv[i++];
    };
    while (i < argc) {
        std::string arg = argv[i++];
        if (arg == "-o")
            opts.profile_out = need_value("-o");
        else if (arg == "-i")
            opts.profile_in = need_value("-i");
        else if (arg == "--source")
            opts.source = need_value("--source");
        else if (arg == "--cutoff")
            opts.cutoff = std::stod(need_value("--cutoff"));
        else if (arg == "--no-bias-rule")
            opts.bias_rule = false;
        else if (arg == "--patch-kernel")
            opts.patch_kernel = true;
        else if (arg == "--pivot")
            opts.pivot = split(need_value("--pivot"), ',');
        else if (arg == "--top")
            opts.top = static_cast<size_t>(
                std::stoul(need_value("--top")));
        else if (arg == "--function")
            opts.function = need_value("--function");
        else if (arg == "--csv")
            opts.csv = true;
        else
            fatal("unknown option '%s'", arg.c_str());
    }
    return opts;
}

MixDim
dimFromName(const std::string &dim_name)
{
    for (MixDim d : {MixDim::Module, MixDim::Function, MixDim::Block,
                     MixDim::Mnemonic, MixDim::Isa, MixDim::Category,
                     MixDim::Packing, MixDim::Width, MixDim::Ring,
                     MixDim::MemAccess}) {
        if (dim_name == name(d))
            return d;
    }
    fatal("unknown pivot dimension '%s'", dim_name.c_str());
}

Workload
loadWorkload(const std::string &workload_name)
{
    std::optional<Workload> w = makeWorkloadByName(workload_name);
    if (!w)
        fatal("unknown workload '%s' (try `hbbp-tool list`)",
              workload_name.c_str());
    return std::move(*w);
}

int
cmdList()
{
    for (const std::string &w : workloadNames())
        std::printf("%s\n", w.c_str());
    return 0;
}

int
cmdCollect(const CliOptions &opts)
{
    if (opts.profile_out.empty())
        fatal("collect requires -o <profile>");
    Workload w = loadWorkload(opts.workload);
    CollectorConfig cc;
    cc.runtime_class = w.runtime_class;
    cc.max_instructions = w.max_instructions;
    cc.seed = w.exec_seed;
    ProfileData pd = Collector::collect(*w.program, MachineConfig{}, cc);
    pd.save(opts.profile_out);
    std::printf("collected %zu EBS samples + %zu LBR stacks from %llu "
                "instructions -> %s\n", pd.ebs.size(), pd.lbr.size(),
                static_cast<unsigned long long>(
                    pd.features.instructions),
                opts.profile_out.c_str());
    return 0;
}

int
cmdAnalyze(const CliOptions &opts, bool full_report)
{
    Workload w = loadWorkload(opts.workload);

    ProfileData pd;
    if (!opts.profile_in.empty()) {
        pd = ProfileData::load(opts.profile_in);
    } else {
        CollectorConfig cc;
        cc.runtime_class = w.runtime_class;
        cc.max_instructions = w.max_instructions;
        cc.seed = w.exec_seed;
        pd = Collector::collect(*w.program, MachineConfig{}, cc);
    }

    AnalyzerOptions aopts;
    aopts.map.patch_kernel_text = opts.patch_kernel;
    aopts.classifier = std::make_shared<CutoffClassifier>(
        opts.cutoff, opts.bias_rule);
    Analyzer analyzer(aopts);
    AnalysisResult res = analyzer.analyze(*w.program, pd);

    std::unique_ptr<InstructionMix> mix;
    if (opts.source == "hbbp")
        mix = std::make_unique<InstructionMix>(res.hbbpMix());
    else if (opts.source == "ebs")
        mix = std::make_unique<InstructionMix>(res.ebsMix());
    else if (opts.source == "lbr")
        mix = std::make_unique<InstructionMix>(res.lbrMix());
    else
        fatal("unknown source '%s'", opts.source.c_str());

    Reporter reporter(*mix);
    if (full_report) {
        std::printf("%s\n", reporter.summary().c_str());
        return 0;
    }

    if (!opts.function.empty()) {
        std::string listing =
            reporter.annotatedDisassembly(opts.function);
        if (listing.empty())
            fatal("no function named '%s'", opts.function.c_str());
        std::printf("%s", listing.c_str());
        return 0;
    }

    MixQuery q;
    if (!opts.pivot.empty()) {
        q.group_by.clear();
        for (const std::string &d : opts.pivot)
            q.group_by.push_back(dimFromName(d));
    }
    q.top_n = opts.top;
    TextTable table = mix->pivotTable(q);
    std::printf("%s", opts.csv ? table.renderCsv().c_str()
                               : table.render().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Quiet);
    if (argc >= 2 && (std::strcmp(argv[1], "version") == 0 ||
                      std::strcmp(argv[1], "--version") == 0)) {
        std::printf("hbbp-tool %s\n", kVersion);
        return 0;
    }
    CliOptions opts = parse(argc, argv);
    if (opts.command == "list")
        return cmdList();
    if (opts.command == "collect")
        return cmdCollect(opts);
    if (opts.command == "analyze")
        return cmdAnalyze(opts, /*full_report=*/false);
    if (opts.command == "report")
        return cmdAnalyze(opts, /*full_report=*/true);
    usage();
}
