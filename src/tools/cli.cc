/**
 * @file
 * hbbp-tool — the command-line front end, mirroring the paper's
 * two-phase collector/analyzer workflow:
 *
 *   hbbp-tool version
 *   hbbp-tool list
 *   hbbp-tool collect <workload> -o <profile> [--jobs N] [--shards N]
 *                     [--store DIR]
 *   hbbp-tool merge   -o <profile> <in1> <in2> ...
 *   hbbp-tool batch   <w1,w2,...|all> [--jobs N] [--shards N]
 *                     [--store DIR] [--top N] [--csv]
 *   hbbp-tool export  <workload> --host ID --export-dir DIR [--seq N]
 *                     [--jobs N] [--shards N] [--store DIR]
 *   hbbp-tool push    <workload> --host ID (--to HOST:PORT |
 *                     --export-dir DIR) [--seq N] [--chunks N]
 *                     [--retries N] [--jobs N] [-o <profile>]
 *   hbbp-tool aggregate (--watch-dir DIR | --listen PORT)
 *                     [-o <profile>] [--expect N] [--timeout-ms N]
 *                     [--analyze <workload>] [--store DIR]
 *                     [--state FILE] [--port-file FILE]
 *   hbbp-tool migrate <profile-in> [-o <profile-out>]
 *   hbbp-tool analyze <workload> -i <profile> [options]
 *   hbbp-tool report  <workload> [-i <profile>] [options]
 *
 * collect/batch options:
 *   --jobs N                worker threads (default 1)
 *   --shards N              shards per collection (default: jobs)
 *   --store DIR             content-addressed profile cache directory
 *
 * export options (the simulated-host collector):
 *   --host ID               host id stamped into the shard manifest
 *   --export-dir DIR        drop directory shards are exported into
 *   --seq N                 shard sequence number (default 0)
 *
 * push options (export, but over a pluggable shard transport):
 *   --to HOST:PORT          push to an `aggregate --listen` socket
 *   --export-dir DIR        use the drop-directory transport instead
 *   --chunks N              stream the shard as N status=partial
 *                           chunks finalized by a complete frame
 *   --retries N             socket connection attempts (default 5)
 *   -o <profile>            also save the collected profile locally
 *
 * aggregate options (the central aggregation side):
 *   --watch-dir DIR         drop directory to poll for shard manifests
 *   --listen PORT           accept socket pushes on PORT (0 picks an
 *                           ephemeral port)
 *   --bind ADDR             listen address (default 127.0.0.1; pass
 *                           0.0.0.0 to accept remote collectors)
 *   --port-file FILE        write the bound port here (for scripts)
 *   --state FILE            checkpoint aggregator state per accepted
 *                           shard; restored on startup, so a restarted
 *                           job resumes instead of re-importing
 *   --expect N              wait until N shards have been accepted
 *   --timeout-ms N          give up after N ms with no new import
 *                           (an idle timeout, default 10000)
 *   --analyze WORKLOAD      re-analyze after every accepted shard
 *   --store DIR             central store imported shards are copied to
 *
 * analyze/report options:
 *   --source hbbp|ebs|lbr   data source for the mix (default hbbp)
 *   --cutoff N              HBBP length cutoff (default 18)
 *   --no-bias-rule          disable the bias->EBS term
 *   --patch-kernel          apply the live-kernel-text fix
 *   --pivot d1,d2,...       pivot dims: module,function,block,mnemonic,
 *                           isa,category,packing,width,ring,mem
 *   --top N                 keep the N largest rows
 *   --function NAME         print annotated disassembly of NAME
 *   --csv                   render pivots as CSV
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <filesystem>

#include "analysis/report.hh"
#include "fleet/aggregate.hh"
#include "fleet/batch.hh"
#include "fleet/manifest.hh"
#include "fleet/merge.hh"
#include "fleet/shard.hh"
#include "fleet/store.hh"
#include "fleet/transport.hh"
#include "hbbp/version.hh"
#include "support/bytes.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "tools/profiler.hh"
#include "tools/registry.hh"

using namespace hbbp;

namespace {

struct CliOptions
{
    std::string command;
    std::string workload;
    std::string profile_in;
    std::string profile_out;
    std::vector<std::string> inputs; ///< Positional profiles for merge.
    std::string source = "hbbp";
    std::string store_dir;
    double cutoff = 18.0;
    bool bias_rule = true;
    bool patch_kernel = false;
    std::vector<std::string> pivot;
    size_t top = 0;
    unsigned jobs = 1;
    uint32_t shards = 0; ///< 0 = default to jobs.
    std::string function;
    bool csv = false;
    std::string host;             ///< export/push: simulated host id.
    std::string export_dir;       ///< export/push: shard drop directory.
    uint32_t seq = 0;             ///< export/push: shard sequence number.
    std::string to;               ///< push: HOST:PORT to stream to.
    uint32_t chunks = 1;          ///< push: frames to stream the shard as.
    int retries = 5;              ///< push: socket connection attempts.
    int fail_after = -1;          ///< push: test hook, die after N chunks.
    std::string watch_dir;        ///< aggregate: directory to poll.
    int listen_port = -1;         ///< aggregate: socket port (-1 = off).
    std::string bind_addr = "127.0.0.1"; ///< aggregate: listen address.
    std::string port_file;        ///< aggregate: bound-port report file.
    std::string state_file;       ///< aggregate: checkpoint/restore path.
    size_t expect = 0;            ///< aggregate: shards to wait for.
    int timeout_ms = 10'000;      ///< aggregate: idle timeout.
    std::string analyze_workload; ///< aggregate: per-arrival analysis.
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: hbbp-tool version\n"
                 "       hbbp-tool list\n"
                 "       hbbp-tool collect <workload> -o <profile> "
                 "[--jobs N] [--shards N] [--store DIR]\n"
                 "       hbbp-tool merge -o <profile> <in1> <in2> ...\n"
                 "       hbbp-tool batch <w1,w2,...|all> [--jobs N] "
                 "[--shards N] [--store DIR]\n"
                 "                 [--top N] [--csv]\n"
                 "       hbbp-tool export <workload> --host ID "
                 "--export-dir DIR [--seq N]\n"
                 "                 [--jobs N] [--shards N] [--store DIR]\n"
                 "       hbbp-tool push <workload> --host ID "
                 "(--to HOST:PORT | --export-dir DIR)\n"
                 "                 [--seq N] [--chunks N] [--retries N] "
                 "[--jobs N] [-o <profile>]\n"
                 "       hbbp-tool aggregate (--watch-dir DIR | "
                 "--listen PORT) [-o <profile>]\n"
                 "                 [--expect N] [--timeout-ms N] "
                 "[--analyze <workload>] [--store DIR]\n"
                 "                 [--state FILE] [--port-file FILE] "
                 "[--bind ADDR]\n"
                 "       hbbp-tool migrate <profile-in> "
                 "[-o <profile-out>]\n"
                 "       hbbp-tool analyze <workload> -i <profile> "
                 "[--source hbbp|ebs|lbr] [--cutoff N]\n"
                 "                 [--no-bias-rule] [--patch-kernel] "
                 "[--pivot dims] [--top N]\n"
                 "                 [--function NAME] [--csv]\n"
                 "       hbbp-tool report <workload> [-i <profile>]\n");
    std::exit(2);
}

CliOptions
parse(int argc, char **argv)
{
    CliOptions opts;
    if (argc < 2)
        usage();
    opts.command = argv[1];
    int i = 2;
    // merge takes positional profiles, aggregate only flags; every
    // other command (but list) leads with a positional argument — a
    // workload name, or the input profile for migrate.
    if (opts.command != "list" && opts.command != "merge" &&
        opts.command != "aggregate") {
        if (i >= argc)
            usage();
        opts.workload = argv[i++];
    }
    auto need_value = [&](const char *flag) -> std::string {
        if (i >= argc)
            fatal("missing value for %s", flag);
        return argv[i++];
    };
    // std::stoul/stod would throw (or wrap negatives) on bad input;
    // every malformed flag value should die with a fatal() diagnostic.
    auto need_count = [&](const char *flag,
                          uint64_t max = UINT64_MAX) -> uint64_t {
        std::string value = need_value(flag);
        errno = 0;
        char *end = nullptr;
        unsigned long long v = std::strtoull(value.c_str(), &end, 10);
        if (value.empty() || *end != '\0' || errno == ERANGE ||
            value[0] == '-')
            fatal("invalid value '%s' for %s (expected a non-negative "
                  "integer)", value.c_str(), flag);
        // Narrowing would silently truncate (e.g. 2^32 shards -> 0).
        if (v > max)
            fatal("value '%s' for %s is out of range (max %llu)",
                  value.c_str(), flag,
                  static_cast<unsigned long long>(max));
        return v;
    };
    auto need_number = [&](const char *flag) -> double {
        std::string value = need_value(flag);
        errno = 0;
        char *end = nullptr;
        double v = std::strtod(value.c_str(), &end);
        if (value.empty() || *end != '\0' || errno == ERANGE)
            fatal("invalid value '%s' for %s (expected a number)",
                  value.c_str(), flag);
        return v;
    };
    while (i < argc) {
        std::string arg = argv[i++];
        if (arg == "-o")
            opts.profile_out = need_value("-o");
        else if (arg == "-i")
            opts.profile_in = need_value("-i");
        else if (arg == "--source")
            opts.source = need_value("--source");
        else if (arg == "--store")
            opts.store_dir = need_value("--store");
        else if (arg == "--cutoff")
            opts.cutoff = need_number("--cutoff");
        else if (arg == "--no-bias-rule")
            opts.bias_rule = false;
        else if (arg == "--patch-kernel")
            opts.patch_kernel = true;
        else if (arg == "--pivot")
            opts.pivot = split(need_value("--pivot"), ',');
        else if (arg == "--top")
            opts.top = static_cast<size_t>(need_count("--top"));
        else if (arg == "--jobs")
            opts.jobs = static_cast<unsigned>(
                need_count("--jobs", UINT_MAX));
        else if (arg == "--shards")
            opts.shards = static_cast<uint32_t>(
                need_count("--shards", UINT32_MAX));
        else if (arg == "--function")
            opts.function = need_value("--function");
        else if (arg == "--csv")
            opts.csv = true;
        else if (arg == "--host")
            opts.host = need_value("--host");
        else if (arg == "--export-dir")
            opts.export_dir = need_value("--export-dir");
        else if (arg == "--seq")
            opts.seq = static_cast<uint32_t>(
                need_count("--seq", UINT32_MAX));
        else if (arg == "--to")
            opts.to = need_value("--to");
        else if (arg == "--chunks")
            opts.chunks = static_cast<uint32_t>(
                need_count("--chunks", UINT32_MAX));
        else if (arg == "--retries")
            opts.retries = static_cast<int>(
                need_count("--retries", INT_MAX));
        else if (arg == "--fail-after")
            opts.fail_after = static_cast<int>(
                need_count("--fail-after", INT_MAX));
        else if (arg == "--watch-dir")
            opts.watch_dir = need_value("--watch-dir");
        else if (arg == "--listen")
            opts.listen_port = static_cast<int>(
                need_count("--listen", UINT16_MAX));
        else if (arg == "--bind")
            opts.bind_addr = need_value("--bind");
        else if (arg == "--port-file")
            opts.port_file = need_value("--port-file");
        else if (arg == "--state")
            opts.state_file = need_value("--state");
        else if (arg == "--expect")
            opts.expect = static_cast<size_t>(need_count("--expect"));
        else if (arg == "--timeout-ms")
            opts.timeout_ms = static_cast<int>(
                need_count("--timeout-ms", INT_MAX));
        else if (arg == "--analyze")
            opts.analyze_workload = need_value("--analyze");
        else if (!arg.empty() && arg[0] == '-')
            fatal("unknown option '%s'", arg.c_str());
        else if (opts.command == "merge")
            opts.inputs.push_back(arg);
        else
            fatal("unexpected argument '%s'", arg.c_str());
    }
    if (opts.jobs == 0)
        fatal("--jobs must be >= 1");
    if (opts.shards == 0)
        opts.shards = std::max(opts.jobs, 1u);
    return opts;
}

MixDim
dimFromName(const std::string &dim_name)
{
    for (MixDim d : {MixDim::Module, MixDim::Function, MixDim::Block,
                     MixDim::Mnemonic, MixDim::Isa, MixDim::Category,
                     MixDim::Packing, MixDim::Width, MixDim::Ring,
                     MixDim::MemAccess}) {
        if (dim_name == name(d))
            return d;
    }
    fatal("unknown pivot dimension '%s'", dim_name.c_str());
}

int
cmdList()
{
    for (const std::string &w : workloadNames())
        std::printf("%s\n", w.c_str());
    return 0;
}

int
cmdCollect(const CliOptions &opts)
{
    if (opts.profile_out.empty())
        fatal("collect requires -o <profile>");
    Workload w = requireWorkloadByName(opts.workload);
    CollectorConfig cc = collectorConfigFor(w);

    ShardPlan plan;
    plan.shards = opts.shards;
    plan.jobs = opts.jobs;

    ProfileData pd;
    bool cache_hit = false;
    if (!opts.store_dir.empty()) {
        ProfileStore store(opts.store_dir);
        ProfileKey key{w.name, cc, plan.shards, MachineConfig{}};
        pd = store.getOrCollect(key, *w.program, plan.jobs, &cache_hit);
    } else {
        pd = collectSharded(*w.program, MachineConfig{}, cc, plan);
    }
    pd.save(opts.profile_out);
    std::printf("collected %zu EBS samples + %zu LBR stacks from %llu "
                "instructions (%u shard%s%s) -> %s\n",
                pd.ebs.size(), pd.lbr.size(),
                static_cast<unsigned long long>(
                    pd.features.instructions),
                plan.shards, plan.shards == 1 ? "" : "s",
                cache_hit ? ", store hit" : "",
                opts.profile_out.c_str());
    return 0;
}

int
cmdMerge(const CliOptions &opts)
{
    if (opts.profile_out.empty())
        fatal("merge requires -o <profile>");
    if (opts.inputs.size() < 2)
        fatal("merge requires at least two input profiles");
    std::vector<ProfileData> shards;
    shards.reserve(opts.inputs.size());
    for (const std::string &path : opts.inputs)
        shards.push_back(ProfileData::load(path));
    ProfileData merged = mergeProfiles(shards);
    merged.save(opts.profile_out);
    std::printf("merged %zu profiles: %zu EBS samples + %zu LBR stacks "
                "-> %s\n", shards.size(), merged.ebs.size(),
                merged.lbr.size(), opts.profile_out.c_str());
    return 0;
}

int
cmdBatch(const CliOptions &opts)
{
    std::vector<std::string> workloads;
    if (opts.workload == "all")
        workloads = workloadNames();
    else
        workloads = split(opts.workload, ',');

    BatchConfig bc;
    bc.shards = opts.shards;
    bc.jobs = opts.jobs;
    bc.store_dir = opts.store_dir;
    bc.analyzer.map.patch_kernel_text = opts.patch_kernel;
    bc.analyzer.classifier = std::make_shared<CutoffClassifier>(
        opts.cutoff, opts.bias_rule);

    BatchResult res = runBatch(workloads, bc);

    TextTable summary = res.summaryTable();
    TextTable mix = res.aggregateMixTable(opts.top);
    if (opts.csv) {
        std::printf("%s\n%s", summary.renderCsv().c_str(),
                    mix.renderCsv().c_str());
    } else {
        std::printf("batch: %zu workloads, %u shards each, %u jobs, "
                    "%zu store hit%s\n\n", res.entries.size(),
                    bc.shards, bc.jobs, res.cache_hits,
                    res.cache_hits == 1 ? "" : "s");
        std::printf("%s\n", summary.render().c_str());
        std::printf("aggregated fleet mix:\n%s", mix.render().c_str());
    }
    return 0;
}

/**
 * The simulated-host collector: collect (host-seeded, so distinct
 * hosts produce distinct but reproducible profiles) and export the
 * result as a shard into a drop directory.
 */
int
cmdExport(const CliOptions &opts)
{
    if (opts.host.empty())
        fatal("export requires --host <id>");
    if (opts.export_dir.empty())
        fatal("export requires --export-dir <dir>");
    Workload w = requireWorkloadByName(opts.workload);
    CollectorConfig cc = collectorConfigFor(w);
    cc.seed = hostStreamSeed(cc.seed, opts.host, opts.seq);
    cc.pmu.seed = hostStreamSeed(cc.pmu.seed ^ 0x5851f42d4c957f2dULL,
                                 opts.host, opts.seq);

    ShardPlan plan;
    plan.shards = opts.shards;
    plan.jobs = opts.jobs;
    ProfileKey key{w.name, cc, plan.shards, MachineConfig{}};

    ProfileData pd;
    bool cache_hit = false;
    if (!opts.store_dir.empty()) {
        ProfileStore store(opts.store_dir);
        pd = store.getOrCollect(key, *w.program, plan.jobs, &cache_hit);
    } else {
        pd = collectSharded(*w.program, MachineConfig{}, cc, plan);
    }

    ShardManifest manifest;
    std::string manifest_path =
        exportShard(pd, opts.host, w.name, opts.seq, key.hash(),
                    opts.export_dir, &manifest);
    std::printf("exported shard host=%s seq=%u workload=%s "
                "checksum=%016llx (%zu EBS samples + %zu LBR stacks%s) "
                "-> %s\n",
                opts.host.c_str(), opts.seq, w.name.c_str(),
                static_cast<unsigned long long>(manifest.checksum),
                pd.ebs.size(), pd.lbr.size(),
                cache_hit ? ", store hit" : "", manifest_path.c_str());
    return 0;
}

/**
 * Export's sibling over the pluggable transport layer: collect
 * host-seeded, then *push* the shard — to an `aggregate --listen`
 * socket (optionally streamed as N partial chunks) or through the
 * drop-directory transport.
 */
int
cmdPush(const CliOptions &opts)
{
    if (opts.host.empty())
        fatal("push requires --host <id>");
    if (opts.to.empty() == opts.export_dir.empty())
        fatal("push requires exactly one of --to <host:port> or "
              "--export-dir <dir>");
    if (opts.chunks == 0)
        fatal("--chunks must be >= 1");
    Workload w = requireWorkloadByName(opts.workload);
    CollectorConfig cc = collectorConfigFor(w);
    cc.seed = hostStreamSeed(cc.seed, opts.host, opts.seq);
    cc.pmu.seed = hostStreamSeed(cc.pmu.seed ^ 0x5851f42d4c957f2dULL,
                                 opts.host, opts.seq);

    // The chunk is the streaming unit: collect --chunks shards whose
    // in-order merge is the shard profile, so long collections can
    // deliver incrementally as each chunk finishes.
    ShardPlan plan;
    plan.shards = opts.chunks;
    plan.jobs = opts.jobs;
    ProfileKey key{w.name, cc, plan.shards, MachineConfig{}};
    std::vector<ProfileData> parts =
        collectShards(*w.program, MachineConfig{}, cc, plan);
    ProfileData merged = mergeProfiles(parts);

    ShardManifest manifest;
    manifest.host = opts.host;
    manifest.workload = w.name;
    manifest.seq = opts.seq;
    manifest.options_hash = key.hash();

    std::vector<std::string> chunks;
    if (opts.chunks == 1) {
        chunks.push_back(merged.serialize(&manifest.checksum));
    } else {
        // Chunked mode sends the parts; the merged profile only
        // contributes its checksum, so skip serializing its bytes.
        manifest.checksum = merged.payloadChecksum();
        chunks.reserve(parts.size());
        for (const ProfileData &part : parts)
            chunks.push_back(part.serialize());
    }
    if (!opts.profile_out.empty())
        merged.save(opts.profile_out);

    SendResult res;
    if (!opts.to.empty()) {
        size_t colon = opts.to.rfind(':');
        if (colon == std::string::npos || colon + 1 >= opts.to.size())
            fatal("--to expects HOST:PORT, got '%s'", opts.to.c_str());
        SocketTransportOptions so;
        so.host = opts.to.substr(0, colon);
        // Bare digits only: strtoul would skip whitespace and accept
        // signs, the exact laxity the manifest parser rejects.
        std::string port_str = opts.to.substr(colon + 1);
        unsigned long port = 0;
        bool digits = port_str.size() <= 5;
        for (char c : port_str)
            if (!std::isdigit(static_cast<unsigned char>(c)))
                digits = false;
        if (digits)
            port = std::strtoul(port_str.c_str(), nullptr, 10);
        if (!digits || port == 0 || port > UINT16_MAX)
            fatal("invalid port in '%s'", opts.to.c_str());
        so.port = static_cast<uint16_t>(port);
        so.max_attempts = std::max(opts.retries, 1);
        SocketTransport transport(so);
        transport.fail_after_chunks = opts.fail_after;
        res = transport.sendShard(manifest, chunks);
    } else {
        DropDirTransport transport(opts.export_dir);
        res = transport.sendShard(manifest, chunks);
    }
    if (!res.ok)
        fatal("push failed: %s", res.error.c_str());

    std::printf("pushed shard host=%s seq=%u workload=%s "
                "checksum=%016llx (%zu chunk%s, %d attempt%s%s) "
                "-> %s\n",
                opts.host.c_str(), opts.seq, w.name.c_str(),
                static_cast<unsigned long long>(manifest.checksum),
                chunks.size(), chunks.size() == 1 ? "" : "s",
                res.attempts, res.attempts == 1 ? "" : "s",
                res.duplicate ? ", duplicate" : "",
                opts.to.empty() ? opts.export_dir.c_str()
                                : opts.to.c_str());
    return 0;
}

/**
 * The central aggregation side: fold shards from N hosts as they
 * arrive — polled out of a drop directory or pushed to a listening
 * socket — optionally re-analyzing per arrival, checkpointing
 * restorable state per arrival, and persisting the canonical
 * aggregate.
 */
int
cmdAggregate(const CliOptions &opts)
{
    bool listening = opts.listen_port >= 0;
    if (opts.watch_dir.empty() == !listening)
        fatal("aggregate requires exactly one of --watch-dir <dir> or "
              "--listen <port>");

    std::optional<ProfileStore> central;
    if (!opts.store_dir.empty())
        central.emplace(opts.store_dir);

    std::optional<Workload> aw;
    if (!opts.analyze_workload.empty())
        aw = requireWorkloadByName(opts.analyze_workload);
    Analyzer analyzer;

    IncrementalAggregator agg;
    if (!opts.state_file.empty()) {
        std::string why;
        if (agg.restoreState(opts.state_file, &why)) {
            std::printf("restored aggregator state from %s: "
                        "%zu shard%s across %zu host%s\n",
                        opts.state_file.c_str(), agg.restoredShards(),
                        agg.restoredShards() == 1 ? "" : "s",
                        agg.hostCount(),
                        agg.hostCount() == 1 ? "" : "s");
        } else if (std::filesystem::exists(opts.state_file)) {
            // A present-but-unreadable state file is a cold start, not
            // a crash: the shards can always be re-imported.
            warn("ignoring aggregator state: %s", why.c_str());
        }
    }
    // Checkpoint after every accepted shard (and the per-arrival
    // analysis/deposit), before the arrival is acknowledged: a killed
    // aggregator restarted with the same --state resumes from its
    // partials instead of re-importing the fleet.
    auto per_accept = [&](const ShardManifest &m,
                          const ProfileData *profile) {
        if (central && !central->containsChecksum(m.checksum)) {
            if (profile)
                central->insertByChecksum(m.checksum, *profile);
            else
                central->depositFileByChecksum(
                    m.checksum, opts.watch_dir + "/" + m.profile_file);
        }
        if (aw)
            agg.analyzeWith(*aw->program, analyzer);
        // Full-state rewrite per accept: O(aggregate size) I/O each
        // arrival, which is fine at simulated-fleet scale but the
        // first thing to revisit for very large fleets (see ROADMAP:
        // incremental state journaling).
        if (!opts.state_file.empty())
            agg.saveState(opts.state_file);
    };

    if (listening) {
        ShardListener listener(
            static_cast<uint16_t>(opts.listen_port), opts.bind_addr);
        std::printf("listening on %s:%u\n", opts.bind_addr.c_str(),
                    listener.port());
        std::fflush(stdout);
        if (!opts.port_file.empty())
            writeFileAtomically(opts.port_file,
                                format("%u\n", listener.port()));
        ListenOptions lo;
        lo.expect = opts.expect;
        lo.idle_timeout_ms = opts.timeout_ms;
        lo.on_accept = [&](const ShardManifest &m,
                           const ProfileData &pd) {
            per_accept(m, &pd);
        };
        listener.serve(agg, lo);
    } else {
        WatchOptions wo;
        wo.expect = opts.expect;
        wo.timeout_ms = opts.timeout_ms;
        wo.on_accept = [&](const ShardManifest &m) {
            // The shard's bytes were already verified during import,
            // so the deposit copies the file instead of re-parsing it.
            per_accept(m, nullptr);
        };
        watchAndAggregate(agg, opts.watch_dir, wo);
    }

    const AggregatorStats &st = agg.stats();
    if (opts.expect > 0 && st.accepted < opts.expect)
        fatal("no shard for %d ms while waiting for %zu shards via "
              "'%s' (accepted %zu, duplicates %zu, incompatible %zu, "
              "malformed %zu)",
              opts.timeout_ms, opts.expect,
              listening ? "--listen" : opts.watch_dir.c_str(),
              st.accepted, st.duplicates, st.incompatible,
              st.malformed);
    if (!opts.profile_out.empty())
        agg.aggregate().save(opts.profile_out);

    std::printf("aggregate: accepted=%zu duplicates=%zu "
                "incompatible=%zu malformed=%zu analyses=%zu "
                "rebuilds=%zu restored=%zu hosts=%zu%s%s\n",
                st.accepted, st.duplicates, st.incompatible,
                st.malformed, st.analyses, st.rebuilds,
                agg.restoredShards(), agg.hostCount(),
                opts.profile_out.empty() ? "" : " -> ",
                opts.profile_out.c_str());
    return 0;
}

/** Rewrite a legacy or stale-checksum profile in the current format. */
int
cmdMigrate(const CliOptions &opts)
{
    // The positional argument slot carries the input path here.
    const std::string &in = opts.workload;
    std::string out = opts.profile_out.empty() ? in : opts.profile_out;
    uint32_t version = 0;
    ProfileData pd = ProfileData::loadAnyVersion(in, &version);
    // Atomic: with no -o this overwrites the input, which may be the
    // only copy of the legacy profile — a failed write must not
    // destroy it.
    pd.saveAtomically(out);
    std::printf("migrated %s (format version %u, checksum %016llx) "
                "-> %s\n", in.c_str(), version,
                static_cast<unsigned long long>(pd.payloadChecksum()),
                out.c_str());
    return 0;
}

int
cmdAnalyze(const CliOptions &opts, bool full_report)
{
    Workload w = requireWorkloadByName(opts.workload);

    ProfileData pd;
    if (!opts.profile_in.empty()) {
        pd = ProfileData::load(opts.profile_in);
    } else {
        pd = Collector::collect(*w.program, MachineConfig{},
                                collectorConfigFor(w));
    }

    AnalyzerOptions aopts;
    aopts.map.patch_kernel_text = opts.patch_kernel;
    aopts.classifier = std::make_shared<CutoffClassifier>(
        opts.cutoff, opts.bias_rule);
    Analyzer analyzer(aopts);
    AnalysisResult res = analyzer.analyze(*w.program, pd);

    std::unique_ptr<InstructionMix> mix;
    if (opts.source == "hbbp")
        mix = std::make_unique<InstructionMix>(res.hbbpMix());
    else if (opts.source == "ebs")
        mix = std::make_unique<InstructionMix>(res.ebsMix());
    else if (opts.source == "lbr")
        mix = std::make_unique<InstructionMix>(res.lbrMix());
    else
        fatal("unknown source '%s'", opts.source.c_str());

    Reporter reporter(*mix);
    if (full_report) {
        std::printf("%s\n", reporter.summary().c_str());
        return 0;
    }

    if (!opts.function.empty()) {
        std::string listing =
            reporter.annotatedDisassembly(opts.function);
        if (listing.empty())
            fatal("no function named '%s'", opts.function.c_str());
        std::printf("%s", listing.c_str());
        return 0;
    }

    MixQuery q;
    if (!opts.pivot.empty()) {
        q.group_by.clear();
        for (const std::string &d : opts.pivot)
            q.group_by.push_back(dimFromName(d));
    }
    q.top_n = opts.top;
    TextTable table = mix->pivotTable(q);
    std::printf("%s", opts.csv ? table.renderCsv().c_str()
                               : table.render().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Quiet);
    if (argc >= 2 && (std::strcmp(argv[1], "version") == 0 ||
                      std::strcmp(argv[1], "--version") == 0)) {
        std::printf("hbbp-tool %s\n", kVersion);
        return 0;
    }
    CliOptions opts = parse(argc, argv);
    if (opts.command == "list")
        return cmdList();
    if (opts.command == "collect")
        return cmdCollect(opts);
    if (opts.command == "merge")
        return cmdMerge(opts);
    if (opts.command == "batch")
        return cmdBatch(opts);
    if (opts.command == "export")
        return cmdExport(opts);
    if (opts.command == "push")
        return cmdPush(opts);
    if (opts.command == "aggregate")
        return cmdAggregate(opts);
    if (opts.command == "migrate")
        return cmdMigrate(opts);
    if (opts.command == "analyze")
        return cmdAnalyze(opts, /*full_report=*/false);
    if (opts.command == "report")
        return cmdAnalyze(opts, /*full_report=*/true);
    usage();
}
