/**
 * @file
 * hbbp-tool — the command-line front end, mirroring the paper's
 * two-phase collector/analyzer workflow:
 *
 *   hbbp-tool version
 *   hbbp-tool list
 *   hbbp-tool collect <workload> -o <profile> [--jobs N] [--shards N]
 *                     [--store DIR]
 *   hbbp-tool merge   -o <profile> <in1> <in2> ...
 *   hbbp-tool batch   <w1,w2,...|all> [--jobs N] [--shards N]
 *                     [--store DIR] [--top N] [--csv]
 *   hbbp-tool export  <workload> --host ID --export-dir DIR [--seq N]
 *                     [--jobs N] [--shards N] [--store DIR]
 *   hbbp-tool push    <workload> --host ID (--to HOST:PORT |
 *                     --export-dir DIR) [--seq N] [--chunks N]
 *                     [--retries N] [--jobs N] [-o <profile>]
 *   hbbp-tool aggregate (--watch-dir DIR | --listen PORT)
 *                     [-o <profile>] [--expect N] [--timeout-ms N]
 *                     [--analyze <workload>] [--store DIR]
 *                     [--state FILE] [--port-file FILE]
 *                     [--journal-every N]
 *   hbbp-tool relay   --listen PORT --to HOST:PORT [--relay-id ID]
 *                     [--flush-every N] [--expect N] [--timeout-ms N]
 *                     [--state FILE] [--journal-every N] [--retries N]
 *                     [--bind ADDR] [--port-file FILE] [--store DIR]
 *   hbbp-tool serve   --listen PORT [--state FILE] [--expect N]
 *                     [--timeout-ms N] [--bind ADDR] [--port-file FILE]
 *                     [--metrics-port N] [--journal-every N]
 *                     [--store DIR]
 *   hbbp-tool query   --from HOST:PORT <verb> [--host H] [options]
 *   hbbp-tool store   gc --store DIR [--max-age-s N] [--max-bytes N]
 *   hbbp-tool store   (stat|verify|rebuild-index) --store DIR
 *   hbbp-tool stats   [--from HOST:PORT] [--tree] [--healthz]
 *                     [--watch N [--count M]]
 *   hbbp-tool events  --from FILE [--code C] [--since T]
 *   hbbp-tool migrate <profile-in> [-o <profile-out>]
 *   hbbp-tool analyze <workload> -i <profile> [options]
 *   hbbp-tool report  <workload> [-i <profile>] [options]
 *   hbbp-tool fdo     <workload> -i <profile> [-o FILE] [options]
 *
 * Per-command options are declared in tools/options.hh; the analysis
 * flags (--source/--cutoff/--no-bias-rule/--patch-kernel/--pivot/
 * --top/--function/--format) are shared by analyze, report, fdo and
 * query, and --format text|csv|json renders any analysis view
 * uniformly (--csv remains an alias for --format csv).
 *
 * serve is the query-serving daemon: it co-hosts a shard listener
 * (collectors keep pushing to the same port) and the hbbp-query/1
 * endpoint, answering mix/report/fdo/hosts/status queries over the
 * live aggregate with per-epoch result caching. query is the matching
 * client; its stdout carries exactly the bytes offline analyze/report
 * would print, with `epoch=N cached=K` metadata on stderr. A
 * `shutdown` verb stops the daemon deterministically.
 */

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/service.hh"
#include "fleet/aggregate.hh"
#include "fleet/batch.hh"
#include "fleet/journal.hh"
#include "fleet/manifest.hh"
#include "fleet/merge.hh"
#include "fleet/metrics.hh"
#include "fleet/query.hh"
#include "fleet/relay.hh"
#include "fleet/shard.hh"
#include "fleet/socket_client.hh"
#include "fleet/store.hh"
#include "fleet/transport.hh"
#include "hbbp/version.hh"
#include "support/bytes.hh"
#include "support/events.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"
#include "tools/options.hh"
#include "tools/profiler.hh"
#include "tools/registry.hh"

using namespace hbbp;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: hbbp-tool version\n"
                 "       hbbp-tool list\n"
                 "       hbbp-tool collect <workload> -o <profile> "
                 "[--jobs N] [--shards N] [--store DIR]\n"
                 "       hbbp-tool merge -o <profile> <in1> <in2> ...\n"
                 "       hbbp-tool batch <w1,w2,...|all> [--jobs N] "
                 "[--shards N] [--store DIR]\n"
                 "                 [--top N] [--csv]\n"
                 "       hbbp-tool export <workload> --host ID "
                 "--export-dir DIR [--seq N]\n"
                 "                 [--jobs N] [--shards N] [--store DIR]\n"
                 "       hbbp-tool push <workload> --host ID "
                 "(--to HOST:PORT | --export-dir DIR)\n"
                 "                 [--seq N] [--chunks N] [--retries N] "
                 "[--jobs N] [-o <profile>]\n"
                 "       hbbp-tool aggregate (--watch-dir DIR | "
                 "--listen PORT) [-o <profile>]\n"
                 "                 [--expect N] [--timeout-ms N] "
                 "[--analyze <workload>] [--store DIR]\n"
                 "                 [--state FILE] [--port-file FILE] "
                 "[--bind ADDR] [--journal-every N]\n"
                 "       hbbp-tool relay --listen PORT --to HOST:PORT "
                 "[--relay-id ID]\n"
                 "                 [--flush-every N] [--expect N] "
                 "[--timeout-ms N] [--state FILE]\n"
                 "                 [--journal-every N] [--retries N] "
                 "[--bind ADDR] [--port-file FILE] [--store DIR]\n"
                 "       hbbp-tool serve --listen PORT [--state FILE] "
                 "[--expect N] [--timeout-ms N]\n"
                 "                 [--bind ADDR] [--port-file FILE] "
                 "[--metrics-port N] [--journal-every N] "
                 "[--store DIR]\n"
                 "       (daemons also take --trace-log FILE "
                 "--event-log FILE --stall-warn-s N)\n"
                 "       hbbp-tool query --from HOST:PORT "
                 "<mix|report|fdo|hosts|status|shutdown>\n"
                 "                 [--host ID] [--format text|csv|json] "
                 "[analysis options]\n"
                 "       hbbp-tool store gc --store DIR "
                 "[--max-age-s N] [--max-bytes N]\n"
                 "       hbbp-tool store (stat|verify|rebuild-index) "
                 "--store DIR\n"
                 "       hbbp-tool stats [--from HOST:PORT] [--tree] "
                 "[--healthz]\n"
                 "                 [--watch N [--count M]]\n"
                 "       hbbp-tool events --from FILE [--code C] "
                 "[--since T]\n"
                 "       hbbp-tool migrate <profile-in> "
                 "[-o <profile-out>]\n"
                 "       hbbp-tool analyze <workload> -i <profile> "
                 "[--source hbbp|ebs|lbr] [--cutoff N]\n"
                 "                 [--no-bias-rule] [--patch-kernel] "
                 "[--pivot dims] [--top N]\n"
                 "                 [--function NAME] "
                 "[--format text|csv|json]\n"
                 "       hbbp-tool report <workload> [-i <profile>] "
                 "[--format text|csv|json]\n"
                 "       hbbp-tool fdo <workload> -i <profile> "
                 "[-o FILE] [--cutoff N]\n"
                 "                 [--format text|csv|json]\n");
    std::exit(2);
}

void
onSigUsr1(int)
{
    // Async-signal-safe: one relaxed store; the daemon's accept loop
    // polls dumpIfRequested() and prints the snapshot from there.
    telemetry::requestDump();
}

/**
 * A daemon's whole health plane, torn down in one place: the
 * metrics/healthz endpoint, the federation scraper behind it, and the
 * stall watchdog. stop() order matters — the watchdog and federator
 * reference telemetry state the server renders, so they go first.
 */
struct Observability
{
    std::unique_ptr<MetricsServer> server;
    std::unique_ptr<MetricsFederator> federator;
    events::StallWatchdog watchdog;
    /** HOST:PORT children should scrape; "" when metrics are off. */
    std::string endpoint;

    void
    stop(const char *banner)
    {
        watchdog.stop();
        if (federator)
            federator->stop();
        if (server) {
            server->stop();
            telemetry::dumpSnapshot(banner);
        }
    }
};

/**
 * Daemon observability setup shared by aggregate, relay and serve:
 * open the structured event log, arm the stall watchdog and the
 * SIGUSR1 snapshot dump, and start the metrics endpoint when
 * requested (reporting the bound port for scripts). Every daemon
 * federates: children discovered from `metrics=` manifest lines are
 * scraped and merged into this daemon's own /metrics body, and
 * /healthz degrades on a stalled loop stage or a stale child.
 */
std::unique_ptr<Observability>
startObservability(const DaemonOptions &opts, const std::string &node)
{
    std::signal(SIGUSR1, onSigUsr1);
    auto obs = std::make_unique<Observability>();
    events::openLog(opts.event_log, node);
    obs->watchdog.start(opts.stall_warn_s);
    if (opts.metrics_port < 0)
        return obs;
    obs->server = std::make_unique<MetricsServer>(
        static_cast<uint16_t>(opts.metrics_port));
    obs->endpoint = format("127.0.0.1:%u", obs->server->port());
    obs->federator = std::make_unique<MetricsFederator>();
    MetricsFederator *fed = obs->federator.get();
    obs->server->setMetricsRenderer([fed] {
        return federateMetricsText(
            telemetry::registry().renderPrometheus(),
            fed->snapshots());
    });
    // The watchdog threshold doubles as the healthz degrade
    // threshold; without --stall-warn-s keep the server's default.
    double stall_s = opts.stall_warn_s > 0 ? opts.stall_warn_s : 30.0;
    obs->server->setHealthzRenderer(
        [stall_s, fed] { return renderHealthz(stall_s, fed); });
    std::printf("metrics on port %u\n", obs->server->port());
    std::fflush(stdout);
    if (!opts.metrics_port_file.empty())
        writeFileAtomically(opts.metrics_port_file,
                            format("%u\n", obs->server->port()));
    return obs;
}

int
cmdList()
{
    for (const std::string &w : workloadNames())
        std::printf("%s\n", w.c_str());
    return 0;
}

int
cmdCollect(const CollectOptions &opts)
{
    if (opts.profile_out.empty())
        fatal("collect requires -o <profile>");
    Workload w = requireWorkloadByName(opts.workload);
    CollectorConfig cc = collectorConfigFor(w);

    ShardPlan plan;
    plan.shards = opts.coll.shards;
    plan.jobs = opts.coll.jobs;

    ProfileData pd;
    bool cache_hit = false;
    if (!opts.coll.store_dir.empty()) {
        ProfileStore store(opts.coll.store_dir);
        ProfileKey key{w.name, cc, plan.shards, MachineConfig{}};
        pd = store.getOrCollect(key, *w.program, plan.jobs, &cache_hit);
    } else {
        pd = collectSharded(*w.program, MachineConfig{}, cc, plan);
    }
    pd.save(opts.profile_out);
    std::printf("collected %zu EBS samples + %zu LBR stacks from %llu "
                "instructions (%u shard%s%s) -> %s\n",
                pd.ebs.size(), pd.lbr.size(),
                static_cast<unsigned long long>(
                    pd.features.instructions),
                plan.shards, plan.shards == 1 ? "" : "s",
                cache_hit ? ", store hit" : "",
                opts.profile_out.c_str());
    return 0;
}

int
cmdMerge(const MergeOptions &opts)
{
    if (opts.profile_out.empty())
        fatal("merge requires -o <profile>");
    if (opts.inputs.size() < 2)
        fatal("merge requires at least two input profiles");
    std::vector<ProfileData> shards;
    shards.reserve(opts.inputs.size());
    for (const std::string &path : opts.inputs)
        shards.push_back(ProfileData::load(path));
    ProfileData merged = mergeProfiles(shards);
    merged.save(opts.profile_out);
    std::printf("merged %zu profiles: %zu EBS samples + %zu LBR stacks "
                "-> %s\n", shards.size(), merged.ebs.size(),
                merged.lbr.size(), opts.profile_out.c_str());
    return 0;
}

int
cmdBatch(const BatchOptions &opts)
{
    std::vector<std::string> workloads;
    if (opts.workloads == "all")
        workloads = workloadNames();
    else
        workloads = split(opts.workloads, ',');

    BatchConfig bc;
    bc.shards = opts.coll.shards;
    bc.jobs = opts.coll.jobs;
    bc.store_dir = opts.coll.store_dir;
    bc.analyzer.map.patch_kernel_text = opts.analysis.patch_kernel;
    bc.analyzer.classifier = std::make_shared<CutoffClassifier>(
        opts.analysis.cutoff, opts.analysis.bias_rule);

    BatchResult res = runBatch(workloads, bc);

    TextTable summary = res.summaryTable();
    TextTable mix = res.aggregateMixTable(opts.analysis.top);
    if (opts.analysis.format == "csv") {
        std::printf("%s\n%s", summary.renderCsv().c_str(),
                    mix.renderCsv().c_str());
    } else {
        std::printf("batch: %zu workloads, %u shards each, %u jobs, "
                    "%zu store hit%s\n\n", res.entries.size(),
                    bc.shards, bc.jobs, res.cache_hits,
                    res.cache_hits == 1 ? "" : "s");
        std::printf("%s\n", summary.render().c_str());
        std::printf("aggregated fleet mix:\n%s", mix.render().c_str());
    }
    return 0;
}

/**
 * The simulated-host collector: collect (host-seeded, so distinct
 * hosts produce distinct but reproducible profiles) and export the
 * result as a shard into a drop directory.
 */
int
cmdExport(const ExportOptions &opts)
{
    if (opts.host.empty())
        fatal("export requires --host <id>");
    if (opts.export_dir.empty())
        fatal("export requires --export-dir <dir>");
    Workload w = requireWorkloadByName(opts.workload);
    CollectorConfig cc = collectorConfigFor(w);
    cc.seed = hostStreamSeed(cc.seed, opts.host, opts.seq);
    cc.pmu.seed = hostStreamSeed(cc.pmu.seed ^ 0x5851f42d4c957f2dULL,
                                 opts.host, opts.seq);

    ShardPlan plan;
    plan.shards = opts.coll.shards;
    plan.jobs = opts.coll.jobs;
    ProfileKey key{w.name, cc, plan.shards, MachineConfig{}};

    ProfileData pd;
    bool cache_hit = false;
    if (!opts.coll.store_dir.empty()) {
        ProfileStore store(opts.coll.store_dir);
        pd = store.getOrCollect(key, *w.program, plan.jobs, &cache_hit);
    } else {
        pd = collectSharded(*w.program, MachineConfig{}, cc, plan);
    }

    ShardManifest manifest;
    std::string manifest_path =
        exportShard(pd, opts.host, w.name, opts.seq, key.hash(),
                    opts.export_dir, &manifest);
    std::printf("exported shard host=%s seq=%u workload=%s "
                "checksum=%016llx (%zu EBS samples + %zu LBR stacks%s) "
                "-> %s\n",
                opts.host.c_str(), opts.seq, w.name.c_str(),
                static_cast<unsigned long long>(manifest.checksum),
                pd.ebs.size(), pd.lbr.size(),
                cache_hit ? ", store hit" : "", manifest_path.c_str());
    return 0;
}

/**
 * Export's sibling over the pluggable transport layer: collect
 * host-seeded, then *push* the shard — to an `aggregate --listen`
 * socket (optionally streamed as N partial chunks) or through the
 * drop-directory transport.
 */
int
cmdPush(const PushOptions &opts)
{
    if (opts.host.empty())
        fatal("push requires --host <id>");
    // Fail here, not as a listener rejection after the collection ran.
    if (!validHostId(opts.host))
        fatal("invalid host id '%s' (must be non-empty, without "
              "whitespace, '/', ',' or ':')", opts.host.c_str());
    if (opts.to.empty() == opts.export_dir.empty())
        fatal("push requires exactly one of --to <host:port> or "
              "--export-dir <dir>");
    if (opts.chunks == 0)
        fatal("--chunks must be >= 1");
    Workload w = requireWorkloadByName(opts.workload);
    CollectorConfig cc = collectorConfigFor(w);
    cc.seed = hostStreamSeed(cc.seed, opts.host, opts.seq);
    cc.pmu.seed = hostStreamSeed(cc.pmu.seed ^ 0x5851f42d4c957f2dULL,
                                 opts.host, opts.seq);

    // The chunk is the streaming unit: collect --chunks shards whose
    // in-order merge is the shard profile, so long collections can
    // deliver incrementally as each chunk finishes.
    ShardPlan plan;
    plan.shards = opts.chunks;
    plan.jobs = opts.coll.jobs;
    ProfileKey key{w.name, cc, plan.shards, MachineConfig{}};
    std::vector<ProfileData> parts =
        collectShards(*w.program, MachineConfig{}, cc, plan);
    ProfileData merged = mergeProfiles(parts);

    ShardManifest manifest;
    manifest.host = opts.host;
    manifest.workload = w.name;
    manifest.seq = opts.seq;
    manifest.options_hash = key.hash();

    std::vector<std::string> chunks;
    if (opts.chunks == 1) {
        chunks.push_back(merged.serialize(&manifest.checksum));
    } else {
        // Chunked mode sends the parts; the merged profile only
        // contributes its checksum, so skip serializing its bytes.
        manifest.checksum = merged.payloadChecksum();
        chunks.reserve(parts.size());
        for (const ProfileData &part : parts)
            chunks.push_back(part.serialize());
    }
    if (!opts.profile_out.empty())
        merged.save(opts.profile_out);

    // Tracing is opt-in: it stamps the shard's trace id into the
    // manifest (so relays and the root can attribute it), and an
    // unstamped push keeps the exact pre-tracing manifest bytes.
    telemetry::TraceLog trace;
    std::string trace_id;
    if (!opts.trace_log.empty()) {
        trace.open(opts.trace_log, "collector:" + opts.host);
        trace_id = shardTraceId(manifest);
        manifest.trace_ids.push_back(trace_id);
    }

    SendResult res;
    trace.span("push_start", trace_id,
               format("seq=%u chunks=%zu", opts.seq, chunks.size()));
    if (!opts.to.empty()) {
        SocketTransportOptions so;
        parseHostPort(opts.to, "--to", &so.host, &so.port);
        so.max_attempts = std::max(opts.retries, 1);
        SocketTransport transport(so);
        transport.fail_after_chunks = opts.fail_after;
        res = transport.sendShard(manifest, chunks);
    } else {
        DropDirTransport transport(opts.export_dir);
        res = transport.sendShard(manifest, chunks);
    }
    if (!res.ok)
        fatal("push failed: %s", res.error.c_str());
    trace.span("push_acked", trace_id,
               format("attempts=%d%s", res.attempts,
                      res.duplicate ? " duplicate" : ""));

    std::printf("pushed shard host=%s seq=%u workload=%s "
                "checksum=%016llx (%zu chunk%s, %d attempt%s%s) "
                "-> %s\n",
                opts.host.c_str(), opts.seq, w.name.c_str(),
                static_cast<unsigned long long>(manifest.checksum),
                chunks.size(), chunks.size() == 1 ? "" : "s",
                res.attempts, res.attempts == 1 ? "" : "s",
                res.duplicate ? ", duplicate" : "",
                opts.to.empty() ? opts.export_dir.c_str()
                                : opts.to.c_str());
    return 0;
}

/**
 * The central aggregation side: fold shards from N hosts as they
 * arrive — polled out of a drop directory or pushed to a listening
 * socket — optionally re-analyzing per arrival, checkpointing
 * restorable state per arrival, and persisting the canonical
 * aggregate.
 */
int
cmdAggregate(const AggregateOptions &opts)
{
    const DaemonOptions &d = opts.daemon;
    bool listening = d.listen_port >= 0;
    if (opts.watch_dir.empty() == !listening)
        fatal("aggregate requires exactly one of --watch-dir <dir> or "
              "--listen <port>");

    std::unique_ptr<Observability> obs = startObservability(d, "root");
    telemetry::TraceLog trace;
    trace.open(d.trace_log, "root");

    std::optional<ProfileStore> central;
    std::optional<StorePin> pin;
    if (!opts.store_dir.empty()) {
        central.emplace(opts.store_dir);
        // The pin owner must be stable across a SIGKILL + restart of
        // the same job so a restarted aggregator inherits (and can
        // release) its crashed predecessor's pins. The state file is
        // that identity; stateless runs fall back to the store path.
        pin.emplace(*central,
                    format("agg-%016llx",
                           static_cast<unsigned long long>(fnv1a(
                               d.state_file.empty() ? opts.store_dir
                                                    : d.state_file))));
    }

    std::optional<Workload> aw;
    if (!opts.analyze_workload.empty())
        aw = requireWorkloadByName(opts.analyze_workload);
    Analyzer analyzer;

    IncrementalAggregator agg;
    std::optional<StateJournal> journal;
    if (!d.state_file.empty() && d.journal_every > 0)
        journal.emplace(d.state_file, d.journal_every);
    if (restoreAggregatorState(agg, journal, d.state_file) > 0)
        std::printf("restored aggregator state from %s: "
                    "%zu shard%s across %zu host%s\n",
                    d.state_file.c_str(), agg.restoredShards(),
                    agg.restoredShards() == 1 ? "" : "s",
                    agg.hostCount(),
                    agg.hostCount() == 1 ? "" : "s");
    // Whatever the previous run pinned is either in the restored
    // state (durable) or was never acknowledged (its sender retries,
    // re-pinning on redelivery) — safe to release either way, and
    // leaking pins forever would quietly exempt entries from gc.
    if (pin && pin->restored() > 0) {
        std::printf("releasing %zu pin%s inherited from a previous "
                    "run\n", pin->restored(),
                    pin->restored() == 1 ? "" : "s");
        pin->release();
    }
    // Persist after every accepted shard (and the per-arrival
    // analysis/deposit), before the arrival is acknowledged: a killed
    // aggregator restarted with the same --state resumes from its
    // partials instead of re-importing the fleet. With journaling
    // (the default) each accept appends one O(shard) record and the
    // full checkpoint is rewritten every --journal-every accepts;
    // --journal-every 0 keeps the PR-4 full rewrite per accept.
    auto per_accept = [&](const ShardManifest &m,
                          const ProfileData *profile,
                          const std::vector<std::string> *chunks) {
        // The root is the end of a traced shard's life: one root_fold
        // span per stamped id carried by this arrival closes the
        // collector -> relay -> root chain.
        for (const std::string &id : m.trace_ids)
            trace.span("root_fold", id,
                       format("from=%s", m.host.c_str()));
        // Federation discovery rides the shard tree: a child that
        // advertises a scrape endpoint becomes ours to merge.
        if (obs->federator && !m.metrics_endpoint.empty())
            obs->federator->noteChild(m.host, m.metrics_endpoint);
        if (central) {
            // Pin BEFORE depositing: from here until this arrival is
            // durable (journaled below), a concurrent `store gc` must
            // not evict the shard out from under a crashed restart.
            pin->pin(m.checksum);
            if (chunks && chunks->size() == 1)
                // The chunk already is exact profile-file bytes:
                // deposit without a re-parse or re-serialize.
                central->depositBytesByChecksum(m.checksum,
                                                (*chunks)[0]);
            else if (profile)
                central->insertByChecksum(m.checksum, *profile);
            else
                central->depositFileByChecksum(
                    m.checksum, opts.watch_dir + "/" + m.profile_file);
        }
        if (aw)
            agg.analyzeWith(*aw->program, analyzer);
        if (d.state_file.empty())
            return;
        if (journal && chunks) {
            journal->record(agg, m, *chunks);
        } else if (journal) {
            // Watch-dir import: the shard's verified bytes are the
            // file beside its manifest; journal them as-is. If they
            // vanished mid-run, fall back to a full checkpoint —
            // durability must not depend on the drop dir's hygiene.
            std::string why;
            std::string bytes = readFileBytes(
                opts.watch_dir + "/" + m.profile_file, &why);
            if (why.empty()) {
                journal->record(agg, m, {std::move(bytes)});
            } else {
                warn("cannot journal shard '%s' (%s); writing a full "
                     "checkpoint instead", m.profile_file.c_str(),
                     why.c_str());
                journal->compact(agg);
            }
        } else {
            agg.saveState(d.state_file);
        }
        // The arrival is durable (journaled or checkpointed): the
        // store entry no longer needs crash protection.
        if (pin)
            pin->unpin(m.checksum);
    };

    if (listening) {
        ShardListener listener(
            static_cast<uint16_t>(d.listen_port), d.bind_addr);
        std::printf("listening on %s:%u\n", d.bind_addr.c_str(),
                    listener.port());
        std::fflush(stdout);
        if (!d.port_file.empty())
            writeFileAtomically(d.port_file,
                                format("%u\n", listener.port()));
        ListenOptions lo;
        lo.expect = d.expect;
        lo.idle_timeout_ms = d.timeout_ms;
        lo.on_accept = [&](const ShardManifest &m,
                           const ProfileData &pd,
                           const std::vector<std::string> &chunks) {
            per_accept(m, &pd, &chunks);
        };
        listener.serve(agg, lo);
    } else {
        WatchOptions wo;
        wo.expect = d.expect;
        wo.timeout_ms = d.timeout_ms;
        wo.on_accept = [&](const ShardManifest &m) {
            // The shard's bytes were already verified during import,
            // so the deposit copies the file instead of re-parsing it.
            per_accept(m, nullptr, nullptr);
        };
        watchAndAggregate(agg, opts.watch_dir, wo);
    }

    const AggregatorStats &st = agg.stats();
    if (d.expect > 0 && agg.coveredShards() < d.expect)
        fatal("no shard for %d ms while waiting for %zu shards via "
              "'%s' (covered %zu, accepted %zu, duplicates %zu, "
              "incompatible %zu, malformed %zu)",
              d.timeout_ms, d.expect,
              listening ? "--listen" : opts.watch_dir.c_str(),
              agg.coveredShards(), st.accepted, st.duplicates,
              st.incompatible, st.malformed);
    if (!opts.profile_out.empty())
        agg.aggregate().save(opts.profile_out);
    // Clean completion: stateless runs kept every deposit pinned
    // until the aggregate was saved above.
    if (pin)
        pin->release();

    std::printf("aggregate: accepted=%zu duplicates=%zu "
                "incompatible=%zu malformed=%zu analyses=%zu "
                "rebuilds=%zu restored=%zu hosts=%zu covered=%zu "
                "aggregates=%zu superseded=%zu saturated=%llu%s%s\n",
                st.accepted, st.duplicates, st.incompatible,
                st.malformed, st.analyses, st.rebuilds,
                agg.restoredShards(), agg.hostCount(),
                agg.coveredShards(), st.aggregates, st.superseded,
                static_cast<unsigned long long>(saturatedFoldLanes()),
                opts.profile_out.empty() ? "" : " -> ",
                opts.profile_out.c_str());
    obs->stop("aggregate exiting");
    return 0;
}

/**
 * A fan-in tree node: serve collectors (or deeper relays) downstream,
 * fold their shards, push the partial aggregate upstream as a
 * first-class shard. The root of the tree is a plain
 * `aggregate --listen`.
 */
int
cmdRelay(const RelayCliOptions &opts)
{
    const DaemonOptions &d = opts.daemon;
    if (d.listen_port < 0)
        fatal("relay requires --listen <port>");
    if (opts.to.empty())
        fatal("relay requires --to <host:port>");

    RelayOptions ro;
    ro.listen_port = static_cast<uint16_t>(d.listen_port);
    ro.bind_addr = d.bind_addr;
    parseHostPort(opts.to, "--to", &ro.upstream_host,
                  &ro.upstream_port);
    // The relay id becomes the upstream manifest's host id: hold it
    // to the same rules as --host, and fail here rather than as a
    // rejection of every flush after collectors were already acked.
    if (!opts.relay_id.empty() && !validHostId(opts.relay_id))
        fatal("invalid --relay-id '%s' (must be without whitespace, "
              "'/', ',' or ':')", opts.relay_id.c_str());
    // Unique by default: two sibling relays sharing one id would also
    // share the upstream's per-(host, seq) staging slot, and their
    // interleaved multi-chunk flushes would clobber each other.
    ro.relay_id = opts.relay_id.empty()
                      ? format("relay-%ld", static_cast<long>(::getpid()))
                      : opts.relay_id;
    ro.flush_every = opts.flush_every;
    ro.expect = d.expect;
    ro.idle_timeout_ms = d.timeout_ms;
    ro.state_file = d.state_file;
    ro.journal_every = d.journal_every;
    ro.upstream_retries = std::max(opts.retries, 1);
    ro.trace_log = d.trace_log;
    ro.store_dir = opts.store_dir;

    std::unique_ptr<Observability> obs =
        startObservability(d, ro.relay_id);
    // The relay is both a federation child (it advertises its own
    // scrape endpoint on every flushed aggregate) and a parent (its
    // federator scrapes whatever its downstream advertises).
    ro.metrics_endpoint = obs->endpoint;
    ro.federator = obs->federator.get();
    RelayNode relay(std::move(ro));
    std::printf("relaying %s:%u -> %s\n", d.bind_addr.c_str(),
                relay.port(), opts.to.c_str());
    std::fflush(stdout);
    if (!d.port_file.empty())
        writeFileAtomically(d.port_file,
                            format("%u\n", relay.port()));

    RelayStats rs = relay.run();
    std::printf("relay: accepted=%zu covered=%zu restored=%zu "
                "flushes=%zu flush_failures=%zu orphans=%zu "
                "upstream_ok=%d\n",
                rs.accepted, rs.covered, rs.restored, rs.flushes,
                rs.flush_failures, rs.orphans_forwarded,
                rs.upstream_ok ? 1 : 0);
    obs->stop("relay exiting");
    // Order matters: the final flush already ran, so these exits lose
    // nothing that --state does not hold.
    if (!rs.upstream_ok)
        fatal("final upstream flush failed: %s", rs.error.c_str());
    if (d.expect > 0 && rs.covered < d.expect)
        fatal("no shard for %d ms while waiting to cover %zu shards "
              "(covered %zu)", d.timeout_ms, d.expect,
              rs.covered);
    return 0;
}

/**
 * The query-serving daemon: one port, two protocols. Collectors push
 * shards exactly as they would to `aggregate --listen`; query clients
 * dial the same port and speak hbbp-query/1. Every accepted shard
 * bumps the aggregator's epoch, invalidating the analysis service's
 * caches, so queries between arrivals are cache hits and queries
 * after an arrival observe the new aggregate. All of it runs on the
 * listener's single poll thread — no locks anywhere near the
 * aggregator.
 */
int
cmdServe(const ServeOptions &opts)
{
    const DaemonOptions &d = opts.daemon;
    if (d.listen_port < 0)
        fatal("serve requires --listen <port>");

    std::unique_ptr<Observability> obs = startObservability(d, "serve");
    telemetry::TraceLog trace;
    trace.open(d.trace_log, "serve");

    std::optional<ProfileStore> central;
    std::optional<StorePin> pin;
    if (!opts.store_dir.empty()) {
        central.emplace(opts.store_dir);
        pin.emplace(*central,
                    format("serve-%016llx",
                           static_cast<unsigned long long>(fnv1a(
                               d.state_file.empty() ? opts.store_dir
                                                    : d.state_file))));
    }

    IncrementalAggregator agg;
    std::optional<StateJournal> journal;
    if (!d.state_file.empty() && d.journal_every > 0)
        journal.emplace(d.state_file, d.journal_every);
    if (restoreAggregatorState(agg, journal, d.state_file) > 0)
        std::printf("restored aggregator state from %s: "
                    "%zu shard%s across %zu host%s\n",
                    d.state_file.c_str(), agg.restoredShards(),
                    agg.restoredShards() == 1 ? "" : "s",
                    agg.hostCount(),
                    agg.hostCount() == 1 ? "" : "s");
    if (pin && pin->restored() > 0)
        pin->release(); // Durable in the restored state either way.

    AggregatorProfileSource source(agg);
    AnalysisService service(source, makeWorkloadByName);
    QueryEndpoint endpoint(service);
    endpoint.setTraceLog(&trace, "serve");

    ShardListener listener(static_cast<uint16_t>(d.listen_port),
                           d.bind_addr);
    std::printf("serving on %s:%u\n", d.bind_addr.c_str(),
                listener.port());
    std::fflush(stdout);
    if (!d.port_file.empty())
        writeFileAtomically(d.port_file,
                            format("%u\n", listener.port()));

    ListenOptions lo;
    lo.expect = d.expect;
    lo.idle_timeout_ms = d.timeout_ms;
    lo.on_accept = [&](const ShardManifest &m, const ProfileData &pd,
                       const std::vector<std::string> &chunks) {
        for (const std::string &id : m.trace_ids)
            trace.span("root_fold", id,
                       format("from=%s", m.host.c_str()));
        if (obs->federator && !m.metrics_endpoint.empty())
            obs->federator->noteChild(m.host, m.metrics_endpoint);
        if (central) {
            // Same pin-deposit-unpin dance as aggregate: the entry
            // must outlive any concurrent gc until durable here.
            pin->pin(m.checksum);
            if (chunks.size() == 1)
                central->depositBytesByChecksum(m.checksum, chunks[0]);
            else
                central->insertByChecksum(m.checksum, pd);
        }
        if (d.state_file.empty())
            return;
        if (journal)
            journal->record(agg, m, chunks);
        else
            agg.saveState(d.state_file);
        if (pin)
            pin->unpin(m.checksum);
    };
    lo.on_query = [&](const std::string &body) {
        return endpoint.handle(body);
    };
    lo.should_stop = [&] { return endpoint.stopRequested(); };
    listener.serve(agg, lo);

    if (pin)
        pin->release(); // Clean exit: deposits are plain cache now.
    const ServiceStats &ss = service.stats();
    const AggregatorStats &st = agg.stats();
    std::printf("serve: accepted=%zu hosts=%zu covered=%zu epoch=%llu "
                "requests=%llu cache_hits=%llu cache_misses=%llu "
                "errors=%llu analyses=%llu\n",
                st.accepted, agg.hostCount(), agg.coveredShards(),
                static_cast<unsigned long long>(agg.epoch()),
                static_cast<unsigned long long>(ss.requests),
                static_cast<unsigned long long>(ss.hits),
                static_cast<unsigned long long>(ss.misses),
                static_cast<unsigned long long>(ss.errors),
                static_cast<unsigned long long>(ss.analyses));
    obs->stop("serve exiting");
    return 0;
}

/**
 * The query client. Stdout carries exactly the payload bytes — what
 * offline analyze/report/fdo would print for the same aggregate and
 * options — so scripts can diff the two; the `epoch=N cached=K`
 * metadata goes to stderr.
 */
int
cmdQuery(const QueryCliOptions &opts)
{
    if (opts.from.empty())
        fatal("query requires --from <host:port>");
    std::string host;
    uint16_t port = 0;
    parseHostPort(opts.from, "--from", &host, &port);

    QueryRequest req;
    req.verb = opts.verb;
    req.params = opts.analysis.toQueryParams();

    QueryClient client(host, port);
    QueryReply reply;
    std::string why;
    if (!client.query(req.renderText(), &reply, &why))
        fatal("query to %s failed: %s", opts.from.c_str(),
              why.c_str());
    std::fprintf(stderr, "epoch=%llu cached=%d\n",
                 static_cast<unsigned long long>(reply.epoch),
                 reply.cached ? 1 : 0);
    if (reply.has_timing)
        std::fprintf(
            stderr,
            "timing parse=%lluns cache=%lluns analysis=%lluns "
            "render=%lluns\n",
            static_cast<unsigned long long>(reply.parse_ns),
            static_cast<unsigned long long>(reply.cache_ns),
            static_cast<unsigned long long>(reply.analysis_ns),
            static_cast<unsigned long long>(reply.render_ns));
    if (!reply.trace_id.empty())
        std::fprintf(stderr, "trace=%s\n", reply.trace_id.c_str());
    if (!reply.ok)
        fatal("%s", reply.error.c_str());
    std::fwrite(reply.payload.data(), 1, reply.payload.size(), stdout);
    return 0;
}

/**
 * Store maintenance: `hbbp-tool store gc|stat|verify|rebuild-index`.
 * gc is bounded eviction; stat summarizes the index; verify
 * cross-checks index vs directory vs checksums; rebuild-index
 * re-derives the index from the entries (the recovery tool).
 */
int
cmdStore(const StoreOptions &opts)
{
    if (opts.store_dir.empty())
        fatal("store %s requires --store <dir>",
              opts.action.empty() ? "gc" : opts.action.c_str());
    if (opts.action == "gc") {
        if (opts.max_age_s < 0 && opts.max_bytes < 0)
            fatal("store gc requires --max-age-s and/or --max-bytes "
                  "(unbounded gc would evict nothing)");
        ProfileStore store(opts.store_dir);
        ProfileStore::GcResult res =
            store.gc({opts.max_age_s, opts.max_bytes});
        std::printf("store gc: scanned=%zu evicted=%zu "
                    "pinned_skipped=%zu bytes_before=%llu "
                    "bytes_after=%llu\n",
                    res.scanned, res.evicted, res.pinned_skipped,
                    static_cast<unsigned long long>(res.bytes_before),
                    static_cast<unsigned long long>(res.bytes_after));
        return 0;
    }
    if (opts.action == "stat") {
        ProfileStore store(opts.store_dir);
        ProfileStore::Stats st = store.stats();
        std::printf("store stat: key_entries=%zu shard_entries=%zu "
                    "total_bytes=%llu pinned=%zu pin_owners=%zu\n",
                    st.key_entries, st.shard_entries,
                    static_cast<unsigned long long>(st.total_bytes),
                    st.pinned, st.pin_owners);
        return 0;
    }
    if (opts.action == "verify") {
        ProfileStore store(opts.store_dir);
        ProfileStore::VerifyResult res = store.verify();
        std::printf("store verify: checked=%zu missing_files=%zu "
                    "stray_files=%zu checksum_mismatches=%zu %s\n",
                    res.checked, res.missing_files, res.stray_files,
                    res.checksum_mismatches,
                    res.ok() ? "ok" : "NOT OK");
        return res.ok() ? 0 : 1;
    }
    if (opts.action == "rebuild-index") {
        ProfileStore store(opts.store_dir);
        size_t n = store.rebuildIndex();
        std::printf("store rebuild-index: indexed=%zu\n", n);
        return 0;
    }
    fatal("unknown store action '%s' (expected: gc, stat, verify, "
          "rebuild-index)", opts.action.c_str());
}

/** `name{labels} value` → series key + numeric value. */
bool
parseMetricLine(const std::string &line, std::string *key,
                double *value)
{
    if (line.empty() || line[0] == '#')
        return false;
    size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0)
        return false;
    const char *num = line.c_str() + sp + 1;
    char *end = nullptr;
    double v = std::strtod(num, &end);
    if (end == num || *end != '\0')
        return false;
    *key = line.substr(0, sp);
    *value = v;
    return true;
}

/**
 * Render a federated /metrics body as a fleet tree: this node's own
 * series first, then each child's (grouped by peer label), then the
 * subtree rollups — the one-command view of the whole fleet that a
 * single scrape of the root endpoint carries.
 */
void
printStatsTree(const std::string &from, const std::string &body)
{
    std::vector<std::string> local, rollup;
    std::map<std::string, std::vector<std::string>> peers;
    for (const std::string &line : split(body, '\n')) {
        std::string key;
        double value = 0;
        if (!parseMetricLine(line, &key, &value))
            continue;
        if (key.find("{agg=\"subtree\"}") != std::string::npos) {
            rollup.push_back(line);
            continue;
        }
        size_t p = key.find("peer=\"");
        if (p == std::string::npos) {
            local.push_back(line);
            continue;
        }
        size_t start = p + 6;
        size_t endq = key.find('"', start);
        peers[key.substr(start, endq - start)].push_back(line);
    }
    std::printf("fleet tree from %s\n", from.c_str());
    std::printf("node <local>\n");
    for (const std::string &line : local)
        std::printf("  %s\n", line.c_str());
    for (const auto &[peer, lines] : peers) {
        std::printf("peer %s\n", peer.c_str());
        for (const std::string &line : lines)
            std::printf("  %s\n", line.c_str());
    }
    if (!rollup.empty()) {
        std::printf("subtree rollup\n");
        for (const std::string &line : rollup)
            std::printf("  %s\n", line.c_str());
    }
}

/**
 * Print one --watch round: every series' current value, with the
 * delta and per-second rate since the previous scrape once there is
 * one. New series are marked instead of given a bogus full-value
 * delta.
 */
void
printStatsDeltas(const std::string &body, double dt_s,
                 std::map<std::string, double> *prev)
{
    std::map<std::string, double> cur;
    for (const std::string &line : split(body, '\n')) {
        std::string key;
        double value = 0;
        if (parseMetricLine(line, &key, &value))
            cur[key] = value;
    }
    for (const auto &[key, value] : cur) {
        if (prev->empty()) {
            std::printf("%s %g\n", key.c_str(), value);
        } else if (!prev->count(key)) {
            std::printf("%s %g (new)\n", key.c_str(), value);
        } else {
            double delta = value - (*prev)[key];
            std::printf("%s %g (%+g %.2f/s)\n", key.c_str(), value,
                        delta, dt_s > 0 ? delta / dt_s : 0.0);
        }
    }
    *prev = std::move(cur);
}

/**
 * Print metrics: scraped from a live daemon's --metrics-port endpoint
 * (Prometheus text passed through verbatim; --tree renders the
 * federated body as a fleet tree, --healthz fetches the health body
 * and exits non-zero when degraded, --watch re-scrapes every N
 * seconds printing deltas and rates), or — with no --from — this
 * process's own registry snapshot in the compact deterministic format
 * daemons dump on SIGUSR1.
 */
int
cmdStats(const StatsOptions &opts)
{
    if (opts.from.empty()) {
        std::fputs(telemetry::registry().renderSnapshot().c_str(),
                   stdout);
        return 0;
    }
    std::string host;
    uint16_t port = 0;
    parseHostPort(opts.from, "--from", &host, &port);
    const char *path = opts.healthz ? "/healthz" : "/metrics";

    std::map<std::string, double> prev;
    int64_t prev_ms = 0;
    int degraded = 0;
    for (size_t round = 0;; round++) {
        std::string body, why;
        if (!fetchMetricsText(host, port, &body, &why, path))
            fatal("fetching %s from %s: %s", path, opts.from.c_str(),
                  why.c_str());
        int64_t now_ms = steadyNowMs();
        if (round > 0)
            std::printf("-- +%.1fs\n", (now_ms - prev_ms) / 1e3);
        if (opts.healthz) {
            std::fputs(body.c_str(), stdout);
            degraded = startsWith(body, "status: live") ? 0 : 1;
        } else if (opts.tree) {
            printStatsTree(opts.from, body);
        } else if (opts.watch_s > 0) {
            printStatsDeltas(body, (now_ms - prev_ms) / 1e3, &prev);
        } else {
            std::fputs(body.c_str(), stdout);
        }
        std::fflush(stdout);
        prev_ms = now_ms;
        if (opts.watch_s <= 0 ||
            (opts.watch_count > 0 && round >= opts.watch_count))
            break;
        ::usleep(static_cast<useconds_t>(opts.watch_s * 1e6));
    }
    return degraded;
}

/**
 * Read a structured event log back: `hbbp-tool events --from FILE`
 * prints one human-readable line per record, filtered by stable code
 * and/or timestamp. The flight recorder's playback half.
 */
int
cmdEvents(const EventsOptions &opts)
{
    std::vector<events::Event> evs;
    std::string why;
    if (!events::loadEvents(opts.from, opts.code, opts.since_ms, &evs,
                            &why))
        fatal("%s", why.c_str());
    for (const events::Event &e : evs)
        std::printf("%s\n", e.render().c_str());
    return 0;
}

/** Rewrite a legacy or stale-checksum profile in the current format. */
int
cmdMigrate(const MigrateOptions &opts)
{
    const std::string &in = opts.input;
    std::string out = opts.profile_out.empty() ? in : opts.profile_out;
    uint32_t version = 0;
    ProfileData pd = ProfileData::loadAnyVersion(in, &version);
    // Atomic: with no -o this overwrites the input, which may be the
    // only copy of the legacy profile — a failed write must not
    // destroy it.
    pd.saveAtomically(out);
    std::printf("migrated %s (format version %u, checksum %016llx) "
                "-> %s\n", in.c_str(), version,
                static_cast<unsigned long long>(pd.payloadChecksum()),
                out.c_str());
    return 0;
}

/**
 * The in-process analysis transport: the same AnalysisService the
 * serve daemon exposes over the socket, fed by a FixedProfileSource
 * over the loaded (or freshly collected) profile. Errors the service
 * reports — unknown source, unknown pivot dimension, missing
 * function — become the same fatal() diagnostics the pre-service CLI
 * printed.
 */
QueryResult
serveLocalQuery(const std::string &verb,
                const std::string &workload_name,
                const std::string &profile_in,
                const AnalysisOptions &aopts)
{
    Workload w = requireWorkloadByName(workload_name);
    ProfileData pd;
    if (!profile_in.empty()) {
        pd = ProfileData::load(profile_in);
    } else {
        pd = Collector::collect(*w.program, MachineConfig{},
                                collectorConfigFor(w));
    }
    FixedProfileSource source(std::move(pd), w.name);
    AnalysisService service(source, makeWorkloadByName);

    QueryRequest req;
    req.verb = verb;
    req.params = aopts.toQueryParams();
    QueryResult result = service.serve(req);
    if (!result.error.empty())
        fatal("%s", result.error.c_str());
    return result;
}

int
cmdAnalyze(const AnalyzeOptions &opts, bool full_report)
{
    QueryResult result =
        serveLocalQuery(full_report ? "report" : "mix", opts.workload,
                        opts.profile_in, opts.analysis);
    // serve() validated the format parameter before producing a
    // non-error result.
    std::string out = result.render(
        *renderFormatFromName(opts.analysis.format));
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
}

int
cmdFdo(const FdoOptions &opts)
{
    QueryResult result = serveLocalQuery("fdo", opts.workload,
                                         opts.profile_in,
                                         opts.analysis);
    if (!opts.profile_out.empty()) {
        // The saved artifact is always the canonical text profile,
        // whatever --format renders on stdout.
        writeFileAtomically(opts.profile_out,
                            result.render(RenderFormat::Text));
        std::printf("fdo profile -> %s\n", opts.profile_out.c_str());
        return 0;
    }
    std::string out = result.render(
        *renderFormatFromName(opts.analysis.format));
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Normal, not Quiet: every warn() in the library marks an
    // exceptional condition a fleet operator needs to see (saturating
    // counter clamps, damaged journals, unusable HBBP_VECTOR_BACKEND
    // requests); nothing warns on the happy path, so normal runs stay
    // as quiet as before.
    setLogLevel(LogLevel::Normal);
    if (argc >= 2 && (std::strcmp(argv[1], "version") == 0 ||
                      std::strcmp(argv[1], "--version") == 0)) {
        std::printf("hbbp-tool %s\n", kVersion);
        return 0;
    }
    if (argc < 2)
        usage();
    std::string command = argv[1];
    if (command == "list") {
        ArgParser p(argc, argv, 2);
        p.run();
        return cmdList();
    }
    if (command == "collect")
        return cmdCollect(CollectOptions::parse(argc, argv));
    if (command == "merge")
        return cmdMerge(MergeOptions::parse(argc, argv));
    if (command == "batch")
        return cmdBatch(BatchOptions::parse(argc, argv));
    if (command == "export")
        return cmdExport(ExportOptions::parse(argc, argv));
    if (command == "push")
        return cmdPush(PushOptions::parse(argc, argv));
    if (command == "aggregate")
        return cmdAggregate(AggregateOptions::parse(argc, argv));
    if (command == "relay")
        return cmdRelay(RelayCliOptions::parse(argc, argv));
    if (command == "serve")
        return cmdServe(ServeOptions::parse(argc, argv));
    if (command == "query")
        return cmdQuery(QueryCliOptions::parse(argc, argv));
    if (command == "store")
        return cmdStore(StoreOptions::parse(argc, argv));
    if (command == "stats")
        return cmdStats(StatsOptions::parse(argc, argv));
    if (command == "events")
        return cmdEvents(EventsOptions::parse(argc, argv));
    if (command == "migrate")
        return cmdMigrate(MigrateOptions::parse(argc, argv));
    if (command == "analyze")
        return cmdAnalyze(AnalyzeOptions::parse(argc, argv),
                          /*full_report=*/false);
    if (command == "report")
        return cmdAnalyze(AnalyzeOptions::parse(argc, argv),
                          /*full_report=*/true);
    if (command == "fdo")
        return cmdFdo(FdoOptions::parse(argc, argv));
    usage();
}
