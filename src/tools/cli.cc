/**
 * @file
 * hbbp-tool — the command-line front end, mirroring the paper's
 * two-phase collector/analyzer workflow:
 *
 *   hbbp-tool version
 *   hbbp-tool list
 *   hbbp-tool collect <workload> -o <profile> [--jobs N] [--shards N]
 *                     [--store DIR]
 *   hbbp-tool merge   -o <profile> <in1> <in2> ...
 *   hbbp-tool batch   <w1,w2,...|all> [--jobs N] [--shards N]
 *                     [--store DIR] [--top N] [--csv]
 *   hbbp-tool analyze <workload> -i <profile> [options]
 *   hbbp-tool report  <workload> [-i <profile>] [options]
 *
 * collect/batch options:
 *   --jobs N                worker threads (default 1)
 *   --shards N              shards per collection (default: jobs)
 *   --store DIR             content-addressed profile cache directory
 *
 * analyze/report options:
 *   --source hbbp|ebs|lbr   data source for the mix (default hbbp)
 *   --cutoff N              HBBP length cutoff (default 18)
 *   --no-bias-rule          disable the bias->EBS term
 *   --patch-kernel          apply the live-kernel-text fix
 *   --pivot d1,d2,...       pivot dims: module,function,block,mnemonic,
 *                           isa,category,packing,width,ring,mem
 *   --top N                 keep the N largest rows
 *   --function NAME         print annotated disassembly of NAME
 *   --csv                   render pivots as CSV
 */

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "fleet/batch.hh"
#include "fleet/merge.hh"
#include "fleet/shard.hh"
#include "fleet/store.hh"
#include "hbbp/version.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "tools/profiler.hh"
#include "tools/registry.hh"

using namespace hbbp;

namespace {

struct CliOptions
{
    std::string command;
    std::string workload;
    std::string profile_in;
    std::string profile_out;
    std::vector<std::string> inputs; ///< Positional profiles for merge.
    std::string source = "hbbp";
    std::string store_dir;
    double cutoff = 18.0;
    bool bias_rule = true;
    bool patch_kernel = false;
    std::vector<std::string> pivot;
    size_t top = 0;
    unsigned jobs = 1;
    uint32_t shards = 0; ///< 0 = default to jobs.
    std::string function;
    bool csv = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: hbbp-tool version\n"
                 "       hbbp-tool list\n"
                 "       hbbp-tool collect <workload> -o <profile> "
                 "[--jobs N] [--shards N] [--store DIR]\n"
                 "       hbbp-tool merge -o <profile> <in1> <in2> ...\n"
                 "       hbbp-tool batch <w1,w2,...|all> [--jobs N] "
                 "[--shards N] [--store DIR]\n"
                 "                 [--top N] [--csv]\n"
                 "       hbbp-tool analyze <workload> -i <profile> "
                 "[--source hbbp|ebs|lbr] [--cutoff N]\n"
                 "                 [--no-bias-rule] [--patch-kernel] "
                 "[--pivot dims] [--top N]\n"
                 "                 [--function NAME] [--csv]\n"
                 "       hbbp-tool report <workload> [-i <profile>]\n");
    std::exit(2);
}

CliOptions
parse(int argc, char **argv)
{
    CliOptions opts;
    if (argc < 2)
        usage();
    opts.command = argv[1];
    int i = 2;
    if (opts.command != "list" && opts.command != "merge") {
        if (i >= argc)
            usage();
        opts.workload = argv[i++];
    }
    auto need_value = [&](const char *flag) -> std::string {
        if (i >= argc)
            fatal("missing value for %s", flag);
        return argv[i++];
    };
    // std::stoul/stod would throw (or wrap negatives) on bad input;
    // every malformed flag value should die with a fatal() diagnostic.
    auto need_count = [&](const char *flag,
                          uint64_t max = UINT64_MAX) -> uint64_t {
        std::string value = need_value(flag);
        errno = 0;
        char *end = nullptr;
        unsigned long long v = std::strtoull(value.c_str(), &end, 10);
        if (value.empty() || *end != '\0' || errno == ERANGE ||
            value[0] == '-')
            fatal("invalid value '%s' for %s (expected a non-negative "
                  "integer)", value.c_str(), flag);
        // Narrowing would silently truncate (e.g. 2^32 shards -> 0).
        if (v > max)
            fatal("value '%s' for %s is out of range (max %llu)",
                  value.c_str(), flag,
                  static_cast<unsigned long long>(max));
        return v;
    };
    auto need_number = [&](const char *flag) -> double {
        std::string value = need_value(flag);
        errno = 0;
        char *end = nullptr;
        double v = std::strtod(value.c_str(), &end);
        if (value.empty() || *end != '\0' || errno == ERANGE)
            fatal("invalid value '%s' for %s (expected a number)",
                  value.c_str(), flag);
        return v;
    };
    while (i < argc) {
        std::string arg = argv[i++];
        if (arg == "-o")
            opts.profile_out = need_value("-o");
        else if (arg == "-i")
            opts.profile_in = need_value("-i");
        else if (arg == "--source")
            opts.source = need_value("--source");
        else if (arg == "--store")
            opts.store_dir = need_value("--store");
        else if (arg == "--cutoff")
            opts.cutoff = need_number("--cutoff");
        else if (arg == "--no-bias-rule")
            opts.bias_rule = false;
        else if (arg == "--patch-kernel")
            opts.patch_kernel = true;
        else if (arg == "--pivot")
            opts.pivot = split(need_value("--pivot"), ',');
        else if (arg == "--top")
            opts.top = static_cast<size_t>(need_count("--top"));
        else if (arg == "--jobs")
            opts.jobs = static_cast<unsigned>(
                need_count("--jobs", UINT_MAX));
        else if (arg == "--shards")
            opts.shards = static_cast<uint32_t>(
                need_count("--shards", UINT32_MAX));
        else if (arg == "--function")
            opts.function = need_value("--function");
        else if (arg == "--csv")
            opts.csv = true;
        else if (!arg.empty() && arg[0] == '-')
            fatal("unknown option '%s'", arg.c_str());
        else if (opts.command == "merge")
            opts.inputs.push_back(arg);
        else
            fatal("unexpected argument '%s'", arg.c_str());
    }
    if (opts.jobs == 0)
        fatal("--jobs must be >= 1");
    if (opts.shards == 0)
        opts.shards = std::max(opts.jobs, 1u);
    return opts;
}

MixDim
dimFromName(const std::string &dim_name)
{
    for (MixDim d : {MixDim::Module, MixDim::Function, MixDim::Block,
                     MixDim::Mnemonic, MixDim::Isa, MixDim::Category,
                     MixDim::Packing, MixDim::Width, MixDim::Ring,
                     MixDim::MemAccess}) {
        if (dim_name == name(d))
            return d;
    }
    fatal("unknown pivot dimension '%s'", dim_name.c_str());
}

int
cmdList()
{
    for (const std::string &w : workloadNames())
        std::printf("%s\n", w.c_str());
    return 0;
}

int
cmdCollect(const CliOptions &opts)
{
    if (opts.profile_out.empty())
        fatal("collect requires -o <profile>");
    Workload w = requireWorkloadByName(opts.workload);
    CollectorConfig cc = collectorConfigFor(w);

    ShardPlan plan;
    plan.shards = opts.shards;
    plan.jobs = opts.jobs;

    ProfileData pd;
    bool cache_hit = false;
    if (!opts.store_dir.empty()) {
        ProfileStore store(opts.store_dir);
        ProfileKey key{w.name, cc, plan.shards, MachineConfig{}};
        pd = store.getOrCollect(key, *w.program, plan.jobs, &cache_hit);
    } else {
        pd = collectSharded(*w.program, MachineConfig{}, cc, plan);
    }
    pd.save(opts.profile_out);
    std::printf("collected %zu EBS samples + %zu LBR stacks from %llu "
                "instructions (%u shard%s%s) -> %s\n",
                pd.ebs.size(), pd.lbr.size(),
                static_cast<unsigned long long>(
                    pd.features.instructions),
                plan.shards, plan.shards == 1 ? "" : "s",
                cache_hit ? ", store hit" : "",
                opts.profile_out.c_str());
    return 0;
}

int
cmdMerge(const CliOptions &opts)
{
    if (opts.profile_out.empty())
        fatal("merge requires -o <profile>");
    if (opts.inputs.size() < 2)
        fatal("merge requires at least two input profiles");
    std::vector<ProfileData> shards;
    shards.reserve(opts.inputs.size());
    for (const std::string &path : opts.inputs)
        shards.push_back(ProfileData::load(path));
    ProfileData merged = mergeProfiles(shards);
    merged.save(opts.profile_out);
    std::printf("merged %zu profiles: %zu EBS samples + %zu LBR stacks "
                "-> %s\n", shards.size(), merged.ebs.size(),
                merged.lbr.size(), opts.profile_out.c_str());
    return 0;
}

int
cmdBatch(const CliOptions &opts)
{
    std::vector<std::string> workloads;
    if (opts.workload == "all")
        workloads = workloadNames();
    else
        workloads = split(opts.workload, ',');

    BatchConfig bc;
    bc.shards = opts.shards;
    bc.jobs = opts.jobs;
    bc.store_dir = opts.store_dir;
    bc.analyzer.map.patch_kernel_text = opts.patch_kernel;
    bc.analyzer.classifier = std::make_shared<CutoffClassifier>(
        opts.cutoff, opts.bias_rule);

    BatchResult res = runBatch(workloads, bc);

    TextTable summary = res.summaryTable();
    TextTable mix = res.aggregateMixTable(opts.top);
    if (opts.csv) {
        std::printf("%s\n%s", summary.renderCsv().c_str(),
                    mix.renderCsv().c_str());
    } else {
        std::printf("batch: %zu workloads, %u shards each, %u jobs, "
                    "%zu store hit%s\n\n", res.entries.size(),
                    bc.shards, bc.jobs, res.cache_hits,
                    res.cache_hits == 1 ? "" : "s");
        std::printf("%s\n", summary.render().c_str());
        std::printf("aggregated fleet mix:\n%s", mix.render().c_str());
    }
    return 0;
}

int
cmdAnalyze(const CliOptions &opts, bool full_report)
{
    Workload w = requireWorkloadByName(opts.workload);

    ProfileData pd;
    if (!opts.profile_in.empty()) {
        pd = ProfileData::load(opts.profile_in);
    } else {
        pd = Collector::collect(*w.program, MachineConfig{},
                                collectorConfigFor(w));
    }

    AnalyzerOptions aopts;
    aopts.map.patch_kernel_text = opts.patch_kernel;
    aopts.classifier = std::make_shared<CutoffClassifier>(
        opts.cutoff, opts.bias_rule);
    Analyzer analyzer(aopts);
    AnalysisResult res = analyzer.analyze(*w.program, pd);

    std::unique_ptr<InstructionMix> mix;
    if (opts.source == "hbbp")
        mix = std::make_unique<InstructionMix>(res.hbbpMix());
    else if (opts.source == "ebs")
        mix = std::make_unique<InstructionMix>(res.ebsMix());
    else if (opts.source == "lbr")
        mix = std::make_unique<InstructionMix>(res.lbrMix());
    else
        fatal("unknown source '%s'", opts.source.c_str());

    Reporter reporter(*mix);
    if (full_report) {
        std::printf("%s\n", reporter.summary().c_str());
        return 0;
    }

    if (!opts.function.empty()) {
        std::string listing =
            reporter.annotatedDisassembly(opts.function);
        if (listing.empty())
            fatal("no function named '%s'", opts.function.c_str());
        std::printf("%s", listing.c_str());
        return 0;
    }

    MixQuery q;
    if (!opts.pivot.empty()) {
        q.group_by.clear();
        for (const std::string &d : opts.pivot)
            q.group_by.push_back(dimFromName(d));
    }
    q.top_n = opts.top;
    TextTable table = mix->pivotTable(q);
    std::printf("%s", opts.csv ? table.renderCsv().c_str()
                               : table.render().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Quiet);
    if (argc >= 2 && (std::strcmp(argv[1], "version") == 0 ||
                      std::strcmp(argv[1], "--version") == 0)) {
        std::printf("hbbp-tool %s\n", kVersion);
        return 0;
    }
    CliOptions opts = parse(argc, argv);
    if (opts.command == "list")
        return cmdList();
    if (opts.command == "collect")
        return cmdCollect(opts);
    if (opts.command == "merge")
        return cmdMerge(opts);
    if (opts.command == "batch")
        return cmdBatch(opts);
    if (opts.command == "analyze")
        return cmdAnalyze(opts, /*full_report=*/false);
    if (opts.command == "report")
        return cmdAnalyze(opts, /*full_report=*/true);
    usage();
}
