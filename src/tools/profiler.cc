#include "tools/profiler.hh"

#include "support/logging.hh"

namespace hbbp {

Profiler::Profiler(MachineConfig machine, CollectorConfig collector,
                   AnalyzerOptions analyzer)
    : machine_(machine), collector_(std::move(collector)),
      analyzer_(std::move(analyzer))
{
}

ProfiledRun
Profiler::run(const Workload &w) const
{
    if (!w.program)
        fatal("Profiler::run: workload '%s' has no program",
              w.name.c_str());

    ProfiledRun out;

    // Run 1: the collection run (PMU attached, non-invasive).
    CollectorConfig cc = collector_;
    cc.runtime_class = w.runtime_class;
    cc.max_instructions = w.max_instructions;
    cc.seed = w.exec_seed;
    out.profile = Collector::collect(*w.program, machine_, cc);

    // Run 2: the software-instrumented reference run. Determinism for a
    // fixed seed guarantees it observes the same execution.
    Instrumenter instr(*w.program, /*include_kernel=*/true);
    ExecutionEngine engine(*w.program, machine_, w.exec_seed);
    engine.addObserver(&instr);
    out.stats = engine.run(w.max_instructions);

    if (out.stats.instructions != out.profile.features.instructions)
        panic("Profiler::run: reference run diverged from collection run "
              "(%llu vs %llu instructions) — non-deterministic workload?",
              static_cast<unsigned long long>(out.stats.instructions),
              static_cast<unsigned long long>(
                  out.profile.features.instructions));

    out.true_bbec_by_addr = instr.bbecByAddr();
    out.true_all_mnemonics = instr.mnemonicCounts();

    // PIN/SDE view: user-mode blocks only.
    for (const BasicBlock &blk : w.program->blocks()) {
        const Function &fn = w.program->function(blk.func);
        if (w.program->module(fn.module).isKernel())
            continue;
        uint64_t n = instr.bbec(blk.id);
        if (n == 0)
            continue;
        for (const Instruction &i : blk.instrs)
            out.true_user_mnemonics.add(i.mnemonic,
                                        static_cast<double>(n));
    }
    return out;
}

AnalysisResult
Profiler::analyze(const Workload &w, const ProfileData &profile) const
{
    Analyzer analyzer(analyzer_);
    return analyzer.analyze(*w.program, profile);
}

Counter<Mnemonic>
Profiler::userMnemonics(const InstructionMix &mix)
{
    return mix.mnemonicCounts([](const MixContext &ctx) {
        return ctx.ring == Ring::User;
    });
}

AccuracySummary
Profiler::accuracy(const ProfiledRun &run,
                   const AnalysisResult &analysis) const
{
    AccuracySummary summary;
    const Counter<Mnemonic> &ref = run.true_user_mnemonics;
    summary.hbbp = avgWeightedError(ref, userMnemonics(analysis.hbbpMix()));
    summary.ebs = avgWeightedError(ref, userMnemonics(analysis.ebsMix()));
    summary.lbr = avgWeightedError(ref, userMnemonics(analysis.lbrMix()));
    return summary;
}

} // namespace hbbp
