/**
 * @file
 * Per-command CLI option structs and the shared parser table.
 *
 * hbbp-tool's options used to live in one ~30-field grab-bag struct
 * parsed by one if/else chain: every command saw every flag, and
 * adding a daemon flag meant auditing every command's validation
 * path. Here each command declares its own struct composed from
 * shared groups — AnalysisOptions (the analyze/report/fdo/query
 * knobs), CollectionOptions (jobs/shards/store), DaemonOptions (the
 * listen/state/observability cluster) — and registers exactly the
 * flags it accepts in an ArgParser table. Unknown flags still die
 * with the same diagnostics the old parser produced.
 */

#ifndef HBBP_TOOLS_OPTIONS_HH
#define HBBP_TOOLS_OPTIONS_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace hbbp {

/**
 * The shared flag table: register flag → destination bindings, then
 * run() over argv. Values are validated on registration semantics —
 * counts are strict non-negative decimal with range bounds, numbers
 * strict doubles — and every violation is a fatal() with the same
 * message shape hbbp-tool has always printed.
 */
class ArgParser
{
  public:
    /** Parse argv[start..argc). */
    ArgParser(int argc, char **argv, int start)
        : argc_(argc), argv_(argv), i_(start)
    {
    }

    /** FLAG VALUE → *out = VALUE. */
    void value(const char *flag, std::string *out);

    /** FLAG VALUE → split VALUE on commas into *out. */
    void list(const char *flag, std::vector<std::string> *out);

    /** FLAG N → *out = N (strict non-negative decimal, bounded). */
    template <typename T>
    void
    count(const char *flag, T *out,
          uint64_t max = std::numeric_limits<T>::max())
    {
        handlers_[flag] = [this, flag, out, max] {
            *out = static_cast<T>(needCount(flag, max));
        };
    }

    /** FLAG X → *out = X (strict double). */
    void number(const char *flag, double *out);

    /** Bare FLAG → *out = value. */
    void boolean(const char *flag, bool *out, bool value = true);

    /** Bare FLAG → run @p action (for aliases like --csv). */
    void action(const char *flag, std::function<void()> action);

    /**
     * Consume everything: registered flags dispatch to their
     * bindings, anything starting with '-' that is not registered is
     * fatal, and bare arguments land in *@p positionals — or are
     * fatal when @p positionals is null (the command takes none).
     */
    void run(std::vector<std::string> *positionals = nullptr);

  private:
    std::string needValue(const char *flag);
    uint64_t needCount(const char *flag, uint64_t max);
    double needNumber(const char *flag);

    int argc_;
    char **argv_;
    int i_;
    std::map<std::string, std::function<void()>> handlers_;
};

/** Split a HOST:PORT flag value; fatal() on malformed input. */
void parseHostPort(const std::string &value, const char *flag,
                   std::string *host, uint16_t *port);

// ---------------------------------------------------------------------------
// Shared option groups.
// ---------------------------------------------------------------------------

/** The analysis knobs shared by analyze/report/fdo/query. */
struct AnalysisOptions
{
    std::string source = "hbbp";
    double cutoff = 18.0;
    bool bias_rule = true;
    bool patch_kernel = false;
    std::vector<std::string> pivot;
    size_t top = 0;
    std::string function;
    std::string host;          ///< query: per-host slice.
    std::string format = "text"; ///< text|csv|json (--csv = alias).

    /**
     * The non-default knobs as query parameters — how the CLI's
     * in-process path and the socket client both feed the one
     * AnalysisService API.
     */
    std::map<std::string, std::string> toQueryParams() const;
};

/** Registers --source/--cutoff/--no-bias-rule/--patch-kernel/
 *  --pivot/--top/--function/--format/--csv. */
void addAnalysisFlags(ArgParser &parser, AnalysisOptions *opts);

/** Collection sizing shared by collect/batch/export/push. */
struct CollectionOptions
{
    unsigned jobs = 1;
    uint32_t shards = 0; ///< 0 = default to jobs.
    std::string store_dir;

    /** Validate jobs and default shards; fatal() on jobs == 0. */
    void finalize();
};

/** Registers --jobs/--shards/--store. */
void addCollectionFlags(ArgParser &parser, CollectionOptions *opts);

/** The daemon cluster shared by aggregate/relay/serve. */
struct DaemonOptions
{
    int listen_port = -1; ///< -1 = no socket listener.
    std::string bind_addr = "127.0.0.1";
    std::string port_file;
    std::string state_file;
    size_t expect = 0;
    int timeout_ms = 10'000;
    size_t journal_every = 32;
    int metrics_port = -1; ///< -1 = off.
    std::string metrics_port_file;
    std::string trace_log;
    /** Structured JSONL event log (support/events); empty = off. */
    std::string event_log;
    /** Watchdog: warn when a loop stage stalls this long; 0 = off. */
    double stall_warn_s = 0.0;
};

/** Registers --listen/--bind/--port-file/--state/--expect/
 *  --timeout-ms/--journal-every/--metrics-port/--metrics-port-file/
 *  --trace-log/--event-log/--stall-warn-s. */
void addDaemonFlags(ArgParser &parser, DaemonOptions *opts);

// ---------------------------------------------------------------------------
// Per-command option structs.
// ---------------------------------------------------------------------------

struct CollectOptions
{
    std::string workload;
    std::string profile_out;
    CollectionOptions coll;

    static CollectOptions parse(int argc, char **argv);
};

struct MergeOptions
{
    std::string profile_out;
    std::vector<std::string> inputs;

    static MergeOptions parse(int argc, char **argv);
};

struct BatchOptions
{
    std::string workloads; ///< Comma list or "all".
    CollectionOptions coll;
    AnalysisOptions analysis;

    static BatchOptions parse(int argc, char **argv);
};

struct ExportOptions
{
    std::string workload;
    std::string host;
    std::string export_dir;
    uint32_t seq = 0;
    CollectionOptions coll;

    static ExportOptions parse(int argc, char **argv);
};

struct PushOptions
{
    std::string workload;
    std::string host;
    std::string to;
    std::string export_dir;
    std::string profile_out;
    std::string trace_log;
    uint32_t seq = 0;
    uint32_t chunks = 1;
    int retries = 5;
    int fail_after = -1; ///< Test hook: die after N acked chunks.
    CollectionOptions coll;

    static PushOptions parse(int argc, char **argv);
};

struct AggregateOptions
{
    std::string watch_dir;
    std::string profile_out;
    std::string analyze_workload;
    std::string store_dir;
    DaemonOptions daemon;

    static AggregateOptions parse(int argc, char **argv);
};

struct RelayCliOptions
{
    std::string to;
    std::string relay_id;
    std::string store_dir;
    size_t flush_every = 0;
    int retries = 5;
    DaemonOptions daemon;

    static RelayCliOptions parse(int argc, char **argv);
};

struct StoreOptions
{
    std::string action; ///< Leading positional ("gc").
    std::string store_dir;
    int64_t max_age_s = -1;
    int64_t max_bytes = -1;

    static StoreOptions parse(int argc, char **argv);
};

struct StatsOptions
{
    std::string from; ///< HOST:PORT to scrape; empty = own registry.
    bool tree = false;    ///< Render a federated scrape per peer.
    bool healthz = false; ///< Fetch /healthz instead of /metrics.
    double watch_s = 0.0; ///< Re-scrape every N seconds; 0 = once.
    size_t watch_count = 0; ///< Stop after N re-scrapes; 0 = forever.

    static StatsOptions parse(int argc, char **argv);
};

struct EventsOptions
{
    std::string from;      ///< Event-log file to read.
    std::string code;      ///< Keep only this stable code; "" = all.
    uint64_t since_ms = 0; ///< Keep only ts_ms >= this; 0 = all.

    static EventsOptions parse(int argc, char **argv);
};

struct MigrateOptions
{
    std::string input;
    std::string profile_out;

    static MigrateOptions parse(int argc, char **argv);
};

struct AnalyzeOptions
{
    std::string workload;
    std::string profile_in;
    AnalysisOptions analysis;

    static AnalyzeOptions parse(int argc, char **argv);
};

struct FdoOptions
{
    std::string workload;
    std::string profile_in;
    std::string profile_out; ///< -o: write the text profile here.
    AnalysisOptions analysis;

    static FdoOptions parse(int argc, char **argv);
};

struct ServeOptions
{
    std::string store_dir; ///< Shared profile store to deposit into.
    DaemonOptions daemon; ///< timeout_ms defaults to -1: serve until
                          ///< a shutdown query (or --expect).

    static ServeOptions parse(int argc, char **argv);
};

struct QueryCliOptions
{
    std::string from; ///< HOST:PORT of the serving daemon.
    std::string verb; ///< Leading positional.
    AnalysisOptions analysis;

    static QueryCliOptions parse(int argc, char **argv);
};

} // namespace hbbp

#endif // HBBP_TOOLS_OPTIONS_HH
