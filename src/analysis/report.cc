#include "analysis/report.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace hbbp {

TextTable
Reporter::sharesTable(const std::vector<MixDim> &dims, size_t top_n) const
{
    MixQuery q;
    q.group_by = dims;
    q.top_n = top_n;
    std::vector<PivotRow> rows = mix_.pivot(q);

    std::vector<std::string> headers;
    for (MixDim d : dims)
        headers.emplace_back(name(d));
    headers.emplace_back("count");
    headers.emplace_back("share");
    TextTable table(headers);
    table.setAlign(headers.size() - 2, Align::Right);
    table.setAlign(headers.size() - 1, Align::Right);

    double total = mix_.totalInstructions();
    for (const PivotRow &row : rows) {
        std::vector<std::string> cells = row.key;
        cells.push_back(withSeparators(
            static_cast<uint64_t>(row.count + 0.5)));
        cells.push_back(percentStr(total > 0 ? row.count / total : 0, 1));
        table.addRow(std::move(cells));
    }
    return table;
}

TextTable
Reporter::topFunctions(size_t n) const
{
    return sharesTable({MixDim::Module, MixDim::Function}, n);
}

TextTable
Reporter::topMnemonics(size_t n) const
{
    return sharesTable({MixDim::Mnemonic}, n);
}

TextTable
Reporter::isaBreakdown() const
{
    return sharesTable({MixDim::Isa, MixDim::Packing}, 0);
}

TextTable
Reporter::familyBreakdown() const
{
    return sharesTable({MixDim::Category}, 0);
}

TextTable
Reporter::ringBreakdown() const
{
    return sharesTable({MixDim::Ring}, 0);
}

TextTable
Reporter::memoryBreakdown() const
{
    return sharesTable({MixDim::MemAccess}, 0);
}

TextTable
Reporter::taxonomyBreakdown(const Taxonomy &taxonomy) const
{
    TextTable table({"group", "count", "share"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);
    Counter<std::string> counts = mix_.taxonomyCounts(taxonomy);
    double total = mix_.totalInstructions();
    for (const std::string &group : taxonomy.groupNames()) {
        double c = counts.get(group);
        table.addRow({group,
                      withSeparators(static_cast<uint64_t>(c + 0.5)),
                      percentStr(total > 0 ? c / total : 0, 2)});
    }
    return table;
}

std::string
Reporter::annotatedDisassembly(const std::string &function) const
{
    const BlockMap &map = mix_.map();
    std::string out;
    for (uint32_t i = 0; i < map.blocks().size(); i++) {
        const MapBlock &blk = map.block(i);
        if (map.functionName(blk) != function)
            continue;
        double count = mix_.bbec()[i];
        out += format("; block %s  executed ~%llu times%s\n",
                      hexAddr(blk.start).c_str(),
                      static_cast<unsigned long long>(count + 0.5),
                      count <= 0 ? " (cold)" : "");
        for (const Instruction &instr : blk.instrs) {
            const MnemonicInfo &mi = instr.info();
            std::string attrs = format("%s/%s/%s", name(mi.ext),
                                       name(mi.category),
                                       name(mi.packing));
            if (instr.mem_read)
                attrs += "/load";
            if (instr.mem_write)
                attrs += "/store";
            if (mi.isLongLatency())
                attrs += "/long-lat";
            out += format("  %s  %-12s %-36s %12llu\n",
                          hexAddr(instr.addr).c_str(), mi.name,
                          attrs.c_str(),
                          static_cast<unsigned long long>(count + 0.5));
        }
    }
    return out;
}

std::string
Reporter::summary() const
{
    std::string out;
    out += format("total executed instructions: %s\n\n",
                  withSeparators(static_cast<uint64_t>(
                      mix_.totalInstructions() + 0.5)).c_str());
    out += "top functions:\n" + topFunctions().render() + "\n";
    out += "top mnemonics:\n" + topMnemonics(12).render() + "\n";
    out += "ISA breakdown:\n" + isaBreakdown().render() + "\n";
    out += "families:\n" + familyBreakdown().render() + "\n";
    out += "rings:\n" + ringBreakdown().render() + "\n";
    out += "memory:\n" + memoryBreakdown().render();
    return out;
}

} // namespace hbbp
