#include "analysis/bbec.hh"

#include <unordered_map>
#include <unordered_set>

#include "support/logging.hh"
#include "support/vectorops.hh"

namespace hbbp {

namespace {

/**
 * Walk the straight-line path from stream target @p t to stream source
 * @p s, appending credited block indices to @p out. Returns false when
 * the stream is inconsistent with the block map (invalid target, an
 * always-taken transfer strictly inside the range, or a gap).
 */
bool
walkStream(const BlockMap &map, uint64_t t, uint64_t s,
           uint32_t max_blocks, std::vector<uint32_t> &out)
{
    uint32_t bi = map.blockAt(t);
    if (bi == BlockMap::npos)
        return false;
    // A stream target is a branch target, which disassembly makes a
    // block leader; a mid-block target means the map is stale.
    if (map.block(bi).start != t)
        return false;
    if (s < t)
        return false;

    size_t first = out.size();
    for (uint32_t steps = 0; steps < max_blocks; steps++) {
        const MapBlock &blk = map.block(bi);
        out.push_back(bi);
        if (blk.contains(s)) {
            // The source must be the block's control transfer (last
            // instruction); anything else is a stale-map symptom.
            const Instruction &last = blk.instrs.back();
            if (last.addr != s || !last.info().isControl()) {
                out.resize(first);
                return false;
            }
            return true;
        }
        // We must fall off the end of this block: impossible past an
        // always-taken control transfer.
        const Instruction &last = blk.instrs.back();
        if (last.info().isControl() && last.info().isAlwaysTaken()) {
            out.resize(first);
            return false;
        }
        uint32_t next = map.blockAt(blk.end());
        if (next == BlockMap::npos || map.block(next).start != blk.end()) {
            out.resize(first);
            return false;
        }
        bi = next;
    }
    out.resize(first);
    return false;
}

} // namespace

BbecEstimates
BbecEstimator::estimate(const BlockMap &map,
                        const ProfileData &profile) const
{
    const size_t n = map.blocks().size();
    BbecEstimates est;
    est.ebs.assign(n, 0.0);
    est.lbr.assign(n, 0.0);
    est.ebs_samples.assign(n, 0);
    est.lbr_weight.assign(n, 0.0);
    est.bias.assign(n, false);

    // ---- EBS: eventing IPs credit their enclosing block.
    for (const EbsSample &sample : profile.ebs) {
        uint32_t bi = map.blockAt(sample.ip);
        if (bi == BlockMap::npos) {
            est.ebs_samples_unmapped++;
            continue;
        }
        est.ebs_samples[bi]++;
    }
    const double ebs_period =
        static_cast<double>(profile.sim_periods.ebs);
    for (size_t i = 0; i < n; i++) {
        size_t len = map.block(static_cast<uint32_t>(i)).size();
        if (len == 0)
            continue;
        est.ebs[i] = static_cast<double>(est.ebs_samples[i]) * ebs_period /
                     static_cast<double>(len);
    }

    // ---- Bias detection pass A: entry[0] frequency vs overall slot
    // frequency per branch source address.
    std::unordered_map<uint64_t, uint64_t> entry0_count;
    std::unordered_map<uint64_t, uint64_t> slot_count;
    uint64_t total_samples = 0;
    uint64_t total_slots = 0;
    for (const LbrStackSample &sample : profile.lbr) {
        if (sample.entries.empty())
            continue;
        total_samples++;
        entry0_count[sample.entries.front().source]++;
        for (const LbrEntry &e : sample.entries) {
            slot_count[e.source]++;
            total_slots++;
        }
    }
    std::unordered_set<uint64_t> biased_sources;
    if (total_samples > 0 && total_slots > 0) {
        for (const auto &[src, cnt] : entry0_count) {
            double freq0 = static_cast<double>(cnt) /
                           static_cast<double>(total_samples);
            double overall = static_cast<double>(slot_count[src]) /
                             static_cast<double>(total_slots);
            if (freq0 >= opts_.bias_min_freq &&
                freq0 > opts_.bias_ratio * overall) {
                biased_sources.insert(src);
                est.biased_branches.push_back({src, freq0, overall});
            }
        }
    }

    // ---- LBR: walk the N-1 streams of every stack.
    std::vector<double> biased_credit(n, 0.0);
    std::vector<uint32_t> credited;
    credited.reserve(64);
    for (const LbrStackSample &sample : profile.lbr) {
        const size_t depth = sample.entries.size();
        if (depth < 2)
            continue;
        const double weight = 1.0 / static_cast<double>(depth - 1);
        // A sample is bias-suspect when a biased branch appears anywhere
        // in the stack: the stale-entry[0] anomaly distorts evidence for
        // every block that co-occurs with the anomalous branch.
        bool sample_biased = false;
        if (!biased_sources.empty()) {
            for (const LbrEntry &e : sample.entries) {
                if (biased_sources.count(e.source) > 0) {
                    sample_biased = true;
                    break;
                }
            }
        }
        for (size_t i = 1; i < depth; i++) {
            est.lbr_streams_total++;
            uint64_t t = sample.entries[i - 1].target;
            uint64_t s = sample.entries[i].source;
            credited.clear();
            if (!walkStream(map, t, s, opts_.max_walk_blocks, credited)) {
                est.lbr_streams_discarded++;
                continue;
            }
            for (uint32_t bi : credited) {
                est.lbr_weight[bi] += weight;
                if (sample_biased)
                    biased_credit[bi] += weight;
            }
        }
    }
    double lbr_scale = static_cast<double>(profile.sim_periods.lbr);
    if (opts_.renormalize_discards && est.lbr_streams_total > 0 &&
        est.lbr_streams_discarded < est.lbr_streams_total) {
        lbr_scale /= 1.0 - est.discardFraction();
    }
    vecops::scaledCopy(est.lbr.data(), est.lbr_weight.data(), lbr_scale,
                       n);

    // ---- Bias flags: blocks containing a biased branch, and blocks
    // whose LBR evidence substantially comes from biased samples.
    for (uint64_t src : biased_sources) {
        uint32_t bi = map.blockAt(src);
        if (bi != BlockMap::npos)
            est.bias[bi] = true;
    }
    for (size_t i = 0; i < n; i++) {
        if (est.lbr_weight[i] > 0.0 &&
            biased_credit[i] / est.lbr_weight[i] >
                opts_.biased_credit_frac)
            est.bias[i] = true;
    }

    return est;
}

} // namespace hbbp
