#include "analysis/mix.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"
#include "support/strings.hh"
#include "support/vectorops.hh"

namespace hbbp {

const char *
name(MixDim dim)
{
    switch (dim) {
      case MixDim::Module: return "module";
      case MixDim::Function: return "function";
      case MixDim::Block: return "block";
      case MixDim::Mnemonic: return "mnemonic";
      case MixDim::Isa: return "isa";
      case MixDim::Category: return "category";
      case MixDim::Packing: return "packing";
      case MixDim::Width: return "width";
      case MixDim::Ring: return "ring";
      case MixDim::MemAccess: return "mem";
      default: panic("name: bad MixDim %d", static_cast<int>(dim));
    }
}

std::string
MixContext::dimValue(MixDim dim) const
{
    switch (dim) {
      case MixDim::Module:
        return map->moduleName(*block);
      case MixDim::Function:
        return map->functionName(*block);
      case MixDim::Block:
        return hexAddr(block->start);
      case MixDim::Mnemonic:
        return instr->info().name;
      case MixDim::Isa:
        return name(instr->info().ext);
      case MixDim::Category:
        return name(instr->info().category);
      case MixDim::Packing:
        return name(instr->info().packing);
      case MixDim::Width:
        return std::to_string(instr->info().width_bits);
      case MixDim::Ring:
        return ring == Ring::Kernel ? "KERNEL" : "USER";
      case MixDim::MemAccess:
        if (instr->mem_read && instr->mem_write)
            return "LOAD_STORE";
        if (instr->mem_read)
            return "LOAD";
        if (instr->mem_write)
            return "STORE";
        return "NONE";
      default:
        panic("MixContext::dimValue: bad MixDim %d",
              static_cast<int>(dim));
    }
}

InstructionMix::InstructionMix(const BlockMap &map,
                               std::vector<double> bbec)
    : map_(map), bbec_(std::move(bbec))
{
    if (bbec_.size() != map.blocks().size())
        panic("InstructionMix: %zu counts for %zu blocks", bbec_.size(),
              map.blocks().size());
    block_sizes_.reserve(bbec_.size());
    for (size_t i = 0; i < bbec_.size(); i++)
        block_sizes_.push_back(static_cast<double>(
            map_.block(static_cast<uint32_t>(i)).size()));
}

void
InstructionMix::forEach(
    const std::function<void(const MixContext &, double)> &fn) const
{
    for (size_t i = 0; i < bbec_.size(); i++) {
        double count = bbec_[i];
        if (count <= 0.0)
            continue;
        const MapBlock &blk = map_.block(static_cast<uint32_t>(i));
        Ring ring = map_.program().module(blk.module).ring;
        MixContext ctx;
        ctx.map = &map_;
        ctx.block = &blk;
        ctx.ring = ring;
        for (const Instruction &instr : blk.instrs) {
            ctx.instr = &instr;
            fn(ctx, count);
        }
    }
}

double
InstructionMix::totalInstructions() const
{
    // bbec · block_sizes through the dispatched bit-stable kernel:
    // same bits on every backend, and SIMD-wide on the fleet-scale
    // block maps where this dominates report generation.
    return vecops::dot(bbec_.data(), block_sizes_.data(), bbec_.size());
}

Counter<Mnemonic>
InstructionMix::mnemonicCounts() const
{
    return mnemonicCounts(nullptr);
}

Counter<Mnemonic>
InstructionMix::mnemonicCounts(
    const std::function<bool(const MixContext &)> &filter) const
{
    Counter<Mnemonic> counts;
    forEach([&](const MixContext &ctx, double count) {
        if (filter && !filter(ctx))
            return;
        counts.add(ctx.instr->mnemonic, count);
    });
    return counts;
}

std::vector<PivotRow>
InstructionMix::pivot(const MixQuery &query) const
{
    std::map<std::vector<std::string>, double> groups;
    forEach([&](const MixContext &ctx, double count) {
        if (query.filter && !query.filter(ctx))
            return;
        std::vector<std::string> key;
        key.reserve(query.group_by.size());
        for (MixDim dim : query.group_by)
            key.push_back(ctx.dimValue(dim));
        groups[std::move(key)] += count;
    });

    std::vector<PivotRow> rows;
    rows.reserve(groups.size());
    for (auto &[key, count] : groups)
        rows.push_back({key, count});
    std::sort(rows.begin(), rows.end(),
              [](const PivotRow &a, const PivotRow &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.key < b.key;
              });
    if (query.top_n && rows.size() > query.top_n)
        rows.resize(query.top_n);
    return rows;
}

TextTable
InstructionMix::pivotTable(const MixQuery &query) const
{
    std::vector<std::string> headers;
    for (MixDim dim : query.group_by)
        headers.emplace_back(name(dim));
    headers.emplace_back("count");
    TextTable table(headers);
    table.setAlign(headers.size() - 1, Align::Right);

    double total = 0.0;
    std::vector<PivotRow> rows = pivot(query);
    for (const PivotRow &row : rows)
        total += row.count;
    for (const PivotRow &row : rows) {
        std::vector<std::string> cells = row.key;
        cells.push_back(withSeparators(
            static_cast<uint64_t>(row.count + 0.5)));
        table.addRow(std::move(cells));
    }
    (void)total;
    return table;
}

Counter<std::string>
InstructionMix::taxonomyCounts(const Taxonomy &taxonomy) const
{
    Counter<std::string> counts;
    forEach([&](const MixContext &ctx, double count) {
        for (const std::string &group :
             taxonomy.groupsOf(ctx.instr->mnemonic))
            counts.add(group, count);
    });
    return counts;
}

} // namespace hbbp
