#include "analysis/fdo.hh"

#include <algorithm>
#include <cstdio>
#include <map>

#include "support/logging.hh"
#include "support/strings.hh"

namespace hbbp {

FdoProfile::FdoProfile(const BlockMap &map,
                       const std::vector<double> &bbec)
{
    if (bbec.size() != map.blocks().size())
        panic("FdoProfile: %zu counts for %zu blocks", bbec.size(),
              map.blocks().size());

    std::map<std::string, FdoFunction> by_name;
    for (uint32_t i = 0; i < map.blocks().size(); i++) {
        const MapBlock &blk = map.block(i);
        std::string fname = map.functionName(blk);
        FdoFunction &fn = by_name[fname];
        if (fn.name.empty()) {
            fn.name = fname;
            fn.start = blk.start;
        }
        fn.start = std::min(fn.start, blk.start);
        double count = std::max(bbec[i], 0.0);
        fn.blocks.emplace_back(blk.start, count);
        fn.total_instructions +=
            count * static_cast<double>(blk.size());
        total_ += count * static_cast<double>(blk.size());

        // Conditional branches: estimate p(taken) by flow conservation
        // with the fall-through block (the next block by address).
        if (blk.instrs.empty())
            continue;
        const Instruction &last = blk.instrs.back();
        if (!last.info().isCondBranch())
            continue;
        FdoBranch br;
        br.branch_addr = last.addr;
        br.target_addr = last.target();
        br.exec_count = count;
        uint32_t fall = map.blockAt(blk.end());
        if (count > 0 && fall != BlockMap::npos) {
            double fall_count = std::max(bbec[fall], 0.0);
            br.taken_prob =
                std::clamp(1.0 - fall_count / count, 0.0, 1.0);
        }
        fn.branches.push_back(br);
    }

    // Entry counts: the count of each function's lowest-address block.
    for (auto &[name, fn] : by_name) {
        for (const auto &[addr, count] : fn.blocks) {
            if (addr == fn.start)
                fn.entry_count = count;
        }
        functions_.push_back(std::move(fn));
    }
    std::sort(functions_.begin(), functions_.end(),
              [](const FdoFunction &a, const FdoFunction &b) {
                  if (a.total_instructions != b.total_instructions)
                      return a.total_instructions > b.total_instructions;
                  return a.name < b.name;
              });
}

std::string
FdoProfile::toText() const
{
    std::string out;
    for (const FdoFunction &fn : functions_) {
        if (fn.total_instructions <= 0)
            continue;
        out += format("function %s entry=%llu total=%llu\n",
                      fn.name.c_str(),
                      static_cast<unsigned long long>(
                          fn.entry_count + 0.5),
                      static_cast<unsigned long long>(
                          fn.total_instructions + 0.5));
        for (const auto &[addr, count] : fn.blocks)
            out += format("  block %s %llu\n", hexAddr(addr).c_str(),
                          static_cast<unsigned long long>(count + 0.5));
        for (const FdoBranch &br : fn.branches)
            out += format("  branch %s -> %s count=%llu p_taken=%.4f\n",
                          hexAddr(br.branch_addr).c_str(),
                          hexAddr(br.target_addr).c_str(),
                          static_cast<unsigned long long>(
                              br.exec_count + 0.5),
                          br.taken_prob);
    }
    return out;
}

void
FdoProfile::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    std::string text = toText();
    if (std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
        std::fclose(f);
        fatal("short write to '%s'", path.c_str());
    }
    std::fclose(f);
}

} // namespace hbbp
