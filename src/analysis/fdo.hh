/**
 * @file
 * Feedback-directed-optimization export.
 *
 * Section II.A of the paper motivates BBECs as input for automated
 * compiler optimization (PGO / AutoFDO). FdoProfile turns a BBEC
 * vector into the data a compiler consumes: per-function entry counts,
 * per-block execution counts, and per-conditional-branch taken
 * probabilities (derived from the execution counts of the branch's
 * block and its target), serialized in an AutoFDO-like text format.
 */

#ifndef HBBP_ANALYSIS_FDO_HH
#define HBBP_ANALYSIS_FDO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "program/blockmap.hh"

namespace hbbp {

/** One conditional branch with its estimated taken probability. */
struct FdoBranch
{
    uint64_t branch_addr = 0; ///< Address of the Jcc.
    uint64_t target_addr = 0; ///< Taken target.
    double exec_count = 0.0;  ///< Executions of the branch.
    double taken_prob = 0.0;  ///< Estimated probability of taken.
};

/** One function's profile. */
struct FdoFunction
{
    std::string name;
    uint64_t start = 0;
    double entry_count = 0.0; ///< Executions of the entry block.
    double total_instructions = 0.0;
    /** (block start, execution count), in layout order. */
    std::vector<std::pair<uint64_t, double>> blocks;
    std::vector<FdoBranch> branches;
};

/** A whole-program FDO profile derived from BBECs. */
class FdoProfile
{
  public:
    /**
     * Build from a block map and per-map-block execution counts
     * (typically AnalysisResult::hbbp).
     *
     * Branch taken probabilities use flow conservation: for a block B
     * ending in a conditional with taken-target T,
     * p(taken) ~= count(T reached from B) which we approximate as
     * 1 - count(fall-through block) / count(B), clamped to [0, 1].
     */
    FdoProfile(const BlockMap &map, const std::vector<double> &bbec);

    /** Per-function profiles, hottest first. */
    const std::vector<FdoFunction> &functions() const
    {
        return functions_;
    }

    /** Total profiled instructions. */
    double totalInstructions() const { return total_; }

    /**
     * AutoFDO-like text serialization:
     *
     *   function <name> entry=<count> total=<count>
     *     block 0x<addr> <count>
     *     branch 0x<addr> -> 0x<addr> count=<n> p_taken=<p>
     */
    std::string toText() const;

    /** Write toText() to @p path; fatal() on I/O error. */
    void save(const std::string &path) const;

  private:
    std::vector<FdoFunction> functions_;
    double total_ = 0.0;
};

} // namespace hbbp

#endif // HBBP_ANALYSIS_FDO_HH
