/**
 * @file
 * Error metrics (Section VI of the paper).
 *
 *   Error(M) = |Vref(M) - Vmeasured(M)| / Vref(M)
 *
 * for every mnemonic M, and the aggregate
 *
 *   AvgWError = sum_M Error(M) * Vref(M) / #instructions_ref
 *
 * i.e. each mnemonic's error weighted by its share of the reference
 * instruction stream.
 */

#ifndef HBBP_ANALYSIS_ERROR_HH
#define HBBP_ANALYSIS_ERROR_HH

#include <vector>

#include "isa/mnemonic.hh"
#include "support/histogram.hh"

namespace hbbp {

/** Per-mnemonic comparison of a measurement against the reference. */
struct MnemonicError
{
    Mnemonic mnemonic = Mnemonic::NOP;
    double reference = 0.0;
    double measured = 0.0;
    double error = 0.0; ///< |ref - meas| / ref.
};

/**
 * Per-mnemonic errors, sorted by decreasing reference count. Mnemonics
 * absent from the reference are skipped (their weight is zero).
 */
std::vector<MnemonicError>
perMnemonicErrors(const Counter<Mnemonic> &reference,
                  const Counter<Mnemonic> &measured);

/** The paper's average weighted error. */
double avgWeightedError(const Counter<Mnemonic> &reference,
                        const Counter<Mnemonic> &measured);

/**
 * Per-block relative BBEC error |ref - est| / ref; returns 0 for blocks
 * the reference never executed. Used for training labels and Table 3.
 */
double blockError(double reference, double estimate);

} // namespace hbbp

#endif // HBBP_ANALYSIS_ERROR_HH
