#include "analysis/classifier.hh"

#include "support/logging.hh"

namespace hbbp {

const char *
name(BbecSource source)
{
    switch (source) {
      case BbecSource::Ebs: return "EBS";
      case BbecSource::Lbr: return "LBR";
      default: panic("name: bad BbecSource %d", static_cast<int>(source));
    }
}

double
BlockFeatures::value(size_t index) const
{
    switch (index) {
      case 0: return length;
      case 1: return bytes;
      case 2: return exec_estimate;
      case 3: return bias;
      case 4: return long_latency;
      case 5: return branch_density;
      default:
        panic("BlockFeatures::value: index %zu out of range", index);
    }
}

const char *
BlockFeatures::featureName(size_t index)
{
    switch (index) {
      case 0: return "block_length";
      case 1: return "block_bytes";
      case 2: return "exec_estimate";
      case 3: return "bias_flag";
      case 4: return "long_latency";
      case 5: return "branch_density";
      default:
        panic("BlockFeatures::featureName: index %zu out of range", index);
    }
}

std::vector<double>
BlockFeatures::toVector() const
{
    std::vector<double> v(kCount);
    for (size_t i = 0; i < kCount; i++)
        v[i] = value(i);
    return v;
}

std::string
CutoffClassifier::describe() const
{
    if (bias_to_ebs_)
        return format("bias -> EBS; else block_length <= %.0f -> LBR, "
                      "else EBS", cutoff_);
    return format("block_length <= %.0f -> LBR, else EBS", cutoff_);
}

std::string
FixedClassifier::describe() const
{
    return format("always %s", name(source_));
}

} // namespace hbbp
