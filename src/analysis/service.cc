#include "analysis/service.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "analysis/fdo.hh"
#include "analysis/report.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

namespace hbbp {

std::optional<RenderFormat>
renderFormatFromName(const std::string &format_name)
{
    if (format_name == "text")
        return RenderFormat::Text;
    if (format_name == "csv")
        return RenderFormat::Csv;
    if (format_name == "json")
        return RenderFormat::Json;
    return std::nullopt;
}

const char *
name(RenderFormat format)
{
    switch (format) {
    case RenderFormat::Text: return "text";
    case RenderFormat::Csv: return "csv";
    case RenderFormat::Json: return "json";
    }
    panic("invalid RenderFormat %d", static_cast<int>(format));
}

// ---------------------------------------------------------------------------
// QueryRequest.
// ---------------------------------------------------------------------------

std::string
QueryRequest::param(const std::string &key,
                    const std::string &fallback) const
{
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
}

std::string
QueryRequest::renderText() const
{
    std::string out = format("hbbp-query/%u\n", kQueryApiVersion);
    out += "verb=" + verb + "\n";
    for (const auto &[key, value] : params)
        out += key + "=" + value + "\n";
    return out;
}

std::string
QueryRequest::cacheKey() const
{
    std::string out = format("hbbp-query/%u\n", kQueryApiVersion);
    out += "verb=" + verb + "\n";
    for (const auto &[key, value] : params)
        if (key != "format")
            out += key + "=" + value + "\n";
    return out;
}

std::optional<QueryRequest>
QueryRequest::parseText(const std::string &body, std::string *why)
{
    std::vector<std::string> lines = split(body, '\n');
    std::string version_prefix = "hbbp-query/";
    if (lines.empty() || !startsWith(lines[0], version_prefix)) {
        *why = "malformed query: first line must be "
               "hbbp-query/<version>";
        return std::nullopt;
    }
    std::string version = lines[0].substr(version_prefix.size());
    if (version != format("%u", kQueryApiVersion)) {
        *why = format("unsupported query protocol version '%s' (this "
                      "build speaks hbbp-query/%u)", version.c_str(),
                      kQueryApiVersion);
        return std::nullopt;
    }

    QueryRequest req;
    for (size_t i = 1; i < lines.size(); i++) {
        const std::string &line = lines[i];
        if (line.empty())
            continue; // The body's trailing newline.
        size_t eq = line.find('=');
        if (eq == std::string::npos || eq == 0) {
            *why = format("malformed query parameter line '%s' "
                          "(expected key=value)", line.c_str());
            return std::nullopt;
        }
        std::string key = line.substr(0, eq);
        std::string value = line.substr(eq + 1);
        if (key == "verb") {
            if (!req.verb.empty()) {
                *why = "duplicate query parameter 'verb'";
                return std::nullopt;
            }
            req.verb = value;
        } else {
            if (req.params.count(key)) {
                *why = format("duplicate query parameter '%s'",
                              key.c_str());
                return std::nullopt;
            }
            req.params[key] = value;
        }
    }
    if (req.verb.empty()) {
        *why = "malformed query: missing verb";
        return std::nullopt;
    }
    return req;
}

// ---------------------------------------------------------------------------
// QueryResult rendering.
// ---------------------------------------------------------------------------

namespace {

/** One section as a JSON object (table preferred over text). */
std::string
sectionJson(const QuerySection &section)
{
    std::string out =
        format("{\"title\":\"%s\",", jsonEscape(section.title).c_str());
    if (section.table) {
        out += "\"headers\":[";
        const auto &headers = section.table->headers();
        for (size_t i = 0; i < headers.size(); i++) {
            if (i)
                out += ",";
            out += "\"" + jsonEscape(headers[i]) + "\"";
        }
        out += "],\"rows\":[";
        std::vector<std::vector<std::string>> rows =
            section.table->dataRows();
        for (size_t r = 0; r < rows.size(); r++) {
            if (r)
                out += ",";
            out += "[";
            for (size_t c = 0; c < rows[r].size(); c++) {
                if (c)
                    out += ",";
                out += "\"" + jsonEscape(rows[r][c]) + "\"";
            }
            out += "]";
        }
        out += "]}";
    } else {
        out += format("\"text\":\"%s\"}",
                      jsonEscape(section.text.value_or("")).c_str());
    }
    return out;
}

} // namespace

std::string
QueryResult::render(RenderFormat fmt) const
{
    if (fmt == RenderFormat::Text) {
        std::string out;
        bool first = true;
        for (const QuerySection &s : sections) {
            if (!first)
                out += "\n";
            first = false;
            if (s.text) {
                out += *s.text;
            } else if (s.table) {
                if (!s.title.empty())
                    out += s.title + ":\n";
                out += s.table->render();
            }
        }
        if (trailing_newline)
            out += "\n";
        return out;
    }
    if (fmt == RenderFormat::Csv) {
        std::string out;
        bool first = true;
        for (const QuerySection &s : sections) {
            if (!s.table)
                continue; // Prose sections have no cells.
            if (!first)
                out += "\n";
            first = false;
            if (!s.title.empty())
                out += "# " + s.title + "\n";
            out += s.table->renderCsv();
        }
        return out;
    }
    std::string out = format(
        "{\"verb\":\"%s\",\"epoch\":%llu,\"cached\":%s,\"sections\":[",
        jsonEscape(verb).c_str(),
        static_cast<unsigned long long>(epoch),
        cached ? "true" : "false");
    for (size_t i = 0; i < sections.size(); i++) {
        if (i)
            out += ",";
        out += sectionJson(sections[i]);
    }
    out += "]}\n";
    return out;
}

QueryResult
QueryResult::failure(std::string verb, uint64_t epoch,
                     std::string error)
{
    QueryResult r;
    r.verb = std::move(verb);
    r.epoch = epoch;
    r.error = std::move(error);
    return r;
}

// ---------------------------------------------------------------------------
// AnalysisService.
// ---------------------------------------------------------------------------

namespace {

/** Strict double parse for a query parameter; error text or "". */
std::string
parseNumberParam(const QueryRequest &req, const char *key,
                 double *out)
{
    std::string value = req.param(key);
    if (value.empty())
        return "";
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (*end != '\0' || errno == ERANGE)
        return format("invalid value '%s' for parameter '%s' "
                      "(expected a number)", value.c_str(), key);
    *out = v;
    return "";
}

/** Strict 0/1 parse for a query parameter; error text or "". */
std::string
parseBoolParam(const QueryRequest &req, const char *key, bool *out)
{
    std::string value = req.param(key);
    if (value.empty())
        return "";
    if (value != "0" && value != "1")
        return format("invalid value '%s' for parameter '%s' "
                      "(expected 0 or 1)", value.c_str(), key);
    *out = value == "1";
    return "";
}

/** Strict non-negative integer parse; error text or "". */
std::string
parseCountParam(const QueryRequest &req, const char *key,
                uint64_t *out)
{
    std::string value = req.param(key);
    if (value.empty())
        return "";
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (*end != '\0' || errno == ERANGE || value[0] == '-')
        return format("invalid value '%s' for parameter '%s' "
                      "(expected a non-negative integer)",
                      value.c_str(), key);
    *out = v;
    return "";
}

/** dimFromName without the CLI's fatal(): a bad query must not kill
 *  the daemon. */
std::optional<MixDim>
dimFromNameOpt(const std::string &dim_name)
{
    for (MixDim d : {MixDim::Module, MixDim::Function, MixDim::Block,
                     MixDim::Mnemonic, MixDim::Isa, MixDim::Category,
                     MixDim::Packing, MixDim::Width, MixDim::Ring,
                     MixDim::MemAccess}) {
        if (dim_name == name(d))
            return d;
    }
    return std::nullopt;
}

/** The mix of @p res selected by the `source` parameter. */
std::optional<InstructionMix>
selectMix(const AnalysisResult &res, const std::string &source,
          std::string *error)
{
    if (source == "hbbp")
        return res.hbbpMix();
    if (source == "ebs")
        return res.ebsMix();
    if (source == "lbr")
        return res.lbrMix();
    *error = format("unknown source '%s'", source.c_str());
    return std::nullopt;
}

} // namespace

void
AnalysisService::refreshEpoch()
{
    uint64_t epoch = source_.epoch();
    if (epoch == cache_epoch_)
        return;
    cache_epoch_ = epoch;
    result_cache_.clear();
    analysis_cache_.clear();
}

std::string
AnalysisService::checkParams(const QueryRequest &request,
                             const std::vector<std::string> &allowed)
{
    for (const auto &[key, value] : request.params) {
        bool known = false;
        for (const std::string &a : allowed)
            if (key == a)
                known = true;
        if (!known)
            return format("unknown parameter '%s' for verb '%s'",
                          key.c_str(), request.verb.c_str());
    }
    return "";
}

const AnalysisResult *
AnalysisService::analysisFor(const QueryRequest &request,
                             std::string *error)
{
    double cutoff = 18.0;
    bool bias = true, patch = false;
    std::string bad;
    if (!(bad = parseNumberParam(request, "cutoff", &cutoff)).empty() ||
        !(bad = parseBoolParam(request, "bias", &bias)).empty() ||
        !(bad = parseBoolParam(request, "patch", &patch)).empty()) {
        *error = bad;
        return nullptr;
    }
    std::string host = request.param("host");

    std::string key = format("cutoff=%.17g;bias=%d;patch=%d;host=%s",
                             cutoff, bias ? 1 : 0, patch ? 1 : 0,
                             host.c_str());
    auto it = analysis_cache_.find(key);
    if (it != analysis_cache_.end())
        return it->second.get();

    std::string workload_name = source_.workloadName();
    if (workload_name.empty()) {
        *error = "no profile to analyze yet (no shards aggregated)";
        return nullptr;
    }
    if (!workload_ || workload_->name != workload_name) {
        std::optional<Workload> w =
            resolver_ ? resolver_(workload_name) : std::nullopt;
        if (!w) {
            *error = format("unknown workload '%s'",
                            workload_name.c_str());
            return nullptr;
        }
        workload_ = std::move(w);
    }

    const ProfileData *profile = host.empty()
                                     ? source_.profile()
                                     : source_.hostProfile(host);
    if (!profile) {
        *error = host.empty()
                     ? "no profile to analyze yet (no shards "
                       "aggregated)"
                     : format("no shards aggregated from host '%s'",
                              host.c_str());
        return nullptr;
    }

    AnalyzerOptions aopts;
    aopts.map.patch_kernel_text = patch;
    aopts.classifier = std::make_shared<CutoffClassifier>(cutoff, bias);
    Analyzer analyzer(aopts);
    auto res = std::make_unique<AnalysisResult>(
        analyzer.analyze(*workload_->program, *profile));
    stats_.analyses++;
    const AnalysisResult *out = res.get();
    analysis_cache_.emplace(std::move(key), std::move(res));
    return out;
}

QueryResult
AnalysisService::buildMix(const QueryRequest &request)
{
    uint64_t epoch = source_.epoch();
    std::string bad = checkParams(
        request, {"source", "cutoff", "bias", "patch", "pivot", "top",
                  "function", "host", "format"});
    if (!bad.empty())
        return QueryResult::failure("mix", epoch, bad);

    std::string error;
    const AnalysisResult *res = analysisFor(request, &error);
    if (!res)
        return QueryResult::failure("mix", epoch, error);
    std::optional<InstructionMix> mix =
        selectMix(*res, request.param("source", "hbbp"), &error);
    if (!mix)
        return QueryResult::failure("mix", epoch, error);

    QueryResult r;
    std::string function = request.param("function");
    if (!function.empty()) {
        Reporter reporter(*mix);
        std::string listing =
            reporter.annotatedDisassembly(function);
        if (listing.empty())
            return QueryResult::failure(
                "mix", epoch,
                format("no function named '%s'", function.c_str()));
        QuerySection s;
        s.text = std::move(listing);
        r.sections.push_back(std::move(s));
        return r;
    }

    MixQuery q;
    std::string pivot = request.param("pivot");
    if (!pivot.empty()) {
        q.group_by.clear();
        for (const std::string &dim_name : split(pivot, ',')) {
            std::optional<MixDim> dim = dimFromNameOpt(dim_name);
            if (!dim)
                return QueryResult::failure(
                    "mix", epoch,
                    format("unknown pivot dimension '%s'",
                           dim_name.c_str()));
            q.group_by.push_back(*dim);
        }
    }
    uint64_t top = 0;
    if (!(bad = parseCountParam(request, "top", &top)).empty())
        return QueryResult::failure("mix", epoch, bad);
    q.top_n = static_cast<size_t>(top);

    QuerySection s;
    s.table = mix->pivotTable(q);
    r.sections.push_back(std::move(s));
    return r;
}

QueryResult
AnalysisService::buildReport(const QueryRequest &request)
{
    uint64_t epoch = source_.epoch();
    std::string bad = checkParams(
        request,
        {"source", "cutoff", "bias", "patch", "host", "format"});
    if (!bad.empty())
        return QueryResult::failure("report", epoch, bad);

    std::string error;
    const AnalysisResult *res = analysisFor(request, &error);
    if (!res)
        return QueryResult::failure("report", epoch, error);
    std::optional<InstructionMix> mix =
        selectMix(*res, request.param("source", "hbbp"), &error);
    if (!mix)
        return QueryResult::failure("report", epoch, error);

    Reporter reporter(*mix);
    QueryResult r;
    // The sections mirror Reporter::summary() exactly: text render is
    // byte-identical to the legacy `report` output (summary + "\n").
    r.trailing_newline = true;
    QuerySection total;
    total.text = format("total executed instructions: %s\n",
                        withSeparators(static_cast<uint64_t>(
                            mix->totalInstructions() + 0.5)).c_str());
    r.sections.push_back(std::move(total));
    auto add = [&](const char *title, TextTable table) {
        QuerySection s;
        s.title = title;
        s.table = std::move(table);
        r.sections.push_back(std::move(s));
    };
    add("top functions", reporter.topFunctions());
    add("top mnemonics", reporter.topMnemonics(12));
    add("ISA breakdown", reporter.isaBreakdown());
    add("families", reporter.familyBreakdown());
    add("rings", reporter.ringBreakdown());
    add("memory", reporter.memoryBreakdown());
    return r;
}

QueryResult
AnalysisService::buildFdo(const QueryRequest &request)
{
    uint64_t epoch = source_.epoch();
    std::string bad = checkParams(
        request, {"cutoff", "bias", "patch", "host", "format"});
    if (!bad.empty())
        return QueryResult::failure("fdo", epoch, bad);

    std::string error;
    const AnalysisResult *res = analysisFor(request, &error);
    if (!res)
        return QueryResult::failure("fdo", epoch, error);

    FdoProfile fdo(res->map, res->hbbp);
    QueryResult r;
    QuerySection s;
    // Text render must stay the byte-exact AutoFDO-like serialization
    // a compiler consumes; the table carries the per-function shape
    // for csv/json.
    s.text = fdo.toText();
    TextTable table({"function", "entry", "total_instructions"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);
    for (const FdoFunction &fn : fdo.functions()) {
        if (fn.total_instructions <= 0)
            continue;
        table.addRow(
            {fn.name,
             format("%llu", static_cast<unsigned long long>(
                                fn.entry_count + 0.5)),
             format("%llu", static_cast<unsigned long long>(
                                fn.total_instructions + 0.5))});
    }
    s.table = std::move(table);
    r.sections.push_back(std::move(s));
    return r;
}

QueryResult
AnalysisService::buildHosts(const QueryRequest &request)
{
    uint64_t epoch = source_.epoch();
    std::string bad = checkParams(request, {"format"});
    if (!bad.empty())
        return QueryResult::failure("hosts", epoch, bad);

    TextTable table({"host", "covered", "pending"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);
    for (const HostSlice &s : source_.hostSlices())
        table.addRow({s.host, format("%u", s.covered),
                      format("%zu", s.pending)});
    QueryResult r;
    QuerySection s;
    s.table = std::move(table);
    r.sections.push_back(std::move(s));
    return r;
}

QueryResult
AnalysisService::buildStatus(const QueryRequest &request)
{
    uint64_t epoch = source_.epoch();
    std::string bad = checkParams(request, {"format"});
    if (!bad.empty())
        return QueryResult::failure("status", epoch, bad);

    size_t covered = 0, pending = 0;
    std::vector<HostSlice> slices = source_.hostSlices();
    for (const HostSlice &s : slices) {
        covered += s.covered;
        pending += s.pending;
    }
    std::vector<std::pair<std::string, std::string>> kv = {
        {"workload", source_.workloadName()},
        {"epoch", format("%llu",
                         static_cast<unsigned long long>(epoch))},
        {"hosts", format("%zu", slices.size())},
        {"covered", format("%zu", covered + pending)},
        {"pending", format("%zu", pending)},
        {"requests", format("%llu", static_cast<unsigned long long>(
                                        stats_.requests))},
        {"cache_hits", format("%llu", static_cast<unsigned long long>(
                                          stats_.hits))},
        {"cache_misses",
         format("%llu", static_cast<unsigned long long>(
                            stats_.misses))},
        {"errors", format("%llu", static_cast<unsigned long long>(
                                      stats_.errors))},
        {"analyses", format("%llu", static_cast<unsigned long long>(
                                        stats_.analyses))},
    };

    QueryResult r;
    QuerySection s;
    std::string text;
    TextTable table({"key", "value"});
    for (const auto &[key, value] : kv) {
        text += key + "=" + value + "\n";
        table.addRow({key, value});
    }
    s.text = std::move(text);
    s.table = std::move(table);
    r.sections.push_back(std::move(s));
    return r;
}

namespace {

/** Steady-clock nanoseconds for the serve-timing split. */
int64_t
serveNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

QueryResult
AnalysisService::serve(const QueryRequest &request, ServeTiming *timing)
{
    static telemetry::Counter &m_requests =
        telemetry::counter("hbbp_query_requests_total");
    static telemetry::Counter &m_hits =
        telemetry::counter("hbbp_query_cache_hits_total");
    static telemetry::Counter &m_misses =
        telemetry::counter("hbbp_query_cache_misses_total");
    static telemetry::Counter &m_errors =
        telemetry::counter("hbbp_query_errors_total");

    stats_.requests++;
    m_requests.add();
    int64_t t0 = serveNowNs();
    refreshEpoch();
    uint64_t epoch = source_.epoch();
    const std::string &verb = request.verb;

    // Format validation is uniform across verbs (every verb renders).
    std::string format_name = request.param("format", "text");
    if (!renderFormatFromName(format_name)) {
        stats_.errors++;
        m_errors.add();
        if (timing)
            timing->cache_ns =
                static_cast<uint64_t>(serveNowNs() - t0);
        return QueryResult::failure(
            verb, epoch,
            format("unknown format '%s' (expected: text, csv, json)",
                   format_name.c_str()));
    }

    bool cacheable =
        verb == "mix" || verb == "report" || verb == "fdo";
    if (cacheable) {
        auto it = result_cache_.find(request.cacheKey());
        if (it != result_cache_.end()) {
            stats_.hits++;
            m_hits.add();
            QueryResult r = it->second;
            r.cached = true;
            if (timing)
                timing->cache_ns =
                    static_cast<uint64_t>(serveNowNs() - t0);
            return r;
        }
        stats_.misses++;
        m_misses.add();
    }

    int64_t t1 = serveNowNs();
    if (timing)
        timing->cache_ns = static_cast<uint64_t>(t1 - t0);

    QueryResult r;
    if (verb == "mix")
        r = buildMix(request);
    else if (verb == "report")
        r = buildReport(request);
    else if (verb == "fdo")
        r = buildFdo(request);
    else if (verb == "hosts")
        r = buildHosts(request);
    else if (verb == "status")
        r = buildStatus(request);
    else
        r = QueryResult::failure(
            verb, epoch,
            format("unknown verb '%s' (expected: mix, report, fdo, "
                   "hosts, status)", verb.c_str()));
    r.verb = verb;
    r.epoch = epoch;
    r.cached = false;
    if (timing)
        timing->analysis_ns =
            static_cast<uint64_t>(serveNowNs() - t1);
    if (!r.error.empty()) {
        stats_.errors++;
        m_errors.add();
        return r;
    }
    if (cacheable)
        result_cache_.emplace(request.cacheKey(), r);
    return r;
}

} // namespace hbbp
