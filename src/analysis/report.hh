/**
 * @file
 * Canned report views (Section V.B of the paper).
 *
 * The paper's analyzer emits pivot tables with "custom or traditional
 * views such as top functions, top mnemonics, or instruction family
 * breakdowns ... produced in a few clicks", plus disassembly annotated
 * with static instruction properties. Reporter packages those views on
 * top of InstructionMix.
 */

#ifndef HBBP_ANALYSIS_REPORT_HH
#define HBBP_ANALYSIS_REPORT_HH

#include <string>

#include "analysis/mix.hh"

namespace hbbp {

/** Produces the traditional analysis views from a mix. */
class Reporter
{
  public:
    explicit Reporter(const InstructionMix &mix) : mix_(mix) {}

    /** Top @p n functions by executed instructions. */
    TextTable topFunctions(size_t n = 10) const;

    /** Top @p n mnemonics by execution count, with shares. */
    TextTable topMnemonics(size_t n = 20) const;

    /** Breakdown by ISA extension and packing. */
    TextTable isaBreakdown() const;

    /** Breakdown by functional category (instruction families). */
    TextTable familyBreakdown() const;

    /** Ring (user/kernel) breakdown. */
    TextTable ringBreakdown() const;

    /** Memory access breakdown (loads / stores / neither). */
    TextTable memoryBreakdown() const;

    /** Per-group totals for a custom taxonomy. */
    TextTable taxonomyBreakdown(const Taxonomy &taxonomy) const;

    /**
     * Annotated disassembly of @p function: every instruction with its
     * address, mnemonic, static attributes and estimated executions.
     * Empty string when the function is unknown or never executed.
     */
    std::string annotatedDisassembly(const std::string &function) const;

    /** One-page summary combining the standard views. */
    std::string summary() const;

  private:
    TextTable sharesTable(const std::vector<MixDim> &dims,
                          size_t top_n) const;

    const InstructionMix &mix_;
};

} // namespace hbbp

#endif // HBBP_ANALYSIS_REPORT_HH
