/**
 * @file
 * Per-block data source selection — the "hybrid" in HBBP.
 *
 * Section IV: for each basic block, HBBP decides whether the EBS or the
 * LBR estimate is used. The decision rule is learned offline with a
 * classification tree (src/ml); the learned rule the paper reports is a
 * single cutoff on block instruction length at 18, which the
 * CutoffClassifier encodes directly. Classifiers consume BlockFeatures,
 * the same feature vector the trainer uses.
 */

#ifndef HBBP_ANALYSIS_CLASSIFIER_HH
#define HBBP_ANALYSIS_CLASSIFIER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hbbp {

/** Which data source a block's BBEC comes from. */
enum class BbecSource : uint8_t { Ebs, Lbr };

/** Printable name of a source. */
const char *name(BbecSource source);

/**
 * The feature vector HBBP classifiers and the ML trainer operate on.
 *
 * Kept deliberately close to the paper's candidate features: code
 * parameters that could influence the monitoring subsystem, weighted by
 * execution count.
 */
struct BlockFeatures
{
    double length = 0.0;        ///< Instructions in the block.
    double bytes = 0.0;         ///< Encoded size in bytes.
    double exec_estimate = 0.0; ///< Estimated executions (max of both).
    double bias = 0.0;          ///< 1.0 when the LBR bias flag is set.
    double long_latency = 0.0;  ///< 1.0 when a long-latency op present.
    double branch_density = 0.0;///< Control transfers / instructions.

    /** Number of features (for ML matrices). */
    static constexpr size_t kCount = 6;

    /** Feature value by index (order matches featureName()). */
    double value(size_t index) const;

    /** Name of feature @p index. */
    static const char *featureName(size_t index);

    /** Flatten into a vector (ML dataset rows). */
    std::vector<double> toVector() const;
};

/** Interface: choose a data source for one block. */
class HbbpClassifier
{
  public:
    virtual ~HbbpClassifier() = default;

    /** Pick the source for a block with the given features. */
    virtual BbecSource choose(const BlockFeatures &features) const = 0;

    /** Short human-readable description of the rule. */
    virtual std::string describe() const = 0;
};

/**
 * The paper's learned rule: blocks of @p cutoff instructions or fewer
 * use LBR, longer blocks use EBS — except that bias-flagged blocks
 * (whose LBR evidence is suspect, Section III.C) always use EBS.
 */
class CutoffClassifier : public HbbpClassifier
{
  public:
    explicit CutoffClassifier(double cutoff = 18.0,
                              bool bias_to_ebs = true)
        : cutoff_(cutoff), bias_to_ebs_(bias_to_ebs)
    {
    }

    BbecSource
    choose(const BlockFeatures &features) const override
    {
        if (bias_to_ebs_ && features.bias > 0.5)
            return BbecSource::Ebs;
        return features.length <= cutoff_ ? BbecSource::Lbr
                                          : BbecSource::Ebs;
    }

    std::string describe() const override;

    double cutoff() const { return cutoff_; }

    /** True when bias-flagged blocks are routed to EBS. */
    bool biasToEbs() const { return bias_to_ebs_; }

  private:
    double cutoff_;
    bool bias_to_ebs_;
};

/** Always pick one source (the EBS-only / LBR-only baselines). */
class FixedClassifier : public HbbpClassifier
{
  public:
    explicit FixedClassifier(BbecSource source) : source_(source) {}

    BbecSource
    choose(const BlockFeatures &) const override
    {
        return source_;
    }

    std::string describe() const override;

  private:
    BbecSource source_;
};

} // namespace hbbp

#endif // HBBP_ANALYSIS_CLASSIFIER_HH
