/**
 * @file
 * Basic block execution count estimation from PMU samples.
 *
 * Implements the two base methods of Section III and their paper-exact
 * scaling:
 *
 *  - EBS: every eventing-IP sample is applied to all instructions of the
 *    enclosing basic block; the block estimate is
 *    samples * period / block_length (the paper's enhancement of
 *    classic EBS);
 *  - LBR: every stack of N entries yields N-1 <Target[i-1], Source[i]>
 *    streams, each crediting all blocks on the straight-line path with
 *    weight 1/(N-1); the block estimate is weighted_streams * period.
 *
 * The stream walker validates that no architecturally always-taken
 * control transfer lies strictly inside a stream — invalid streams are
 * discarded. This is what makes the kernel self-modifying-code anomaly
 * (Section III.C) visible: the static kernel image contains tracepoint
 * JMPs that live execution ignores, so streams walked on the static map
 * are rejected.
 *
 * Bias detection follows Section III.C: a branch whose frequency at
 * entry[0] is disproportionate relative to its overall LBR presence
 * marks the blocks whose evidence depends on it as bias-suspect.
 */

#ifndef HBBP_ANALYSIS_BBEC_HH
#define HBBP_ANALYSIS_BBEC_HH

#include <cstdint>
#include <vector>

#include "collect/profile.hh"
#include "program/blockmap.hh"

namespace hbbp {

/** Tuning knobs for estimation and bias detection. */
struct BbecOptions
{
    /** Minimum entry[0] frequency before a branch can be biased. */
    double bias_min_freq = 0.06;
    /** entry[0] frequency must exceed ratio * overall slot frequency. */
    double bias_ratio = 2.0;
    /** Fraction of a block's LBR credit from biased samples to flag it. */
    double biased_credit_frac = 0.30;
    /** Safety cap on blocks walked per stream. */
    uint32_t max_walk_blocks = 4096;
    /**
     * Scale LBR estimates by 1/(1 - discarded stream fraction): the
     * analyzer knows how many streams it rejected, so the systematic
     * undercount can be corrected globally, leaving only the local
     * distortion near the anomalous branches.
     */
    bool renormalize_discards = true;
};

/** A detected biased branch (diagnostics). */
struct BiasedBranch
{
    uint64_t source = 0;      ///< Branch source address.
    double entry0_freq = 0.0; ///< Fraction of samples with it at [0].
    double overall_freq = 0.0;///< Fraction of all stack slots.
};

/** Per-map-block estimates from both methods plus bias flags. */
struct BbecEstimates
{
    /** EBS-estimated execution counts, indexed by MapBlock index. */
    std::vector<double> ebs;
    /** LBR-estimated execution counts. */
    std::vector<double> lbr;
    /** Raw EBS sample count per block (diagnostics). */
    std::vector<uint32_t> ebs_samples;
    /** Accumulated LBR stream weight per block (diagnostics). */
    std::vector<double> lbr_weight;
    /** Bias-suspect flag per block. */
    std::vector<bool> bias;

    /** Detected biased branches. */
    std::vector<BiasedBranch> biased_branches;

    uint64_t lbr_streams_total = 0;
    uint64_t lbr_streams_discarded = 0;
    uint64_t ebs_samples_unmapped = 0;

    /** Fraction of streams the walker rejected. */
    double
    discardFraction() const
    {
        return lbr_streams_total
            ? static_cast<double>(lbr_streams_discarded) /
              static_cast<double>(lbr_streams_total) : 0.0;
    }
};

/** Computes BbecEstimates from a profile on a block map. */
class BbecEstimator
{
  public:
    explicit BbecEstimator(BbecOptions opts = {}) : opts_(opts) {}

    /** Run both estimators and bias detection. */
    BbecEstimates estimate(const BlockMap &map,
                           const ProfileData &profile) const;

  private:
    BbecOptions opts_;
};

} // namespace hbbp

#endif // HBBP_ANALYSIS_BBEC_HH
