#include "analysis/analyzer.hh"

#include <algorithm>

#include "support/logging.hh"

namespace hbbp {

Analyzer::Analyzer(AnalyzerOptions opts) : opts_(std::move(opts))
{
    classifier_ = opts_.classifier
        ? opts_.classifier
        : std::make_shared<const CutoffClassifier>(18.0);
}

std::vector<BlockFeatures>
Analyzer::computeFeatures(const BlockMap &map,
                          const BbecEstimates &estimates)
{
    const size_t n = map.blocks().size();
    std::vector<BlockFeatures> features(n);
    for (size_t i = 0; i < n; i++) {
        const MapBlock &blk = map.block(static_cast<uint32_t>(i));
        BlockFeatures &f = features[i];
        f.length = static_cast<double>(blk.size());
        f.bytes = static_cast<double>(blk.bytes);
        f.exec_estimate = std::max(estimates.ebs[i], estimates.lbr[i]);
        f.bias = estimates.bias[i] ? 1.0 : 0.0;
        f.long_latency = blk.hasLongLatency() ? 1.0 : 0.0;
        size_t controls = 0;
        for (const Instruction &instr : blk.instrs)
            if (instr.info().isControl())
                controls++;
        f.branch_density = blk.size()
            ? static_cast<double>(controls) /
              static_cast<double>(blk.size()) : 0.0;
    }
    return features;
}

AnalysisResult
Analyzer::analyze(const Program &prog, const ProfileData &profile) const
{
    BlockMap map(prog, opts_.map);
    BbecEstimator estimator(opts_.bbec);
    BbecEstimates estimates = estimator.estimate(map, profile);
    std::vector<BlockFeatures> features = computeFeatures(map, estimates);

    const size_t n = map.blocks().size();
    std::vector<BbecSource> choice(n, BbecSource::Lbr);
    std::vector<double> fused(n, 0.0);
    for (size_t i = 0; i < n; i++) {
        choice[i] = classifier_->choose(features[i]);
        fused[i] = choice[i] == BbecSource::Ebs ? estimates.ebs[i]
                                                : estimates.lbr[i];
    }

    return AnalysisResult{std::move(map), std::move(estimates),
                          std::move(features), std::move(choice),
                          std::move(fused)};
}

std::vector<double>
trueMapBbec(const BlockMap &map,
            const std::unordered_map<uint64_t, uint64_t> &bbec_by_addr)
{
    std::vector<double> out(map.blocks().size(), 0.0);
    for (uint32_t i = 0; i < map.blocks().size(); i++) {
        auto it = bbec_by_addr.find(map.block(i).start);
        if (it != bbec_by_addr.end())
            out[i] = static_cast<double>(it->second);
    }
    return out;
}

} // namespace hbbp
