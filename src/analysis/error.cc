#include "analysis/error.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/vectorops.hh"

namespace hbbp {

std::vector<MnemonicError>
perMnemonicErrors(const Counter<Mnemonic> &reference,
                  const Counter<Mnemonic> &measured)
{
    std::vector<MnemonicError> out;
    out.reserve(reference.size());
    for (const auto &[mn, ref] : reference.items()) {
        if (ref <= 0.0)
            continue;
        MnemonicError e;
        e.mnemonic = mn;
        e.reference = ref;
        e.measured = measured.get(mn);
        e.error = std::abs(ref - e.measured) / ref;
        out.push_back(e);
    }
    std::sort(out.begin(), out.end(),
              [](const MnemonicError &a, const MnemonicError &b) {
                  if (a.reference != b.reference)
                      return a.reference > b.reference;
                  return static_cast<uint16_t>(a.mnemonic) <
                         static_cast<uint16_t>(b.mnemonic);
              });
    return out;
}

double
avgWeightedError(const Counter<Mnemonic> &reference,
                 const Counter<Mnemonic> &measured)
{
    double total_ref = reference.total();
    if (total_ref <= 0.0)
        return 0.0;
    // Gather the per-mnemonic terms in sorted-key order and fold them
    // with the bit-stable vecops reduction; accumulating in hash
    // iteration order made the reported error depend on the standard
    // library's bucket layout.
    std::vector<double> terms;
    terms.reserve(reference.size());
    for (const auto &[mn, ref] : reference.sortedByKey()) {
        if (ref <= 0.0)
            continue;
        double err = std::abs(ref - measured.get(mn)) / ref;
        terms.push_back(err * ref / total_ref);
    }
    return vecops::sum(terms);
}

double
blockError(double reference, double estimate)
{
    if (reference <= 0.0)
        return 0.0;
    return std::abs(reference - estimate) / reference;
}

} // namespace hbbp
