#include "analysis/error.hh"

#include <algorithm>
#include <cmath>

namespace hbbp {

std::vector<MnemonicError>
perMnemonicErrors(const Counter<Mnemonic> &reference,
                  const Counter<Mnemonic> &measured)
{
    std::vector<MnemonicError> out;
    out.reserve(reference.size());
    for (const auto &[mn, ref] : reference.items()) {
        if (ref <= 0.0)
            continue;
        MnemonicError e;
        e.mnemonic = mn;
        e.reference = ref;
        e.measured = measured.get(mn);
        e.error = std::abs(ref - e.measured) / ref;
        out.push_back(e);
    }
    std::sort(out.begin(), out.end(),
              [](const MnemonicError &a, const MnemonicError &b) {
                  if (a.reference != b.reference)
                      return a.reference > b.reference;
                  return static_cast<uint16_t>(a.mnemonic) <
                         static_cast<uint16_t>(b.mnemonic);
              });
    return out;
}

double
avgWeightedError(const Counter<Mnemonic> &reference,
                 const Counter<Mnemonic> &measured)
{
    double total_ref = reference.total();
    if (total_ref <= 0.0)
        return 0.0;
    double sum = 0.0;
    for (const auto &[mn, ref] : reference.items()) {
        if (ref <= 0.0)
            continue;
        double err = std::abs(ref - measured.get(mn)) / ref;
        sum += err * ref / total_ref;
    }
    return sum;
}

double
blockError(double reference, double estimate)
{
    if (reference <= 0.0)
        return 0.0;
    return std::abs(reference - estimate) / reference;
}

} // namespace hbbp
