/**
 * @file
 * The analyzer facade: profile in, instruction mixes out.
 *
 * Ties the analysis pipeline together the way the paper's tool does:
 * disassemble the binaries into a block map, estimate BBECs from the EBS
 * and LBR data sources, compute per-block features, let the HBBP
 * classifier pick a source per block, and expose instruction mixes for
 * the fused estimate and for the two raw methods (used as baselines
 * throughout the evaluation).
 */

#ifndef HBBP_ANALYSIS_ANALYZER_HH
#define HBBP_ANALYSIS_ANALYZER_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "analysis/bbec.hh"
#include "analysis/classifier.hh"
#include "analysis/mix.hh"
#include "collect/profile.hh"
#include "program/blockmap.hh"

namespace hbbp {

/** Analyzer configuration. */
struct AnalyzerOptions
{
    /** Block map construction (kernel text patching fix lives here). */
    BlockMapOptions map;
    /** Estimation and bias detection knobs. */
    BbecOptions bbec;
    /** Source selection rule; null means CutoffClassifier(18). */
    std::shared_ptr<const HbbpClassifier> classifier;

    /**
     * Options with Section III.C's live-kernel-text fix switched on
     * (or explicitly off, for stale-map comparisons).
     */
    static AnalyzerOptions kernelPatched(bool patch = true)
    {
        AnalyzerOptions opts;
        opts.map.patch_kernel_text = patch;
        return opts;
    }
};

/** Everything one analysis pass produces. */
struct AnalysisResult
{
    BlockMap map;             ///< References the analyzed Program.
    BbecEstimates estimates;  ///< Raw EBS/LBR estimates + bias flags.
    std::vector<BlockFeatures> features; ///< Per map block.
    std::vector<BbecSource> choice;      ///< HBBP's pick per block.
    std::vector<double> hbbp;            ///< Fused BBEC per block.

    /** Instruction mix from the fused HBBP counts. */
    InstructionMix hbbpMix() const { return {map, hbbp}; }

    /** Instruction mix from raw EBS (baseline). */
    InstructionMix ebsMix() const { return {map, estimates.ebs}; }

    /** Instruction mix from raw LBR (baseline). */
    InstructionMix lbrMix() const { return {map, estimates.lbr}; }
};

/** Runs the analysis pipeline. */
class Analyzer
{
  public:
    explicit Analyzer(AnalyzerOptions opts = {});

    /**
     * Analyze @p profile against @p prog. The returned result references
     * @p prog, which must outlive it.
     */
    AnalysisResult analyze(const Program &prog,
                           const ProfileData &profile) const;

    /** Compute the per-block feature vectors used for classification. */
    static std::vector<BlockFeatures>
    computeFeatures(const BlockMap &map, const BbecEstimates &estimates);

    /** The classifier in use. */
    const HbbpClassifier &classifier() const { return *classifier_; }

  private:
    AnalyzerOptions opts_;
    std::shared_ptr<const HbbpClassifier> classifier_;
};

/**
 * Project exact per-program-block counts (keyed by start address, as
 * produced by Instrumenter::bbecByAddr) onto a block map. Map blocks
 * whose start address has no exact counterpart get 0 — on a stale
 * kernel map this is where ground-truth comparisons surface the
 * mismatch.
 */
std::vector<double>
trueMapBbec(const BlockMap &map,
            const std::unordered_map<uint64_t, uint64_t> &bbec_by_addr);

} // namespace hbbp

#endif // HBBP_ANALYSIS_ANALYZER_HH
