/**
 * @file
 * The analysis-query service: one typed QueryRequest → QueryResult
 * API over every analysis entry point.
 *
 * Before this facade existed the mix/report/FDO paths lived as option
 * plumbing inside the CLI's analyze/report commands: each re-loaded
 * the profile, re-ran the analyzer and printf'd its own view. The
 * service owns those entry points once, behind a transport-neutral
 * request/result pair, so the same analysis API serves three
 * transports — the in-process CLI, the socket query endpoint of
 * `hbbp-tool serve` (fleet/query.hh), and a future relay-side mix
 * offload.
 *
 * Results are cached per *epoch*: the profile source exposes the
 * aggregator's invalidation epoch (bumped once per accepted shard),
 * and both cache levels — rendered-result by canonical request key,
 * and the expensive AnalysisResult by analyzer configuration — are
 * dropped the moment the epoch moves. Repeated queries between
 * arrivals are cache hits; every result carries the epoch it was
 * computed at and whether it came from cache, which the wire protocol
 * surfaces as `epoch=`/`cached=` headers.
 */

#ifndef HBBP_ANALYSIS_SERVICE_HH
#define HBBP_ANALYSIS_SERVICE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "collect/profile.hh"
#include "support/table.hh"
#include "workloads/workload.hh"

namespace hbbp {

/** The query API version spoken by requests and replies. */
constexpr uint32_t kQueryApiVersion = 1;

/** How a QueryResult is rendered for output. */
enum class RenderFormat { Text, Csv, Json };

/** Parse a --format value; std::nullopt for unknown names. */
std::optional<RenderFormat>
renderFormatFromName(const std::string &format_name);

/** Printable name of a format. */
const char *name(RenderFormat format);

/**
 * One analysis query: a verb plus key=value parameters.
 *
 * The canonical text form (renderText()) doubles as the versioned
 * wire request body:
 *
 *   hbbp-query/1
 *   verb=mix
 *   cutoff=20
 *   format=csv
 *
 * Parameters are kept sorted, so two requests that mean the same
 * thing serialize — and cache — identically.
 */
struct QueryRequest
{
    std::string verb;
    std::map<std::string, std::string> params;

    /** The parameter's value, or @p fallback when absent. */
    std::string param(const std::string &key,
                      const std::string &fallback = "") const;

    /** Canonical versioned text form (the wire request body). */
    std::string renderText() const;

    /**
     * Parse a renderText()-shaped body. Rejects missing/unsupported
     * version lines, malformed parameter lines, duplicate keys and a
     * missing verb — std::nullopt with *@p why set.
     */
    static std::optional<QueryRequest>
    parseText(const std::string &body, std::string *why);

    /**
     * The result-cache key: the canonical form minus the `format`
     * parameter — rendering is cheap and happens per response, so
     * text/csv/json views of one analysis share a cache entry.
     */
    std::string cacheKey() const;
};

/**
 * One section of a result. A section may carry prose, a table, or
 * both: render(Text) prefers the text (which preserves byte-exact
 * legacy output like the FDO profile or the report preamble), while
 * Csv/Json prefer the table (structured data for machines).
 */
struct QuerySection
{
    std::string title;
    std::optional<std::string> text;
    std::optional<TextTable> table;
};

/** The typed result every analysis entry point returns. */
struct QueryResult
{
    std::string verb;
    /** Source epoch the result was computed at. */
    uint64_t epoch = 0;
    /** True when served from the per-epoch result cache. */
    bool cached = false;
    /** Non-empty = the query failed; sections are empty. */
    std::string error;
    std::vector<QuerySection> sections;
    /** Append one final newline in render(Text) (report does). */
    bool trailing_newline = false;

    /** Render the sections in @p format (see QuerySection). */
    std::string render(RenderFormat format) const;

    static QueryResult failure(std::string verb, uint64_t epoch,
                               std::string error);
};

/** One host's arrival coverage, as a slice query reports it. */
struct HostSlice
{
    std::string host;
    uint32_t covered = 0; ///< Gap-free folded shard prefix.
    size_t pending = 0;   ///< Out-of-order shards behind a gap.
};

/**
 * Where the service's profile bytes come from. The epoch is the
 * invalidation contract: everything the service derived from this
 * source is valid exactly as long as epoch() stands still.
 */
class ProfileSource
{
  public:
    virtual ~ProfileSource() = default;

    /** Invalidation epoch; any change drops the service's caches. */
    virtual uint64_t epoch() const = 0;

    /** Workload the profile was collected from ("" when unknown). */
    virtual std::string workloadName() const = 0;

    /** The full profile; nullptr when nothing has been aggregated. */
    virtual const ProfileData *profile() = 0;

    /**
     * One host's slice of the profile; nullptr when the host is
     * unknown or the source has no per-host decomposition.
     */
    virtual const ProfileData *hostProfile(const std::string &host) = 0;

    /** Per-host coverage rows (empty without a decomposition). */
    virtual std::vector<HostSlice> hostSlices() const = 0;
};

/**
 * A fixed, epoch-0 source over one loaded profile — the in-process
 * CLI transport (`analyze -i profile.hbbp`). No per-host slices.
 */
class FixedProfileSource : public ProfileSource
{
  public:
    FixedProfileSource(ProfileData profile, std::string workload_name)
        : profile_(std::move(profile)),
          workload_(std::move(workload_name))
    {
    }

    uint64_t epoch() const override { return 0; }
    std::string workloadName() const override { return workload_; }
    const ProfileData *profile() override { return &profile_; }
    const ProfileData *hostProfile(const std::string &) override
    {
        return nullptr;
    }
    std::vector<HostSlice> hostSlices() const override { return {}; }

  private:
    ProfileData profile_;
    std::string workload_;
};

/** What the service has served (the cache-effectiveness proof). */
struct ServiceStats
{
    uint64_t requests = 0; ///< Queries served, errors included.
    uint64_t hits = 0;     ///< Result-cache hits (cacheable verbs).
    uint64_t misses = 0;   ///< Result-cache misses (cacheable verbs).
    uint64_t errors = 0;   ///< Queries answered with an error.
    /** Full analyzer runs — the expensive path. A cached repeat must
     *  never move this (bench/scale_query asserts exactly that). */
    uint64_t analyses = 0;
};

/** Resolves a workload name to its generated Workload. */
using WorkloadResolver =
    std::function<std::optional<Workload>(const std::string &)>;

/**
 * Where one served query's time went, in nanoseconds. The query
 * endpoint forwards this split in the reply's `timing=` header; the
 * transport-side parse/render halves are measured by the caller.
 */
struct ServeTiming
{
    uint64_t cache_ns = 0;    ///< Epoch refresh + result-cache probe.
    uint64_t analysis_ns = 0; ///< Building the result (0 on a hit).
};

/**
 * The analysis facade: serves `mix`, `report`, `fdo`, `hosts` and
 * `status` queries over a ProfileSource, with per-epoch caching.
 *
 * Not thread-safe by design: the serving transports (CLI, the shard
 * listener's poll loop) are single-threaded where they touch the
 * aggregator, and the service inherits that discipline.
 */
class AnalysisService
{
  public:
    /**
     * @param source    profile bytes + invalidation epoch
     * @param resolver  workload-name lookup, injected so this layer
     *                  never depends on the CLI's registry
     */
    AnalysisService(ProfileSource &source, WorkloadResolver resolver)
        : source_(source), resolver_(std::move(resolver))
    {
    }

    /**
     * Serve one query. Never throws and never kills the process on
     * bad input — a malformed query from the network must cost one
     * error result, not the daemon. `mix`/`report`/`fdo` results are
     * cached per epoch; `hosts`/`status` are computed fresh (status
     * reports live counters). *@p timing, when non-null, receives
     * the cache-probe/analysis time split.
     */
    QueryResult serve(const QueryRequest &request,
                      ServeTiming *timing = nullptr);

    /** The source's current epoch (what new results will carry). */
    uint64_t epoch() const { return source_.epoch(); }

    const ServiceStats &stats() const { return stats_; }

  private:
    /** Drop both cache levels when the source epoch moved. */
    void refreshEpoch();

    /** Validate params against @p allowed; error text or "". */
    std::string checkParams(const QueryRequest &request,
                            const std::vector<std::string> &allowed);

    /**
     * The expensive level: AnalysisResult by analyzer configuration
     * (cutoff/bias/patch/host), shared by every verb and format that
     * needs the same analysis within one epoch.
     */
    const AnalysisResult *analysisFor(const QueryRequest &request,
                                      std::string *error);

    QueryResult buildMix(const QueryRequest &request);
    QueryResult buildReport(const QueryRequest &request);
    QueryResult buildFdo(const QueryRequest &request);
    QueryResult buildHosts(const QueryRequest &request);
    QueryResult buildStatus(const QueryRequest &request);

    ProfileSource &source_;
    WorkloadResolver resolver_;
    /** Resolved lazily from the source's workload name (the daemon
     *  learns the workload from the first accepted shard). */
    std::optional<Workload> workload_;

    uint64_t cache_epoch_ = UINT64_MAX;
    std::map<std::string, QueryResult> result_cache_;
    std::map<std::string, std::unique_ptr<AnalysisResult>>
        analysis_cache_;

    ServiceStats stats_;
};

} // namespace hbbp

#endif // HBBP_ANALYSIS_SERVICE_HH
