/**
 * @file
 * Instruction mixes and pivot-table views.
 *
 * Given per-block execution counts (from any source — HBBP, EBS, LBR or
 * ground truth), InstructionMix combines them with the static block map
 * to produce per-mnemonic counts and the pivot-table views of Section
 * V.B: group-by over thread/module/function/block/mnemonic/ISA/category/
 * packing/width/ring/memory-access dimensions, with filters and top-N.
 */

#ifndef HBBP_ANALYSIS_MIX_HH
#define HBBP_ANALYSIS_MIX_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/taxonomy.hh"
#include "program/blockmap.hh"
#include "support/histogram.hh"
#include "support/table.hh"

namespace hbbp {

/** Pivot dimensions. */
enum class MixDim : uint8_t {
    Module,
    Function,
    Block,     ///< Block start address.
    Mnemonic,
    Isa,       ///< ISA extension (BASE/X87/SSE/AVX/AVX2).
    Category,
    Packing,   ///< NONE/SCALAR/PACKED.
    Width,     ///< Operand width in bits.
    Ring,      ///< USER/KERNEL.
    MemAccess, ///< NONE/LOAD/STORE/LOAD_STORE.
};

/** Printable name of a dimension. */
const char *name(MixDim dim);

/** Context handed to filters: one (block, instruction) pair. */
struct MixContext
{
    const BlockMap *map = nullptr;
    const MapBlock *block = nullptr;
    const Instruction *instr = nullptr;
    Ring ring = Ring::User;

    /** Rendered value of @p dim for this context. */
    std::string dimValue(MixDim dim) const;
};

/** One output row of a pivot query. */
struct PivotRow
{
    std::vector<std::string> key; ///< One cell per group-by dimension.
    double count = 0.0;           ///< Estimated executed instructions.
};

/** A pivot query: group-by dimensions, optional filter and top-N. */
struct MixQuery
{
    std::vector<MixDim> group_by{MixDim::Mnemonic};
    /** Keep only contexts for which the filter returns true. */
    std::function<bool(const MixContext &)> filter;
    /** Keep only the N largest rows (0 = all). */
    size_t top_n = 0;
};

/** An instruction mix: block counts joined with static disassembly. */
class InstructionMix
{
  public:
    /**
     * @param map   block map the counts are indexed by
     * @param bbec  per-map-block execution counts (same indexing)
     */
    InstructionMix(const BlockMap &map, std::vector<double> bbec);

    /** Total executed instructions in the mix. */
    double totalInstructions() const;

    /** Per-mnemonic execution counts. */
    Counter<Mnemonic> mnemonicCounts() const;

    /** Per-mnemonic counts restricted by a filter. */
    Counter<Mnemonic>
    mnemonicCounts(const std::function<bool(const MixContext &)> &filter)
        const;

    /** Run a pivot query. Rows sorted by decreasing count. */
    std::vector<PivotRow> pivot(const MixQuery &query) const;

    /** Render a pivot query as a text table. */
    TextTable pivotTable(const MixQuery &query) const;

    /** Counts aggregated over a taxonomy's groups. */
    Counter<std::string> taxonomyCounts(const Taxonomy &taxonomy) const;

    /** The per-block counts backing the mix. */
    const std::vector<double> &bbec() const { return bbec_; }

    /** The block map backing the mix. */
    const BlockMap &map() const { return map_; }

  private:
    void forEach(const std::function<void(const MixContext &,
                                          double count)> &fn) const;

    const BlockMap &map_;
    std::vector<double> bbec_;
    /** block(i).size() as doubles — the dot-product operand backing
     *  totalInstructions(), cached so the hot path is one contiguous
     *  vecops::dot instead of a per-block pointer chase. */
    std::vector<double> block_sizes_;
};

} // namespace hbbp

#endif // HBBP_ANALYSIS_MIX_HH
