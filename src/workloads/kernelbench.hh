/**
 * @file
 * The synthetic kernel benchmark (Section VIII.D).
 *
 * A small prime-search kernel exists twice: as a user-space function
 * (hello_u in module "hello") and as the same code inserted into a live
 * kernel as a device-driver module (hello_k in "hello.ko"), triggered
 * from user space by reads (syscalls), separated in time by idle work.
 * The kernel module contains tracepoint sites that are patched to NOPs
 * in the live image (self-modifying kernel text) — the analyzer must
 * apply the live-text fix to handle them.
 */

#ifndef HBBP_WORKLOADS_KERNELBENCH_HH
#define HBBP_WORKLOADS_KERNELBENCH_HH

#include "workloads/workload.hh"

namespace hbbp {

/** Names of the two prime-search functions. */
constexpr const char *kKernelBenchUserFunc = "hello_u";
constexpr const char *kKernelBenchKernelFunc = "hello_k";

/** Generate the kernel benchmark workload. */
Workload makeKernelBench();

} // namespace hbbp

#endif // HBBP_WORKLOADS_KERNELBENCH_HH
