#include "workloads/test40.hh"

#include "workloads/synthetic.hh"

namespace hbbp {

Workload
makeTest40()
{
    SyntheticAppSpec spec;
    spec.name = "test40";
    spec.seed = 0x6ea474;
    spec.palette = paletteObjectOriented();
    // Geant4 physics: stepping kernels add scalar SSE math on top of the
    // OO base (transport, cross-sections, RNG).
    spec.palette.mix(paletteFpScalarSse(), 0.35);

    // Short methods, dense dispatch.
    spec.num_workers = 12;
    spec.num_leaves = 10;
    spec.segments_per_worker = 4;
    spec.mean_block_len = 6.0;
    spec.sd_block_len = 2.5;
    spec.min_block_len = 2;
    spec.max_block_len = 24;
    spec.diamond_prob = 0.35;
    spec.call_prob = 0.35;
    spec.inner_loop_prob = 0.15;
    spec.mean_inner_trip = 6.0;
    spec.mean_outer_trip = 25.0;
    spec.leaf_len = 5;
    spec.indirect_dispatch = true;

    spec.max_instructions = 6'000'000;
    spec.runtime_class = RuntimeClass::Seconds;
    spec.paper_clean_seconds = 27.1; // Table 5 clean runtime.
    return makeSyntheticApp(spec);
}

} // namespace hbbp
