/**
 * @file
 * Synthetic stand-ins for the SPEC CPU2006 suite.
 *
 * Each of the 29 benchmarks the paper evaluates is synthesized with a
 * parameterization reflecting its structural character: mnemonic palette
 * (integer branchy / pointer-chasing / long-block kernels / OO C++ /
 * scalar or packed FP), basic block length distribution and loop
 * behaviour. Absolute dynamic sizes are scaled down for simulation; the
 * paper-scale clean runtimes are carried along for Table 1 / Figure 2
 * reporting.
 *
 * 464.h264ref carries the paper's footnote: SDE produced incorrect
 * results for it (a PIN bug evidenced by PMU counting verification), so
 * it is excluded from average-error aggregation.
 */

#ifndef HBBP_WORKLOADS_SPEC2006_HH
#define HBBP_WORKLOADS_SPEC2006_HH

#include <string>
#include <vector>

#include "workloads/synthetic.hh"
#include "workloads/workload.hh"

namespace hbbp {

/** Static description of one SPEC benchmark stand-in. */
struct SpecEntry
{
    std::string name;    ///< e.g. "453.povray".
    bool integer = true; ///< CINT vs CFP.
    /** Clean runtime at paper scale, seconds (reference-level figure). */
    double paper_clean_seconds = 0.0;
    /** Excluded from error aggregation (the h264ref SDE bug). */
    bool excluded_from_error = false;
};

/** The full benchmark list in suite order. */
const std::vector<SpecEntry> &specEntries();

/** Names only, in suite order. */
std::vector<std::string> specBenchmarkNames();

/** Generate one benchmark by name; fatal() on unknown names. */
Workload makeSpecBenchmark(const std::string &name);

/** Generate the whole suite. */
std::vector<Workload> makeSpecSuite();

/** Lookup of the static entry by name; fatal() on unknown names. */
const SpecEntry &specEntry(const std::string &name);

} // namespace hbbp

#endif // HBBP_WORKLOADS_SPEC2006_HH
