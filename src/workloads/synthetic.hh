/**
 * @file
 * The generic synthetic application generator.
 *
 * Benchmarks are synthesized from a structural specification: worker
 * functions made of loop nests, if/else diamonds and calls to leaf
 * functions, filled with instructions drawn from a mnemonic palette,
 * dispatched from a long-running main loop. The SPEC CPU2006 stand-ins,
 * the training codes and several experiment workloads are all instances
 * of this generator with different parameters.
 */

#ifndef HBBP_WORKLOADS_SYNTHETIC_HH
#define HBBP_WORKLOADS_SYNTHETIC_HH

#include <cstdint>
#include <string>

#include "workloads/genutil.hh"
#include "workloads/workload.hh"

namespace hbbp {

/** Parameters of one synthetic application. */
struct SyntheticAppSpec
{
    std::string name = "synthetic";
    uint64_t seed = 1;

    size_t num_workers = 6;          ///< Hot functions.
    size_t num_leaves = 3;           ///< Small callee functions.
    size_t segments_per_worker = 5;  ///< Structure steps per worker loop.

    double mean_block_len = 10.0;    ///< Basic block instruction count.
    double sd_block_len = 4.0;
    size_t min_block_len = 2;
    size_t max_block_len = 55;

    double diamond_prob = 0.30;      ///< Segment is an if/else diamond.
    double call_prob = 0.15;         ///< Segment calls a leaf function.
    double inner_loop_prob = 0.30;   ///< Segment is an inner loop.

    double mean_inner_trip = 10.0;   ///< Inner loop trip count.
    double mean_outer_trip = 40.0;   ///< Worker outer-loop trip count.
    size_t leaf_len = 6;             ///< Leaf function body length.

    /** Use an indirect (virtual-dispatch-style) call in the main loop. */
    bool indirect_dispatch = true;

    MnemonicPalette palette;

    uint64_t max_instructions = 6'000'000;
    RuntimeClass runtime_class = RuntimeClass::MinutesMany;
    double paper_clean_seconds = 0.0;
};

/** Generate a Workload from @p spec. */
Workload makeSyntheticApp(const SyntheticAppSpec &spec);

} // namespace hbbp

#endif // HBBP_WORKLOADS_SYNTHETIC_HH
