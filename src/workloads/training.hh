/**
 * @file
 * The non-SPEC training workloads for the HBBP criteria search
 * (Section IV.B: ~1,100 basic blocks of training input).
 *
 * A sweep of synthetic applications over block-length regimes and
 * palette archetypes, plus loop-heavy codes that exercise the LBR bias
 * quirk, so the classification tree sees both failure modes of the base
 * methods. Also provides the hydro-post benchmark used in Table 1.
 */

#ifndef HBBP_WORKLOADS_TRAINING_HH
#define HBBP_WORKLOADS_TRAINING_HH

#include <vector>

#include "workloads/workload.hh"

namespace hbbp {

/** The training suite (non-SPEC codes). */
std::vector<Workload> makeTrainingSuite();

/** Hydro-post: the extreme instrumentation-slowdown case of Table 1. */
Workload makeHydroPost();

} // namespace hbbp

#endif // HBBP_WORKLOADS_TRAINING_HH
