#include "workloads/spec2006.hh"

#include "support/logging.hh"

namespace hbbp {

namespace {

/** Palette archetypes used to parameterize the suite. */
enum class Archetype
{
    IntBranchy,  ///< Compilers, interpreters, game trees.
    IntMemory,   ///< Pointer chasing.
    IntKernel,   ///< Long-block integer kernels.
    ObjectOrient,///< OO C++ (short methods, stack traffic).
    FpScalarSse, ///< Scalar SSE FP.
    FpPackedSse, ///< Vectorized SSE FP.
    FpMixed,     ///< Scalar+packed FP mixed with integer.
};

struct SpecParams
{
    const char *name;
    bool integer;
    Archetype archetype;
    double mean_len;       ///< Mean basic block length.
    double sd_len;
    double mean_inner_trip;
    double paper_clean_s;  ///< Reference-scale clean runtime.
    bool excluded;         ///< Excluded from error aggregation.
};

// Block length and palette assignments reflect each code's well-known
// structural character (OO codes short blocks, hmmer very long blocks,
// vectorized FP in between). 470.lbm is deliberately shaped per Section
// VIII.A's explanation of the one case where HBBP loses to LBR: long
// basic blocks (just above the length cutoff, so HBBP picks EBS)
// immediately preceded by long-latency instructions that disturb EBS.
const SpecParams kSpecParams[] = {
    {"400.perlbench", true, Archetype::IntBranchy, 8.0, 3.5, 9, 510, false},
    {"401.bzip2", true, Archetype::IntKernel, 14.0, 5.0, 16, 590, false},
    {"403.gcc", true, Archetype::IntBranchy, 7.0, 3.0, 7, 420, false},
    {"429.mcf", true, Archetype::IntMemory, 9.0, 3.5, 14, 450, false},
    {"445.gobmk", true, Archetype::IntBranchy, 9.0, 4.0, 8, 580, false},
    {"456.hmmer", true, Archetype::IntKernel, 38.0, 9.0, 30, 570, false},
    {"458.sjeng", true, Archetype::IntBranchy, 10.0, 4.0, 9, 640, false},
    {"462.libquantum", true, Archetype::IntKernel, 16.0, 4.0, 40, 700,
     false},
    {"464.h264ref", true, Archetype::IntKernel, 26.0, 7.0, 22, 800, true},
    {"471.omnetpp", true, Archetype::ObjectOrient, 7.0, 2.5, 6, 281,
     false},
    {"473.astar", true, Archetype::IntMemory, 10.0, 3.5, 12, 530, false},
    {"483.xalancbmk", true, Archetype::ObjectOrient, 6.0, 2.5, 6, 310,
     false},
    {"410.bwaves", false, Archetype::FpPackedSse, 30.0, 7.0, 26, 690,
     false},
    {"416.gamess", false, Archetype::FpScalarSse, 12.0, 4.5, 10, 660,
     false},
    {"433.milc", false, Archetype::FpPackedSse, 18.0, 5.0, 18, 520,
     false},
    {"434.zeusmp", false, Archetype::FpPackedSse, 22.0, 6.0, 20, 540,
     false},
    {"435.gromacs", false, Archetype::FpMixed, 15.0, 5.0, 14, 480, false},
    {"436.cactusADM", false, Archetype::FpPackedSse, 28.0, 7.0, 24, 710,
     false},
    {"437.leslie3d", false, Archetype::FpPackedSse, 24.0, 6.0, 22, 560,
     false},
    {"444.namd", false, Archetype::FpScalarSse, 17.0, 5.0, 16, 530,
     false},
    {"447.dealII", false, Archetype::ObjectOrient, 9.0, 3.5, 8, 440,
     false},
    {"450.soplex", false, Archetype::FpScalarSse, 11.0, 4.0, 11, 390,
     false},
    {"453.povray", false, Archetype::FpScalarSse, 6.0, 2.0, 6, 224,
     false},
    {"454.calculix", false, Archetype::FpMixed, 14.0, 5.0, 13, 500,
     false},
    {"459.GemsFDTD", false, Archetype::FpPackedSse, 26.0, 6.5, 24, 620,
     false},
    {"465.tonto", false, Archetype::FpMixed, 13.0, 4.5, 12, 600, false},
    {"470.lbm", false, Archetype::FpPackedSse, 21.0, 1.5, 24, 470, false},
    {"481.wrf", false, Archetype::FpMixed, 18.0, 6.0, 16, 650, false},
    {"482.sphinx3", false, Archetype::FpScalarSse, 12.0, 4.0, 11, 560,
     false},
};

MnemonicPalette
paletteFor(Archetype archetype, const std::string &bench)
{
    switch (archetype) {
      case Archetype::IntBranchy: return paletteIntBranchy();
      case Archetype::IntMemory: return paletteIntMemory();
      case Archetype::IntKernel: return paletteIntKernel();
      case Archetype::ObjectOrient: return paletteObjectOriented();
      case Archetype::FpScalarSse: return paletteFpScalarSse();
      case Archetype::FpPackedSse: {
        MnemonicPalette p = paletteFpPackedSse();
        if (bench == "470.lbm") {
            // Heavier long-latency content to feed the shadowing effect
            // in front of the long blocks (the paper's LBM explanation).
            p.weights.emplace_back(Mnemonic::DIVPD, 4.0);
            p.weights.emplace_back(Mnemonic::SQRTPS, 2.0);
        }
        return p;
      }
      case Archetype::FpMixed: {
        MnemonicPalette p = paletteFpScalarSse();
        p.mix(paletteFpPackedSse(), 0.6);
        return p;
      }
      default:
        panic("paletteFor: bad archetype %d",
              static_cast<int>(archetype));
    }
}

SyntheticAppSpec
specFor(const SpecParams &params)
{
    SyntheticAppSpec spec;
    spec.name = params.name;
    spec.seed = splitmix64(hashAddr(
        static_cast<uint64_t>(params.name[0]) * 131 +
        static_cast<uint64_t>(params.name[2]) * 17 +
        static_cast<uint64_t>(params.name[4])));
    spec.palette = paletteFor(params.archetype, params.name);
    spec.mean_block_len = params.mean_len;
    spec.sd_block_len = params.sd_len;
    spec.mean_inner_trip = params.mean_inner_trip;
    spec.num_workers = 6;
    spec.num_leaves = 3;
    spec.segments_per_worker = 5;
    spec.max_instructions = 6'000'000;
    spec.runtime_class = RuntimeClass::MinutesMany;
    spec.paper_clean_seconds = params.paper_clean_s;
    if (params.archetype == Archetype::ObjectOrient) {
        // OO codes: more, smaller functions, denser call structure.
        spec.num_workers = 10;
        spec.num_leaves = 8;
        spec.call_prob = 0.35;
        spec.diamond_prob = 0.30;
        spec.leaf_len = 5;
    }
    return spec;
}

} // namespace

const std::vector<SpecEntry> &
specEntries()
{
    static const std::vector<SpecEntry> kEntries = [] {
        std::vector<SpecEntry> entries;
        for (const SpecParams &p : kSpecParams)
            entries.push_back(
                {p.name, p.integer, p.paper_clean_s, p.excluded});
        return entries;
    }();
    return kEntries;
}

std::vector<std::string>
specBenchmarkNames()
{
    std::vector<std::string> names;
    for (const SpecParams &p : kSpecParams)
        names.emplace_back(p.name);
    return names;
}

const SpecEntry &
specEntry(const std::string &name)
{
    for (const SpecEntry &e : specEntries())
        if (e.name == name)
            return e;
    fatal("unknown SPEC benchmark '%s'", name.c_str());
}

Workload
makeSpecBenchmark(const std::string &name)
{
    for (const SpecParams &p : kSpecParams) {
        if (name == p.name)
            return makeSyntheticApp(specFor(p));
    }
    fatal("unknown SPEC benchmark '%s'", name.c_str());
}

std::vector<Workload>
makeSpecSuite()
{
    std::vector<Workload> suite;
    suite.reserve(std::size(kSpecParams));
    for (const SpecParams &p : kSpecParams)
        suite.push_back(makeSyntheticApp(specFor(p)));
    return suite;
}

} // namespace hbbp
