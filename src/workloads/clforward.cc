#include "workloads/clforward.hh"

#include "workloads/synthetic.hh"

namespace hbbp {

Workload
makeClForward(ClForwardVersion version)
{
    SyntheticAppSpec spec;
    spec.seed = 0xc1f0d;

    MnemonicPalette base;
    base.weights = {
        {Mnemonic::MOV, 8}, {Mnemonic::ADD, 3}, {Mnemonic::CMP, 2},
        {Mnemonic::LEA, 2},
    };

    if (version == ClForwardVersion::Before) {
        spec.name = "clforward_before";
        // ~77% scalar AVX, ~8% packed AVX, ~15% base integer, mirroring
        // the Table 8 "BEFORE" breakdown (scalar 14.7 / packed 1.5 /
        // base 2.9 of 19.2B).
        MnemonicPalette p;
        p.weights = {
            {Mnemonic::VMOVSS, 22}, {Mnemonic::VADDSS, 18},
            {Mnemonic::VMULSS, 18}, {Mnemonic::VFMADD231SS, 10},
            {Mnemonic::VDIVSS, 2},  {Mnemonic::VSQRTSS, 1},
            {Mnemonic::VCVTSI2SS, 2},
            {Mnemonic::VMOVAPS, 3}, {Mnemonic::VADDPS, 2},
            {Mnemonic::VMULPS, 2},
        };
        p.mix(base, 1.0);
        spec.palette = p;
        spec.max_instructions = 6'000'000;
    } else {
        spec.name = "clforward_after";
        // ~67% packed AVX, ~21% non-vector AVX moves, ~2.5% residual
        // scalar AVX, ~9.5% base (packed 10.6 / NONE 3.3 / scalar 0.4 /
        // base 1.5 of 15.8B). The total dynamic count shrinks by the
        // paper's 15.8/19.2 ratio.
        MnemonicPalette p;
        p.weights = {
            {Mnemonic::VMOVAPS, 16}, {Mnemonic::VADDPS, 14},
            {Mnemonic::VMULPS, 14},  {Mnemonic::VFMADD231PS, 12},
            {Mnemonic::VBROADCASTSS, 4}, {Mnemonic::VSHUFPS, 3},
            {Mnemonic::VDIVPS, 1.2}, {Mnemonic::VPERM2F128, 1.4},
            {Mnemonic::VMOVD, 11},   {Mnemonic::VMOVQ, 10},
            {Mnemonic::VMOVSS, 1.5}, {Mnemonic::VADDSS, 1},
        };
        p.mix(base, 0.88);
        spec.palette = p;
        spec.max_instructions = static_cast<uint64_t>(
            6'000'000.0 * 15.8 / 19.2);
    }

    spec.num_workers = 5;
    spec.num_leaves = 2;
    spec.segments_per_worker = 5;
    spec.mean_block_len = 16.0;
    spec.sd_block_len = 5.0;
    spec.mean_inner_trip = 20.0;
    spec.runtime_class = RuntimeClass::MinutesFew;
    spec.paper_clean_seconds = 95.0;
    return makeSyntheticApp(spec);
}

} // namespace hbbp
