#include "workloads/synthetic.hh"

#include <memory>

#include "support/logging.hh"

namespace hbbp {

namespace {

/** Appends one if/else diamond; returns the merge block (open). */
BlockId
makeDiamond(ProgramBuilder &pb, FuncId fn, BlockId cur, Rng &rng,
            const SyntheticAppSpec &spec)
{
    BlockId then_b = pb.addBlock(fn);
    BlockId else_b = pb.addBlock(fn);
    BlockId merge = pb.addBlock(fn);

    double p = 0.1 + rng.nextDouble() * 0.8;
    BehaviorId bh = pb.addBehavior(Behavior::prob(p));
    pb.endCond(cur, drawCondBranch(rng), else_b, bh);

    size_t then_len = drawBlockLen(rng, spec.mean_block_len,
                                   spec.sd_block_len, spec.min_block_len,
                                   spec.max_block_len);
    fillBlock(pb, then_b, rng, spec.palette, then_len);
    pb.endJump(then_b, merge);

    size_t else_len = drawBlockLen(rng, spec.mean_block_len,
                                   spec.sd_block_len, spec.min_block_len,
                                   spec.max_block_len);
    fillBlock(pb, else_b, rng, spec.palette, else_len);
    pb.endFallThrough(else_b);

    size_t merge_len = drawBlockLen(rng, spec.mean_block_len,
                                    spec.sd_block_len, spec.min_block_len,
                                    spec.max_block_len);
    fillBlock(pb, merge, rng, spec.palette, merge_len);
    return merge;
}

/** Builds one worker function; returns its id. */
FuncId
buildWorker(ProgramBuilder &pb, ModuleId mod, const std::string &name,
            Rng &rng, const SyntheticAppSpec &spec,
            const std::vector<FuncId> &leaves)
{
    FuncId fn = pb.addFunction(mod, name);

    BlockId cur = pb.addBlock(fn);
    fillBlock(pb, cur, rng, spec.palette,
              drawBlockLen(rng, spec.mean_block_len / 2.0,
                           spec.sd_block_len / 2.0, spec.min_block_len,
                           spec.max_block_len));
    pb.endFallThrough(cur);

    // Outer loop head.
    BlockId head = pb.addBlock(fn);
    fillBlock(pb, head, rng, spec.palette,
              drawBlockLen(rng, spec.mean_block_len, spec.sd_block_len,
                           spec.min_block_len, spec.max_block_len));
    cur = head;

    for (size_t seg = 0; seg < spec.segments_per_worker; seg++) {
        double roll = rng.nextDouble();
        if (roll < spec.diamond_prob) {
            cur = makeDiamond(pb, fn, cur, rng, spec);
        } else if (roll < spec.diamond_prob + spec.call_prob &&
                   !leaves.empty()) {
            FuncId leaf = leaves[rng.nextBelow(leaves.size())];
            pb.endCall(cur, leaf);
            cur = pb.addBlock(fn);
            fillBlock(pb, cur, rng, spec.palette,
                      drawBlockLen(rng, spec.mean_block_len,
                                   spec.sd_block_len, spec.min_block_len,
                                   spec.max_block_len));
        } else if (roll < spec.diamond_prob + spec.call_prob +
                              spec.inner_loop_prob) {
            // Single-block self loop.
            pb.endFallThrough(cur);
            BlockId inner = pb.addBlock(fn);
            fillBlock(pb, inner, rng, spec.palette,
                      drawBlockLen(rng, spec.mean_block_len,
                                   spec.sd_block_len, spec.min_block_len,
                                   spec.max_block_len));
            BehaviorId bh = pb.addBehavior(
                Behavior::loop(drawTripCount(rng, spec.mean_inner_trip)));
            pb.endCond(inner, drawCondBranch(rng), inner, bh);
            cur = pb.addBlock(fn);
            fillBlock(pb, cur, rng, spec.palette,
                      drawBlockLen(rng, spec.mean_block_len,
                                   spec.sd_block_len, spec.min_block_len,
                                   spec.max_block_len));
        } else {
            // Plain segment: extend the current block.
            fillBlock(pb, cur, rng, spec.palette,
                      drawBlockLen(rng, spec.mean_block_len / 2.0,
                                   spec.sd_block_len / 2.0,
                                   spec.min_block_len,
                                   spec.max_block_len));
        }
    }

    // Outer loop latch.
    BehaviorId outer = pb.addBehavior(
        Behavior::loop(drawTripCount(rng, spec.mean_outer_trip)));
    pb.endCond(cur, drawCondBranch(rng), head, outer);

    BlockId epi = pb.addBlock(fn);
    fillBlock(pb, epi, rng, spec.palette, 2);
    pb.endReturn(epi);
    return fn;
}

} // namespace

Workload
makeSyntheticApp(const SyntheticAppSpec &spec)
{
    if (spec.palette.weights.empty())
        fatal("makeSyntheticApp('%s'): palette is empty",
              spec.name.c_str());
    if (spec.num_workers == 0)
        fatal("makeSyntheticApp('%s'): need at least one worker",
              spec.name.c_str());

    Rng rng(spec.seed);
    ProgramBuilder pb;
    ModuleId mod = pb.addModule(spec.name + ".bin");

    std::vector<FuncId> leaves;
    for (size_t i = 0; i < spec.num_leaves; i++)
        leaves.push_back(addLeafFunction(
            pb, mod, format("leaf_%zu", i), rng, spec.palette,
            spec.leaf_len));

    std::vector<FuncId> workers;
    for (size_t i = 0; i < spec.num_workers; i++)
        workers.push_back(buildWorker(pb, mod, format("worker_%zu", i),
                                      rng, spec, leaves));

    FuncId main_fn = pb.addFunction(mod, "main");
    BlockId entry = pb.addBlock(main_fn);
    fillBlock(pb, entry, rng, spec.palette, 4);
    pb.endFallThrough(entry);

    BlockId head = pb.addBlock(main_fn);
    fillBlock(pb, head, rng, spec.palette, 3);
    BlockId cont;
    if (spec.indirect_dispatch && workers.size() > 1) {
        std::vector<std::pair<FuncId, double>> targets;
        for (FuncId w : workers)
            targets.emplace_back(w, 0.5 + rng.nextDouble());
        BehaviorId disp = pb.addBehavior(Behavior::targetSet(targets));
        pb.endIndirectCall(head, disp);
        cont = pb.addBlock(main_fn);
    } else {
        // Round-robin-ish via a chain of direct calls.
        pb.endCall(head, workers[0]);
        cont = pb.addBlock(main_fn);
        for (size_t i = 1; i < workers.size(); i++) {
            fillBlock(pb, cont, rng, spec.palette, 2);
            pb.endCall(cont, workers[i]);
            cont = pb.addBlock(main_fn);
        }
    }
    fillBlock(pb, cont, rng, spec.palette, 2);
    BehaviorId main_loop =
        pb.addBehavior(Behavior::loop(1'000'000'000ULL));
    pb.endCond(cont, Mnemonic::JNZ, head, main_loop);

    BlockId exit_b = pb.addBlock(main_fn);
    pb.append(exit_b, makeInstr(Mnemonic::XOR));
    pb.endExit(exit_b);

    pb.setEntry(main_fn);

    Workload w;
    w.name = spec.name;
    w.program = std::make_shared<Program>(pb.build());
    w.runtime_class = spec.runtime_class;
    w.max_instructions = spec.max_instructions;
    w.exec_seed = splitmix64(spec.seed ^ 0xabcdef);
    w.paper_clean_seconds = spec.paper_clean_seconds;
    return w;
}

} // namespace hbbp
