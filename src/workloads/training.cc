#include "workloads/training.hh"

#include "support/logging.hh"
#include "workloads/synthetic.hh"

namespace hbbp {

std::vector<Workload>
makeTrainingSuite()
{
    struct TrainSpec
    {
        double mean_len;
        int palette; ///< Archetype rotation index.
    };
    // A sweep across the block-length axis (the feature the criteria
    // search must resolve) with rotating instruction palettes.
    const TrainSpec specs[] = {
        {4, 0},  {5, 1},  {6, 2},  {8, 3},  {10, 4}, {12, 5},
        {14, 0}, {16, 1}, {18, 2}, {20, 3}, {23, 4}, {26, 5},
        {30, 0}, {36, 1}, {42, 2}, {50, 3},
    };

    std::vector<Workload> suite;
    int index = 0;
    for (const TrainSpec &ts : specs) {
        SyntheticAppSpec spec;
        spec.name = format("train_%02d_len%d", index,
                           static_cast<int>(ts.mean_len));
        spec.seed = 0x7121 + static_cast<uint64_t>(index) * 977;
        switch (ts.palette) {
          case 0: spec.palette = paletteIntBranchy(); break;
          case 1: spec.palette = paletteObjectOriented(); break;
          case 2: spec.palette = paletteFpScalarSse(); break;
          case 3: spec.palette = paletteFpPackedSse(); break;
          case 4: spec.palette = paletteIntMemory(); break;
          default: spec.palette = paletteFpPackedAvx(); break;
        }
        spec.mean_block_len = ts.mean_len;
        spec.sd_block_len = ts.mean_len / 3.0;
        spec.num_workers = 8;
        spec.num_leaves = 4;
        spec.segments_per_worker = 5;
        spec.diamond_prob = 0.30;
        spec.call_prob = 0.15;
        spec.inner_loop_prob = 0.35;
        spec.mean_inner_trip = 8.0 + (index % 5) * 6.0;
        spec.mean_outer_trip = 30.0;
        spec.max_instructions = 3'000'000;
        spec.runtime_class = RuntimeClass::Seconds;
        suite.push_back(makeSyntheticApp(spec));
        index++;
    }
    return suite;
}

Workload
makeHydroPost()
{
    SyntheticAppSpec spec;
    spec.name = "hydro_post";
    spec.seed = 0x42d90;
    // Extremely short blocks of vector code: the worst case for
    // per-block instrumentation probes (76.6x in Table 1).
    spec.palette = paletteFpPackedSse();
    spec.palette.mix(paletteFpScalarSse(), 0.5);
    spec.mean_block_len = 3.2;
    spec.sd_block_len = 1.0;
    spec.min_block_len = 2;
    spec.max_block_len = 8;
    spec.num_workers = 6;
    spec.num_leaves = 4;
    spec.segments_per_worker = 6;
    spec.diamond_prob = 0.45;
    spec.call_prob = 0.20;
    spec.inner_loop_prob = 0.25;
    spec.mean_inner_trip = 12.0;
    spec.max_instructions = 4'000'000;
    spec.runtime_class = RuntimeClass::MinutesMany;
    spec.paper_clean_seconds = 287.0;
    return makeSyntheticApp(spec);
}

} // namespace hbbp
