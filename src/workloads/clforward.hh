/**
 * @file
 * CLForward — the online HPC vectorization case study (Table 8).
 *
 * Before the fix: the hot loops emit mostly *scalar* AVX instructions
 * (a missed "#omp simd reduction" opportunity). After developers made
 * the code compiler-friendly, a large number of scalar instructions is
 * replaced by a smaller number of packed ones and some non-vector AVX
 * moves, shrinking the total dynamic instruction count (the paper
 * reports 19.2B -> 15.8B and an 8% performance gain).
 */

#ifndef HBBP_WORKLOADS_CLFORWARD_HH
#define HBBP_WORKLOADS_CLFORWARD_HH

#include "workloads/workload.hh"

namespace hbbp {

/** The two CLForward builds. */
enum class ClForwardVersion : uint8_t
{
    Before, ///< Scalar AVX (missed vectorization).
    After,  ///< Packed AVX (vectorization fixed).
};

/** Generate one CLForward build. */
Workload makeClForward(ClForwardVersion version);

} // namespace hbbp

#endif // HBBP_WORKLOADS_CLFORWARD_HH
