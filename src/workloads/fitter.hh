/**
 * @file
 * The Fitter benchmark (Section VIII.C of the paper).
 *
 * Fitter fits sparse position measurements into 3D tracks: compact,
 * CPU-intensive, vectorizable code with a hot kernel of ~15 basic
 * blocks. It exists in four variants:
 *
 *  - x87: legacy scalar floating point;
 *  - SSE: packed SSE (the Table 3 per-block BBEC study);
 *  - AVX fix: packed AVX with the compiler inlining fix applied;
 *  - AVX broken: the compiler-regression variant — helper calls are not
 *    inlined, so the kernel makes an enormous number of CALLs into
 *    scalar (x87) fallback helpers while the packed AVX count stays
 *    roughly unchanged. This reproduces the Table 6 diagnosis story.
 */

#ifndef HBBP_WORKLOADS_FITTER_HH
#define HBBP_WORKLOADS_FITTER_HH

#include <cstdint>
#include <vector>

#include "workloads/workload.hh"

namespace hbbp {

/** The four Fitter builds. */
enum class FitterVariant : uint8_t
{
    X87,
    Sse,
    AvxBroken, ///< The "AVX" column in Table 6.
    AvxFix,    ///< The "AVX fix" column in Table 6.
};

/** Printable variant name. */
const char *name(FitterVariant variant);

/** Generate one Fitter variant (with its calibrated code layout). */
Workload makeFitter(FitterVariant variant);

/**
 * Generate a Fitter variant with an explicit layout pad: @p pad extra
 * instructions of cold init code ahead of the hot kernel. Shifting the
 * kernel's addresses changes which branches alias into the LBR
 * entry[0] anomaly (a hardware address hash); the default per-variant
 * pads are chosen so the builds exhibit the paper's observed pattern.
 * Exposed for tests and layout-sensitivity studies.
 */
Workload makeFitter(FitterVariant variant, size_t pad);

/**
 * Start addresses of the hot kernel's basic blocks in layout order (the
 * BB1..BB15 of Table 3), for a generated Fitter program.
 */
std::vector<uint64_t> fitterKernelBlockAddrs(const Program &prog);

/** Number of track iterations executed (for time-per-track metrics). */
uint64_t fitterTrackCount(const Program &prog,
                          const std::vector<uint64_t> &bbec_by_block);

} // namespace hbbp

#endif // HBBP_WORKLOADS_FITTER_HH
