#include "workloads/genutil.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace hbbp {

Instruction
MnemonicPalette::draw(Rng &rng) const
{
    if (weights.empty())
        panic("MnemonicPalette::draw: empty palette");
    double total = totalWeight();
    double pick = rng.nextDouble() * total;
    Mnemonic chosen = weights.back().first;
    for (const auto &[mn, w] : weights) {
        pick -= w;
        if (pick <= 0.0) {
            chosen = mn;
            break;
        }
    }
    const MnemonicInfo &mi = info(chosen);
    bool can_mem = !mi.isControl() && mi.category != Category::Nop &&
                   mi.category != Category::System;
    bool mem_read = can_mem && rng.chance(mem_read_frac);
    bool mem_write = can_mem && !mem_read && rng.chance(mem_write_frac);
    // Memory-form instructions encode longer, like x86 ModRM+disp.
    uint8_t extra = 0;
    if (mem_read || mem_write)
        extra = static_cast<uint8_t>(1 + rng.nextBelow(3));
    return makeInstr(chosen, mem_read, mem_write, extra);
}

double
MnemonicPalette::totalWeight() const
{
    double total = 0.0;
    for (const auto &[mn, w] : weights)
        total += w;
    return total;
}

MnemonicPalette &
MnemonicPalette::mix(const MnemonicPalette &other, double scale)
{
    for (const auto &[mn, w] : other.weights)
        weights.emplace_back(mn, w * scale);
    return *this;
}

MnemonicPalette
paletteIntBranchy()
{
    MnemonicPalette p;
    p.weights = {
        {Mnemonic::MOV, 28}, {Mnemonic::ADD, 10}, {Mnemonic::SUB, 5},
        {Mnemonic::CMP, 12}, {Mnemonic::TEST, 8}, {Mnemonic::LEA, 7},
        {Mnemonic::AND, 4},  {Mnemonic::OR, 3},   {Mnemonic::XOR, 4},
        {Mnemonic::SHL, 3},  {Mnemonic::SHR, 2},  {Mnemonic::MOVZX, 5},
        {Mnemonic::MOVSX, 2},{Mnemonic::INC, 2},  {Mnemonic::DEC, 2},
        {Mnemonic::IMUL, 1}, {Mnemonic::SETZ, 1}, {Mnemonic::CMOVZ, 2},
    };
    p.mem_read_frac = 0.30;
    p.mem_write_frac = 0.12;
    return p;
}

MnemonicPalette
paletteIntMemory()
{
    MnemonicPalette p;
    p.weights = {
        {Mnemonic::MOV, 38}, {Mnemonic::ADD, 8},  {Mnemonic::CMP, 10},
        {Mnemonic::LEA, 8},  {Mnemonic::TEST, 5}, {Mnemonic::SUB, 4},
        {Mnemonic::MOVSXD, 4}, {Mnemonic::MOVZX, 4}, {Mnemonic::SHL, 2},
        {Mnemonic::AND, 3},  {Mnemonic::XOR, 2},  {Mnemonic::CDQE, 2},
        {Mnemonic::IMUL, 1},
    };
    p.mem_read_frac = 0.45;
    p.mem_write_frac = 0.15;
    return p;
}

MnemonicPalette
paletteIntKernel()
{
    MnemonicPalette p;
    p.weights = {
        {Mnemonic::MOV, 24}, {Mnemonic::ADD, 14}, {Mnemonic::SUB, 6},
        {Mnemonic::CMP, 8},  {Mnemonic::AND, 6},  {Mnemonic::OR, 5},
        {Mnemonic::XOR, 6},  {Mnemonic::SHL, 5},  {Mnemonic::SHR, 5},
        {Mnemonic::SAR, 2},  {Mnemonic::LEA, 6},  {Mnemonic::IMUL, 4},
        {Mnemonic::MOVZX, 5},{Mnemonic::TEST, 3}, {Mnemonic::ROL, 1},
    };
    p.mem_read_frac = 0.25;
    p.mem_write_frac = 0.08;
    return p;
}

MnemonicPalette
paletteObjectOriented()
{
    MnemonicPalette p;
    p.weights = {
        {Mnemonic::MOV, 34}, {Mnemonic::PUSH, 7}, {Mnemonic::POP, 7},
        {Mnemonic::LEA, 6},  {Mnemonic::CMP, 8},  {Mnemonic::TEST, 6},
        {Mnemonic::ADD, 7},  {Mnemonic::SUB, 4},  {Mnemonic::XOR, 3},
        {Mnemonic::MOVZX, 3},{Mnemonic::MOVSXD, 2},
        {Mnemonic::ADDSD, 3},{Mnemonic::MULSD, 2},
        {Mnemonic::MOVSD_X, 3}, {Mnemonic::UCOMISD, 1},
        {Mnemonic::CVTSI2SD, 1}, {Mnemonic::SQRTSD, 0.4},
        {Mnemonic::DIVSD, 0.6},
    };
    p.mem_read_frac = 0.35;
    p.mem_write_frac = 0.14;
    return p;
}

MnemonicPalette
paletteFpScalarSse()
{
    MnemonicPalette p;
    p.weights = {
        {Mnemonic::MOVSS, 10}, {Mnemonic::MOVSD_X, 8},
        {Mnemonic::ADDSS, 7},  {Mnemonic::ADDSD, 6},
        {Mnemonic::SUBSD, 4},  {Mnemonic::MULSS, 6},
        {Mnemonic::MULSD, 6},  {Mnemonic::DIVSD, 1.5},
        {Mnemonic::SQRTSD, 0.8}, {Mnemonic::UCOMISD, 3},
        {Mnemonic::COMISS, 2}, {Mnemonic::CVTSS2SD, 1},
        {Mnemonic::CVTSI2SD, 1},
        {Mnemonic::MOV, 18}, {Mnemonic::ADD, 5}, {Mnemonic::CMP, 5},
        {Mnemonic::LEA, 4},  {Mnemonic::TEST, 2},
    };
    p.mem_read_frac = 0.30;
    p.mem_write_frac = 0.10;
    return p;
}

MnemonicPalette
paletteFpPackedSse()
{
    MnemonicPalette p;
    p.weights = {
        {Mnemonic::MOVAPS, 12}, {Mnemonic::MOVUPS, 4},
        {Mnemonic::ADDPS, 9},   {Mnemonic::SUBPS, 4},
        {Mnemonic::MULPS, 9},   {Mnemonic::DIVPS, 1.2},
        {Mnemonic::SQRTPS, 0.8},{Mnemonic::SHUFPS, 4},
        {Mnemonic::UNPCKLPS, 2},{Mnemonic::XORPS, 2},
        {Mnemonic::ANDPS, 2},   {Mnemonic::MAXPS, 2},
        {Mnemonic::MINPS, 2},   {Mnemonic::CMPPS, 2},
        {Mnemonic::MOV, 10}, {Mnemonic::ADD, 4}, {Mnemonic::CMP, 3},
        {Mnemonic::LEA, 3},
    };
    p.mem_read_frac = 0.28;
    p.mem_write_frac = 0.12;
    return p;
}

MnemonicPalette
paletteFpPackedAvx()
{
    MnemonicPalette p;
    p.weights = {
        {Mnemonic::VMOVAPS, 12}, {Mnemonic::VMOVUPS, 4},
        {Mnemonic::VADDPS, 9},   {Mnemonic::VSUBPS, 4},
        {Mnemonic::VMULPS, 9},   {Mnemonic::VDIVPS, 1.2},
        {Mnemonic::VSQRTPS, 0.8},{Mnemonic::VSHUFPS, 3},
        {Mnemonic::VXORPS, 2},   {Mnemonic::VANDPS, 2},
        {Mnemonic::VMAXPS, 2},   {Mnemonic::VMINPS, 2},
        {Mnemonic::VFMADD231PS, 5}, {Mnemonic::VBROADCASTSS, 2},
        {Mnemonic::VINSERTF128, 1}, {Mnemonic::VPERM2F128, 1},
        {Mnemonic::MOV, 10}, {Mnemonic::ADD, 4}, {Mnemonic::CMP, 3},
        {Mnemonic::LEA, 3},
    };
    p.mem_read_frac = 0.28;
    p.mem_write_frac = 0.12;
    return p;
}

MnemonicPalette
paletteFpScalarAvx()
{
    MnemonicPalette p;
    p.weights = {
        {Mnemonic::VMOVSS, 12}, {Mnemonic::VADDSS, 9},
        {Mnemonic::VMULSS, 9},  {Mnemonic::VDIVSS, 1.5},
        {Mnemonic::VSQRTSS, 0.8}, {Mnemonic::VFMADD231SS, 4},
        {Mnemonic::VCVTSI2SS, 1},
        {Mnemonic::MOV, 14}, {Mnemonic::ADD, 5}, {Mnemonic::CMP, 4},
        {Mnemonic::LEA, 3},  {Mnemonic::TEST, 2},
    };
    p.mem_read_frac = 0.30;
    p.mem_write_frac = 0.10;
    return p;
}

MnemonicPalette
paletteX87()
{
    MnemonicPalette p;
    p.weights = {
        {Mnemonic::FLD, 12},  {Mnemonic::FSTP, 9}, {Mnemonic::FXCH, 6},
        {Mnemonic::FADD, 8},  {Mnemonic::FSUB, 4}, {Mnemonic::FMUL, 8},
        {Mnemonic::FDIV, 1.2},{Mnemonic::FSQRT, 0.6},
        {Mnemonic::FCOMI, 2}, {Mnemonic::FILD, 1},
        {Mnemonic::MOV, 12},  {Mnemonic::ADD, 4}, {Mnemonic::CMP, 3},
        {Mnemonic::LEA, 2},
    };
    p.mem_read_frac = 0.32;
    p.mem_write_frac = 0.14;
    return p;
}

MnemonicPalette
paletteIntAvx2()
{
    MnemonicPalette p;
    p.weights = {
        {Mnemonic::MOVDQA, 6}, {Mnemonic::VPADDD, 8},
        {Mnemonic::VPSUBD, 3}, {Mnemonic::VPMULLD, 3},
        {Mnemonic::VPAND, 3},  {Mnemonic::VPXOR, 3},
        {Mnemonic::VPSLLD, 3}, {Mnemonic::VPCMPEQD, 3},
        {Mnemonic::VPSHUFD, 2},{Mnemonic::VPBROADCASTD, 1},
        {Mnemonic::MOV, 12},   {Mnemonic::ADD, 5}, {Mnemonic::CMP, 4},
        {Mnemonic::LEA, 3},
    };
    p.mem_read_frac = 0.30;
    p.mem_write_frac = 0.12;
    return p;
}

void
fillBlock(ProgramBuilder &pb, BlockId block, Rng &rng,
          const MnemonicPalette &palette, size_t count)
{
    // Real basic blocks are thematic — a block mostly loads, or mostly
    // multiplies, etc. Lean each block toward a couple of "focus"
    // mnemonics so adjacent blocks have genuinely different mixes;
    // without this, boundary skid would cancel at the mnemonic level
    // and EBS would look unrealistically accurate.
    MnemonicPalette themed = palette;
    if (themed.weights.size() >= 2 && count >= 3) {
        for (int k = 0; k < 2; k++) {
            size_t pick = rng.nextBelow(themed.weights.size());
            themed.weights[pick].second *= 4.0;
        }
    }
    for (size_t i = 0; i < count; i++)
        pb.append(block, themed.draw(rng));
}

FuncId
addLeafFunction(ProgramBuilder &pb, ModuleId mod, const std::string &name,
                Rng &rng, const MnemonicPalette &palette, size_t len)
{
    FuncId fn = pb.addFunction(mod, name);
    BlockId b = pb.addBlock(fn);
    fillBlock(pb, b, rng, palette, len);
    pb.endReturn(b);
    return fn;
}

size_t
drawBlockLen(Rng &rng, double mean, double sd, size_t lo, size_t hi)
{
    double x = rng.nextGaussian(mean, sd);
    double clamped = std::clamp(x, static_cast<double>(lo),
                                static_cast<double>(hi));
    return static_cast<size_t>(std::lround(clamped));
}

uint64_t
drawTripCount(Rng &rng, double mean)
{
    if (mean <= 2.0)
        return 2;
    uint64_t extra = rng.nextGeometric(1.0 / (mean - 1.0));
    return 2 + extra;
}

Mnemonic
drawCondBranch(Rng &rng)
{
    static const Mnemonic kBranches[] = {
        Mnemonic::JZ, Mnemonic::JNZ, Mnemonic::JL, Mnemonic::JNL,
        Mnemonic::JLE, Mnemonic::JNLE, Mnemonic::JB, Mnemonic::JNB,
        Mnemonic::JBE, Mnemonic::JNBE, Mnemonic::JS, Mnemonic::JNS,
    };
    return kBranches[rng.nextBelow(std::size(kBranches))];
}

} // namespace hbbp
