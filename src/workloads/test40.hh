/**
 * @file
 * Test40 — the Geant4-like particle simulation workload (Section
 * VIII.B).
 *
 * Represents complex object-oriented scientific C++: many short
 * methods, deep call chains, virtual dispatch, and moderate scalar
 * floating point. Its short basic blocks are what make it hard for EBS
 * and a showcase for HBBP.
 */

#ifndef HBBP_WORKLOADS_TEST40_HH
#define HBBP_WORKLOADS_TEST40_HH

#include "workloads/workload.hh"

namespace hbbp {

/** Generate the Test40 workload. */
Workload makeTest40();

} // namespace hbbp

#endif // HBBP_WORKLOADS_TEST40_HH
