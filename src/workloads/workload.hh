/**
 * @file
 * The workload abstraction: a program plus how to run it.
 *
 * Every benchmark in the evaluation (SPEC CPU2006 synthetics, Fitter,
 * Test40, CLForward, the kernel benchmark, the training codes) is
 * produced as a Workload by a generator in this directory.
 */

#ifndef HBBP_WORKLOADS_WORKLOAD_HH
#define HBBP_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>

#include "collect/periods.hh"
#include "program/program.hh"

namespace hbbp {

/** A runnable benchmark. */
struct Workload
{
    std::string name;
    /** Shared so analysis results can safely reference the program. */
    std::shared_ptr<Program> program;
    /** Runtime class for Table 4 period selection. */
    RuntimeClass runtime_class = RuntimeClass::MinutesMany;
    /** Simulated instruction budget. */
    uint64_t max_instructions = 8'000'000;
    /** Seed for branch behaviours during execution. */
    uint64_t exec_seed = 1;
    /**
     * The workload's clean wall-clock runtime at paper scale in seconds
     * (used when reproducing Table 1/5 absolute columns); 0 = derive
     * from simulated cycles only.
     */
    double paper_clean_seconds = 0.0;
};

} // namespace hbbp

#endif // HBBP_WORKLOADS_WORKLOAD_HH
