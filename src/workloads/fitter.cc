#include "workloads/fitter.hh"

#include <memory>

#include "support/logging.hh"
#include "workloads/genutil.hh"

namespace hbbp {

namespace {

constexpr const char *kKernelName = "fit_track";

MnemonicPalette
variantPalette(FitterVariant variant)
{
    switch (variant) {
      case FitterVariant::X87:
        return paletteX87();
      case FitterVariant::Sse:
        return paletteFpPackedSse();
      case FitterVariant::AvxBroken:
      case FitterVariant::AvxFix: {
        MnemonicPalette p = paletteFpPackedAvx();
        // All Fitter builds keep a small legacy x87 prologue component.
        p.mix(paletteX87(), 0.04);
        return p;
      }
      default:
        panic("variantPalette: bad variant %d", static_cast<int>(variant));
    }
}

/**
 * Terminate @p cur with a conditional branch to the next block (both
 * taken and fall-through paths land there) so the analyzer sees a block
 * boundary without changing execution counts.
 */
void
seal(ProgramBuilder &pb, BlockId cur, BlockId next, Rng &rng)
{
    BehaviorId bh = pb.addBehavior(
        Behavior::prob(0.3 + rng.nextDouble() * 0.4));
    pb.endCond(cur, drawCondBranch(rng), next, bh, next);
}

} // namespace

const char *
name(FitterVariant variant)
{
    switch (variant) {
      case FitterVariant::X87: return "x87";
      case FitterVariant::Sse: return "SSE";
      case FitterVariant::AvxBroken: return "AVX";
      case FitterVariant::AvxFix: return "AVX fix";
      default:
        panic("name: bad FitterVariant %d", static_cast<int>(variant));
    }
}

Workload
makeFitter(FitterVariant variant)
{
    // Per-variant layout pads, calibrated so the builds exhibit the
    // paper's observed quirk pattern: the SSE build's hot backedge hits
    // the LBR entry[0] bias, the x87 and AVX builds do not.
    switch (variant) {
      case FitterVariant::X87: return makeFitter(variant, 0);
      case FitterVariant::Sse: return makeFitter(variant, 33);
      case FitterVariant::AvxBroken: return makeFitter(variant, 2);
      case FitterVariant::AvxFix: return makeFitter(variant, 2);
      default:
        panic("makeFitter: bad variant %d", static_cast<int>(variant));
    }
}

Workload
makeFitter(FitterVariant variant, size_t pad)
{
    Rng rng(0xf177e4 + static_cast<uint64_t>(variant));
    MnemonicPalette palette = variantPalette(variant);
    MnemonicPalette helper_palette = paletteX87();

    ProgramBuilder pb;
    ModuleId mod = pb.addModule(
        format("fitter_%s.bin", name(variant)));

    // Cold init code whose size shifts the hot kernel's addresses (see
    // makeFitter(variant) for why).
    FuncId init_fn = pb.addFunction(mod, "init");
    BlockId init_blk = pb.addBlock(init_fn);
    for (size_t i = 0; i < 4 + pad; i++)
        pb.append(init_blk, makeInstr(Mnemonic::MOV));
    pb.endReturn(init_blk);

    // Scalar fallback helpers — only called by the broken AVX build,
    // where the compiler regression prevented inlining. Each helper
    // loops over the vector lanes calling a tiny per-element routine,
    // which is exactly how the un-inlined scalar fallback multiplies
    // CALL counts (Table 6: 6'150M calls vs 99M in the fixed build).
    std::vector<FuncId> helpers;
    if (variant == FitterVariant::AvxBroken) {
        for (int i = 0; i < 3; i++) {
            FuncId element = addLeafFunction(
                pb, mod, format("kf_element_%d", i), rng, helper_palette,
                4);
            FuncId helper =
                pb.addFunction(mod, format("kf_helper_%d", i));
            BlockId h_entry = pb.addBlock(helper);
            fillBlock(pb, h_entry, rng, helper_palette, 2);
            pb.endFallThrough(h_entry);
            BlockId h_loop = pb.addBlock(helper);
            fillBlock(pb, h_loop, rng, helper_palette, 2);
            pb.endCall(h_loop, element);
            BlockId h_latch = pb.addBlock(helper);
            pb.append(h_latch, makeInstr(Mnemonic::ADD));
            pb.endCond(h_latch, Mnemonic::JNZ, h_loop,
                       pb.addBehavior(Behavior::loop(3)));
            BlockId h_exit = pb.addBlock(helper);
            pb.append(h_exit, makeInstr(Mnemonic::FSTP));
            pb.endReturn(h_exit);
            helpers.push_back(helper);
        }
    }

    FuncId kernel = pb.addFunction(mod, kKernelName);

    // The hot kernel: 15 blocks in layout order whose per-track
    // execution counts reproduce the shape of Table 3:
    //   [1, 2, 1, 1, 7/6, 1, 1, 1/6, 1, 3.5, 1, 1/6, 1, 7/3, 3]
    //
    // Block lengths shrink with vector width: scalar x87 code needs the
    // most instructions per block, packed AVX the fewest — which is why
    // EBS boundary skid hits the AVX build hardest.
    const size_t kLensX87[15] = {9, 16, 11, 19, 12, 8, 14, 10, 17, 18,
                                 9, 12, 15, 20, 13};
    const size_t kLensSse[15] = {5, 9, 6, 12, 7, 4, 8, 6, 10, 11, 5, 7,
                                 9, 13, 8};
    const size_t kLensAvx[15] = {3, 5, 4, 6, 4, 3, 5, 4, 5, 6, 3, 4, 5,
                                 7, 4};
    const size_t *lens = variant == FitterVariant::X87 ? kLensX87
                         : variant == FitterVariant::Sse ? kLensSse
                                                         : kLensAvx;
    std::vector<BlockId> bb(15);
    for (auto &b : bb)
        b = pb.addBlock(kernel);
    // One kernel invocation processes a batch of 8 tracks (the code is
    // batched over vector lanes), so per-track CALL counts are low in
    // the healthy builds — the contrast that makes the broken build's
    // call explosion so visible in Table 6.
    BlockId batch_latch = pb.addBlock(kernel);
    BlockId epilogue = pb.addBlock(kernel);

    // The rarely-taken path (bb[7], bb[11]) is a scalar fallback with a
    // distinctly different mnemonic mix: boundary skid from the hot
    // neighbours inflates exactly these blocks under EBS.
    MnemonicPalette fallback;
    fallback.weights = {
        {Mnemonic::VCVTSI2SS, 5}, {Mnemonic::VMOVD, 5},
        {Mnemonic::FLD, 4},       {Mnemonic::FSTP, 3},
        {Mnemonic::FDIV, 1},      {Mnemonic::MOV, 6},
        {Mnemonic::CDQ, 2},
    };
    auto fill = [&](size_t i) {
        const MnemonicPalette &src =
            (i == 7 || i == 11) ? fallback : palette;
        fillBlock(pb, bb[i], rng, src, lens[i]);
    };
    auto call_or_seal = [&](size_t i) {
        // The broken build calls a scalar helper where the fixed builds
        // have straight-line (inlined) code.
        if (!helpers.empty())
            pb.endCall(bb[i], helpers[i % helpers.size()]);
        else
            seal(pb, bb[i], bb[i + 1], rng);
    };

    fill(0);
    seal(pb, bb[0], bb[1], rng);

    fill(1); // 2x: self loop of two iterations
    pb.endCond(bb[1], Mnemonic::JNZ, bb[1],
               pb.addBehavior(Behavior::loop(2)));

    fill(2); // 1x
    call_or_seal(2);

    fill(3); // 1x
    seal(pb, bb[3], bb[4], rng);

    fill(4); // 7/6: trips cycle 2,1,1,1,1,1
    pb.endCond(bb[4], Mnemonic::JNBE, bb[4],
               pb.addBehavior(Behavior::patternOf(
                   {true, false, false, false, false, false})));

    fill(5); // 1x
    call_or_seal(5);

    fill(6); // 1x; skips bb[7] five times out of six
    pb.endCond(bb[6], Mnemonic::JLE, bb[8],
               pb.addBehavior(Behavior::prob(5.0 / 6.0)));

    fill(7); // 1/6
    pb.endFallThrough(bb[7]);

    fill(8); // 1x
    call_or_seal(8);

    fill(9); // 3.5x: trips cycle 3,4
    pb.endCond(bb[9], Mnemonic::JNZ, bb[9],
               pb.addBehavior(Behavior::patternOf(
                   {true, true, false, true, true, true, false})));

    fill(10); // 1x; skips bb[11] five times out of six
    pb.endCond(bb[10], Mnemonic::JB, bb[12],
               pb.addBehavior(Behavior::prob(5.0 / 6.0)));

    fill(11); // 1/6
    pb.endFallThrough(bb[11]);

    fill(12); // 1x
    call_or_seal(12);

    fill(13); // 7/3: trips cycle 2,2,3
    pb.endCond(bb[13], Mnemonic::JNLE, bb[13],
               pb.addBehavior(Behavior::patternOf(
                   {true, false, true, false, true, true, false})));

    fill(14); // 3x: fixed three iterations
    pb.endCond(bb[14], Mnemonic::JNZ, bb[14],
               pb.addBehavior(Behavior::loop(3)));

    pb.append(batch_latch, makeInstr(Mnemonic::ADD));
    pb.append(batch_latch, makeInstr(Mnemonic::CMP));
    pb.endCond(batch_latch, Mnemonic::JNZ, bb[0],
               pb.addBehavior(Behavior::loop(8)));

    fillBlock(pb, epilogue, rng, palette, 3);
    pb.endReturn(epilogue);

    // Track-processing main loop.
    FuncId main_fn = pb.addFunction(mod, "main");
    BlockId entry = pb.addBlock(main_fn);
    fillBlock(pb, entry, rng, palette, 4);
    pb.endFallThrough(entry);
    BlockId head = pb.addBlock(main_fn);
    fillBlock(pb, head, rng, paletteIntMemory(), 3);
    pb.endCall(head, kernel);
    BlockId latch = pb.addBlock(main_fn);
    fillBlock(pb, latch, rng, paletteIntMemory(), 2);
    pb.endCond(latch, Mnemonic::JNZ, head,
               pb.addBehavior(Behavior::loop(1'000'000'000ULL)));
    BlockId done = pb.addBlock(main_fn);
    pb.append(done, makeInstr(Mnemonic::XOR));
    pb.endExit(done);
    pb.setEntry(main_fn);

    Workload w;
    w.name = format("fitter_%s", name(variant));
    w.program = std::make_shared<Program>(pb.build());
    w.runtime_class = RuntimeClass::Seconds;
    w.max_instructions = 5'000'000;
    w.exec_seed = 0x517 + static_cast<uint64_t>(variant);
    w.paper_clean_seconds = 12.0;
    return w;
}

std::vector<uint64_t>
fitterKernelBlockAddrs(const Program &prog)
{
    for (const Function &fn : prog.functions()) {
        if (fn.name != kKernelName)
            continue;
        std::vector<uint64_t> addrs;
        for (size_t i = 0; i < fn.blocks.size() && i < 15; i++)
            addrs.push_back(prog.block(fn.blocks[i]).start);
        return addrs;
    }
    fatal("fitterKernelBlockAddrs: no '%s' function found", kKernelName);
}

uint64_t
fitterTrackCount(const Program &prog,
                 const std::vector<uint64_t> &bbec_by_block)
{
    for (const Function &fn : prog.functions()) {
        if (fn.name == kKernelName)
            return bbec_by_block[fn.entry];
    }
    fatal("fitterTrackCount: no '%s' function found", kKernelName);
}

} // namespace hbbp
