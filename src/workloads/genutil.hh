/**
 * @file
 * Workload generation utilities: mnemonic palettes and structure
 * helpers shared by all benchmark generators.
 */

#ifndef HBBP_WORKLOADS_GENUTIL_HH
#define HBBP_WORKLOADS_GENUTIL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "program/builder.hh"
#include "support/rng.hh"

namespace hbbp {

/**
 * A weighted distribution over non-control mnemonics, plus the
 * probability that a generated instruction carries memory operands.
 */
struct MnemonicPalette
{
    std::vector<std::pair<Mnemonic, double>> weights;
    double mem_read_frac = 0.25;
    double mem_write_frac = 0.10;

    /** Draw one instruction. */
    Instruction draw(Rng &rng) const;

    /** Sum of weights. */
    double totalWeight() const;

    /** Merge another palette scaled by @p scale. */
    MnemonicPalette &mix(const MnemonicPalette &other, double scale);
};

/** Scalar integer control-heavy code (compilers, interpreters). */
MnemonicPalette paletteIntBranchy();

/** Pointer-chasing integer code (mcf, astar). */
MnemonicPalette paletteIntMemory();

/** Long-block integer kernels (hmmer, h264ref). */
MnemonicPalette paletteIntKernel();

/** Object-oriented C++ (omnetpp, xalancbmk, Geant4): stack traffic. */
MnemonicPalette paletteObjectOriented();

/** Scalar SSE floating point (povray-like). */
MnemonicPalette paletteFpScalarSse();

/** Packed SSE floating point. */
MnemonicPalette paletteFpPackedSse();

/** Packed AVX floating point. */
MnemonicPalette paletteFpPackedAvx();

/** Scalar AVX floating point (un-vectorized AVX codegen). */
MnemonicPalette paletteFpScalarAvx();

/** x87 legacy floating point. */
MnemonicPalette paletteX87();

/** AVX2 integer SIMD. */
MnemonicPalette paletteIntAvx2();

/**
 * Fill @p block with @p count instructions drawn from @p palette.
 */
void fillBlock(ProgramBuilder &pb, BlockId block, Rng &rng,
               const MnemonicPalette &palette, size_t count);

/**
 * Build a leaf function: one block of @p len instructions plus RET.
 */
FuncId addLeafFunction(ProgramBuilder &pb, ModuleId mod,
                       const std::string &name, Rng &rng,
                       const MnemonicPalette &palette, size_t len);

/** Draw a block length from a clamped Gaussian. */
size_t drawBlockLen(Rng &rng, double mean, double sd, size_t lo,
                    size_t hi);

/** Draw a loop trip count >= 2 around @p mean (geometric tail). */
uint64_t drawTripCount(Rng &rng, double mean);

/** A conditional-branch mnemonic drawn uniformly. */
Mnemonic drawCondBranch(Rng &rng);

} // namespace hbbp

#endif // HBBP_WORKLOADS_GENUTIL_HH
