#include "workloads/kernelbench.hh"

#include <memory>

#include "program/builder.hh"
#include "support/logging.hh"
#include "workloads/genutil.hh"

namespace hbbp {

namespace {

/**
 * Add the prime-search function: three nested loops plus a probabilistic
 * divisibility-test diamond, using exactly the mnemonic set of Table 7.
 * The kernel flavour inserts tracepoint sites (static JMPs, live NOPs).
 */
FuncId
addPrimeFunction(ProgramBuilder &pb, ModuleId mod, const std::string &name,
                 bool tracepoints)
{
    FuncId fn = pb.addFunction(mod, name);

    // Entry: executed once per call.
    BlockId entry = pb.addBlock(fn);
    pb.append(entry, makeInstr(Mnemonic::MOV));
    pb.append(entry, makeInstr(Mnemonic::MOV, true));
    pb.append(entry, makeInstr(Mnemonic::TEST));
    if (tracepoints)
        pb.appendTracepoint(entry);
    pb.endFallThrough(entry);

    // Outer loop over candidate numbers n.
    BlockId outer = pb.addBlock(fn);
    pb.append(outer, makeInstr(Mnemonic::MOV));
    pb.append(outer, makeInstr(Mnemonic::CDQE));
    pb.append(outer, makeInstr(Mnemonic::IMUL));
    pb.append(outer, makeInstr(Mnemonic::CMP));
    pb.endFallThrough(outer);

    // Middle loop over divisors d (~3.35 iterations per outer).
    BlockId mid = pb.addBlock(fn);
    pb.append(mid, makeInstr(Mnemonic::MOVSXD));
    pb.append(mid, makeInstr(Mnemonic::SUB, true));
    pb.append(mid, makeInstr(Mnemonic::MOV));
    if (tracepoints)
        pb.appendTracepoint(mid);
    pb.endFallThrough(mid);

    // Inner loop: the remainder computation (~2.9 per middle).
    BlockId inner = pb.addBlock(fn);
    pb.append(inner, makeInstr(Mnemonic::ADD));
    pb.append(inner, makeInstr(Mnemonic::ADD, true));
    pb.append(inner, makeInstr(Mnemonic::CMP));
    pb.endCond(inner, Mnemonic::JNZ, inner,
               pb.addBehavior(Behavior::loop(3)));

    // Divisibility check: the "divisor found" block is skipped ~79% of
    // the time.
    BlockId check = pb.addBlock(fn);
    pb.append(check, makeInstr(Mnemonic::TEST));
    pb.append(check, makeInstr(Mnemonic::MOV));
    BlockId found = pb.addBlock(fn);
    BlockId mid_latch = pb.addBlock(fn);
    pb.endCond(check, Mnemonic::JZ, mid_latch,
               pb.addBehavior(Behavior::prob(0.79)), found);

    pb.append(found, makeInstr(Mnemonic::MOV));
    pb.append(found, makeInstr(Mnemonic::SUB));
    pb.endFallThrough(found);

    // Middle-loop latch: trips cycle 3,3,4 (~3.33 per outer).
    pb.append(mid_latch, makeInstr(Mnemonic::MOVSXD));
    pb.append(mid_latch, makeInstr(Mnemonic::CMP));
    pb.endCond(mid_latch, Mnemonic::JLE, mid,
               pb.addBehavior(Behavior::patternOf(
                   {true, true, false, true, true, false, true, true,
                    true, false})));

    // Outer-loop latch.
    BlockId outer_latch = pb.addBlock(fn);
    pb.append(outer_latch, makeInstr(Mnemonic::MOV, false, true));
    pb.append(outer_latch, makeInstr(Mnemonic::ADD));
    pb.endCond(outer_latch, Mnemonic::JNLE, outer,
               pb.addBehavior(Behavior::loop(12)));

    BlockId epi = pb.addBlock(fn);
    pb.append(epi, makeInstr(Mnemonic::MOV));
    pb.endReturn(epi, name == kKernelBenchKernelFunc
                          ? Mnemonic::SYSRET : Mnemonic::RET_NEAR);
    return fn;
}

} // namespace

Workload
makeKernelBench()
{
    Rng rng(0xbeefcafe);
    ProgramBuilder pb;

    ModuleId user_mod = pb.addModule("hello", Ring::User);
    ModuleId kernel_mod = pb.addModule("hello.ko", Ring::Kernel);

    FuncId hello_u =
        addPrimeFunction(pb, user_mod, kKernelBenchUserFunc, false);
    FuncId hello_k =
        addPrimeFunction(pb, kernel_mod, kKernelBenchKernelFunc, true);

    // Main: idle work, user-space prime search, then a read() that
    // triggers the same code in the kernel module.
    FuncId main_fn = pb.addFunction(user_mod, "main");
    BlockId entry = pb.addBlock(main_fn);
    fillBlock(pb, entry, rng, paletteIntBranchy(), 4);
    pb.endFallThrough(entry);

    BlockId head = pb.addBlock(main_fn);
    // Idle separation between kernel calls, as in the paper's setup.
    fillBlock(pb, head, rng, paletteIntBranchy(), 18);
    pb.endCall(head, hello_u);

    BlockId mid = pb.addBlock(main_fn);
    fillBlock(pb, mid, rng, paletteIntBranchy(), 10);
    pb.endSyscall(mid, hello_k);

    BlockId latch = pb.addBlock(main_fn);
    fillBlock(pb, latch, rng, paletteIntBranchy(), 3);
    pb.endCond(latch, Mnemonic::JNZ, head,
               pb.addBehavior(Behavior::loop(1'000'000'000ULL)));

    BlockId done = pb.addBlock(main_fn);
    pb.append(done, makeInstr(Mnemonic::XOR));
    pb.endExit(done);
    pb.setEntry(main_fn);

    Workload w;
    w.name = "kernelbench";
    w.program = std::make_shared<Program>(pb.build());
    w.runtime_class = RuntimeClass::Seconds;
    w.max_instructions = 6'000'000;
    w.exec_seed = 0x51ca11;
    w.paper_clean_seconds = 9.0;
    return w;
}

} // namespace hbbp
