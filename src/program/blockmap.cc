#include "program/blockmap.hh"

#include <algorithm>
#include <set>

#include "isa/encoding.hh"
#include "support/logging.hh"

namespace hbbp {

bool
MapBlock::hasLongLatency() const
{
    for (const auto &instr : instrs)
        if (instr.info().isLongLatency())
            return true;
    return false;
}

BlockMap::BlockMap(const Program &prog, const BlockMapOptions &opts)
    : prog_(prog)
{
    for (const Module &mod : prog.modules())
        discoverModule(mod, opts);
    std::sort(blocks_.begin(), blocks_.end(),
              [](const MapBlock &a, const MapBlock &b) {
                  return a.start < b.start;
              });
    for (uint32_t i = 0; i < blocks_.size(); i++)
        blocks_[i].index = i;
}

void
BlockMap::discoverModule(const Module &mod, const BlockMapOptions &opts)
{
    const std::vector<uint8_t> &text =
        (mod.isKernel() && opts.patch_kernel_text) ? mod.live_text
                                                   : mod.static_text;

    // Pass 1: linear decode.
    std::vector<Instruction> instrs = decodeAll(text, mod.base);
    if (instrs.empty())
        return;

    // Pass 2: collect leaders.
    std::set<uint64_t> leaders;
    leaders.insert(mod.base);
    for (FuncId fid : mod.functions)
        leaders.insert(prog_.function(fid).start);
    for (const Instruction &instr : instrs) {
        if (!instr.info().isControl())
            continue;
        // The instruction after any control transfer starts a block.
        leaders.insert(instr.nextAddr());
        // Direct targets start blocks.
        if (instr.info().hasDisplacement())
            leaders.insert(instr.target());
    }

    // Pass 3: partition instructions into [leader, next leader) blocks.
    uint64_t text_end = mod.base + text.size();
    MapBlock cur;
    bool open = false;
    auto close_block = [&](uint64_t end_addr) {
        if (!open || cur.instrs.empty())
            return;
        cur.bytes = static_cast<uint32_t>(end_addr - cur.start);
        blocks_.push_back(std::move(cur));
        cur = MapBlock{};
        open = false;
    };
    for (const Instruction &instr : instrs) {
        bool is_leader = leaders.count(instr.addr) > 0;
        if (is_leader)
            close_block(instr.addr);
        if (!open) {
            cur.start = instr.addr;
            cur.module = mod.id;
            cur.func = prog_.functionAt(instr.addr);
            open = true;
        }
        cur.instrs.push_back(instr);
        if (instr.info().isControl())
            close_block(instr.nextAddr());
    }
    close_block(text_end);
}

const MapBlock &
BlockMap::block(uint32_t index) const
{
    if (index >= blocks_.size())
        panic("BlockMap::block: index %u out of range", index);
    return blocks_[index];
}

uint32_t
BlockMap::blockAt(uint64_t addr) const
{
    auto it = std::upper_bound(
        blocks_.begin(), blocks_.end(), addr,
        [](uint64_t a, const MapBlock &b) { return a < b.start; });
    if (it == blocks_.begin())
        return npos;
    const MapBlock &candidate = *(it - 1);
    if (!candidate.contains(addr))
        return npos;
    return candidate.index;
}

std::string
BlockMap::functionName(const MapBlock &block) const
{
    if (block.func == kNoFunc)
        return "?";
    return prog_.function(block.func).name;
}

std::string
BlockMap::moduleName(const MapBlock &block) const
{
    return prog_.module(block.module).name;
}

} // namespace hbbp
