/**
 * @file
 * Fluent construction of programs.
 *
 * ProgramBuilder is the only way to create a Program. It checks structural
 * invariants (terminators present, branch targets inside the same
 * function, fall-through adjacency), appends the terminating control
 * instructions, lays out the address space, resolves branch displacements
 * and produces the encoded text images — including the kernel
 * static-vs-live split for tracepoints.
 */

#ifndef HBBP_PROGRAM_BUILDER_HH
#define HBBP_PROGRAM_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "program/program.hh"

namespace hbbp {

/** Builds a Program step by step; see file comment for the workflow. */
class ProgramBuilder
{
  public:
    ProgramBuilder();

    /** Add a module; functions added afterwards belong to it by id. */
    ModuleId addModule(const std::string &name, Ring ring = Ring::User);

    /** Add a function to @p module. */
    FuncId addFunction(ModuleId module, const std::string &name);

    /** Add a basic block at the end of @p func's layout. */
    BlockId addBlock(FuncId func);

    /** Register a branch behaviour. */
    BehaviorId addBehavior(const Behavior &behavior);

    /** Append a non-control instruction to @p block. */
    void append(BlockId block, const Instruction &instr);

    /** Append @p count copies of a non-control instruction. */
    void appendN(BlockId block, const Instruction &instr, size_t count);

    /**
     * Append a kernel tracepoint site: a JMP in the static image that the
     * live image carries as a same-length NOP. Only valid in kernel
     * modules.
     */
    void appendTracepoint(BlockId block);

    /** End @p block with an unconditional jump to @p target. */
    void endJump(BlockId block, BlockId target);

    /**
     * End @p block with a conditional branch.
     *
     * @param mn        a CondBranch-category mnemonic (JZ, JLE, ...)
     * @param taken     target when taken (same function)
     * @param behavior  LoopCount / TakenProb / Pattern behaviour
     * @param fall      fall-through block; kNoBlock = next block in layout
     */
    void endCond(BlockId block, Mnemonic mn, BlockId taken,
                 BehaviorId behavior, BlockId fall = kNoBlock);

    /**
     * End @p block with an indirect jump. Behaviour targets are BlockIds
     * within the same function.
     */
    void endIndirectJump(BlockId block, BehaviorId behavior);

    /** End @p block with a direct call; execution resumes at @p fall. */
    void endCall(BlockId block, FuncId callee, BlockId fall = kNoBlock);

    /**
     * End @p block with an indirect call. Behaviour targets are FuncIds.
     */
    void endIndirectCall(BlockId block, BehaviorId behavior,
                         BlockId fall = kNoBlock);

    /** End @p block with a near return (or SYSRET from kernel). */
    void endReturn(BlockId block,
                   Mnemonic mn = Mnemonic::RET_NEAR);

    /** End @p block by entering kernel @p handler; resumes at @p fall. */
    void endSyscall(BlockId block, FuncId handler, BlockId fall = kNoBlock);

    /** End @p block by falling through to the next block in layout. */
    void endFallThrough(BlockId block);

    /** End @p block by terminating the program. */
    void endExit(BlockId block);

    /** Set the function execution starts in. */
    void setEntry(FuncId func);

    /**
     * Validate, lay out, encode and return the finished Program.
     * The builder must not be reused afterwards.
     */
    Program build();

  private:
    struct BlockExtra
    {
        bool terminated = false;
        std::vector<size_t> tracepoints; ///< Instruction indices.
    };

    BasicBlock &blockRef(BlockId id);
    void requireOpen(BlockId id);
    void setTerm(BlockId id, TermKind term);

    Program prog_;
    std::vector<BlockExtra> extra_;
    bool built_ = false;
};

} // namespace hbbp

#endif // HBBP_PROGRAM_BUILDER_HH
