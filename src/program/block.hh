/**
 * @file
 * Basic blocks, terminators and branch behaviours.
 *
 * A program is a set of modules containing functions containing basic
 * blocks. Blocks carry their instructions and a terminator describing
 * control flow. Conditional and indirect terminators reference a
 * Behaviour — a declarative description of how the branch resolves at
 * run time (loop trip counts, taken probabilities, cyclic patterns,
 * weighted indirect target sets) that the execution engine interprets.
 */

#ifndef HBBP_PROGRAM_BLOCK_HH
#define HBBP_PROGRAM_BLOCK_HH

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "isa/instruction.hh"

namespace hbbp {

/** Index of a basic block within a Program (global, flat). */
using BlockId = uint32_t;
/** Index of a function within a Program. */
using FuncId = uint32_t;
/** Index of a module within a Program. */
using ModuleId = uint32_t;
/** Index of a behaviour within a Program. */
using BehaviorId = uint32_t;

/** Sentinel for "no block". */
constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();
/** Sentinel for "no function". */
constexpr FuncId kNoFunc = std::numeric_limits<FuncId>::max();
/** Sentinel for "no behaviour". */
constexpr BehaviorId kNoBehavior = std::numeric_limits<BehaviorId>::max();

/** How a basic block ends. */
enum class TermKind : uint8_t {
    FallThrough,  ///< Falls into the next block (no control instruction).
    Jump,         ///< Unconditional direct jump.
    CondBranch,   ///< Conditional branch; behaviour decides taken.
    IndirectJump, ///< Indirect jump; behaviour picks target block.
    Call,         ///< Direct call; continues at fall-through on return.
    IndirectCall, ///< Indirect call; behaviour picks callee.
    Return,       ///< Pops the call stack (RET_NEAR or SYSRET).
    Syscall,      ///< Enters a kernel handler; continues on return.
    Exit,         ///< Terminates the program.
};

/** Declarative branch behaviour interpreted by the execution engine. */
struct Behavior
{
    enum class Kind : uint8_t {
        LoopCount, ///< Taken (count-1) times, then falls through; repeats.
        TakenProb, ///< Taken with fixed probability.
        Pattern,   ///< Cyclic taken/not-taken pattern.
        Targets,   ///< Weighted set of indirect targets (functions).
    };

    Kind kind = Kind::TakenProb;
    uint64_t loop_count = 0;   ///< LoopCount: iterations per loop entry.
    double taken_prob = 0.5;   ///< TakenProb: probability of taken.
    std::vector<bool> pattern; ///< Pattern: cyclic outcomes.
    /** Targets: (function, weight) pairs for indirect transfers. */
    std::vector<std::pair<FuncId, double>> targets;

    /** A loop backedge taken @p count - 1 times per entry. */
    static Behavior loop(uint64_t count);

    /** A branch taken with probability @p p. */
    static Behavior prob(double p);

    /** A cyclic pattern of outcomes. */
    static Behavior patternOf(std::vector<bool> outcomes);

    /** A weighted indirect target set. */
    static Behavior targetSet(
        std::vector<std::pair<FuncId, double>> targets);
};

/** A basic block: straight-line instructions plus one terminator. */
struct BasicBlock
{
    BlockId id = kNoBlock;
    FuncId func = kNoFunc;
    std::vector<Instruction> instrs;

    TermKind term = TermKind::FallThrough;
    /** Taken/jump target block (CondBranch/Jump). */
    BlockId taken_target = kNoBlock;
    /** Fall-through / post-call continuation block. */
    BlockId fall_target = kNoBlock;
    /** Callee function (Call/Syscall). */
    FuncId callee = kNoFunc;
    /** Behaviour for CondBranch/IndirectJump/IndirectCall. */
    BehaviorId behavior = kNoBehavior;

    /** Block start address (assigned at build time). */
    uint64_t start = 0;
    /** Size in bytes (assigned at build time). */
    uint32_t bytes = 0;

    /** Number of instructions. */
    size_t size() const { return instrs.size(); }

    /** Address one past the last instruction. */
    uint64_t end() const { return start + bytes; }

    /** True when @p addr falls inside the block. */
    bool contains(uint64_t addr) const
    {
        return addr >= start && addr < end();
    }

    /** True when any instruction is long-latency. */
    bool hasLongLatency() const;

    /** The terminating control instruction, if the block has one. */
    const Instruction *controlInstr() const;
};

} // namespace hbbp

#endif // HBBP_PROGRAM_BLOCK_HH
