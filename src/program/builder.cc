#include "program/builder.hh"

#include <algorithm>

#include "isa/encoding.hh"
#include "support/logging.hh"

namespace hbbp {

namespace {

constexpr uint64_t kUserBase = 0x0000000000400000ULL;
constexpr uint64_t kKernelBase = 0xffffffff81000000ULL;
constexpr uint64_t kModuleGap = 0x10000; ///< 64 KiB between modules.
constexpr uint64_t kPageAlign = 0x1000;

uint64_t
alignUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace

ProgramBuilder::ProgramBuilder() = default;

BasicBlock &
ProgramBuilder::blockRef(BlockId id)
{
    if (id >= prog_.blocks_.size())
        panic("ProgramBuilder: block id %u out of range", id);
    return prog_.blocks_[id];
}

void
ProgramBuilder::requireOpen(BlockId id)
{
    if (extra_[id].terminated)
        panic("ProgramBuilder: block %u already terminated", id);
}

void
ProgramBuilder::setTerm(BlockId id, TermKind term)
{
    requireOpen(id);
    blockRef(id).term = term;
    extra_[id].terminated = true;
}

ModuleId
ProgramBuilder::addModule(const std::string &name, Ring ring)
{
    Module mod;
    mod.id = static_cast<ModuleId>(prog_.modules_.size());
    mod.name = name;
    mod.ring = ring;
    prog_.modules_.push_back(std::move(mod));
    return prog_.modules_.back().id;
}

FuncId
ProgramBuilder::addFunction(ModuleId module, const std::string &name)
{
    if (module >= prog_.modules_.size())
        panic("ProgramBuilder::addFunction: bad module id %u", module);
    Function fn;
    fn.id = static_cast<FuncId>(prog_.functions_.size());
    fn.module = module;
    fn.name = name;
    prog_.functions_.push_back(fn);
    prog_.modules_[module].functions.push_back(fn.id);
    return fn.id;
}

BlockId
ProgramBuilder::addBlock(FuncId func)
{
    if (func >= prog_.functions_.size())
        panic("ProgramBuilder::addBlock: bad function id %u", func);
    BasicBlock blk;
    blk.id = static_cast<BlockId>(prog_.blocks_.size());
    blk.func = func;
    prog_.blocks_.push_back(std::move(blk));
    extra_.emplace_back();
    Function &fn = prog_.functions_[func];
    fn.blocks.push_back(prog_.blocks_.back().id);
    if (fn.entry == kNoBlock)
        fn.entry = prog_.blocks_.back().id;
    return prog_.blocks_.back().id;
}

BehaviorId
ProgramBuilder::addBehavior(const Behavior &behavior)
{
    prog_.behaviors_.push_back(behavior);
    return static_cast<BehaviorId>(prog_.behaviors_.size() - 1);
}

void
ProgramBuilder::append(BlockId block, const Instruction &instr)
{
    requireOpen(block);
    if (instr.info().isControl())
        panic("ProgramBuilder::append: %s is a control instruction; "
              "use an end*() method", instr.info().name);
    blockRef(block).instrs.push_back(instr);
}

void
ProgramBuilder::appendN(BlockId block, const Instruction &instr,
                        size_t count)
{
    for (size_t i = 0; i < count; i++)
        append(block, instr);
}

void
ProgramBuilder::appendTracepoint(BlockId block)
{
    requireOpen(block);
    BasicBlock &blk = blockRef(block);
    const Function &fn = prog_.functions_[blk.func];
    if (!prog_.modules_[fn.module].isKernel())
        panic("ProgramBuilder::appendTracepoint: block %u is not in a "
              "kernel module", block);
    // The static image holds a JMP to the next instruction; the live
    // image holds a same-length NOP. We record the instruction index and
    // swap the mnemonic when emitting the two images.
    Instruction jmp = makeInstr(Mnemonic::JMP);
    blk.instrs.push_back(jmp);
    extra_[block].tracepoints.push_back(blk.instrs.size() - 1);
}

void
ProgramBuilder::endJump(BlockId block, BlockId target)
{
    requireOpen(block);
    blockRef(block).instrs.push_back(makeInstr(Mnemonic::JMP));
    blockRef(block).taken_target = target;
    setTerm(block, TermKind::Jump);
}

void
ProgramBuilder::endCond(BlockId block, Mnemonic mn, BlockId taken,
                        BehaviorId behavior, BlockId fall)
{
    requireOpen(block);
    if (info(mn).category != Category::CondBranch)
        panic("ProgramBuilder::endCond: %s is not a conditional branch",
              info(mn).name);
    BasicBlock &blk = blockRef(block);
    blk.instrs.push_back(makeInstr(mn));
    blk.taken_target = taken;
    blk.fall_target = fall;
    blk.behavior = behavior;
    setTerm(block, TermKind::CondBranch);
}

void
ProgramBuilder::endIndirectJump(BlockId block, BehaviorId behavior)
{
    requireOpen(block);
    BasicBlock &blk = blockRef(block);
    blk.instrs.push_back(makeInstr(Mnemonic::JMP_IND));
    blk.behavior = behavior;
    setTerm(block, TermKind::IndirectJump);
}

void
ProgramBuilder::endCall(BlockId block, FuncId callee, BlockId fall)
{
    requireOpen(block);
    BasicBlock &blk = blockRef(block);
    blk.instrs.push_back(makeInstr(Mnemonic::CALL));
    blk.callee = callee;
    blk.fall_target = fall;
    setTerm(block, TermKind::Call);
}

void
ProgramBuilder::endIndirectCall(BlockId block, BehaviorId behavior,
                                BlockId fall)
{
    requireOpen(block);
    BasicBlock &blk = blockRef(block);
    blk.instrs.push_back(makeInstr(Mnemonic::CALL_IND));
    blk.behavior = behavior;
    blk.fall_target = fall;
    setTerm(block, TermKind::IndirectCall);
}

void
ProgramBuilder::endReturn(BlockId block, Mnemonic mn)
{
    requireOpen(block);
    if (info(mn).category != Category::Ret &&
        mn != Mnemonic::SYSRET)
        panic("ProgramBuilder::endReturn: %s cannot return", info(mn).name);
    blockRef(block).instrs.push_back(makeInstr(mn));
    setTerm(block, TermKind::Return);
}

void
ProgramBuilder::endSyscall(BlockId block, FuncId handler, BlockId fall)
{
    requireOpen(block);
    BasicBlock &blk = blockRef(block);
    blk.instrs.push_back(makeInstr(Mnemonic::SYSCALL));
    blk.callee = handler;
    blk.fall_target = fall;
    setTerm(block, TermKind::Syscall);
}

void
ProgramBuilder::endFallThrough(BlockId block)
{
    setTerm(block, TermKind::FallThrough);
}

void
ProgramBuilder::endExit(BlockId block)
{
    setTerm(block, TermKind::Exit);
}

void
ProgramBuilder::setEntry(FuncId func)
{
    if (func >= prog_.functions_.size())
        panic("ProgramBuilder::setEntry: bad function id %u", func);
    prog_.entry_func_ = func;
}

Program
ProgramBuilder::build()
{
    if (built_)
        panic("ProgramBuilder::build called twice");
    built_ = true;

    if (prog_.entry_func_ == kNoFunc)
        fatal("ProgramBuilder: no entry function set");

    // --- Resolve implicit fall-through targets and validate structure.
    for (Function &fn : prog_.functions_) {
        if (fn.blocks.empty())
            fatal("ProgramBuilder: function '%s' has no blocks",
                  fn.name.c_str());
        for (size_t i = 0; i < fn.blocks.size(); i++) {
            BasicBlock &blk = prog_.blocks_[fn.blocks[i]];
            if (!extra_[blk.id].terminated)
                fatal("ProgramBuilder: block %u in '%s' not terminated",
                      blk.id, fn.name.c_str());
            BlockId next = (i + 1 < fn.blocks.size())
                ? fn.blocks[i + 1] : kNoBlock;
            bool needs_fall =
                blk.term == TermKind::FallThrough ||
                blk.term == TermKind::CondBranch ||
                blk.term == TermKind::Call ||
                blk.term == TermKind::IndirectCall ||
                blk.term == TermKind::Syscall;
            if (needs_fall) {
                if (blk.term == TermKind::FallThrough)
                    blk.fall_target = next;
                else if (blk.fall_target == kNoBlock)
                    blk.fall_target = next;
                if (blk.fall_target == kNoBlock)
                    fatal("ProgramBuilder: block %u in '%s' needs a "
                          "fall-through but is last in the function",
                          blk.id, fn.name.c_str());
                if (blk.fall_target != next)
                    fatal("ProgramBuilder: block %u fall-through must be "
                          "the next block in layout", blk.id);
            }
            if (blk.term == TermKind::CondBranch ||
                blk.term == TermKind::Jump) {
                if (blk.taken_target == kNoBlock ||
                    blk.taken_target >= prog_.blocks_.size())
                    fatal("ProgramBuilder: block %u has bad branch target",
                          blk.id);
                if (prog_.blocks_[blk.taken_target].func != blk.func)
                    fatal("ProgramBuilder: block %u branches outside its "
                          "function", blk.id);
            }
            if (blk.term == TermKind::CondBranch ||
                blk.term == TermKind::IndirectJump ||
                blk.term == TermKind::IndirectCall) {
                if (blk.behavior == kNoBehavior ||
                    blk.behavior >= prog_.behaviors_.size())
                    fatal("ProgramBuilder: block %u lacks a behaviour",
                          blk.id);
                const Behavior &bh = prog_.behaviors_[blk.behavior];
                bool indirect = blk.term != TermKind::CondBranch;
                if (indirect && bh.kind != Behavior::Kind::Targets)
                    fatal("ProgramBuilder: block %u indirect terminator "
                          "needs a Targets behaviour", blk.id);
                if (!indirect && bh.kind == Behavior::Kind::Targets)
                    fatal("ProgramBuilder: block %u conditional branch "
                          "cannot use a Targets behaviour", blk.id);
                if (blk.term == TermKind::IndirectJump) {
                    for (const auto &[tgt, w] : bh.targets)
                        if (tgt >= prog_.blocks_.size() ||
                            prog_.blocks_[tgt].func != blk.func)
                            fatal("ProgramBuilder: block %u indirect jump "
                                  "target %u invalid", blk.id, tgt);
                } else if (blk.term == TermKind::IndirectCall) {
                    for (const auto &[tgt, w] : bh.targets)
                        if (tgt >= prog_.functions_.size())
                            fatal("ProgramBuilder: block %u indirect call "
                                  "target %u invalid", blk.id, tgt);
                }
            }
            if (blk.term == TermKind::Call || blk.term == TermKind::Syscall) {
                if (blk.callee >= prog_.functions_.size())
                    fatal("ProgramBuilder: block %u has bad callee", blk.id);
                bool callee_kernel =
                    prog_.modules_[prog_.functions_[blk.callee].module]
                        .isKernel();
                if (blk.term == TermKind::Syscall && !callee_kernel)
                    fatal("ProgramBuilder: block %u syscall handler must "
                          "be in a kernel module", blk.id);
            }
        }
    }

    // --- Address layout.
    uint64_t user_cursor = kUserBase;
    uint64_t kernel_cursor = kKernelBase;
    for (Module &mod : prog_.modules_) {
        uint64_t &cursor = mod.isKernel() ? kernel_cursor : user_cursor;
        mod.base = alignUp(cursor, kPageAlign);
        uint64_t addr = mod.base;
        for (FuncId fid : mod.functions) {
            Function &fn = prog_.functions_[fid];
            fn.start = addr;
            for (BlockId bid : fn.blocks) {
                BasicBlock &blk = prog_.blocks_[bid];
                blk.start = addr;
                uint32_t bytes = 0;
                for (Instruction &instr : blk.instrs) {
                    instr.addr = addr + bytes;
                    bytes += instr.length;
                }
                blk.bytes = bytes;
                addr += bytes;
            }
            fn.size = addr - fn.start;
        }
        mod.size = addr - mod.base;
        cursor = addr + kModuleGap;
    }

    // --- Resolve displacements of terminating control instructions.
    for (BasicBlock &blk : prog_.blocks_) {
        if (blk.instrs.empty())
            continue;
        Instruction &last = blk.instrs.back();
        if (!last.info().hasDisplacement())
            continue;
        uint64_t target = 0;
        switch (blk.term) {
          case TermKind::Jump:
          case TermKind::CondBranch:
            target = prog_.blocks_[blk.taken_target].start;
            break;
          case TermKind::Call:
            target = prog_.blocks_[
                prog_.functions_[blk.callee].entry].start;
            break;
          default: {
            // A tracepoint JMP can be the last instruction of a block
            // with a non-branch terminator; its displacement stays 0
            // (target = next instruction).
            const auto &tps = extra_[blk.id].tracepoints;
            bool last_is_tracepoint =
                !tps.empty() && tps.back() == blk.instrs.size() - 1;
            if (last.mnemonic == Mnemonic::JMP && last_is_tracepoint)
                continue;
            panic("ProgramBuilder: displacement instruction %s with "
                  "terminator kind %d", last.info().name,
                  static_cast<int>(blk.term));
          }
        }
        last.disp = static_cast<int32_t>(
            static_cast<int64_t>(target) -
            static_cast<int64_t>(last.nextAddr()));
    }

    // --- Emit text images (static first, then patch live tracepoints).
    for (Module &mod : prog_.modules_) {
        mod.static_text.clear();
        mod.static_text.reserve(mod.size);
        for (FuncId fid : mod.functions) {
            for (BlockId bid : prog_.functions_[fid].blocks) {
                BasicBlock &blk = prog_.blocks_[bid];
                for (size_t i = 0; i < blk.instrs.size(); i++)
                    encode(blk.instrs[i], mod.static_text);
            }
        }
        mod.live_text = mod.static_text;
        // Patch tracepoints: live image gets NOPs, and the executing block
        // representation must match the live image.
        for (FuncId fid : mod.functions) {
            for (BlockId bid : prog_.functions_[fid].blocks) {
                BasicBlock &blk = prog_.blocks_[bid];
                for (size_t idx : extra_[bid].tracepoints) {
                    Instruction &instr = blk.instrs[idx];
                    size_t offset =
                        static_cast<size_t>(instr.addr - mod.base);
                    patchToNop(mod.live_text, offset);
                    uint8_t length = instr.length;
                    uint64_t addr = instr.addr;
                    instr = Instruction{};
                    instr.mnemonic = Mnemonic::NOP;
                    instr.length = length;
                    instr.addr = addr;
                }
            }
        }
    }

    // --- Address index.
    prog_.by_addr_.resize(prog_.blocks_.size());
    for (BlockId i = 0; i < prog_.blocks_.size(); i++)
        prog_.by_addr_[i] = i;
    std::sort(prog_.by_addr_.begin(), prog_.by_addr_.end(),
              [this](BlockId a, BlockId b) {
                  return prog_.blocks_[a].start < prog_.blocks_[b].start;
              });

    return std::move(prog_);
}

} // namespace hbbp
