/**
 * @file
 * Whole-program representation.
 *
 * A Program owns modules (user binaries and kernel images), functions,
 * basic blocks and branch behaviours, plus the address-space layout and
 * fast address-to-block lookup the analyzer and PMU need.
 *
 * Kernel modules carry two text images: the live image that actually
 * executes (tracepoint jumps patched to NOPs, as the Linux kernel does at
 * boot) and the static on-disk image (jumps present). The analyzer
 * disassembles the static image unless told to apply the paper's fix of
 * patching it with the live text.
 */

#ifndef HBBP_PROGRAM_PROGRAM_HH
#define HBBP_PROGRAM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "program/block.hh"

namespace hbbp {

/** Privilege ring a module executes in. */
enum class Ring : uint8_t {
    User,   ///< Rings 1-3 in the paper's terminology.
    Kernel, ///< Ring 0.
};

/** A function: a named, contiguous sequence of basic blocks. */
struct Function
{
    FuncId id = kNoFunc;
    ModuleId module = 0;
    std::string name;
    std::vector<BlockId> blocks; ///< In layout order.
    BlockId entry = kNoBlock;
    uint64_t start = 0; ///< Assigned at build time.
    uint64_t size = 0;  ///< Bytes, assigned at build time.
};

/** A loaded binary module (executable, shared object or kernel image). */
struct Module
{
    ModuleId id = 0;
    std::string name;
    Ring ring = Ring::User;
    uint64_t base = 0;  ///< Load address.
    uint64_t size = 0;  ///< Bytes of text.
    std::vector<FuncId> functions;
    /** Text image as it executes (kernel: tracepoints patched to NOP). */
    std::vector<uint8_t> live_text;
    /** Text image as on disk (kernel: tracepoint jumps present). */
    std::vector<uint8_t> static_text;

    /** True for ring-0 modules. */
    bool isKernel() const { return ring == Ring::Kernel; }
};

/** An executable program: the unit the engine runs and tools profile. */
class Program
{
  public:
    /** The function execution starts in. */
    FuncId entryFunction() const { return entry_func_; }

    /** All modules. */
    const std::vector<Module> &modules() const { return modules_; }

    /** All functions. */
    const std::vector<Function> &functions() const { return functions_; }

    /** All basic blocks, indexed by BlockId. */
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** All branch behaviours, indexed by BehaviorId. */
    const std::vector<Behavior> &behaviors() const { return behaviors_; }

    /** Block by id; panics when out of range. */
    const BasicBlock &block(BlockId id) const;

    /** Function by id; panics when out of range. */
    const Function &function(FuncId id) const;

    /** Module by id; panics when out of range. */
    const Module &module(ModuleId id) const;

    /** Behaviour by id; panics when out of range. */
    const Behavior &behavior(BehaviorId id) const;

    /** Block containing @p addr, or kNoBlock. */
    BlockId blockAt(uint64_t addr) const;

    /** Function containing @p addr, or kNoFunc. */
    FuncId functionAt(uint64_t addr) const;

    /** Module containing @p addr, or modules().size() when none. */
    ModuleId moduleAt(uint64_t addr) const;

    /** Total static instruction count over all blocks. */
    uint64_t staticInstrCount() const;

    /** Sum of expected dynamic instructions is workload-specific; the
     *  program itself only exposes structure. */

  private:
    friend class ProgramBuilder;

    FuncId entry_func_ = kNoFunc;
    std::vector<Module> modules_;
    std::vector<Function> functions_;
    std::vector<BasicBlock> blocks_;
    std::vector<Behavior> behaviors_;

    /** Block ids sorted by start address for binary search. */
    std::vector<BlockId> by_addr_;
};

} // namespace hbbp

#endif // HBBP_PROGRAM_PROGRAM_HH
