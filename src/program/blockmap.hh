/**
 * @file
 * Analyzer-side basic block discovery.
 *
 * The paper's analyzer does not get the compiler's CFG; it disassembles
 * the binary (with XED) and builds a basic block map from leaders:
 * function entries, branch targets, and instructions following control
 * transfers. BlockMap reproduces that pipeline on a Program's encoded
 * text images.
 *
 * Crucially, for kernel modules the map can be built either from the
 * static on-disk image (tracepoint JMPs present — the default, which is
 * wrong for live execution) or from the live image (the paper's fix of
 * patching the static binary with the .text of the running kernel).
 */

#ifndef HBBP_PROGRAM_BLOCKMAP_HH
#define HBBP_PROGRAM_BLOCKMAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "program/program.hh"

namespace hbbp {

/** A basic block as discovered by disassembly. */
struct MapBlock
{
    uint32_t index = 0;      ///< Index within the BlockMap.
    uint64_t start = 0;      ///< First instruction address.
    uint32_t bytes = 0;      ///< Size in bytes.
    ModuleId module = 0;     ///< Enclosing module.
    FuncId func = kNoFunc;   ///< Enclosing function (via symbols).
    std::vector<Instruction> instrs;

    /** Address one past the end. */
    uint64_t end() const { return start + bytes; }

    /** True when @p addr is inside the block. */
    bool contains(uint64_t addr) const
    {
        return addr >= start && addr < end();
    }

    /** Instruction count. */
    size_t size() const { return instrs.size(); }

    /** True when any instruction is long-latency. */
    bool hasLongLatency() const;
};

/** Options controlling block map construction. */
struct BlockMapOptions
{
    /**
     * Replace kernel static text with the live image before
     * disassembling (the paper's self-modifying-code fix). User modules
     * are unaffected (their images are identical).
     */
    bool patch_kernel_text = false;
};

/** The analyzer's address-indexed basic block map. */
class BlockMap
{
  public:
    /** Disassemble @p prog's modules and discover blocks. */
    BlockMap(const Program &prog, const BlockMapOptions &opts = {});

    /** All discovered blocks, sorted by start address. */
    const std::vector<MapBlock> &blocks() const { return blocks_; }

    /** Block by index; panics when out of range. */
    const MapBlock &block(uint32_t index) const;

    /** Index of the block containing @p addr, or npos. */
    uint32_t blockAt(uint64_t addr) const;

    /** Sentinel returned by blockAt for unmapped addresses. */
    static constexpr uint32_t npos = UINT32_MAX;

    /** Name of the function owning @p block (or "?"). */
    std::string functionName(const MapBlock &block) const;

    /** Name of the module owning @p block. */
    std::string moduleName(const MapBlock &block) const;

    /** The program this map was built from. */
    const Program &program() const { return prog_; }

  private:
    void discoverModule(const Module &mod, const BlockMapOptions &opts);

    const Program &prog_;
    std::vector<MapBlock> blocks_;
};

} // namespace hbbp

#endif // HBBP_PROGRAM_BLOCKMAP_HH
