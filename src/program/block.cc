#include "program/block.hh"

#include "support/logging.hh"

namespace hbbp {

Behavior
Behavior::loop(uint64_t count)
{
    if (count == 0)
        panic("Behavior::loop requires count >= 1");
    Behavior b;
    b.kind = Kind::LoopCount;
    b.loop_count = count;
    return b;
}

Behavior
Behavior::prob(double p)
{
    if (p < 0.0 || p > 1.0)
        panic("Behavior::prob: p=%f out of [0,1]", p);
    Behavior b;
    b.kind = Kind::TakenProb;
    b.taken_prob = p;
    return b;
}

Behavior
Behavior::patternOf(std::vector<bool> outcomes)
{
    if (outcomes.empty())
        panic("Behavior::patternOf requires a non-empty pattern");
    Behavior b;
    b.kind = Kind::Pattern;
    b.pattern = std::move(outcomes);
    return b;
}

Behavior
Behavior::targetSet(std::vector<std::pair<FuncId, double>> targets)
{
    if (targets.empty())
        panic("Behavior::targetSet requires at least one target");
    double total = 0.0;
    for (const auto &[fn, w] : targets) {
        if (w < 0.0)
            panic("Behavior::targetSet: negative weight %f", w);
        total += w;
    }
    if (total <= 0.0)
        panic("Behavior::targetSet: weights sum to zero");
    Behavior b;
    b.kind = Kind::Targets;
    b.targets = std::move(targets);
    return b;
}

bool
BasicBlock::hasLongLatency() const
{
    for (const auto &instr : instrs)
        if (instr.info().isLongLatency())
            return true;
    return false;
}

const Instruction *
BasicBlock::controlInstr() const
{
    if (instrs.empty())
        return nullptr;
    const Instruction &last = instrs.back();
    return last.info().isControl() ? &last : nullptr;
}

} // namespace hbbp
