#include "program/program.hh"

#include <algorithm>

#include "support/logging.hh"

namespace hbbp {

const BasicBlock &
Program::block(BlockId id) const
{
    if (id >= blocks_.size())
        panic("Program::block: id %u out of range", id);
    return blocks_[id];
}

const Function &
Program::function(FuncId id) const
{
    if (id >= functions_.size())
        panic("Program::function: id %u out of range", id);
    return functions_[id];
}

const Module &
Program::module(ModuleId id) const
{
    if (id >= modules_.size())
        panic("Program::module: id %u out of range", id);
    return modules_[id];
}

const Behavior &
Program::behavior(BehaviorId id) const
{
    if (id >= behaviors_.size())
        panic("Program::behavior: id %u out of range", id);
    return behaviors_[id];
}

BlockId
Program::blockAt(uint64_t addr) const
{
    // by_addr_ is sorted by block start; find the last block whose start
    // is <= addr and check containment.
    auto it = std::upper_bound(
        by_addr_.begin(), by_addr_.end(), addr,
        [this](uint64_t a, BlockId id) { return a < blocks_[id].start; });
    if (it == by_addr_.begin())
        return kNoBlock;
    BlockId candidate = *(it - 1);
    return blocks_[candidate].contains(addr) ? candidate : kNoBlock;
}

FuncId
Program::functionAt(uint64_t addr) const
{
    BlockId b = blockAt(addr);
    return b == kNoBlock ? kNoFunc : blocks_[b].func;
}

ModuleId
Program::moduleAt(uint64_t addr) const
{
    for (const auto &mod : modules_)
        if (addr >= mod.base && addr < mod.base + mod.size)
            return mod.id;
    return static_cast<ModuleId>(modules_.size());
}

uint64_t
Program::staticInstrCount() const
{
    uint64_t n = 0;
    for (const auto &b : blocks_)
        n += b.instrs.size();
    return n;
}

} // namespace hbbp
