/**
 * @file
 * Umbrella header: the full public API of the HBBP library.
 *
 * Include this (and link against the `hbbp` CMake target) to use the
 * library; see examples/quickstart.cpp for the canonical walkthrough.
 */

#ifndef HBBP_HBBP_HH
#define HBBP_HBBP_HH

// Foundations.
#include "support/histogram.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "support/table.hh"

// The synthetic ISA (XED stand-in).
#include "isa/encoding.hh"
#include "isa/instruction.hh"
#include "isa/mnemonic.hh"
#include "isa/taxonomy.hh"

// Program representation and disassembly-driven block maps.
#include "program/block.hh"
#include "program/blockmap.hh"
#include "program/builder.hh"
#include "program/program.hh"

// Execution substrate.
#include "sim/engine.hh"
#include "sim/machine.hh"
#include "sim/observer.hh"

// PMU model.
#include "pmu/events.hh"
#include "pmu/lbr.hh"
#include "pmu/pmu.hh"

// Software instrumentation reference + overhead models.
#include "instr/instrumenter.hh"
#include "instr/overhead.hh"

// Collection.
#include "collect/collector.hh"
#include "collect/periods.hh"
#include "collect/profile.hh"

// Analysis (BBEC estimation, HBBP fusion, mixes, error metrics).
#include "analysis/analyzer.hh"
#include "analysis/bbec.hh"
#include "analysis/classifier.hh"
#include "analysis/error.hh"
#include "analysis/fdo.hh"
#include "analysis/mix.hh"
#include "analysis/report.hh"

// Machine learning (criteria search).
#include "ml/dataset.hh"
#include "ml/decision_tree.hh"
#include "ml/trainer.hh"

// Workload generators.
#include "workloads/clforward.hh"
#include "workloads/fitter.hh"
#include "workloads/kernelbench.hh"
#include "workloads/spec2006.hh"
#include "workloads/synthetic.hh"
#include "workloads/test40.hh"
#include "workloads/training.hh"
#include "workloads/workload.hh"

// The end-to-end tool.
#include "tools/profiler.hh"
#include "tools/registry.hh"

#endif // HBBP_HBBP_HH
