#include "support/table.hh"

#include <algorithm>

#include "support/logging.hh"

namespace hbbp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Left)
{
    if (headers_.empty())
        panic("TextTable requires at least one column");
}

void
TextTable::setAlign(size_t col, Align align)
{
    if (col >= aligns_.size())
        panic("TextTable::setAlign: column %zu out of range", col);
    aligns_[col] = align;
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("TextTable::addRow: got %zu cells, expected %zu",
              cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

size_t
TextTable::rowCount() const
{
    size_t n = 0;
    for (const auto &r : rows_)
        if (!r.empty())
            n++;
    return n;
}

std::vector<std::vector<std::string>>
TextTable::dataRows() const
{
    std::vector<std::vector<std::string>> rows;
    rows.reserve(rows_.size());
    for (const auto &r : rows_)
        if (!r.empty())
            rows.push_back(r);
    return rows;
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); i++)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (size_t i = 0; i < row.size(); i++)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto rule = [&]() {
        std::string line = "+";
        for (size_t w : widths)
            line += std::string(w + 2, '-') + "+";
        line += "\n";
        return line;
    };

    auto emit_row = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (size_t i = 0; i < cells.size(); i++) {
            size_t pad = widths[i] - cells[i].size();
            line += " ";
            if (aligns_[i] == Align::Right)
                line += std::string(pad, ' ') + cells[i];
            else
                line += cells[i] + std::string(pad, ' ');
            line += " |";
        }
        line += "\n";
        return line;
    };

    std::string out = rule();
    out += emit_row(headers_);
    out += rule();
    for (const auto &row : rows_) {
        if (row.empty())
            out += rule();
        else
            out += emit_row(row);
    }
    out += rule();
    return out;
}

std::string
TextTable::renderCsv() const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char c : cell) {
            if (c == '"')
                out += "\"\"";
            else
                out.push_back(c);
        }
        out += "\"";
        return out;
    };

    std::string out;
    for (size_t i = 0; i < headers_.size(); i++) {
        if (i)
            out += ",";
        out += quote(headers_[i]);
    }
    out += "\n";
    for (const auto &row : rows_) {
        if (row.empty())
            continue;
        for (size_t i = 0; i < row.size(); i++) {
            if (i)
                out += ",";
            out += quote(row[i]);
        }
        out += "\n";
    }
    return out;
}

} // namespace hbbp
