/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (branch outcomes, PMI skid,
 * LBR quirks) flows through Rng so that experiments are reproducible from
 * a single seed. The generator is xoshiro256**, which is fast and has
 * well-understood statistical quality.
 */

#ifndef HBBP_SUPPORT_RNG_HH
#define HBBP_SUPPORT_RNG_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hbbp {

/** Deterministic xoshiro256** random number generator. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Approximately normal variate via the sum of four uniforms
     * (fast, bounded tails, adequate for workload synthesis).
     */
    double nextGaussian(double mean, double stddev);

    /** Geometric variate: number of failures before first success. */
    uint64_t nextGeometric(double p);

    /** Fork an independent stream labelled by @p stream_id. */
    Rng fork(uint64_t stream_id) const;

  private:
    uint64_t s_[4];
};

/** splitmix64 step; also useful as a cheap deterministic hash. */
uint64_t splitmix64(uint64_t x);

/**
 * FNV-1a 64-bit hash — the repository's stable content hash. It is a
 * wire-compatibility contract: profile payload checksums (and thus
 * shard manifests and duplicate detection) hash with this on every
 * host, so there must be exactly one implementation.
 */
uint64_t fnv1a(const void *data, size_t len);

/** fnv1a() over a byte string (or a view into an mmap'd one). */
inline uint64_t
fnv1a(std::string_view bytes)
{
    return fnv1a(bytes.data(), bytes.size());
}

/** Deterministic 64-bit hash of an address (used for PMU quirk selection). */
inline uint64_t
hashAddr(uint64_t addr)
{
    return splitmix64(addr * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL);
}

} // namespace hbbp

#endif // HBBP_SUPPORT_RNG_HH
