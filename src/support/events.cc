#include "support/events.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "support/logging.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

namespace hbbp {
namespace events {

namespace {

uint64_t
wallMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/** The process-wide sink: one file, one mutex, flushed per line. */
struct Sink
{
    std::mutex mu;
    FILE *file = nullptr;
    std::string node;
};

Sink &
sink()
{
    static Sink *s = new Sink(); // leaked: outlive static dtors
    return *s;
}

// ------------------------------------------------------------------
// A minimal parser for the exact JSON this file writes: one flat
// object with number/string values plus one nested "fields" object
// of string values. Tolerant of key order, intolerant of damage.
// ------------------------------------------------------------------

struct Cursor
{
    const std::string &s;
    size_t i = 0;

    void skipWs()
    {
        while (i < s.size() &&
               (s[i] == ' ' || s[i] == '\t' || s[i] == '\r'))
            i++;
    }
    bool eat(char c)
    {
        skipWs();
        if (i >= s.size() || s[i] != c)
            return false;
        i++;
        return true;
    }
    bool peek(char c)
    {
        skipWs();
        return i < s.size() && s[i] == c;
    }
};

bool
parseJsonString(Cursor &c, std::string *out)
{
    if (!c.eat('"'))
        return false;
    out->clear();
    while (c.i < c.s.size()) {
        char ch = c.s[c.i++];
        if (ch == '"')
            return true;
        if (ch == '\\') {
            if (c.i >= c.s.size())
                return false;
            char esc = c.s[c.i++];
            switch (esc) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'n': out->push_back('\n'); break;
              case 't': out->push_back('\t'); break;
              case 'r': out->push_back('\r'); break;
              case 'u': {
                if (c.i + 4 > c.s.size())
                    return false;
                unsigned v = 0;
                for (int k = 0; k < 4; k++) {
                    char h = c.s[c.i++];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // The writer only escapes control bytes.
                out->push_back(static_cast<char>(v & 0xff));
                break;
              }
              default:
                return false;
            }
        } else {
            out->push_back(ch);
        }
    }
    return false;
}

bool
parseJsonNumber(Cursor &c, uint64_t *out)
{
    c.skipWs();
    size_t start = c.i;
    while (c.i < c.s.size() && c.s[c.i] >= '0' && c.s[c.i] <= '9')
        c.i++;
    if (c.i == start)
        return false;
    errno = 0;
    *out = std::strtoull(c.s.substr(start, c.i - start).c_str(),
                         nullptr, 10);
    return errno != ERANGE;
}

} // namespace

const char *
name(Level level)
{
    switch (level) {
      case Level::Info: return "info";
      case Level::Warn: return "warn";
      case Level::Error: return "error";
      default:
        panic("name: bad event Level %d", static_cast<int>(level));
    }
}

bool
levelFromName(const std::string &s, Level *out)
{
    if (s == "info")
        *out = Level::Info;
    else if (s == "warn")
        *out = Level::Warn;
    else if (s == "error")
        *out = Level::Error;
    else
        return false;
    return true;
}

std::string
Event::field(const std::string &key) const
{
    for (const auto &[k, v] : fields)
        if (k == key)
            return v;
    return "";
}

std::string
Event::render() const
{
    std::string out = format("%llu %-5s %s node=%s",
                             static_cast<unsigned long long>(ts_ms),
                             name(level), code.c_str(), node.c_str());
    for (const auto &[k, v] : fields)
        out += " " + k + "=" + v;
    return out;
}

void
openLog(const std::string &path, const std::string &node)
{
    if (path.empty())
        return;
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.file)
        std::fclose(s.file);
    s.file = std::fopen(path.c_str(), "ab");
    if (!s.file)
        fatal("cannot open event log '%s': %s", path.c_str(),
              std::strerror(errno));
    s.node = node;
}

bool
logActive()
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.file != nullptr;
}

void
emit(Level level, const std::string &code,
     std::initializer_list<std::pair<std::string, std::string>> fields)
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.file)
        return;
    static telemetry::Counter &m_events =
        telemetry::counter("hbbp_events_total");
    m_events.add();
    std::string line = "{\"ts_ms\":" + std::to_string(wallMs()) +
                       ",\"level\":\"" + name(level) + "\",\"code\":\"" +
                       jsonEscape(code) + "\",\"node\":\"" +
                       jsonEscape(s.node) + "\",\"fields\":{";
    bool first = true;
    for (const auto &[k, v] : fields) {
        if (!first)
            line += ",";
        first = false;
        line += "\"" + jsonEscape(k) + "\":\"" + jsonEscape(v) + "\"";
    }
    line += "}}\n";
    std::fwrite(line.data(), 1, line.size(), s.file);
    std::fflush(s.file);
}

bool
parseEventLine(const std::string &line, Event *out, std::string *why)
{
    Cursor c{line};
    *out = Event();
    bool have_ts = false, have_code = false, have_level = false;
    if (!c.eat('{')) {
        *why = "record does not start with '{'";
        return false;
    }
    bool first = true;
    while (!c.peek('}')) {
        if (!first && !c.eat(',')) {
            *why = "missing ',' between members";
            return false;
        }
        first = false;
        std::string key;
        if (!parseJsonString(c, &key) || !c.eat(':')) {
            *why = "malformed member key";
            return false;
        }
        if (key == "ts_ms") {
            if (!parseJsonNumber(c, &out->ts_ms)) {
                *why = "malformed ts_ms";
                return false;
            }
            have_ts = true;
        } else if (key == "level") {
            std::string level_name;
            if (!parseJsonString(c, &level_name) ||
                !levelFromName(level_name, &out->level)) {
                *why = "malformed level";
                return false;
            }
            have_level = true;
        } else if (key == "code") {
            if (!parseJsonString(c, &out->code)) {
                *why = "malformed code";
                return false;
            }
            have_code = true;
        } else if (key == "node") {
            if (!parseJsonString(c, &out->node)) {
                *why = "malformed node";
                return false;
            }
        } else if (key == "fields") {
            if (!c.eat('{')) {
                *why = "malformed fields object";
                return false;
            }
            bool ffirst = true;
            while (!c.peek('}')) {
                if (!ffirst && !c.eat(',')) {
                    *why = "missing ',' in fields";
                    return false;
                }
                ffirst = false;
                std::string fk, fv;
                if (!parseJsonString(c, &fk) || !c.eat(':') ||
                    !parseJsonString(c, &fv)) {
                    *why = "malformed field member";
                    return false;
                }
                out->fields.emplace_back(std::move(fk), std::move(fv));
            }
            c.eat('}');
        } else {
            // Unknown members are skipped if string/number shaped —
            // future writers may add them.
            std::string ignored;
            uint64_t ignored_n;
            if (!parseJsonString(c, &ignored) &&
                !parseJsonNumber(c, &ignored_n)) {
                *why = format("unparseable member '%s'", key.c_str());
                return false;
            }
        }
    }
    if (!c.eat('}')) {
        *why = "record does not end with '}'";
        return false;
    }
    if (!have_ts || !have_code || !have_level) {
        *why = "record misses ts_ms, level or code";
        return false;
    }
    return true;
}

bool
loadEvents(const std::string &path, const std::string &code,
           uint64_t since_ms, std::vector<Event> *out, std::string *why)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        *why = format("cannot open '%s': %s", path.c_str(),
                      std::strerror(errno));
        return false;
    }
    std::string content;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        content.append(buf, got);
    std::fclose(f);

    size_t lineno = 0;
    for (const std::string &line : split(content, '\n')) {
        lineno++;
        if (line.empty())
            continue;
        Event e;
        std::string parse_why;
        if (!parseEventLine(line, &e, &parse_why)) {
            *why = format("%s:%zu: %s", path.c_str(), lineno,
                          parse_why.c_str());
            return false;
        }
        if (!code.empty() && e.code != code)
            continue;
        if (e.ts_ms < since_ms)
            continue;
        out->push_back(std::move(e));
    }
    return true;
}

// ---------------------------------------------------------------------
// StallWatchdog.
// ---------------------------------------------------------------------

StallWatchdog::~StallWatchdog()
{
    stop();
}

void
StallWatchdog::start(double stall_warn_s)
{
    if (stall_warn_s <= 0.0 || thread_.joinable())
        return;
    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this, stall_warn_s] { watch(stall_warn_s); });
}

void
StallWatchdog::stop()
{
    if (!thread_.joinable())
        return;
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
}

void
StallWatchdog::watch(double stall_warn_s)
{
    static telemetry::Counter &m_stalls =
        telemetry::counter("hbbp_watchdog_stalls_total");
    bool flagged[telemetry::kStageCount] = {};
    while (!stop_.load(std::memory_order_relaxed)) {
        int64_t now = telemetry::healthNowMs();
        for (const telemetry::StageHealth &h :
             telemetry::stageHealth(now)) {
            size_t idx = static_cast<size_t>(h.stage);
            if (!h.loop)
                continue;
            if (h.age_s <= stall_warn_s) {
                flagged[idx] = false; // Recovered: re-arm.
                continue;
            }
            if (flagged[idx])
                continue; // One event per stall episode.
            flagged[idx] = true;
            m_stalls.add();
            emit(Level::Error, "watchdog_stall",
                 {{"stage", telemetry::name(h.stage)},
                  {"age_s", format("%.3f", h.age_s)},
                  {"threshold_s", format("%.3f", stall_warn_s)}});
            warn("watchdog: stage %s has not progressed for %.1fs "
                 "(threshold %.1fs)",
                 telemetry::name(h.stage), h.age_s, stall_warn_s);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
}

} // namespace events
} // namespace hbbp
