/**
 * @file
 * Vectorized, bit-stable span math with runtime SIMD dispatch.
 *
 * The fold/merge hot path (per-host partial folds in fleet/merge and
 * fleet/aggregate, the Counter math behind mix analysis) is span
 * arithmetic over doubles and u64 feature counters. This layer gives it
 * one set of kernels — sum / dot / saxpy / scale / scaledCopy / max /
 * saturating-u64-accumulate — with scalar, AVX2 and AVX-512 backends
 * compiled in guarded translation units (vectorops_avx2.cc is built
 * with -mavx2 and compiles to a stub table elsewhere; same for AVX-512
 * and the NEON seam) and selected once at startup by CPUID.
 *
 * Two contracts every backend honors:
 *
 *  1. **Bit stability.** Reductions (sum, dot, max) are defined as
 *     eight independent stride-8 accumulator lanes folded by a fixed
 *     reduction tree, and element-wise kernels perform exactly one
 *     IEEE operation per element (no FMA contraction — the TUs are
 *     built with -ffp-contract=off). Every backend therefore produces
 *     the *same bits* for the same input, so forcing the dispatch is a
 *     test knob, never a results change.
 *
 *  2. **Determinism across platforms.** Callers that sum unordered
 *     containers (Counter<Key>) gather values in sorted-key order
 *     first; combined with the fixed lane/tree order above, mix
 *     percentages no longer depend on libstdc++ vs libc++ hash
 *     iteration order.
 *
 * Dispatch policy: AVX2 when the CPU has it, otherwise scalar.
 * AVX-512 is compiled and selectable but *not* preferred by default —
 * on many parts the 512-bit frequency penalty erases the width win for
 * short spans (measure first; the BENCH_scale_*.json trajectory records
 * the dispatch backend for exactly this reason). Override with the
 * HBBP_VECTOR_BACKEND environment variable (scalar | avx2 | avx512 |
 * neon); an unusable request warns once and falls back.
 */

#ifndef HBBP_SUPPORT_VECTOROPS_HH
#define HBBP_SUPPORT_VECTOROPS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hbbp {

/** A SIMD dispatch target. */
enum class VectorBackend : uint8_t {
    Scalar,
    Avx2,
    Avx512,
    Neon,
};

/** Printable name of a backend ("scalar", "avx2", ...). */
const char *name(VectorBackend backend);

/**
 * One backend's kernel table. All pointers are non-null in a usable
 * table; spans may be empty, length-1, or arbitrarily (un)aligned.
 */
struct VectorOpsTable
{
    /** Bit-stable 8-lane sum of x[0..n). 0.0 when n == 0. */
    double (*sum)(const double *x, size_t n);
    /** Bit-stable 8-lane dot product of x and y. 0.0 when n == 0. */
    double (*dot)(const double *x, const double *y, size_t n);
    /** y[i] += a * x[i] (one mul + one add per element, no FMA). */
    void (*saxpy)(double *y, double a, const double *x, size_t n);
    /** x[i] *= a. */
    void (*scale)(double *x, double a, size_t n);
    /** dst[i] = a * src[i]; dst and src must not overlap. */
    void (*scaledCopy)(double *dst, const double *src, double a,
                       size_t n);
    /**
     * Largest element under the lanewise rule acc = acc > x ? acc : x
     * (ties and NaN resolve toward the newer element, matching the
     * hardware maxpd semantics). -HUGE_VAL when n == 0.
     */
    double (*maxValue)(const double *x, size_t n);
    /**
     * dst[i] = saturatingAdd(dst[i], src[i]): lanes that would wrap
     * past UINT64_MAX clamp there instead. Returns the number of
     * saturated lanes.
     */
    size_t (*accumulateSatU64)(uint64_t *dst, const uint64_t *src,
                               size_t n);
    /**
     * Histogram bucket assignment over strictly-ascending upper
     * bounds (le semantics, matching telemetry::Histogram): for
     * i < nbounds, counts[i] = #{v in x[0..n) : v <= bounds[i] and
     * (i == 0 or v > bounds[i-1])}; counts[nbounds] = #{v : v >
     * every bound}. counts has nbounds+1 slots and is overwritten.
     * Defined as one count-of-(v <= bound) pass per bound with the
     * per-bucket counts taken as adjacent differences — the shape
     * that vectorizes as a wide compare + mask popcount, where the
     * per-value binary search does not. Counts are exact integers,
     * so every backend is bit-identical by construction; the
     * property tests assert it anyway.
     */
    void (*bucketCounts)(const uint64_t *x, size_t n,
                         const uint64_t *bounds, size_t nbounds,
                         uint64_t *counts);
};

/**
 * The backend's kernel table, or nullptr when its translation unit was
 * compiled without the ISA (the guarded-TU stub).
 */
const VectorOpsTable *vectorOpsTable(VectorBackend backend);

/** True when the backend's kernels were compiled into this binary. */
bool vectorBackendCompiled(VectorBackend backend);

/** True when the backend is compiled *and* this CPU can execute it. */
bool vectorBackendUsable(VectorBackend backend);

/** Every usable backend, scalar first. */
std::vector<VectorBackend> usableVectorBackends();

/**
 * The backend dispatch currently routes through. Resolved once on
 * first use: HBBP_VECTOR_BACKEND if set and usable (an unusable
 * request warns once and falls back), otherwise AVX2 when the CPU has
 * it, otherwise scalar.
 */
VectorBackend activeVectorBackend();

/**
 * Force dispatch to @p backend (the test/bench seam; benches sweep it
 * to record scalar-vs-SIMD fold numbers). Returns false with *@p why
 * set when the backend is not usable on this machine — dispatch is
 * left unchanged.
 */
bool setVectorBackend(VectorBackend backend, std::string *why = nullptr);

namespace vecops {

/** Dispatched VectorOpsTable::sum. */
double sum(const double *x, size_t n);
/** Dispatched sum over a vector. */
double sum(const std::vector<double> &x);
/** Dispatched VectorOpsTable::dot. */
double dot(const double *x, const double *y, size_t n);
/** Dispatched VectorOpsTable::saxpy. */
void saxpy(double *y, double a, const double *x, size_t n);
/** Dispatched VectorOpsTable::scale. */
void scale(double *x, double a, size_t n);
/** Dispatched VectorOpsTable::scaledCopy. */
void scaledCopy(double *dst, const double *src, double a, size_t n);
/** Dispatched VectorOpsTable::maxValue. */
double maxValue(const double *x, size_t n);
/** Dispatched VectorOpsTable::accumulateSatU64. */
size_t accumulateSatU64(uint64_t *dst, const uint64_t *src, size_t n);
/** Dispatched VectorOpsTable::bucketCounts. */
void bucketCounts(const uint64_t *x, size_t n, const uint64_t *bounds,
                  size_t nbounds, uint64_t *counts);

/**
 * Scalar saturating u64 add: a + b, clamped to UINT64_MAX on wrap.
 * *@p saturated (when non-null) is set to true on a clamp and left
 * untouched otherwise, so one flag can watch a whole fold.
 */
uint64_t addSatU64(uint64_t a, uint64_t b, bool *saturated = nullptr);

} // namespace vecops

} // namespace hbbp

#endif // HBBP_SUPPORT_VECTOROPS_HH
