/**
 * AVX2 vectorops backend — a guarded translation unit.
 *
 * Built with -mavx2 -ffp-contract=off when the compiler supports it
 * (see the vectorops stanza in the top-level CMakeLists.txt); compiles
 * to a nullptr-returning stub otherwise, so the dispatcher links
 * unconditionally and simply never offers the backend. Kernels are
 * only ever *called* after the CPUID check in the dispatcher.
 *
 * Bit-stability contract: reductions keep the scalar reference's eight
 * stride-8 accumulator lanes — two 4-wide vectors here — and fold them
 * with the same fixed tree; element-wise kernels use explicit mul/add
 * (never FMA). Loads are unaligned (vmovupd): spans need no alignment,
 * and tails fall back to the scalar lane updates.
 */

#include "support/vectorops_tables.hh"

#if defined(__AVX2__)

#include <cmath>
#include <immintrin.h>

namespace hbbp::detail {

namespace {

double
reduceLanes(const double lane[8])
{
    return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
           ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

double
avx2Sum(const double *x, size_t n)
{
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8) {
        a0 = _mm256_add_pd(a0, _mm256_loadu_pd(x + i));
        a1 = _mm256_add_pd(a1, _mm256_loadu_pd(x + i + 4));
    }
    double lane[8];
    _mm256_storeu_pd(lane, a0);
    _mm256_storeu_pd(lane + 4, a1);
    for (size_t i = nb; i < n; i++)
        lane[i - nb] += x[i];
    return reduceLanes(lane);
}

double
avx2Dot(const double *x, const double *y, size_t n)
{
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8) {
        a0 = _mm256_add_pd(
            a0, _mm256_mul_pd(_mm256_loadu_pd(x + i),
                              _mm256_loadu_pd(y + i)));
        a1 = _mm256_add_pd(
            a1, _mm256_mul_pd(_mm256_loadu_pd(x + i + 4),
                              _mm256_loadu_pd(y + i + 4)));
    }
    double lane[8];
    _mm256_storeu_pd(lane, a0);
    _mm256_storeu_pd(lane + 4, a1);
    for (size_t i = nb; i < n; i++)
        lane[i - nb] += x[i] * y[i];
    return reduceLanes(lane);
}

void
avx2Saxpy(double *y, double a, const double *x, size_t n)
{
    __m256d va = _mm256_set1_pd(a);
    size_t nb = n & ~static_cast<size_t>(3);
    for (size_t i = 0; i < nb; i += 4)
        _mm256_storeu_pd(
            y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                                 _mm256_mul_pd(va,
                                               _mm256_loadu_pd(x + i))));
    for (size_t i = nb; i < n; i++)
        y[i] = y[i] + a * x[i];
}

void
avx2Scale(double *x, double a, size_t n)
{
    __m256d va = _mm256_set1_pd(a);
    size_t nb = n & ~static_cast<size_t>(3);
    for (size_t i = 0; i < nb; i += 4)
        _mm256_storeu_pd(
            x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
    for (size_t i = nb; i < n; i++)
        x[i] *= a;
}

void
avx2ScaledCopy(double *dst, const double *src, double a, size_t n)
{
    __m256d va = _mm256_set1_pd(a);
    size_t nb = n & ~static_cast<size_t>(3);
    for (size_t i = 0; i < nb; i += 4)
        _mm256_storeu_pd(
            dst + i, _mm256_mul_pd(va, _mm256_loadu_pd(src + i)));
    for (size_t i = nb; i < n; i++)
        dst[i] = a * src[i];
}

double
avx2Max(const double *x, size_t n)
{
    // vmaxpd(acc, v) == acc > v ? acc : v — exactly the scalar lane
    // rule, including the toward-the-newer-element tie/NaN behavior.
    __m256d m0 = _mm256_set1_pd(-HUGE_VAL);
    __m256d m1 = _mm256_set1_pd(-HUGE_VAL);
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8) {
        m0 = _mm256_max_pd(m0, _mm256_loadu_pd(x + i));
        m1 = _mm256_max_pd(m1, _mm256_loadu_pd(x + i + 4));
    }
    double lane[8];
    _mm256_storeu_pd(lane, m0);
    _mm256_storeu_pd(lane + 4, m1);
    for (size_t i = nb; i < n; i++)
        lane[i - nb] = lane[i - nb] > x[i] ? lane[i - nb] : x[i];
    auto op = [](double u, double v) { return u > v ? u : v; };
    return op(op(op(lane[0], lane[1]), op(lane[2], lane[3])),
              op(op(lane[4], lane[5]), op(lane[6], lane[7])));
}

size_t
avx2AccumulateSatU64(uint64_t *dst, const uint64_t *src, size_t n)
{
    // AVX2 has no unsigned 64-bit compare; bias both sides by 2^63 so
    // the signed compare orders them as unsigned. A sum that wrapped
    // is strictly below the addend, and OR-ing the all-ones compare
    // mask into the sum clamps exactly those lanes to UINT64_MAX.
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    size_t saturated = 0;
    size_t nb = n & ~static_cast<size_t>(3);
    for (size_t i = 0; i < nb; i += 4) {
        __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        __m256i r = _mm256_add_epi64(d, s);
        __m256i wrapped = _mm256_cmpgt_epi64(
            _mm256_xor_si256(s, bias), _mm256_xor_si256(r, bias));
        r = _mm256_or_si256(r, wrapped);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), r);
        saturated += static_cast<size_t>(__builtin_popcount(
            _mm256_movemask_pd(_mm256_castsi256_pd(wrapped))));
    }
    for (size_t i = nb; i < n; i++) {
        uint64_t r = dst[i] + src[i];
        if (r < src[i]) {
            r = UINT64_MAX;
            saturated++;
        }
        dst[i] = r;
    }
    return saturated;
}

void
avx2BucketCounts(const uint64_t *x, size_t n, const uint64_t *bounds,
                 size_t nbounds, uint64_t *counts)
{
    // One v <= bound sweep per bound: AVX2 has only signed 64-bit
    // compares, so both sides get the 2^63 bias and v <= b becomes
    // !(v' > b') — four lanes per popcount of the inverted movemask.
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    size_t nb = n & ~static_cast<size_t>(3);
    uint64_t prev_le = 0;
    for (size_t b = 0; b < nbounds; b++) {
        __m256i vb = _mm256_xor_si256(
            _mm256_set1_epi64x(static_cast<long long>(bounds[b])),
            bias);
        uint64_t le = 0;
        for (size_t i = 0; i < nb; i += 4) {
            __m256i v = _mm256_xor_si256(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(x + i)),
                bias);
            int gt = _mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpgt_epi64(v, vb)));
            le += 4 - static_cast<unsigned>(__builtin_popcount(gt));
        }
        for (size_t i = nb; i < n; i++)
            le += x[i] <= bounds[b] ? 1 : 0;
        counts[b] = le - prev_le;
        prev_le = le;
    }
    counts[nbounds] = n - prev_le;
}

constexpr VectorOpsTable kAvx2Table = {
    avx2Sum,  avx2Dot, avx2Saxpy,
    avx2Scale, avx2ScaledCopy, avx2Max,
    avx2AccumulateSatU64, avx2BucketCounts,
};

} // namespace

const VectorOpsTable *
vectorOpsAvx2Table()
{
    return &kAvx2Table;
}

} // namespace hbbp::detail

#else // !__AVX2__ — the stub half of the guarded TU.

namespace hbbp::detail {

const VectorOpsTable *
vectorOpsAvx2Table()
{
    return nullptr;
}

} // namespace hbbp::detail

#endif
