/**
 * @file
 * A small fixed-size worker pool for fan-out parallelism.
 *
 * The fleet subsystem (sharded collection, batch drivers) needs to run
 * many independent simulations concurrently. ThreadPool keeps N workers
 * alive for the lifetime of a fan-out; parallelFor() is the primary
 * entry point and preserves determinism by indexing tasks — callers
 * write results into slot [i], so the output never depends on
 * scheduling order.
 */

#ifndef HBBP_SUPPORT_THREAD_POOL_HH
#define HBBP_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hbbp {

/** Fixed-size worker pool; see file comment. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to >= 1). */
    explicit ThreadPool(unsigned threads);

    /** Waits for queued work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Queue a task for execution. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /** Number of worker threads. */
    unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

    /** Sensible default parallelism for this host (>= 1). */
    static unsigned defaultThreadCount();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_done_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    size_t in_flight_ = 0;
    bool stopping_ = false;
};

/**
 * Run fn(0) .. fn(count - 1) across @p jobs workers and block until all
 * complete. jobs <= 1 runs inline on the calling thread; results must be
 * written into per-index slots so the outcome is identical either way.
 */
void parallelFor(size_t count, unsigned jobs,
                 const std::function<void(size_t)> &fn);

} // namespace hbbp

#endif // HBBP_SUPPORT_THREAD_POOL_HH
