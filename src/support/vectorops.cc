/**
 * Scalar reference kernels and the runtime dispatcher.
 *
 * The scalar kernels below are the *definition* of every operation:
 * the SIMD backends must reproduce their bits exactly (see the lane
 * discipline in vectorops.hh). This TU is compiled with
 * -ffp-contract=off like the SIMD TUs, so a host compiler with FMA
 * cannot contract the reference into different roundings.
 */

#include "support/vectorops.hh"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "support/logging.hh"
#include "support/vectorops_tables.hh"

namespace hbbp {

namespace {

// ---------------------------------------------------------------------
// Scalar reference kernels. Reductions run 8 independent stride-8
// lanes and fold them with a fixed tree; every backend mirrors this
// structure so the bits never depend on the dispatch decision.
// ---------------------------------------------------------------------

double
reduceLanes(const double lane[8])
{
    return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
           ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

double
scalarSum(const double *x, size_t n)
{
    double lane[8] = {};
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8)
        for (size_t j = 0; j < 8; j++)
            lane[j] += x[i + j];
    for (size_t i = nb; i < n; i++)
        lane[i - nb] += x[i];
    return reduceLanes(lane);
}

double
scalarDot(const double *x, const double *y, size_t n)
{
    double lane[8] = {};
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8)
        for (size_t j = 0; j < 8; j++)
            lane[j] += x[i + j] * y[i + j];
    for (size_t i = nb; i < n; i++)
        lane[i - nb] += x[i] * y[i];
    return reduceLanes(lane);
}

void
scalarSaxpy(double *y, double a, const double *x, size_t n)
{
    for (size_t i = 0; i < n; i++)
        y[i] = y[i] + a * x[i];
}

void
scalarScale(double *x, double a, size_t n)
{
    for (size_t i = 0; i < n; i++)
        x[i] *= a;
}

void
scalarScaledCopy(double *dst, const double *src, double a, size_t n)
{
    for (size_t i = 0; i < n; i++)
        dst[i] = a * src[i];
}

double
scalarMax(const double *x, size_t n)
{
    double lane[8];
    for (double &l : lane)
        l = -HUGE_VAL;
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8)
        for (size_t j = 0; j < 8; j++)
            lane[j] = lane[j] > x[i + j] ? lane[j] : x[i + j];
    for (size_t i = nb; i < n; i++)
        lane[i - nb] = lane[i - nb] > x[i] ? lane[i - nb] : x[i];
    auto op = [](double u, double v) { return u > v ? u : v; };
    return op(op(op(lane[0], lane[1]), op(lane[2], lane[3])),
              op(op(lane[4], lane[5]), op(lane[6], lane[7])));
}

size_t
scalarAccumulateSatU64(uint64_t *dst, const uint64_t *src, size_t n)
{
    size_t saturated = 0;
    for (size_t i = 0; i < n; i++) {
        uint64_t r = dst[i] + src[i];
        if (r < src[i]) {
            r = UINT64_MAX;
            saturated++;
        }
        dst[i] = r;
    }
    return saturated;
}

void
scalarBucketCounts(const uint64_t *x, size_t n, const uint64_t *bounds,
                   size_t nbounds, uint64_t *counts)
{
    uint64_t prev_le = 0;
    for (size_t b = 0; b < nbounds; b++) {
        uint64_t le = 0;
        for (size_t i = 0; i < n; i++)
            le += x[i] <= bounds[b] ? 1 : 0;
        counts[b] = le - prev_le;
        prev_le = le;
    }
    counts[nbounds] = n - prev_le;
}

constexpr VectorOpsTable kScalarTable = {
    scalarSum,  scalarDot, scalarSaxpy,
    scalarScale, scalarScaledCopy, scalarMax,
    scalarAccumulateSatU64, scalarBucketCounts,
};

// ---------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------

bool
cpuSupports(VectorBackend backend)
{
    switch (backend) {
      case VectorBackend::Scalar:
        return true;
#if defined(__x86_64__) || defined(__i386__)
      case VectorBackend::Avx2:
        return __builtin_cpu_supports("avx2") != 0;
      case VectorBackend::Avx512:
        return __builtin_cpu_supports("avx512f") != 0;
      case VectorBackend::Neon:
        return false;
#elif defined(__aarch64__)
      case VectorBackend::Avx2:
      case VectorBackend::Avx512:
        return false;
      case VectorBackend::Neon:
        return true;
#else
      case VectorBackend::Avx2:
      case VectorBackend::Avx512:
      case VectorBackend::Neon:
        return false;
#endif
      default:
        return false;
    }
}

/** Dispatch state: the active table and its backend tag. */
std::atomic<const VectorOpsTable *> g_table{nullptr};
std::atomic<VectorBackend> g_backend{VectorBackend::Scalar};
std::once_flag g_init_once;

bool
parseBackendName(const char *s, VectorBackend *out)
{
    if (std::strcmp(s, "scalar") == 0)
        *out = VectorBackend::Scalar;
    else if (std::strcmp(s, "avx2") == 0)
        *out = VectorBackend::Avx2;
    else if (std::strcmp(s, "avx512") == 0)
        *out = VectorBackend::Avx512;
    else if (std::strcmp(s, "neon") == 0)
        *out = VectorBackend::Neon;
    else
        return false;
    return true;
}

/**
 * Default policy: the widest usable backend — AVX-512, then AVX2,
 * then NEON, then scalar. The BENCH_scale_*.json trajectory shows
 * AVX-512 beating AVX2 on the fold kernels with no frequency cliff on
 * these span lengths, and the bit-stability contract makes the flip
 * results-neutral by construction; check_bench.py's simd_speedup
 * floor guards the preference on every CI runner. Any choice stays
 * one HBBP_VECTOR_BACKEND= away.
 */
VectorBackend
defaultBackend()
{
    if (vectorBackendUsable(VectorBackend::Avx512))
        return VectorBackend::Avx512;
    if (vectorBackendUsable(VectorBackend::Avx2))
        return VectorBackend::Avx2;
    if (vectorBackendUsable(VectorBackend::Neon))
        return VectorBackend::Neon;
    return VectorBackend::Scalar;
}

void
initDispatch()
{
    VectorBackend chosen = defaultBackend();
    if (const char *env = std::getenv("HBBP_VECTOR_BACKEND")) {
        VectorBackend requested;
        if (!parseBackendName(env, &requested)) {
            warn("HBBP_VECTOR_BACKEND='%s' is not a backend name "
                 "(scalar|avx2|avx512|neon); using %s",
                 env, name(chosen));
        } else if (!vectorBackendUsable(requested)) {
            warn("HBBP_VECTOR_BACKEND=%s is %s in this build on this "
                 "CPU; falling back to %s",
                 name(requested),
                 vectorBackendCompiled(requested) ? "not executable"
                                                  : "not compiled",
                 name(chosen));
        } else {
            chosen = requested;
        }
    }
    g_backend.store(chosen, std::memory_order_relaxed);
    g_table.store(vectorOpsTable(chosen), std::memory_order_release);
}

const VectorOpsTable *
activeTable()
{
    const VectorOpsTable *t = g_table.load(std::memory_order_acquire);
    if (t)
        return t;
    std::call_once(g_init_once, initDispatch);
    return g_table.load(std::memory_order_acquire);
}

} // namespace

const char *
name(VectorBackend backend)
{
    switch (backend) {
      case VectorBackend::Scalar: return "scalar";
      case VectorBackend::Avx2: return "avx2";
      case VectorBackend::Avx512: return "avx512";
      case VectorBackend::Neon: return "neon";
      default:
        panic("name: bad VectorBackend %d", static_cast<int>(backend));
    }
}

const VectorOpsTable *
vectorOpsTable(VectorBackend backend)
{
    switch (backend) {
      case VectorBackend::Scalar: return &kScalarTable;
      case VectorBackend::Avx2: return detail::vectorOpsAvx2Table();
      case VectorBackend::Avx512: return detail::vectorOpsAvx512Table();
      case VectorBackend::Neon: return detail::vectorOpsNeonTable();
      default: return nullptr;
    }
}

bool
vectorBackendCompiled(VectorBackend backend)
{
    return vectorOpsTable(backend) != nullptr;
}

bool
vectorBackendUsable(VectorBackend backend)
{
    return vectorBackendCompiled(backend) && cpuSupports(backend);
}

std::vector<VectorBackend>
usableVectorBackends()
{
    std::vector<VectorBackend> out;
    for (VectorBackend b :
         {VectorBackend::Scalar, VectorBackend::Avx2,
          VectorBackend::Avx512, VectorBackend::Neon})
        if (vectorBackendUsable(b))
            out.push_back(b);
    return out;
}

VectorBackend
activeVectorBackend()
{
    activeTable(); // Ensure dispatch is resolved.
    return g_backend.load(std::memory_order_relaxed);
}

bool
setVectorBackend(VectorBackend backend, std::string *why)
{
    if (!vectorBackendUsable(backend)) {
        if (why)
            *why = format(
                "vector backend %s is %s in this build on this CPU",
                name(backend),
                vectorBackendCompiled(backend) ? "not executable"
                                               : "not compiled");
        return false;
    }
    g_backend.store(backend, std::memory_order_relaxed);
    g_table.store(vectorOpsTable(backend), std::memory_order_release);
    return true;
}

namespace vecops {

double
sum(const double *x, size_t n)
{
    return activeTable()->sum(x, n);
}

double
sum(const std::vector<double> &x)
{
    return activeTable()->sum(x.data(), x.size());
}

double
dot(const double *x, const double *y, size_t n)
{
    return activeTable()->dot(x, y, n);
}

void
saxpy(double *y, double a, const double *x, size_t n)
{
    activeTable()->saxpy(y, a, x, n);
}

void
scale(double *x, double a, size_t n)
{
    activeTable()->scale(x, a, n);
}

void
scaledCopy(double *dst, const double *src, double a, size_t n)
{
    activeTable()->scaledCopy(dst, src, a, n);
}

double
maxValue(const double *x, size_t n)
{
    return activeTable()->maxValue(x, n);
}

size_t
accumulateSatU64(uint64_t *dst, const uint64_t *src, size_t n)
{
    return activeTable()->accumulateSatU64(dst, src, n);
}

void
bucketCounts(const uint64_t *x, size_t n, const uint64_t *bounds,
             size_t nbounds, uint64_t *counts)
{
    activeTable()->bucketCounts(x, n, bounds, nbounds, counts);
}

uint64_t
addSatU64(uint64_t a, uint64_t b, bool *saturated)
{
    uint64_t r = a + b;
    if (r < b) {
        if (saturated)
            *saturated = true;
        return UINT64_MAX;
    }
    return r;
}

} // namespace vecops

} // namespace hbbp
