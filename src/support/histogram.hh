/**
 * @file
 * Generic keyed counters.
 *
 * Counter<Key> is the workhorse container for instruction mixes and basic
 * block execution counts: a hash map from key to double with convenience
 * arithmetic (scaling, merging, normalized views, top-N extraction).
 */

#ifndef HBBP_SUPPORT_HISTOGRAM_HH
#define HBBP_SUPPORT_HISTOGRAM_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/vectorops.hh"

namespace hbbp {

/** A keyed counter with double-valued weights. */
template <typename Key>
class Counter
{
  public:
    using Map = std::unordered_map<Key, double>;

    /** Add @p weight (default 1) to @p key. */
    void
    add(const Key &key, double weight = 1.0)
    {
        values_[key] += weight;
    }

    /** Value for @p key; 0 when absent. */
    double
    get(const Key &key) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? 0.0 : it->second;
    }

    /** True when @p key has been recorded. */
    bool
    contains(const Key &key) const
    {
        return values_.find(key) != values_.end();
    }

    /**
     * Sum of all values, accumulated in sorted-key order through the
     * bit-stable vecops reduction. Summing in unordered_map iteration
     * order would make the result depend on the hash table's bucket
     * layout — i.e. on the standard library, insertion history, and
     * key type — which leaked into mix percentages and aggregate
     * reports. Sorted-key gather plus the fixed-lane vecops::sum makes
     * total() a pure function of the {key, value} set.
     */
    double
    total() const
    {
        return vecops::sum(valuesByKey());
    }

    /** Number of distinct keys. */
    size_t size() const { return values_.size(); }

    /** True when no key has been recorded. */
    bool empty() const { return values_.empty(); }

    /**
     * Merge another counter into this one (scaled by @p scale).
     * Routed through the vecops element-wise kernels: keys present on
     * both sides are gathered into contiguous spans and folded with
     * saxpy (one mul + one add per element, no FMA — the exact
     * per-key expression old + v * scale the scalar loop computed),
     * new keys arrive via scaledCopy. Element-wise kernels touch each
     * lane independently, so the result is bit-identical whatever
     * order the other map is walked in and whatever backend dispatch
     * picked.
     */
    void
    merge(const Counter &other, double scale = 1.0)
    {
        std::vector<double *> dst;
        std::vector<double> dst_vals, src_vals;
        std::vector<const Key *> fresh_keys;
        std::vector<double> fresh_vals;
        dst.reserve(other.values_.size());
        for (const auto &[k, v] : other.values_) {
            auto it = values_.find(k);
            if (it != values_.end()) {
                dst.push_back(&it->second);
                dst_vals.push_back(it->second);
                src_vals.push_back(v);
            } else {
                fresh_keys.push_back(&k);
                fresh_vals.push_back(v);
            }
        }
        vecops::saxpy(dst_vals.data(), scale, src_vals.data(),
                      dst_vals.size());
        for (size_t i = 0; i < dst.size(); i++)
            *dst[i] = dst_vals[i];
        std::vector<double> scaled(fresh_vals.size());
        vecops::scaledCopy(scaled.data(), fresh_vals.data(), scale,
                           fresh_vals.size());
        for (size_t i = 0; i < fresh_keys.size(); i++)
            values_.emplace(*fresh_keys[i], scaled[i]);
    }

    /**
     * Multiply every value by @p scale, as one vecops::scale pass over
     * the gathered values (one IEEE multiply per element — the same
     * bits as the per-entry loop, on every backend).
     */
    void
    scale(double scale)
    {
        std::vector<double *> slots;
        std::vector<double> vals;
        slots.reserve(values_.size());
        vals.reserve(values_.size());
        for (auto &[k, v] : values_) {
            slots.push_back(&v);
            vals.push_back(v);
        }
        vecops::scale(vals.data(), scale, vals.size());
        for (size_t i = 0; i < slots.size(); i++)
            *slots[i] = vals[i];
    }

    /** Entries sorted by decreasing value, at most @p n of them. */
    std::vector<std::pair<Key, double>>
    top(size_t n) const
    {
        std::vector<std::pair<Key, double>> entries(values_.begin(),
                                                    values_.end());
        std::sort(entries.begin(), entries.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second != b.second)
                          return a.second > b.second;
                      return a.first < b.first; // deterministic tie-break
                  });
        if (entries.size() > n)
            entries.resize(n);
        return entries;
    }

    /** All entries sorted by decreasing value. */
    std::vector<std::pair<Key, double>>
    sorted() const
    {
        return top(values_.size());
    }

    /** All entries in increasing key order. */
    std::vector<std::pair<Key, double>>
    sortedByKey() const
    {
        std::vector<std::pair<Key, double>> entries(values_.begin(),
                                                    values_.end());
        std::sort(entries.begin(), entries.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        return entries;
    }

    /** All values in increasing key order (the deterministic span). */
    std::vector<double>
    valuesByKey() const
    {
        auto entries = sortedByKey();
        std::vector<double> values;
        values.reserve(entries.size());
        for (const auto &[k, v] : entries)
            values.push_back(v);
        return values;
    }

    /** Underlying map (read-only). */
    const Map &items() const { return values_; }

    /** Remove all entries. */
    void clear() { values_.clear(); }

  private:
    Map values_;
};

} // namespace hbbp

#endif // HBBP_SUPPORT_HISTOGRAM_HH
