/**
 * @file
 * Generic keyed counters.
 *
 * Counter<Key> is the workhorse container for instruction mixes and basic
 * block execution counts: a hash map from key to double with convenience
 * arithmetic (scaling, merging, normalized views, top-N extraction).
 */

#ifndef HBBP_SUPPORT_HISTOGRAM_HH
#define HBBP_SUPPORT_HISTOGRAM_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/vectorops.hh"

namespace hbbp {

/** A keyed counter with double-valued weights. */
template <typename Key>
class Counter
{
  public:
    using Map = std::unordered_map<Key, double>;

    /** Add @p weight (default 1) to @p key. */
    void
    add(const Key &key, double weight = 1.0)
    {
        values_[key] += weight;
    }

    /** Value for @p key; 0 when absent. */
    double
    get(const Key &key) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? 0.0 : it->second;
    }

    /** True when @p key has been recorded. */
    bool
    contains(const Key &key) const
    {
        return values_.find(key) != values_.end();
    }

    /**
     * Sum of all values, accumulated in sorted-key order through the
     * bit-stable vecops reduction. Summing in unordered_map iteration
     * order would make the result depend on the hash table's bucket
     * layout — i.e. on the standard library, insertion history, and
     * key type — which leaked into mix percentages and aggregate
     * reports. Sorted-key gather plus the fixed-lane vecops::sum makes
     * total() a pure function of the {key, value} set.
     */
    double
    total() const
    {
        return vecops::sum(valuesByKey());
    }

    /** Number of distinct keys. */
    size_t size() const { return values_.size(); }

    /** True when no key has been recorded. */
    bool empty() const { return values_.empty(); }

    /**
     * Merge another counter into this one (scaled by @p scale).
     * Deterministic regardless of iteration order: each key's update
     * is the single expression old + v * scale, so per-key results
     * cannot depend on the order the other map is walked in.
     */
    void
    merge(const Counter &other, double scale = 1.0)
    {
        for (const auto &[k, v] : other.values_)
            values_[k] += v * scale;
    }

    /** Multiply every value by @p scale. */
    void
    scale(double scale)
    {
        for (auto &[k, v] : values_)
            v *= scale;
    }

    /** Entries sorted by decreasing value, at most @p n of them. */
    std::vector<std::pair<Key, double>>
    top(size_t n) const
    {
        std::vector<std::pair<Key, double>> entries(values_.begin(),
                                                    values_.end());
        std::sort(entries.begin(), entries.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second != b.second)
                          return a.second > b.second;
                      return a.first < b.first; // deterministic tie-break
                  });
        if (entries.size() > n)
            entries.resize(n);
        return entries;
    }

    /** All entries sorted by decreasing value. */
    std::vector<std::pair<Key, double>>
    sorted() const
    {
        return top(values_.size());
    }

    /** All entries in increasing key order. */
    std::vector<std::pair<Key, double>>
    sortedByKey() const
    {
        std::vector<std::pair<Key, double>> entries(values_.begin(),
                                                    values_.end());
        std::sort(entries.begin(), entries.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        return entries;
    }

    /** All values in increasing key order (the deterministic span). */
    std::vector<double>
    valuesByKey() const
    {
        auto entries = sortedByKey();
        std::vector<double> values;
        values.reserve(entries.size());
        for (const auto &[k, v] : entries)
            values.push_back(v);
        return values;
    }

    /** Underlying map (read-only). */
    const Map &items() const { return values_; }

    /** Remove all entries. */
    void clear() { values_.clear(); }

  private:
    Map values_;
};

} // namespace hbbp

#endif // HBBP_SUPPORT_HISTOGRAM_HH
