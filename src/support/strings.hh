/**
 * @file
 * Small string helpers shared across the library.
 */

#ifndef HBBP_SUPPORT_STRINGS_HH
#define HBBP_SUPPORT_STRINGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hbbp {

/** Split @p s on @p sep; empty fields preserved. */
std::vector<std::string> split(const std::string &s, char sep);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Lower-case ASCII copy. */
std::string toLower(std::string s);

/** Upper-case ASCII copy. */
std::string toUpper(std::string s);

/** True when @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Format a count with thousands separators: 1234567 -> "1'234'567". */
std::string withSeparators(uint64_t value);

/** Format an address as 0x%016x. */
std::string hexAddr(uint64_t addr);

/** Format a double as a percentage string with @p decimals places. */
std::string percentStr(double fraction, int decimals = 1);

/**
 * Escape @p s for embedding inside a JSON string literal (quotes,
 * backslashes, control characters; no surrounding quotes added).
 */
std::string jsonEscape(const std::string &s);

/** Levenshtein edit distance between @p a and @p b. */
size_t editDistance(const std::string &a, const std::string &b);

/**
 * The candidates closest to @p needle by edit distance (case-
 * insensitive), nearest first, at most @p max_results of them.
 * Candidates further than @p max_distance edits are not suggested;
 * ties are broken by candidate order.
 */
std::vector<std::string>
closestMatches(const std::string &needle,
               const std::vector<std::string> &candidates,
               size_t max_results = 3, size_t max_distance = 4);

} // namespace hbbp

#endif // HBBP_SUPPORT_STRINGS_HH
