/**
 * AVX-512 vectorops backend — a guarded translation unit.
 *
 * Built with -mavx512f -ffp-contract=off when the compiler supports it;
 * a nullptr-returning stub otherwise. Selected only by explicit request
 * (HBBP_VECTOR_BACKEND=avx512 or setVectorBackend()) — never by the
 * default policy, because 512-bit execution can downclock the core and
 * erase the width win on short spans; the BENCH_scale_*.json trajectory
 * records per-backend numbers so the preference stays a measurement,
 * not a guess.
 *
 * Bit-stability contract: the scalar reference's eight stride-8 lanes
 * map onto one 8-wide vector, folded by the same fixed tree; no FMA.
 */

#include "support/vectorops_tables.hh"

#if defined(__AVX512F__)

#include <cmath>
#include <immintrin.h>

// GCC 12's -Wmaybe-uninitialized fires a false positive inside
// _mm512_set1_pd's builtin expansion (GCC PR105593).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace hbbp::detail {

namespace {

double
reduceLanes(const double lane[8])
{
    return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
           ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

double
avx512Sum(const double *x, size_t n)
{
    __m512d acc = _mm512_setzero_pd();
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8)
        acc = _mm512_add_pd(acc, _mm512_loadu_pd(x + i));
    double lane[8];
    _mm512_storeu_pd(lane, acc);
    for (size_t i = nb; i < n; i++)
        lane[i - nb] += x[i];
    return reduceLanes(lane);
}

double
avx512Dot(const double *x, const double *y, size_t n)
{
    __m512d acc = _mm512_setzero_pd();
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8)
        acc = _mm512_add_pd(
            acc, _mm512_mul_pd(_mm512_loadu_pd(x + i),
                               _mm512_loadu_pd(y + i)));
    double lane[8];
    _mm512_storeu_pd(lane, acc);
    for (size_t i = nb; i < n; i++)
        lane[i - nb] += x[i] * y[i];
    return reduceLanes(lane);
}

void
avx512Saxpy(double *y, double a, const double *x, size_t n)
{
    __m512d va = _mm512_set1_pd(a);
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8)
        _mm512_storeu_pd(
            y + i, _mm512_add_pd(_mm512_loadu_pd(y + i),
                                 _mm512_mul_pd(va,
                                               _mm512_loadu_pd(x + i))));
    for (size_t i = nb; i < n; i++)
        y[i] = y[i] + a * x[i];
}

void
avx512Scale(double *x, double a, size_t n)
{
    __m512d va = _mm512_set1_pd(a);
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8)
        _mm512_storeu_pd(
            x + i, _mm512_mul_pd(_mm512_loadu_pd(x + i), va));
    for (size_t i = nb; i < n; i++)
        x[i] *= a;
}

void
avx512ScaledCopy(double *dst, const double *src, double a, size_t n)
{
    __m512d va = _mm512_set1_pd(a);
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8)
        _mm512_storeu_pd(
            dst + i, _mm512_mul_pd(va, _mm512_loadu_pd(src + i)));
    for (size_t i = nb; i < n; i++)
        dst[i] = a * src[i];
}

double
avx512Max(const double *x, size_t n)
{
    __m512d acc = _mm512_set1_pd(-HUGE_VAL);
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8)
        acc = _mm512_max_pd(acc, _mm512_loadu_pd(x + i));
    double lane[8];
    _mm512_storeu_pd(lane, acc);
    for (size_t i = nb; i < n; i++)
        lane[i - nb] = lane[i - nb] > x[i] ? lane[i - nb] : x[i];
    auto op = [](double u, double v) { return u > v ? u : v; };
    return op(op(op(lane[0], lane[1]), op(lane[2], lane[3])),
              op(op(lane[4], lane[5]), op(lane[6], lane[7])));
}

size_t
avx512AccumulateSatU64(uint64_t *dst, const uint64_t *src, size_t n)
{
    size_t saturated = 0;
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8) {
        __m512i d = _mm512_loadu_si512(dst + i);
        __m512i s = _mm512_loadu_si512(src + i);
        __m512i r = _mm512_add_epi64(d, s);
        // A wrapped unsigned sum is strictly below the addend.
        __mmask8 wrapped = _mm512_cmplt_epu64_mask(r, s);
        r = _mm512_mask_set1_epi64(r, wrapped, -1);
        _mm512_storeu_si512(dst + i, r);
        saturated += static_cast<size_t>(__builtin_popcount(wrapped));
    }
    for (size_t i = nb; i < n; i++) {
        uint64_t r = dst[i] + src[i];
        if (r < src[i]) {
            r = UINT64_MAX;
            saturated++;
        }
        dst[i] = r;
    }
    return saturated;
}

void
avx512BucketCounts(const uint64_t *x, size_t n, const uint64_t *bounds,
                   size_t nbounds, uint64_t *counts)
{
    // One v <= bound sweep per bound; AVX-512 compares unsigned u64
    // natively into a mask, so each iteration is one compare and one
    // popcount over eight lanes.
    size_t nb = n & ~static_cast<size_t>(7);
    uint64_t prev_le = 0;
    for (size_t b = 0; b < nbounds; b++) {
        __m512i vb = _mm512_set1_epi64(
            static_cast<long long>(bounds[b]));
        uint64_t le = 0;
        for (size_t i = 0; i < nb; i += 8) {
            __mmask8 m = _mm512_cmple_epu64_mask(
                _mm512_loadu_si512(x + i), vb);
            le += static_cast<unsigned>(__builtin_popcount(m));
        }
        for (size_t i = nb; i < n; i++)
            le += x[i] <= bounds[b] ? 1 : 0;
        counts[b] = le - prev_le;
        prev_le = le;
    }
    counts[nbounds] = n - prev_le;
}

constexpr VectorOpsTable kAvx512Table = {
    avx512Sum,  avx512Dot, avx512Saxpy,
    avx512Scale, avx512ScaledCopy, avx512Max,
    avx512AccumulateSatU64, avx512BucketCounts,
};

} // namespace

const VectorOpsTable *
vectorOpsAvx512Table()
{
    return &kAvx512Table;
}

} // namespace hbbp::detail

#else // !__AVX512F__ — the stub half of the guarded TU.

namespace hbbp::detail {

const VectorOpsTable *
vectorOpsAvx512Table()
{
    return nullptr;
}

} // namespace hbbp::detail

#endif
