#include "support/thread_pool.hh"

#include <algorithm>
#include <chrono>
#include <exception>

#include "support/logging.hh"
#include "support/telemetry.hh"

namespace hbbp {

namespace {

telemetry::Gauge &
queueDepthGauge()
{
    static telemetry::Gauge &g =
        telemetry::gauge("hbbp_pool_queue_depth");
    return g;
}

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    threads = std::max(threads, 1u);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; i++)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        in_flight_++;
    }
    queueDepthGauge().add();
    work_available_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    static telemetry::Histogram &m_task_us = telemetry::histogram(
        "hbbp_pool_task_us", telemetry::latencyBucketsUs());
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained.
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        queueDepthGauge().sub();
        auto task_start = std::chrono::steady_clock::now();
        // An exception escaping a std::thread entry point aborts the
        // process with no diagnostic (and would leak in_flight_, hanging
        // wait()); route it through fatal() like every other dead end.
        try {
            task();
        } catch (const std::exception &e) {
            fatal("worker task failed: %s", e.what());
        } catch (...) {
            fatal("worker task failed with an unknown exception");
        }
        m_task_us.observe(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - task_start)
                .count()));
        {
            std::unique_lock<std::mutex> lock(mutex_);
            in_flight_--;
            if (in_flight_ == 0)
                all_done_.notify_all();
        }
    }
}

unsigned
ThreadPool::defaultThreadCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1u;
}

void
parallelFor(size_t count, unsigned jobs,
            const std::function<void(size_t)> &fn)
{
    if (count == 0)
        return;
    if (jobs <= 1 || count == 1) {
        for (size_t i = 0; i < count; i++)
            fn(i);
        return;
    }
    ThreadPool pool(std::min<size_t>(jobs, count));
    for (size_t i = 0; i < count; i++)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace hbbp
