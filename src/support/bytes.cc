#include "support/bytes.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "support/logging.hh"
#include "support/rng.hh"

namespace hbbp {

void
ByteReader::raw(void *data, size_t size)
{
    if (size > buf_.size() - pos_)
        throw ByteParseError(format("short read from '%s' (corrupt "
                                    "%s?)", context_.c_str(), what_));
    std::memcpy(data, buf_.data() + pos_, size);
    pos_ += size;
}

std::string
ByteReader::str()
{
    uint32_t n = u32();
    if (n > (1u << 20))
        throw ByteParseError(format("implausible string length %u in "
                                    "'%s'", n, context_.c_str()));
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
}

uint64_t
ByteReader::count(uint64_t n, size_t min_elem_bytes, const char *name)
{
    uint64_t left = buf_.size() - pos_;
    if (n > left / min_elem_bytes)
        throw ByteParseError(format(
            "'%s' claims %llu %s records but only %llu bytes remain "
            "(corrupt %s?)",
            context_.c_str(), static_cast<unsigned long long>(n), name,
            static_cast<unsigned long long>(left), what_));
    return n;
}

void
ByteReader::expectEof()
{
    if (pos_ != buf_.size())
        throw ByteParseError(format("trailing garbage at the end of "
                                    "'%s' (corrupt %s?)",
                                    context_.c_str(), what_));
}

std::string
readFileBytes(const std::string &path, std::string *why)
{
    why->clear();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        *why = format("cannot open '%s' for reading", path.c_str());
        return {};
    }
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::string bytes(size > 0 ? static_cast<size_t>(size) : 0, '\0');
    size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size()) {
        *why = format("short read from '%s'", path.c_str());
        return {};
    }
    return bytes;
}

void
writeFileAtomically(const std::string &path, const std::string &bytes)
{
    // The tmp name must be unique per writer: two threads or processes
    // racing to the same final path would otherwise interleave writes
    // into one temp file and rename a corrupt artifact into place.
    static std::atomic<uint64_t> tmp_serial{0};
    std::string tmp = format(
        "%s.tmp.%ld.%llu", path.c_str(), static_cast<long>(::getpid()),
        static_cast<unsigned long long>(
            tmp_serial.fetch_add(1, std::memory_order_relaxed)));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        fatal("cannot open '%s' for writing", tmp.c_str());
    // fclose() flushes: a full disk often only surfaces when the
    // buffered bytes hit it, and renaming an unflushed file would
    // publish a truncated artifact.
    bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
              bytes.size();
    if (std::fclose(f) != 0 || !ok)
        fatal("cannot write '%s'", tmp.c_str());
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot move '%s' into place at '%s'", tmp.c_str(),
              path.c_str());
}

MappedBytes &
MappedBytes::operator=(MappedBytes &&other) noexcept
{
    if (this == &other)
        return *this;
    close();
    owned_ = std::move(other.owned_);
    map_ = other.map_;
    map_len_ = other.map_len_;
    // owned_'s move may reseat the buffer; rebuild the view from
    // whichever backing store this instance now holds.
    view_ = map_ ? std::string_view(static_cast<const char *>(map_),
                                    other.view_.size())
                 : std::string_view(owned_);
    other.map_ = nullptr;
    other.map_len_ = 0;
    other.view_ = {};
    return *this;
}

bool
MappedBytes::open(const std::string &path, std::string *why, Mode mode)
{
    why->clear();
    close();
    if (mode != Mode::Read) {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) {
            *why = format("cannot open '%s' for reading", path.c_str());
            return false;
        }
        struct stat st;
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            *why = format("cannot stat '%s'", path.c_str());
            return false;
        }
        size_t size = static_cast<size_t>(st.st_size);
        bool want_map = size > 0 && (mode == Mode::Map ||
                                     size >= kMapThresholdBytes);
        if (want_map) {
            void *m = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd,
                             0);
            // The mapping outlives the fd (POSIX keeps the pages);
            // fall through to the plain read on any mmap refusal —
            // the caller asked for bytes, not for a mapping.
            ::close(fd);
            if (m != MAP_FAILED) {
                map_ = m;
                map_len_ = size;
                view_ = std::string_view(static_cast<const char *>(m),
                                         size);
                return true;
            }
        } else {
            ::close(fd);
        }
    }
    owned_ = readFileBytes(path, why);
    if (!why->empty())
        return false;
    view_ = std::string_view(owned_);
    return true;
}

void
MappedBytes::close()
{
    if (map_) {
        ::munmap(map_, map_len_);
        map_ = nullptr;
        map_len_ = 0;
    }
    owned_.clear();
    owned_.shrink_to_fit();
    view_ = {};
}

FileLock::~FileLock()
{
    if (fd_ >= 0)
        ::close(fd_);
}

int
FileLock::fd()
{
    if (fd_ < 0) {
        fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0666);
        if (fd_ < 0)
            fatal("cannot open lock file '%s'", path_.c_str());
    }
    return fd_;
}

FileLock::Guard::Guard(FileLock &lock, bool exclusive) : lock_(lock)
{
    auto start = std::chrono::steady_clock::now();
    while (::flock(lock_.fd(), exclusive ? LOCK_EX : LOCK_SH) != 0) {
        if (errno == EINTR)
            continue;
        fatal("cannot lock '%s'", lock_.path_.c_str());
    }
    wait_ns_ = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

FileLock::Guard::~Guard()
{
    // Releasing cannot meaningfully fail; an EINTR'd unlock would
    // leave the fd locked until close, which the destructor handles.
    ::flock(lock_.fd_, LOCK_UN);
}

std::string
frameRecord(uint64_t magic, const std::string &body)
{
    ByteWriter rec;
    rec.u64(magic);
    rec.u64(body.size());
    rec.u64(fnv1a(body));
    std::string bytes = rec.bytes();
    bytes += body;
    return bytes;
}

size_t
scanRecords(std::string_view bytes, uint64_t magic, size_t offset,
            const std::function<bool(std::string_view)> &fn,
            std::string *why)
{
    if (why)
        why->clear();
    size_t off = offset;
    while (off + kRecordHeaderBytes <= bytes.size()) {
        uint64_t got_magic, body_len, stored;
        std::memcpy(&got_magic, bytes.data() + off, 8);
        std::memcpy(&body_len, bytes.data() + off + 8, 8);
        std::memcpy(&stored, bytes.data() + off + 16, 8);
        if (got_magic != magic) {
            if (why)
                *why = format("bad record magic at offset %zu", off);
            return off;
        }
        if (bytes.size() - off - kRecordHeaderBytes < body_len) {
            // A torn append: the writer died mid-record.
            if (why)
                *why = format("torn record at offset %zu", off);
            return off;
        }
        std::string_view body =
            bytes.substr(off + kRecordHeaderBytes,
                         static_cast<size_t>(body_len));
        if (fnv1a(body.data(), body.size()) != stored) {
            if (why)
                *why = format("record checksum failure at offset %zu",
                              off);
            return off;
        }
        if (!fn(body))
            return off;
        off += kRecordHeaderBytes + static_cast<size_t>(body_len);
    }
    return off;
}

} // namespace hbbp
