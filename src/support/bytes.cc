#include "support/bytes.hh"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

#include "support/logging.hh"

namespace hbbp {

void
ByteReader::raw(void *data, size_t size)
{
    if (size > buf_.size() - pos_)
        throw ByteParseError(format("short read from '%s' (corrupt "
                                    "%s?)", context_.c_str(), what_));
    std::memcpy(data, buf_.data() + pos_, size);
    pos_ += size;
}

std::string
ByteReader::str()
{
    uint32_t n = u32();
    if (n > (1u << 20))
        throw ByteParseError(format("implausible string length %u in "
                                    "'%s'", n, context_.c_str()));
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
}

uint64_t
ByteReader::count(uint64_t n, size_t min_elem_bytes, const char *name)
{
    uint64_t left = buf_.size() - pos_;
    if (n > left / min_elem_bytes)
        throw ByteParseError(format(
            "'%s' claims %llu %s records but only %llu bytes remain "
            "(corrupt %s?)",
            context_.c_str(), static_cast<unsigned long long>(n), name,
            static_cast<unsigned long long>(left), what_));
    return n;
}

void
ByteReader::expectEof()
{
    if (pos_ != buf_.size())
        throw ByteParseError(format("trailing garbage at the end of "
                                    "'%s' (corrupt %s?)",
                                    context_.c_str(), what_));
}

std::string
readFileBytes(const std::string &path, std::string *why)
{
    why->clear();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        *why = format("cannot open '%s' for reading", path.c_str());
        return {};
    }
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::string bytes(size > 0 ? static_cast<size_t>(size) : 0, '\0');
    size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size()) {
        *why = format("short read from '%s'", path.c_str());
        return {};
    }
    return bytes;
}

void
writeFileAtomically(const std::string &path, const std::string &bytes)
{
    // The tmp name must be unique per writer: two threads or processes
    // racing to the same final path would otherwise interleave writes
    // into one temp file and rename a corrupt artifact into place.
    static std::atomic<uint64_t> tmp_serial{0};
    std::string tmp = format(
        "%s.tmp.%ld.%llu", path.c_str(), static_cast<long>(::getpid()),
        static_cast<unsigned long long>(
            tmp_serial.fetch_add(1, std::memory_order_relaxed)));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        fatal("cannot open '%s' for writing", tmp.c_str());
    // fclose() flushes: a full disk often only surfaces when the
    // buffered bytes hit it, and renaming an unflushed file would
    // publish a truncated artifact.
    bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
              bytes.size();
    if (std::fclose(f) != 0 || !ok)
        fatal("cannot write '%s'", tmp.c_str());
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot move '%s' into place at '%s'", tmp.c_str(),
              path.c_str());
}

} // namespace hbbp
