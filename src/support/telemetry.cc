#include "support/telemetry.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstring>

#include "support/logging.hh"
#include "support/vectorops.hh"

namespace hbbp {
namespace telemetry {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<bool> g_dump_requested{false};

/// Round-robin shard assignment: each thread gets a fixed slot for its
/// lifetime, so a thread's increments never migrate between cache lines.
size_t
threadSlot()
{
    static std::atomic<size_t> next{0};
    static thread_local size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
    return slot;
}

uint64_t
saturatingAdd(uint64_t a, uint64_t b)
{
    uint64_t s = a + b;
    return s < a ? UINT64_MAX : s;
}

/// Minimal JSON string escaping: backslash, quote, and control bytes.
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c) & 0xff);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

void
Counter::add(uint64_t n)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    slots_[threadSlot()].v.fetch_add(n, std::memory_order_relaxed);
}

uint64_t
Counter::value() const
{
    uint64_t total = 0;
    for (const Slot &s : slots_)
        total += s.v.load(std::memory_order_relaxed);
    return total;
}

void
Gauge::set(int64_t v)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    v_.store(v, std::memory_order_relaxed);
}

void
Gauge::add(int64_t n)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    v_.fetch_add(n, std::memory_order_relaxed);
}

void
Gauge::sub(int64_t n)
{
    add(-n);
}

int64_t
Gauge::value() const
{
    return v_.load(std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1)
{
    if (bounds_.empty())
        panic("histogram needs at least one bucket bound");
    for (size_t i = 1; i < bounds_.size(); ++i) {
        if (bounds_[i] <= bounds_[i - 1])
            panic("histogram bounds must be strictly ascending");
    }
}

void
Histogram::observe(uint64_t v)
{
    observeMany(&v, 1);
}

void
Histogram::observeMany(const uint64_t *v, size_t n)
{
    if (n == 0 || !g_enabled.load(std::memory_order_relaxed))
        return;
    // Bucket assignment through the dispatched vecops kernel: one
    // v <= bound sweep per bound (le semantics — the same bucket
    // every lower_bound found before), values above every bound in
    // the implicit +Inf slot.
    uint64_t stack_counts[24];
    std::vector<uint64_t> heap_counts;
    uint64_t *bucket = stack_counts;
    if (bounds_.size() + 1 > sizeof(stack_counts) / sizeof(uint64_t)) {
        heap_counts.resize(bounds_.size() + 1);
        bucket = heap_counts.data();
    }
    vecops::bucketCounts(v, n, bounds_.data(), bounds_.size(), bucket);
    for (size_t i = 0; i <= bounds_.size(); i++)
        if (bucket[i])
            counts_[i].fetch_add(bucket[i], std::memory_order_relaxed);
    // Saturating sum: fold the batch locally, then one CAS loop —
    // observations are off the fold hot path (latency sampling only).
    uint64_t batch = 0;
    for (size_t i = 0; i < n; i++)
        batch = saturatingAdd(batch, v[i]);
    uint64_t cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, saturatingAdd(cur, batch),
                                       std::memory_order_relaxed)) {
    }
}

uint64_t
Histogram::bucketCount(size_t i) const
{
    if (i >= counts_.size())
        panic("histogram bucket index %zu out of range", i);
    return counts_[i].load(std::memory_order_relaxed);
}

uint64_t
Histogram::count() const
{
    uint64_t total = 0;
    for (const auto &c : counts_)
        total += c.load(std::memory_order_relaxed);
    return total;
}

uint64_t
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

std::vector<uint64_t>
latencyBucketsMs()
{
    return {1, 4, 16, 64, 256, 1024, 4096, 16384};
}

std::vector<uint64_t>
latencyBucketsUs()
{
    return {16, 128, 1024, 8192, 65536, 524288, 4194304, 33554432};
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entries_[name];
    if (e.gauge || e.histogram)
        panic("metric '%s' already registered with a different kind",
              name.c_str());
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entries_[name];
    if (e.counter || e.histogram)
        panic("metric '%s' already registered with a different kind",
              name.c_str());
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Histogram &
Registry::histogram(const std::string &name, std::vector<uint64_t> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entries_[name];
    if (e.counter || e.gauge)
        panic("metric '%s' already registered with a different kind",
              name.c_str());
    if (!e.histogram)
        e.histogram = std::make_unique<Histogram>(std::move(bounds));
    return *e.histogram;
}

std::string
Registry::renderSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    char buf[256];
    for (const auto &[name, e] : entries_) {
        if (e.counter) {
            std::snprintf(buf, sizeof(buf), "counter %s %" PRIu64 "\n",
                          name.c_str(), e.counter->value());
            out += buf;
        } else if (e.gauge) {
            std::snprintf(buf, sizeof(buf), "gauge %s %" PRId64 "\n",
                          name.c_str(), e.gauge->value());
            out += buf;
        } else if (e.histogram) {
            const Histogram &h = *e.histogram;
            std::snprintf(buf, sizeof(buf), "hist %s count=%" PRIu64
                          " sum=%" PRIu64, name.c_str(), h.count(),
                          h.sum());
            out += buf;
            for (size_t i = 0; i < h.bounds().size(); ++i) {
                std::snprintf(buf, sizeof(buf), " le%" PRIu64 "=%" PRIu64,
                              h.bounds()[i], h.bucketCount(i));
                out += buf;
            }
            std::snprintf(buf, sizeof(buf), " le+Inf=%" PRIu64 "\n",
                          h.bucketCount(h.bounds().size()));
            out += buf;
        }
    }
    return out;
}

std::string
Registry::renderPrometheus() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    char buf[256];
    for (const auto &[name, e] : entries_) {
        if (e.counter) {
            std::snprintf(buf, sizeof(buf),
                          "# TYPE %s counter\n%s %" PRIu64 "\n",
                          name.c_str(), name.c_str(), e.counter->value());
            out += buf;
        } else if (e.gauge) {
            std::snprintf(buf, sizeof(buf),
                          "# TYPE %s gauge\n%s %" PRId64 "\n",
                          name.c_str(), name.c_str(), e.gauge->value());
            out += buf;
        } else if (e.histogram) {
            const Histogram &h = *e.histogram;
            std::snprintf(buf, sizeof(buf), "# TYPE %s histogram\n",
                          name.c_str());
            out += buf;
            // Prometheus buckets are cumulative.
            uint64_t cum = 0;
            for (size_t i = 0; i < h.bounds().size(); ++i) {
                cum += h.bucketCount(i);
                std::snprintf(buf, sizeof(buf),
                              "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                              name.c_str(), h.bounds()[i], cum);
                out += buf;
            }
            cum += h.bucketCount(h.bounds().size());
            std::snprintf(buf, sizeof(buf),
                          "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n"
                          "%s_sum %" PRIu64 "\n"
                          "%s_count %" PRIu64 "\n",
                          name.c_str(), cum, name.c_str(), h.sum(),
                          name.c_str(), cum);
            out += buf;
        }
    }
    return out;
}

Registry &
registry()
{
    static Registry *r = new Registry(); // leaked: outlive static dtors
    return *r;
}

Counter &
counter(const std::string &name)
{
    return registry().counter(name);
}

Gauge &
gauge(const std::string &name)
{
    return registry().gauge(name);
}

Histogram &
histogram(const std::string &name, std::vector<uint64_t> bounds)
{
    return registry().histogram(name, std::move(bounds));
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
requestDump()
{
    g_dump_requested.store(true, std::memory_order_relaxed);
}

void
dumpIfRequested()
{
    if (!g_dump_requested.exchange(false, std::memory_order_relaxed))
        return;
    dumpSnapshot("telemetry snapshot (SIGUSR1)");
}

void
dumpSnapshot(const char *prefix)
{
    std::string snap = registry().renderSnapshot();
    std::fprintf(stderr, "--- %s ---\n%s--- end snapshot ---\n", prefix,
                 snap.c_str());
    std::fflush(stderr);
}

// ---------------------------------------------------------------------
// Stage heartbeats.
// ---------------------------------------------------------------------

namespace {

struct StageState
{
    std::atomic<bool> enabled{false};
    std::atomic<int64_t> last_ms{0};
};

StageState g_stages[kStageCount];

bool
stageIsLoop(Stage s)
{
    return s == Stage::Listener || s == Stage::Federator;
}

} // namespace

const char *
name(Stage s)
{
    switch (s) {
      case Stage::Listener: return "listener";
      case Stage::Federator: return "federator";
      case Stage::Accept: return "accept";
      case Stage::Fold: return "fold";
      case Stage::Journal: return "journal";
      case Stage::Deposit: return "deposit";
      case Stage::Query: return "query";
      case Stage::Flush: return "flush";
      default:
        panic("name: bad Stage %d", static_cast<int>(s));
    }
}

int64_t
healthNowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
beatEnable(Stage s)
{
    StageState &st = g_stages[static_cast<size_t>(s)];
    st.last_ms.store(healthNowMs(), std::memory_order_relaxed);
    st.enabled.store(true, std::memory_order_release);
}

void
beat(Stage s)
{
    // Not gated on g_enabled: the beat is a liveness signal, not a
    // metric, and it sits off the measured fold hot path.
    g_stages[static_cast<size_t>(s)].last_ms.store(
        healthNowMs(), std::memory_order_relaxed);
}

void
beatResetForTest()
{
    for (StageState &st : g_stages) {
        st.enabled.store(false, std::memory_order_relaxed);
        st.last_ms.store(0, std::memory_order_relaxed);
    }
}

std::vector<StageHealth>
stageHealth(int64_t now_ms)
{
    std::vector<StageHealth> out;
    for (size_t i = 0; i < kStageCount; i++) {
        if (!g_stages[i].enabled.load(std::memory_order_acquire))
            continue;
        StageHealth h;
        h.stage = static_cast<Stage>(i);
        h.loop = stageIsLoop(h.stage);
        int64_t last = g_stages[i].last_ms.load(std::memory_order_relaxed);
        h.age_s = now_ms > last ? (now_ms - last) / 1000.0 : 0.0;
        out.push_back(h);
    }
    return out;
}

bool
anyStageStalled(int64_t now_ms, double stall_s,
                std::vector<std::string> *stalled)
{
    bool any = false;
    for (const StageHealth &h : stageHealth(now_ms)) {
        if (!h.loop || h.age_s <= stall_s)
            continue;
        any = true;
        if (stalled)
            stalled->push_back(name(h.stage));
    }
    return any;
}

std::string
renderHealth(int64_t now_ms, double stall_s)
{
    std::string out = anyStageStalled(now_ms, stall_s)
                          ? "status: degraded\n"
                          : "status: live\n";
    char buf[128];
    for (const StageHealth &h : stageHealth(now_ms)) {
        std::snprintf(buf, sizeof(buf), "stage %s age_s=%.3f loop=%d\n",
                      name(h.stage), h.age_s, h.loop ? 1 : 0);
        out += buf;
    }
    return out;
}

TraceLog::~TraceLog()
{
    if (file_)
        std::fclose(file_);
}

void
TraceLog::open(const std::string &path, const std::string &node)
{
    if (path.empty())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (file_)
        std::fclose(file_);
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_)
        fatal("cannot open trace log '%s': %s", path.c_str(),
              std::strerror(errno));
    node_ = node;
}

void
TraceLog::span(const std::string &span_name, const std::string &trace_id,
               const std::string &detail)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_)
        return;
    auto now = std::chrono::system_clock::now().time_since_epoch();
    uint64_t ts_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now).count());
    std::string line = "{\"ts_us\":" + std::to_string(ts_us) +
                       ",\"node\":\"" + jsonEscape(node_) +
                       "\",\"span\":\"" + jsonEscape(span_name) +
                       "\",\"trace\":\"" + jsonEscape(trace_id) + "\"";
    if (!detail.empty())
        line += ",\"detail\":\"" + jsonEscape(detail) + "\"";
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
}

} // namespace telemetry
} // namespace hbbp
