#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace hbbp {

namespace {
LogLevel g_level = LogLevel::Normal;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (g_level == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
verbose(const char *fmt, ...)
{
    if (g_level != LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace hbbp
