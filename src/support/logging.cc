#include "support/logging.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "support/telemetry.hh"

namespace hbbp {

namespace {

LogLevel g_level = LogLevel::Normal;

/** The process-wide throttle behind warn(). Leaked intentionally so
 * warnings during static destruction never touch a dead object. */
WarnRateLimiter &
warnLimiter()
{
    static WarnRateLimiter *limiter = new WarnRateLimiter();
    return *limiter;
}

int64_t
monotonicMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

WarnRateLimiter::WarnRateLimiter(size_t burst, int64_t interval_ms)
    : burst_(burst), interval_ms_(interval_ms)
{
}

void
WarnRateLimiter::configure(size_t burst, int64_t interval_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    burst_ = burst;
    interval_ms_ = interval_ms;
    sites_.clear();
}

WarnThrottleDecision
WarnRateLimiter::note(const std::string &site, int64_t now_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (burst_ == 0)
        return {true, 0};
    auto [it, fresh] = sites_.try_emplace(site);
    Site &s = it->second;
    if (fresh || now_ms - s.window_start_ms >= interval_ms_) {
        // New window: this message prints and carries the summary of
        // anything dropped since the last printed one.
        uint64_t dropped = fresh ? 0 : s.suppressed;
        s = Site{now_ms, 1, 0};
        return {true, dropped};
    }
    if (s.printed < burst_) {
        s.printed++;
        uint64_t dropped = s.suppressed;
        s.suppressed = 0;
        return {true, dropped};
    }
    s.suppressed++;
    return {false, 0};
}

void
setWarnRateLimit(size_t burst, int64_t interval_ms)
{
    warnLimiter().configure(burst, interval_ms);
}

void
warn(const char *fmt, ...)
{
    if (g_level == LogLevel::Quiet)
        return;
    WarnThrottleDecision d = warnLimiter().note(fmt, monotonicMs());
    if (!d.print) {
        // The throttle hides the text, but a warn storm must stay
        // visible on the metrics surface even while the log is quiet.
        static telemetry::Counter &m_suppressed =
            telemetry::counter("hbbp_warn_suppressed_total");
        m_suppressed.add(1);
        return;
    }
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    if (d.suppressed > 0)
        std::fprintf(stderr,
                     "warn: %s (suppressed %llu similar warnings)\n",
                     msg.c_str(),
                     static_cast<unsigned long long>(d.suppressed));
    else
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (g_level == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
verbose(const char *fmt, ...)
{
    if (g_level != LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace hbbp
