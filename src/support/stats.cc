#include "support/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.hh"

namespace hbbp {

void
RunningStats::add(double x)
{
    addWeighted(x, 1.0);
}

void
RunningStats::addWeighted(double x, double weight)
{
    if (weight <= 0.0)
        return;
    count_++;
    if (!has_any_) {
        min_ = max_ = x;
        has_any_ = true;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    // Weighted Welford update (West 1979).
    double new_weight = weight_ + weight;
    double delta = x - mean_;
    double r = delta * weight / new_weight;
    mean_ += r;
    m2_ += weight_ * delta * r;
    weight_ = new_weight;
}

double
RunningStats::mean() const
{
    return weight_ > 0.0 ? mean_ : 0.0;
}

double
RunningStats::variance() const
{
    if (count_ < 2 || weight_ <= 0.0)
        return 0.0;
    return m2_ / weight_;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        panic("percentile: p=%f out of [0,100]", p);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("geomean requires positive inputs, got %f", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace hbbp
