#include "support/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.hh"
#include "support/vectorops.hh"

namespace hbbp {

void
RunningStats::add(double x)
{
    addWeighted(x, 1.0);
}

void
RunningStats::addWeighted(double x, double weight)
{
    if (weight <= 0.0)
        return;
    count_++;
    if (!has_any_) {
        min_ = max_ = x;
        has_any_ = true;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    // Weighted Welford update (West 1979).
    double new_weight = weight_ + weight;
    double delta = x - mean_;
    double r = delta * weight / new_weight;
    mean_ += r;
    m2_ += weight_ * delta * r;
    weight_ = new_weight;
}

double
RunningStats::mean() const
{
    return weight_ > 0.0 ? mean_ : 0.0;
}

double
RunningStats::variance() const
{
    if (count_ < 2 || weight_ <= 0.0)
        return 0.0;
    return m2_ / weight_;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    // The fold goes through vecops: bit-stable 8-lane reduction, same
    // bits whatever backend dispatch picked.
    return vecops::sum(xs) / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    // Two-pass population variance: center first (one IEEE subtract
    // per element), then fold the squares as a vecops dot product —
    // both halves are backend-bit-stable.
    std::vector<double> centered(xs.size());
    for (size_t i = 0; i < xs.size(); i++)
        centered[i] = xs[i] - m;
    return vecops::dot(centered.data(), centered.data(),
                       centered.size()) /
           static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        panic("percentile: p=%f out of [0,100]", p);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    // log() stays scalar (not a span kernel); the fold of the logs
    // routes through vecops like every other reduction.
    std::vector<double> logs(xs.size());
    for (size_t i = 0; i < xs.size(); i++) {
        if (xs[i] <= 0.0)
            panic("geomean requires positive inputs, got %f", xs[i]);
        logs[i] = std::log(xs[i]);
    }
    return std::exp(vecops::sum(logs) /
                    static_cast<double>(xs.size()));
}

} // namespace hbbp
