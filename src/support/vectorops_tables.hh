/**
 * @file
 * Internal seam between the vectorops dispatcher and its guarded
 * backend translation units. Each backend TU always defines its
 * accessor; when the TU was compiled without the ISA (no -mavx2 /
 * -mavx512f / no NEON), the accessor returns nullptr — the stub half
 * of the guarded-TU idiom — so linkage never depends on compiler
 * flags. Not part of the public vectorops API.
 */

#ifndef HBBP_SUPPORT_VECTOROPS_TABLES_HH
#define HBBP_SUPPORT_VECTOROPS_TABLES_HH

#include "support/vectorops.hh"

namespace hbbp::detail {

/** AVX2 kernel table; nullptr when built without -mavx2. */
const VectorOpsTable *vectorOpsAvx2Table();

/** AVX-512 kernel table; nullptr when built without -mavx512f. */
const VectorOpsTable *vectorOpsAvx512Table();

/** NEON kernel table; nullptr off aarch64. */
const VectorOpsTable *vectorOpsNeonTable();

} // namespace hbbp::detail

#endif // HBBP_SUPPORT_VECTOROPS_TABLES_HH
