/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (bugs in this library), fatal() for user errors that make it impossible
 * to continue, warn()/inform() for non-fatal status messages.
 */

#ifndef HBBP_SUPPORT_LOGGING_HH
#define HBBP_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace hbbp {

/** Verbosity levels for status messages. */
enum class LogLevel {
    Quiet,   ///< Only panic/fatal output.
    Normal,  ///< warn() and inform() are printed.
    Verbose, ///< Additionally print verbose() messages.
};

/** Set the global verbosity for warn()/inform()/verbose(). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 *
 * Use when something happened that should never happen regardless of user
 * input; calls std::abort() so a core dump / debugger is possible.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1).
 *
 * Use for bad configuration or invalid arguments, not library bugs.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Warn about suspicious but non-fatal conditions.
 *
 * Warnings are rate-limited per call site (keyed on the format
 * string): after a burst within one interval, further repeats are
 * dropped, and the next printed warning at that site carries a
 * "(suppressed N ...)" summary. A single misbehaving peer retrying in
 * a tight loop therefore cannot flood a daemon's stderr. Tune or
 * disable with setWarnRateLimit().
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informative status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Extra-detail message, printed only at LogLevel::Verbose. */
void verbose(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Configure warn() rate limiting: at most @p burst prints per
 * call site within any @p interval_ms window. burst = 0 disables
 * throttling entirely (every warning prints). Also clears all
 * accumulated per-site state, so tests get a clean slate.
 */
void setWarnRateLimit(size_t burst, int64_t interval_ms);

/** What WarnRateLimiter::note() decided for one message. */
struct WarnThrottleDecision
{
    /** Print this message. */
    bool print = true;
    /** Messages dropped at this site since the last printed one;
     * non-zero only when print is true (the summary rides along). */
    uint64_t suppressed = 0;
};

/**
 * Per-site warning throttle (the mechanism behind warn()'s rate
 * limiting, exposed so tests can drive it with a fake clock).
 *
 * Each site gets a fixed window: the first `burst` messages inside
 * `interval_ms` of the window's start print, the rest are counted
 * and dropped. The first message after the window expires opens a
 * fresh window and reports how many were dropped in the old one.
 * Thread-safe; warn() is never on a hot path, so one mutex is fine.
 */
class WarnRateLimiter
{
  public:
    explicit WarnRateLimiter(size_t burst = 8,
                             int64_t interval_ms = 10'000);

    /** Record one message at @p site, timestamped @p now_ms
     * (milliseconds on any monotonic clock). */
    WarnThrottleDecision note(const std::string &site,
                              int64_t now_ms);

    /** Reconfigure and drop all per-site state. */
    void configure(size_t burst, int64_t interval_ms);

  private:
    struct Site
    {
        int64_t window_start_ms = 0;
        uint64_t printed = 0;
        uint64_t suppressed = 0;
    };

    std::mutex mutex_;
    size_t burst_;
    int64_t interval_ms_;
    std::unordered_map<std::string, Site> sites_;
};

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace hbbp

#endif // HBBP_SUPPORT_LOGGING_HH
