/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (bugs in this library), fatal() for user errors that make it impossible
 * to continue, warn()/inform() for non-fatal status messages.
 */

#ifndef HBBP_SUPPORT_LOGGING_HH
#define HBBP_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <string>

namespace hbbp {

/** Verbosity levels for status messages. */
enum class LogLevel {
    Quiet,   ///< Only panic/fatal output.
    Normal,  ///< warn() and inform() are printed.
    Verbose, ///< Additionally print verbose() messages.
};

/** Set the global verbosity for warn()/inform()/verbose(). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 *
 * Use when something happened that should never happen regardless of user
 * input; calls std::abort() so a core dump / debugger is possible.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1).
 *
 * Use for bad configuration or invalid arguments, not library bugs.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about suspicious but non-fatal conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informative status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Extra-detail message, printed only at LogLevel::Verbose. */
void verbose(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace hbbp

#endif // HBBP_SUPPORT_LOGGING_HH
