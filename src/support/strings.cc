#include "support/strings.hh"

#include <cctype>

#include "support/logging.hh"

namespace hbbp {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); i++) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::string
toUpper(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return s;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
withSeparators(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int pos = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (pos && pos % 3 == 0)
            out.push_back('\'');
        out.push_back(*it);
        pos++;
    }
    return std::string(out.rbegin(), out.rend());
}

std::string
hexAddr(uint64_t addr)
{
    return format("0x%016llx", static_cast<unsigned long long>(addr));
}

std::string
percentStr(double fraction, int decimals)
{
    return format("%.*f%%", decimals, fraction * 100.0);
}

} // namespace hbbp
