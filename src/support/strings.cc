#include "support/strings.hh"

#include <algorithm>
#include <cctype>
#include <utility>

#include "support/logging.hh"

namespace hbbp {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); i++) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::string
toUpper(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return s;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
withSeparators(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int pos = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (pos && pos % 3 == 0)
            out.push_back('\'');
        out.push_back(*it);
        pos++;
    }
    return std::string(out.rbegin(), out.rend());
}

std::string
hexAddr(uint64_t addr)
{
    return format("0x%016llx", static_cast<unsigned long long>(addr));
}

std::string
percentStr(double fraction, int decimals)
{
    return format("%.*f%%", decimals, fraction * 100.0);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

size_t
editDistance(const std::string &a, const std::string &b)
{
    // Two-row Levenshtein DP.
    std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (size_t j = 0; j <= b.size(); j++)
        prev[j] = j;
    for (size_t i = 1; i <= a.size(); i++) {
        cur[0] = i;
        for (size_t j = 1; j <= b.size(); j++) {
            size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

std::vector<std::string>
closestMatches(const std::string &needle,
               const std::vector<std::string> &candidates,
               size_t max_results, size_t max_distance)
{
    std::string lowered = toLower(needle);
    std::vector<std::pair<size_t, std::string>> scored;
    for (const std::string &cand : candidates) {
        size_t d = editDistance(lowered, toLower(cand));
        if (d <= max_distance)
            scored.emplace_back(d, cand);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    std::vector<std::string> out;
    for (const auto &[d, cand] : scored) {
        if (out.size() >= max_results)
            break;
        out.push_back(cand);
    }
    return out;
}

} // namespace hbbp
