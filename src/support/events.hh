/**
 * @file
 * Structured, stable-coded JSONL event log — the fleet's flight
 * recorder for exceptional paths.
 *
 * warn() tells a human that something odd happened; this log tells a
 * machine *what*. Every exceptional path a daemon takes — a rejected
 * shard, a superseded partial, a transport retry, a gc eviction, a
 * watchdog stall, a stale federation child — emits one event with a
 * wall-clock timestamp, a severity level, a *stable code* (grep/alert
 * keys that never change meaning once shipped) and flat key=value
 * fields. One JSON object per line, flushed per line, append-only, so
 * daemons across a machine can share one file and `tail -f` always
 * sees whole records.
 *
 * The stable code table (also in README.md — extend, never repurpose):
 *
 *   shard_reject     warn   listener rejected a frame or shard
 *   shard_supersede  info   partial aggregate superseded by coverage
 *   push_retry       warn   sender retrying after a transport error
 *   store_gc_evict   info   store gc removed an entry
 *   idle_abort       warn   listener aborted an idle stream
 *   watchdog_stall   error  a loop stage stopped beating
 *   child_stale      warn   federation scrape of a child failed
 *   child_recovered  info   a stale federation child answered again
 *
 * The process-wide sink is openLog(); an unopened log makes emit() a
 * no-op, so instrumented sites never check a flag. `hbbp-tool events
 * --from FILE [--code C] [--since T]` reads the other end through
 * loadEvents().
 *
 * StallWatchdog is the health plane's active half: a background
 * thread that watches the telemetry stage heartbeats and emits
 * `watchdog_stall` (plus a warn() and a counter bump) when a loop
 * stage stops progressing for --stall-warn-s seconds.
 */

#ifndef HBBP_SUPPORT_EVENTS_HH
#define HBBP_SUPPORT_EVENTS_HH

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace hbbp {
namespace events {

/** Event severity. */
enum class Level : uint8_t { Info, Warn, Error };

/** Printable level name ("info", "warn", "error"). */
const char *name(Level level);

/** Parse a level name; false on an unknown one. */
bool levelFromName(const std::string &s, Level *out);

/** One event record, as emitted or as parsed back from a log. */
struct Event
{
    uint64_t ts_ms = 0; ///< Wall-clock milliseconds since the epoch.
    Level level = Level::Info;
    std::string code; ///< Stable machine code (see the table above).
    std::string node; ///< Emitting daemon's id.
    std::vector<std::pair<std::string, std::string>> fields;

    /** The field's value, or "" when absent. */
    std::string field(const std::string &key) const;

    /** One human-readable line (what `hbbp-tool events` prints). */
    std::string render() const;
};

/**
 * Open the process-wide event log for appending and tag every record
 * with @p node. An empty path leaves the log disabled. fatal()s when
 * the file cannot be opened.
 */
void openLog(const std::string &path, const std::string &node);

/** True when openLog() armed a sink. */
bool logActive();

/**
 * Append one event (no-op while the log is closed). Also bumps
 * hbbp_events_total so the metrics surface shows event volume.
 */
void emit(Level level, const std::string &code,
          std::initializer_list<std::pair<std::string, std::string>>
              fields);

/** Parse one JSONL record; false with *@p why set on malformed. */
bool parseEventLine(const std::string &line, Event *out,
                    std::string *why);

/**
 * Load @p path and keep events matching @p code (empty = all) with
 * ts_ms >= @p since_ms (0 = all). Malformed lines fail the load —
 * a corrupt flight recorder must be loud. Returns false with *@p why
 * set on I/O or parse errors.
 */
bool loadEvents(const std::string &path, const std::string &code,
                uint64_t since_ms, std::vector<Event> *out,
                std::string *why);

/**
 * Watches the telemetry stage heartbeats from a background thread
 * (2 Hz) and emits one `watchdog_stall` event — plus a warn() and a
 * hbbp_watchdog_stalls_total bump — each time a loop stage's beat
 * age first exceeds the threshold. A stage that recovers re-arms.
 */
class StallWatchdog
{
  public:
    StallWatchdog() = default;
    ~StallWatchdog();
    StallWatchdog(const StallWatchdog &) = delete;
    StallWatchdog &operator=(const StallWatchdog &) = delete;

    /** Arm with a threshold in seconds; <= 0 keeps it disarmed. */
    void start(double stall_warn_s);

    /** Stop and join the watcher thread (idempotent). */
    void stop();

  private:
    void watch(double stall_warn_s);

    std::thread thread_;
    std::atomic<bool> stop_{false};
};

} // namespace events
} // namespace hbbp

#endif // HBBP_SUPPORT_EVENTS_HH
