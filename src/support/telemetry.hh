/**
 * @file
 * Process-wide metrics registry and shard-lifecycle trace log.
 *
 * Every fleet stage (transport, listener, aggregator, journal, store,
 * thread pool) reports through this registry. Three metric kinds:
 *
 *  - Counter:   monotonic u64. Increments are relaxed fetch_adds on
 *               per-thread-sharded, cache-line-padded slots, so hot-path
 *               bumps are wait-free and TSan-clean.
 *  - Gauge:     signed level (queue depth, active streams, resident
 *               bytes). Single atomic; set/add/sub.
 *  - Histogram: fixed upper-bound buckets over u64 observations
 *               (latencies in ms/us/ns). Cumulative bucket counts plus
 *               a saturating sum; bounds are frozen at registration.
 *
 * Two exposition surfaces, both with byte-deterministic output (metrics
 * render in lexicographic name order):
 *
 *  - renderSnapshot():   compact `kind name value` lines — the format
 *                        `hbbp-tool stats` prints and daemons dump to
 *                        stderr on SIGUSR1 and at exit.
 *  - renderPrometheus(): Prometheus text exposition format, served by
 *                        the `--metrics-port` endpoint (fleet/metrics).
 *
 * Call sites keep a static reference so the name lookup happens once:
 *
 *     static telemetry::Counter &c =
 *         telemetry::counter("hbbp_transport_frames_sent_total");
 *     c.add();
 *
 * setEnabled(false) turns every add/observe into a single relaxed load
 * and early return ("compiled in but idle") — the toggle bench/scale_relay
 * uses to price the instrumentation.
 *
 * TraceLog appends timestamped JSONL span records for shard-lifecycle
 * tracing (see --trace-log); trace ids are minted by shardTraceId() in
 * fleet/manifest.
 */

#ifndef HBBP_SUPPORT_TELEMETRY_HH
#define HBBP_SUPPORT_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hbbp {
namespace telemetry {

/// Number of independent counter slots; power of two, sized so a
/// handful of threads rarely share a cache line.
constexpr size_t kCounterShards = 8;

/** Monotonic counter with per-thread-sharded storage. */
class Counter
{
  public:
    /** Wait-free increment (no-op while telemetry is disabled). */
    void add(uint64_t n = 1);

    /** Sum over all shards. Exact once writers have quiesced. */
    uint64_t value() const;

  private:
    struct alignas(64) Slot {
        std::atomic<uint64_t> v{0};
    };
    Slot slots_[kCounterShards];
};

/** Signed level gauge (queue depth, active streams, resident bytes). */
class Gauge
{
  public:
    void set(int64_t v);
    void add(int64_t n = 1);
    void sub(int64_t n = 1);
    int64_t value() const;

  private:
    std::atomic<int64_t> v_{0};
};

/** Fixed-bucket histogram over u64 observations. */
class Histogram
{
  public:
    explicit Histogram(std::vector<uint64_t> bounds);

    /** Record one observation (no-op while telemetry is disabled). */
    void observe(uint64_t v);

    /**
     * Record a batch of observations in one pass. Bucket assignment
     * routes through the dispatched vecops::bucketCounts kernel (one
     * wide compare sweep per bound), so a batch costs O(bounds)
     * vector passes instead of n binary searches, and only non-empty
     * buckets touch the shared atomics. observe(v) is
     * observeMany(&v, 1).
     */
    void observeMany(const uint64_t *v, size_t n);

    /** Upper bounds, ascending; the +Inf bucket is implicit. */
    const std::vector<uint64_t> &bounds() const { return bounds_; }

    /** Non-cumulative count for bucket i (bounds().size() == +Inf). */
    uint64_t bucketCount(size_t i) const;

    /** Total observations. */
    uint64_t count() const;

    /** Saturating sum of observations. */
    uint64_t sum() const;

  private:
    std::vector<uint64_t> bounds_;
    std::vector<std::atomic<uint64_t>> counts_; ///< bounds_.size() + 1
    std::atomic<uint64_t> sum_{0};
};

/// Default latency bucket bounds in milliseconds: 1..16384 powers of 4.
std::vector<uint64_t> latencyBucketsMs();
/// Default latency bucket bounds in microseconds: 16..2^26 powers of 8.
std::vector<uint64_t> latencyBucketsUs();

/**
 * A named collection of metrics.
 *
 * The process-wide instance is registry(); tests construct their own so
 * snapshot bytes are deterministic. Registration takes a mutex; the
 * returned references stay valid for the registry's lifetime, so call
 * sites cache them and never look up again.
 */
class Registry
{
  public:
    /** Find-or-create. panic()s if `name` exists with another kind. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /**
     * Find-or-create with the given ascending bucket bounds; on
     * rediscovery the bounds argument is ignored (first caller wins).
     */
    Histogram &histogram(const std::string &name,
                         std::vector<uint64_t> bounds);

    /**
     * Compact deterministic text: one metric per line, lexicographic
     * name order, `counter|gauge|hist NAME ...` with histograms
     * rendered as `count=N sum=S le<bound>=C ... le+Inf=C`.
     */
    std::string renderSnapshot() const;

    /** Prometheus text exposition format, same deterministic order. */
    std::string renderPrometheus() const;

  private:
    struct Entry {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };
    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_;
};

/** The process-wide registry daemons expose and instrument into. */
Registry &registry();

/** Shorthands against the process-wide registry. */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name, std::vector<uint64_t> bounds);

/**
 * Master switch. Metrics objects stay registered while disabled; only
 * add()/observe() become no-ops. Enabled by default.
 */
void setEnabled(bool on);
bool enabled();

/**
 * Ask the process to dump the registry snapshot to stderr at the next
 * dumpIfRequested() poll. Async-signal-safe (one relaxed store) — this
 * is the SIGUSR1 handler's entire body.
 */
void requestDump();

/** If a dump was requested, print the snapshot to stderr and clear. */
void dumpIfRequested();

/** Print `prefix` then the process registry snapshot to stderr. */
void dumpSnapshot(const char *prefix);

// ---------------------------------------------------------------------
// Per-stage progress heartbeats — the health plane's liveness signal.
// ---------------------------------------------------------------------

/**
 * The pipeline stages a daemon reports progress for. Loop stages
 * (Listener, Federator) beat once per poll round whether or not work
 * arrived, so a stale beat means the serving thread itself is wedged
 * — those are the stages that degrade the process and trip the
 * watchdog. Work stages (Accept, Fold, Journal, Deposit, Query,
 * Flush) beat once per completed operation; their ages are reported
 * on healthz for triage but an idle work stage is not a stalled one.
 */
enum class Stage : uint8_t {
    Listener,  ///< Shard-listener poll round (loop).
    Federator, ///< Metrics-federation scrape round (loop).
    Accept,    ///< Shard accepted by the listener.
    Fold,      ///< Aggregator fold completed.
    Journal,   ///< State-journal append durable.
    Deposit,   ///< Profile-store deposit completed.
    Query,     ///< Analysis query served.
    Flush,     ///< Relay upstream flush completed.
};
constexpr size_t kStageCount = 8;

/** Printable stage name ("listener", "fold", ...). */
const char *name(Stage s);

/** Mark @p s as present in this process (idempotent). */
void beatEnable(Stage s);

/** Record progress on @p s now (one relaxed store; wait-free). */
void beat(Stage s);

/** Reset all stages to absent — the test seam between cases. */
void beatResetForTest();

/** One enabled stage's health as healthz reports it. */
struct StageHealth
{
    Stage stage = Stage::Listener;
    bool loop = false;  ///< Degrades the process when stalled.
    double age_s = 0.0; ///< Seconds since the last beat.
};

/** Steady-clock milliseconds — the beat/stageHealth time base. */
int64_t healthNowMs();

/**
 * Health of every beatEnable()d stage, ages computed against
 * @p now_ms (pass healthNowMs(); the parameter is the stall logic's
 * test seam).
 */
std::vector<StageHealth> stageHealth(int64_t now_ms);

/**
 * True when some loop stage is enabled and last beat more than
 * @p stall_s ago — the daemon stopped making progress. Names of the
 * stalled stages are appended to *@p stalled when non-null.
 */
bool anyStageStalled(int64_t now_ms, double stall_s,
                     std::vector<std::string> *stalled = nullptr);

/**
 * The healthz body's process-local half: a `status: live|degraded`
 * first line (degraded iff anyStageStalled) followed by one
 * `stage <name> age_s=<age> loop=<0|1>` line per enabled stage.
 */
std::string renderHealth(int64_t now_ms, double stall_s);

/**
 * Append-only JSONL span log for shard-lifecycle tracing.
 *
 * One record per line:
 *   {"ts_us":<wall-clock us>,"node":"...","span":"...","trace":"...",
 *    "detail":"..."}
 *
 * Wall-clock (not steady) timestamps so spans from different processes
 * on one machine order correctly when merged. Default-constructed logs
 * are disabled and span() is a no-op.
 */
class TraceLog
{
  public:
    TraceLog() = default;
    ~TraceLog();
    TraceLog(const TraceLog &) = delete;
    TraceLog &operator=(const TraceLog &) = delete;

    /**
     * Open `path` for appending and tag every record with `node`.
     * An empty path leaves the log disabled. fatal()s if the file
     * cannot be opened.
     */
    void open(const std::string &path, const std::string &node);

    bool active() const { return file_ != nullptr; }

    /** Append one span record (flushed per line). */
    void span(const std::string &span_name, const std::string &trace_id,
              const std::string &detail = std::string());

  private:
    FILE *file_ = nullptr;
    std::string node_;
    std::mutex mu_;
};

} // namespace telemetry
} // namespace hbbp

#endif // HBBP_SUPPORT_TELEMETRY_HH
