/**
 * @file
 * Binary serialization primitives shared by every on-disk and on-wire
 * format in the repository (profile files, aggregator state, shard
 * transport frames).
 *
 * ByteWriter serializes into a memory buffer so payloads can be
 * checksummed before anything touches a file or socket; ByteReader
 * parses back out with bounds checks that throw ByteParseError (with
 * a diagnostic naming the source) instead of reading garbage — every
 * caller decides whether that means fatal() (trusted local files) or
 * a rejection (untrusted input). The file helpers implement the
 * repository-wide write discipline: unique temp file + rename, so a
 * crashed writer never publishes a truncated artifact.
 */

#ifndef HBBP_SUPPORT_BYTES_HH
#define HBBP_SUPPORT_BYTES_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace hbbp {

/** Serializes a payload into a memory buffer (for checksumming). */
class ByteWriter
{
  public:
    void
    raw(const void *data, size_t size)
    {
        buf_.append(static_cast<const char *>(data), size);
    }

    void u8(uint8_t v) { raw(&v, sizeof(v)); }
    void u32(uint32_t v) { raw(&v, sizeof(v)); }
    void u64(uint64_t v) { raw(&v, sizeof(v)); }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    const std::string &bytes() const { return buf_; }

  private:
    std::string buf_;
};

/**
 * A structural parse failure: a count, length or enum that cannot be
 * right even though any outer checksum matched. Callers parsing
 * *trusted* local files catch it and fatal(); callers parsing
 * untrusted input (network frames) catch it and reject the source —
 * a crafted payload must never take the process down.
 */
class ByteParseError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Parses a payload out of a memory buffer. @p context names the source
 * (a path, a peer address) and @p what the format ("profile",
 * "aggregator state") in diagnostics. All structural failures throw
 * ByteParseError.
 */
class ByteReader
{
  public:
    ByteReader(const std::string &buf, const std::string &context,
               const char *what = "data")
        : buf_(buf), context_(context), what_(what)
    {
    }

    void raw(void *data, size_t size);

    uint8_t u8() { uint8_t v; raw(&v, sizeof(v)); return v; }
    uint32_t u32() { uint32_t v; raw(&v, sizeof(v)); return v; }
    uint64_t u64() { uint64_t v; raw(&v, sizeof(v)); return v; }

    std::string str();

    /**
     * Validate an element count against the bytes left in the payload:
     * a corrupt count must throw with a diagnostic here, not OOM in a
     * reserve() or spin reading garbage.
     */
    uint64_t count(uint64_t n, size_t min_elem_bytes, const char *name);

    /** Throws unless the whole payload has been consumed. */
    void expectEof();

  private:
    const std::string &buf_;
    size_t pos_ = 0;
    const std::string &context_;
    const char *what_;
};

/**
 * Whole file as bytes. On failure returns an empty string with *@p why
 * set (and *@p why cleared on success, so callers can test it).
 */
std::string readFileBytes(const std::string &path, std::string *why);

/**
 * Write @p bytes to @p path atomically: a uniquely named temp file
 * (two writers racing to one path never interleave) renamed into
 * place. fatal() on I/O errors — a full disk must not publish a
 * truncated file.
 */
void writeFileAtomically(const std::string &path,
                         const std::string &bytes);

} // namespace hbbp

#endif // HBBP_SUPPORT_BYTES_HH
