/**
 * @file
 * Binary serialization primitives shared by every on-disk and on-wire
 * format in the repository (profile files, aggregator state, shard
 * transport frames).
 *
 * ByteWriter serializes into a memory buffer so payloads can be
 * checksummed before anything touches a file or socket; ByteReader
 * parses back out with bounds checks that throw ByteParseError (with
 * a diagnostic naming the source) instead of reading garbage — every
 * caller decides whether that means fatal() (trusted local files) or
 * a rejection (untrusted input). The file helpers implement the
 * repository-wide write discipline: unique temp file + rename, so a
 * crashed writer never publishes a truncated artifact.
 *
 * Three more pieces of shared file discipline live here:
 *
 *  - MappedBytes: zero-copy reads of large immutable files via mmap,
 *    with a transparent plain-read fallback (small files, filesystems
 *    without mmap) — easel's esl_buffer pattern. Readers consume a
 *    std::string_view either way.
 *  - FileLock: an flock(2)-based advisory lock whose Guard scopes a
 *    shared or exclusive critical section. Cross-process by
 *    construction (the kernel owns the lock), which is what makes
 *    concurrent depositors and gc on one profile store safe.
 *  - frameRecord()/scanRecords(): the checksummed append-only record
 *    framing shared by the aggregator state journal and the profile
 *    store index — a torn or corrupt tail is detected and cleanly
 *    dropped instead of trusted.
 */

#ifndef HBBP_SUPPORT_BYTES_HH
#define HBBP_SUPPORT_BYTES_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace hbbp {

/** Serializes a payload into a memory buffer (for checksumming). */
class ByteWriter
{
  public:
    void
    raw(const void *data, size_t size)
    {
        buf_.append(static_cast<const char *>(data), size);
    }

    void u8(uint8_t v) { raw(&v, sizeof(v)); }
    void u32(uint32_t v) { raw(&v, sizeof(v)); }
    void u64(uint64_t v) { raw(&v, sizeof(v)); }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    const std::string &bytes() const { return buf_; }

  private:
    std::string buf_;
};

/**
 * A structural parse failure: a count, length or enum that cannot be
 * right even though any outer checksum matched. Callers parsing
 * *trusted* local files catch it and fatal(); callers parsing
 * untrusted input (network frames) catch it and reject the source —
 * a crafted payload must never take the process down.
 */
class ByteParseError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Parses a payload out of a memory buffer. @p context names the source
 * (a path, a peer address) and @p what the format ("profile",
 * "aggregator state") in diagnostics. All structural failures throw
 * ByteParseError.
 */
class ByteReader
{
  public:
    /**
     * @p buf may be a view into an mmap'd file (MappedBytes): the
     * reader copies out of it and never keeps references, but the
     * caller owns keeping the view alive across the parse.
     */
    ByteReader(std::string_view buf, const std::string &context,
               const char *what = "data")
        : buf_(buf), context_(context), what_(what)
    {
    }

    void raw(void *data, size_t size);

    uint8_t u8() { uint8_t v; raw(&v, sizeof(v)); return v; }
    uint32_t u32() { uint32_t v; raw(&v, sizeof(v)); return v; }
    uint64_t u64() { uint64_t v; raw(&v, sizeof(v)); return v; }

    std::string str();

    /**
     * Validate an element count against the bytes left in the payload:
     * a corrupt count must throw with a diagnostic here, not OOM in a
     * reserve() or spin reading garbage.
     */
    uint64_t count(uint64_t n, size_t min_elem_bytes, const char *name);

    /** Throws unless the whole payload has been consumed. */
    void expectEof();

  private:
    std::string_view buf_;
    size_t pos_ = 0;
    // Owned, not a reference: callers routinely pass temporaries
    // (format(...), path accessors) as the context.
    std::string context_;
    const char *what_;
};

/**
 * Whole file as bytes. On failure returns an empty string with *@p why
 * set (and *@p why cleared on success, so callers can test it).
 */
std::string readFileBytes(const std::string &path, std::string *why);

/**
 * Write @p bytes to @p path atomically: a uniquely named temp file
 * (two writers racing to one path never interleave) renamed into
 * place. fatal() on I/O errors — a full disk must not publish a
 * truncated file.
 */
void writeFileAtomically(const std::string &path,
                         const std::string &bytes);

/**
 * A file's bytes, mmap'd when that pays and plain-read otherwise.
 *
 * Large immutable files (profile store entries, state checkpoints)
 * are parsed once and thrown away; copying them through a std::string
 * first doubles the peak memory and the memcpy cost. MappedBytes maps
 * files at or above a threshold read-only and falls back to an owned
 * read — small files (where two syscalls beat page-fault setup),
 * filesystems that refuse mmap, or a forced mode — so callers always
 * get a std::string_view and never care which path produced it.
 *
 * The store's write discipline (unique temp + rename, never rewrite
 * in place) is what makes read-only mapping safe: a concurrent
 * re-insert replaces the directory entry, while the mapping keeps the
 * old inode's bytes alive until close().
 */
class MappedBytes
{
  public:
    enum class Mode
    {
        Auto, ///< mmap at/above the threshold, read below it.
        Map,  ///< Force mmap (still falls back if mmap fails).
        Read, ///< Force a plain read.
    };

    /** Auto threshold: below this, a plain read wins. */
    static constexpr size_t kMapThresholdBytes = 64 * 1024;

    MappedBytes() = default;
    MappedBytes(MappedBytes &&other) noexcept { *this = std::move(other); }
    MappedBytes &operator=(MappedBytes &&other) noexcept;
    MappedBytes(const MappedBytes &) = delete;
    MappedBytes &operator=(const MappedBytes &) = delete;
    ~MappedBytes() { close(); }

    /**
     * Open @p path and make its bytes available via view(). False
     * with *@p why set on I/O failure (*why cleared on success).
     */
    bool open(const std::string &path, std::string *why,
              Mode mode = Mode::Auto);

    /** The file's bytes; valid until close() or destruction. */
    std::string_view view() const { return view_; }

    /** True when view() aliases an mmap'd region (not a copy). */
    bool mapped() const { return map_ != nullptr; }

    /** Unmap / free; view() becomes empty. */
    void close();

  private:
    std::string owned_;
    void *map_ = nullptr;
    size_t map_len_ = 0;
    std::string_view view_;
};

/**
 * An flock(2)-based advisory file lock — the cross-process mutex
 * guarding the profile store's index appends and gc. The lock file is
 * created on first use and never deleted (deleting a lock file is the
 * classic unlink/flock race). Within one process, callers still need
 * their own mutex: flock is per open file description, and one
 * FileLock holds one.
 */
class FileLock
{
  public:
    /** Lazily opens (creating) @p path on the first Guard. */
    explicit FileLock(std::string path) : path_(std::move(path)) {}
    ~FileLock();
    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    /** Scoped shared/exclusive hold; fatal() on open failure. */
    class Guard
    {
      public:
        Guard(FileLock &lock, bool exclusive);
        ~Guard();
        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;

        /** Nanoseconds this guard blocked acquiring the lock. */
        uint64_t waitNs() const { return wait_ns_; }

      private:
        FileLock &lock_;
        uint64_t wait_ns_ = 0;
    };

  private:
    int fd();

    std::string path_;
    int fd_ = -1;
};

/**
 * Frame @p body as one append-only log record: @p magic, body length,
 * body checksum, body. The framing the aggregator state journal and
 * the profile store index share — appends are the one write that
 * cannot be atomic, and the checksum turns a torn or interleaved
 * append into a detectable, droppable tail instead of silent
 * corruption.
 */
std::string frameRecord(uint64_t magic, const std::string &body);

/** Bytes of the frame header frameRecord() prepends. */
constexpr size_t kRecordHeaderBytes = 24;

/**
 * Walk framed records in @p bytes from @p offset, calling @p fn on
 * each body that passes its checksum; @p fn returning false stops the
 * scan (its record is not counted as consumed). Returns the offset
 * one past the last cleanly consumed record. When that is short of
 * bytes.size(), *@p why (optional) describes the damage — a torn
 * append, a checksum failure, a foreign magic.
 */
size_t scanRecords(std::string_view bytes, uint64_t magic, size_t offset,
                   const std::function<bool(std::string_view)> &fn,
                   std::string *why = nullptr);

} // namespace hbbp

#endif // HBBP_SUPPORT_BYTES_HH
