// Counter<Key> is header-only; this translation unit exists so the support
// library always has at least this object and to host explicit
// instantiations for the most common key types (compile-time check that the
// template is well-formed for them).

#include "support/histogram.hh"

#include <cstdint>
#include <string>

namespace hbbp {

template class Counter<std::string>;
template class Counter<uint64_t>;
template class Counter<int>;

} // namespace hbbp
