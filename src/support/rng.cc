#include "support/rng.hh"

#include <cmath>

#include "support/logging.hh"

namespace hbbp {

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
fnv1a(const void *data, size_t len)
{
    const unsigned char *bytes = static_cast<const unsigned char *>(data);
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < len; i++) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    // Expand the seed with splitmix64 as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto &s : s_) {
        x = splitmix64(x);
        s = x;
    }
    // xoshiro must not be seeded with all zeros.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x9e3779b97f4a7c15ULL;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBelow called with bound 0");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange: lo %lld > hi %lld",
              static_cast<long long>(lo), static_cast<long long>(hi));
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 high-quality bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::nextGaussian(double mean, double stddev)
{
    // Irwin-Hall approximation with 4 uniforms: variance 4/12 = 1/3.
    double sum = nextDouble() + nextDouble() + nextDouble() + nextDouble();
    double unit = (sum - 2.0) * std::sqrt(3.0); // ~N(0, 1)
    return mean + stddev * unit;
}

uint64_t
Rng::nextGeometric(double p)
{
    if (p <= 0.0)
        panic("Rng::nextGeometric requires p > 0");
    if (p >= 1.0)
        return 0;
    double u = nextDouble();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<uint64_t>(std::log(u) / std::log1p(-p));
}

Rng
Rng::fork(uint64_t stream_id) const
{
    return Rng(splitmix64(s_[0] ^ splitmix64(stream_id)));
}

} // namespace hbbp
