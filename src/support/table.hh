/**
 * @file
 * ASCII / CSV table rendering.
 *
 * Every bench binary regenerating a paper table or figure uses TextTable so
 * that output is uniform and machine-diffable.
 */

#ifndef HBBP_SUPPORT_TABLE_HH
#define HBBP_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace hbbp {

/** Column alignment for TextTable. */
enum class Align { Left, Right };

/** A simple text table with a header row and aligned columns. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Set per-column alignment; default is Left. */
    void setAlign(size_t col, Align align);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Number of data rows (separators excluded). */
    size_t rowCount() const;

    /** Render with box-drawing in plain ASCII. */
    std::string render() const;

    /** Render as CSV (RFC-4180-style quoting of commas and quotes). */
    std::string renderCsv() const;

    /** The column headers, as constructed. */
    const std::vector<std::string> &headers() const { return headers_; }

    /** The data rows in order, separators excluded. */
    std::vector<std::vector<std::string>> dataRows() const;

  private:
    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    // A row with zero cells encodes a separator.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hbbp

#endif // HBBP_SUPPORT_TABLE_HH
