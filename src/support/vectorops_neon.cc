/**
 * NEON vectorops backend — the aarch64 side of the dispatch seam.
 *
 * Guarded like the AVX TUs: real kernels on aarch64 (NEON is baseline
 * there, so no extra compile flags are needed), a nullptr-returning
 * stub on every other architecture. The same bit-stability contract
 * applies — eight stride-8 lanes as four 2-wide vectors, the fixed
 * reduction tree, no FMA (vmulq + vaddq, never vfmaq), and the max
 * lane rule implemented as compare-and-select so NaN/tie behavior
 * matches the scalar reference rather than vmaxq's IEEE semantics.
 */

#include "support/vectorops_tables.hh"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>
#include <cmath>

namespace hbbp::detail {

namespace {

double
reduceLanes(const double lane[8])
{
    return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
           ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

double
neonSum(const double *x, size_t n)
{
    float64x2_t a0 = vdupq_n_f64(0.0), a1 = vdupq_n_f64(0.0);
    float64x2_t a2 = vdupq_n_f64(0.0), a3 = vdupq_n_f64(0.0);
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8) {
        a0 = vaddq_f64(a0, vld1q_f64(x + i));
        a1 = vaddq_f64(a1, vld1q_f64(x + i + 2));
        a2 = vaddq_f64(a2, vld1q_f64(x + i + 4));
        a3 = vaddq_f64(a3, vld1q_f64(x + i + 6));
    }
    double lane[8];
    vst1q_f64(lane, a0);
    vst1q_f64(lane + 2, a1);
    vst1q_f64(lane + 4, a2);
    vst1q_f64(lane + 6, a3);
    for (size_t i = nb; i < n; i++)
        lane[i - nb] += x[i];
    return reduceLanes(lane);
}

double
neonDot(const double *x, const double *y, size_t n)
{
    float64x2_t a0 = vdupq_n_f64(0.0), a1 = vdupq_n_f64(0.0);
    float64x2_t a2 = vdupq_n_f64(0.0), a3 = vdupq_n_f64(0.0);
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8) {
        a0 = vaddq_f64(a0, vmulq_f64(vld1q_f64(x + i),
                                     vld1q_f64(y + i)));
        a1 = vaddq_f64(a1, vmulq_f64(vld1q_f64(x + i + 2),
                                     vld1q_f64(y + i + 2)));
        a2 = vaddq_f64(a2, vmulq_f64(vld1q_f64(x + i + 4),
                                     vld1q_f64(y + i + 4)));
        a3 = vaddq_f64(a3, vmulq_f64(vld1q_f64(x + i + 6),
                                     vld1q_f64(y + i + 6)));
    }
    double lane[8];
    vst1q_f64(lane, a0);
    vst1q_f64(lane + 2, a1);
    vst1q_f64(lane + 4, a2);
    vst1q_f64(lane + 6, a3);
    for (size_t i = nb; i < n; i++)
        lane[i - nb] += x[i] * y[i];
    return reduceLanes(lane);
}

void
neonSaxpy(double *y, double a, const double *x, size_t n)
{
    float64x2_t va = vdupq_n_f64(a);
    size_t nb = n & ~static_cast<size_t>(1);
    for (size_t i = 0; i < nb; i += 2)
        vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i),
                                   vmulq_f64(va, vld1q_f64(x + i))));
    for (size_t i = nb; i < n; i++)
        y[i] = y[i] + a * x[i];
}

void
neonScale(double *x, double a, size_t n)
{
    float64x2_t va = vdupq_n_f64(a);
    size_t nb = n & ~static_cast<size_t>(1);
    for (size_t i = 0; i < nb; i += 2)
        vst1q_f64(x + i, vmulq_f64(vld1q_f64(x + i), va));
    for (size_t i = nb; i < n; i++)
        x[i] *= a;
}

void
neonScaledCopy(double *dst, const double *src, double a, size_t n)
{
    float64x2_t va = vdupq_n_f64(a);
    size_t nb = n & ~static_cast<size_t>(1);
    for (size_t i = 0; i < nb; i += 2)
        vst1q_f64(dst + i, vmulq_f64(va, vld1q_f64(src + i)));
    for (size_t i = nb; i < n; i++)
        dst[i] = a * src[i];
}

/** lane = lane > x ? lane : x as compare-and-select. */
float64x2_t
maxLane(float64x2_t acc, float64x2_t v)
{
    return vbslq_f64(vcgtq_f64(acc, v), acc, v);
}

double
neonMax(const double *x, size_t n)
{
    float64x2_t m0 = vdupq_n_f64(-HUGE_VAL), m1 = vdupq_n_f64(-HUGE_VAL);
    float64x2_t m2 = vdupq_n_f64(-HUGE_VAL), m3 = vdupq_n_f64(-HUGE_VAL);
    size_t nb = n & ~static_cast<size_t>(7);
    for (size_t i = 0; i < nb; i += 8) {
        m0 = maxLane(m0, vld1q_f64(x + i));
        m1 = maxLane(m1, vld1q_f64(x + i + 2));
        m2 = maxLane(m2, vld1q_f64(x + i + 4));
        m3 = maxLane(m3, vld1q_f64(x + i + 6));
    }
    double lane[8];
    vst1q_f64(lane, m0);
    vst1q_f64(lane + 2, m1);
    vst1q_f64(lane + 4, m2);
    vst1q_f64(lane + 6, m3);
    for (size_t i = nb; i < n; i++)
        lane[i - nb] = lane[i - nb] > x[i] ? lane[i - nb] : x[i];
    auto op = [](double u, double v) { return u > v ? u : v; };
    return op(op(op(lane[0], lane[1]), op(lane[2], lane[3])),
              op(op(lane[4], lane[5]), op(lane[6], lane[7])));
}

size_t
neonAccumulateSatU64(uint64_t *dst, const uint64_t *src, size_t n)
{
    size_t saturated = 0;
    size_t nb = n & ~static_cast<size_t>(1);
    for (size_t i = 0; i < nb; i += 2) {
        uint64x2_t d = vld1q_u64(dst + i);
        uint64x2_t s = vld1q_u64(src + i);
        uint64x2_t r = vaddq_u64(d, s);
        // A wrapped unsigned sum is strictly below the addend; the
        // all-ones compare mask OR-ed in clamps those lanes.
        uint64x2_t wrapped = vcltq_u64(r, s);
        r = vorrq_u64(r, wrapped);
        vst1q_u64(dst + i, r);
        saturated += (vgetq_lane_u64(wrapped, 0) ? 1 : 0) +
                     (vgetq_lane_u64(wrapped, 1) ? 1 : 0);
    }
    for (size_t i = nb; i < n; i++) {
        uint64_t r = dst[i] + src[i];
        if (r < src[i]) {
            r = UINT64_MAX;
            saturated++;
        }
        dst[i] = r;
    }
    return saturated;
}

void
neonBucketCounts(const uint64_t *x, size_t n, const uint64_t *bounds,
                 size_t nbounds, uint64_t *counts)
{
    // One v <= bound sweep per bound: vcleq_u64 yields all-ones
    // lanes, so shifting each lane down to 1 and adding counts two
    // values per vector step.
    size_t nb = n & ~static_cast<size_t>(1);
    uint64_t prev_le = 0;
    for (size_t b = 0; b < nbounds; b++) {
        uint64x2_t vb = vdupq_n_u64(bounds[b]);
        uint64_t le = 0;
        for (size_t i = 0; i < nb; i += 2) {
            uint64x2_t m = vcleq_u64(vld1q_u64(x + i), vb);
            le += vgetq_lane_u64(vshrq_n_u64(m, 63), 0) +
                  vgetq_lane_u64(vshrq_n_u64(m, 63), 1);
        }
        for (size_t i = nb; i < n; i++)
            le += x[i] <= bounds[b] ? 1 : 0;
        counts[b] = le - prev_le;
        prev_le = le;
    }
    counts[nbounds] = n - prev_le;
}

constexpr VectorOpsTable kNeonTable = {
    neonSum,  neonDot, neonSaxpy,
    neonScale, neonScaledCopy, neonMax,
    neonAccumulateSatU64, neonBucketCounts,
};

} // namespace

const VectorOpsTable *
vectorOpsNeonTable()
{
    return &kNeonTable;
}

} // namespace hbbp::detail

#else // Not aarch64 — the stub half of the guarded TU.

namespace hbbp::detail {

const VectorOpsTable *
vectorOpsNeonTable()
{
    return nullptr;
}

} // namespace hbbp::detail

#endif
