/**
 * @file
 * Small statistics helpers used by the analyzer and the ML trainer.
 */

#ifndef HBBP_SUPPORT_STATS_HH
#define HBBP_SUPPORT_STATS_HH

#include <cstddef>
#include <vector>

namespace hbbp {

/**
 * Streaming accumulator for mean / variance / extrema (Welford's method).
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Add one weighted observation. */
    void addWeighted(double x, double weight);

    /** Number of (unweighted) observations. */
    size_t count() const { return count_; }

    /** Sum of weights (== count() when unweighted). */
    double totalWeight() const { return weight_; }

    /** Weighted mean; 0 when empty. */
    double mean() const;

    /** Weighted population variance; 0 when fewer than 2 samples. */
    double variance() const;

    /** Square root of variance(). */
    double stddev() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }

    /** Largest observation; -inf when empty. */
    double max() const { return max_; }

    /** Sum of x * weight. */
    double weightedSum() const { return mean_ * weight_; }

  private:
    size_t count_ = 0;
    double weight_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    bool has_any_ = false;
};

/** Arithmetic mean of a vector; 0 when empty. Folds via vectorops. */
double mean(const std::vector<double> &xs);

/**
 * Population variance of a vector; 0 with fewer than 2 samples.
 * Two-pass (mean, then centered squares), both folds via vectorops,
 * so the result is bit-identical across SIMD backends.
 */
double variance(const std::vector<double> &xs);

/** Square root of variance(xs). */
double stddev(const std::vector<double> &xs);

/**
 * Percentile via linear interpolation between closest ranks.
 *
 * @param xs  samples (need not be sorted; copied internally)
 * @param p   percentile in [0, 100]
 */
double percentile(std::vector<double> xs, double p);

/** Geometric mean; requires strictly positive inputs, 0 when empty. */
double geomean(const std::vector<double> &xs);

} // namespace hbbp

#endif // HBBP_SUPPORT_STATS_HH
