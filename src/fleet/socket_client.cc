#include "fleet/socket_client.hh"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "support/logging.hh"

namespace hbbp {

int64_t
steadyNowMs()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

void
netSetIoTimeout(int fd, int timeout_ms)
{
    struct timeval tv;
    tv.tv_sec = timeout_ms / 1'000;
    tv.tv_usec = (timeout_ms % 1'000) * 1'000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

int
netConnectWithDeadline(int fd, const struct sockaddr *addr,
                       socklen_t addrlen, int timeout_ms)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, addr, addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
        struct pollfd pfd = {fd, POLLOUT, 0};
        rc = ::poll(&pfd, 1, timeout_ms);
        if (rc == 1) {
            int err = 0;
            socklen_t len = sizeof(err);
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
            if (err == 0) {
                rc = 0;
            } else {
                errno = err;
                rc = -1;
            }
        } else {
            if (rc == 0)
                errno = ETIMEDOUT;
            rc = -1;
        }
    }
    if (rc == 0)
        ::fcntl(fd, F_SETFL, flags);
    return rc;
}

int
netConnect(const std::string &host, uint16_t port, int io_timeout_ms,
           std::string *why)
{
    struct addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *addrs = nullptr;
    std::string service = format("%u", port);
    int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                           &addrs);
    if (rc != 0) {
        *why = format("cannot resolve '%s': %s", host.c_str(),
                      ::gai_strerror(rc));
        return -1;
    }
    int fd = -1;
    for (struct addrinfo *a = addrs; a; a = a->ai_next) {
        fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
        if (fd < 0)
            continue;
        if (netConnectWithDeadline(fd, a->ai_addr, a->ai_addrlen,
                                   io_timeout_ms) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(addrs);
    if (fd < 0) {
        *why = format("cannot connect to %s:%u: %s", host.c_str(),
                      port, std::strerror(errno));
        return -1;
    }
    netSetIoTimeout(fd, io_timeout_ms);
    return fd;
}

bool
netWriteAll(int fd, const void *data, size_t size, int timeout_ms)
{
    using clock = std::chrono::steady_clock;
    clock::time_point deadline =
        clock::now() + std::chrono::milliseconds(timeout_ms);
    const char *p = static_cast<const char *>(data);
    while (size > 0) {
        ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
        if (n > 0) {
            p += n;
            size -= static_cast<size_t>(n);
            deadline =
                clock::now() + std::chrono::milliseconds(timeout_ms);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (clock::now() >= deadline)
                return false;
            struct pollfd pfd = {fd, POLLOUT, 0};
            if (::poll(&pfd, 1, 100) < 0 && errno != EINTR)
                return false;
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
netReadFull(int fd, void *data, size_t size)
{
    char *p = static_cast<char *>(data);
    while (size > 0) {
        ssize_t n = ::recv(fd, p, size, 0);
        if (n > 0) {
            p += n;
            size -= static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace hbbp
