#include "fleet/query.hh"

#include <unistd.h>

#include <cstring>

#include "fleet/socket_client.hh"
#include "support/bytes.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

namespace hbbp {

std::string
encodeQueryFrame(const std::string &body)
{
    ByteWriter w;
    w.u64(kQueryFrameMagic);
    w.u32(static_cast<uint32_t>(body.size()));
    std::string frame = w.bytes();
    frame += body;
    return frame;
}

std::string
renderQueryReplyBody(const QueryReply &reply)
{
    std::string out = "hbbp-reply/1\n";
    out += format("status=%s\n", reply.ok ? "ok" : "error");
    out += format("epoch=%llu\n",
                  static_cast<unsigned long long>(reply.epoch));
    out += format("cached=%d\n", reply.cached ? 1 : 0);
    if (!reply.ok) {
        // Header values are single-line by construction.
        std::string error = reply.error;
        for (char &c : error)
            if (c == '\n')
                c = ' ';
        out += "error=" + error + "\n";
    }
    out += "\n";
    out += reply.payload;
    return out;
}

bool
parseQueryReplyBody(const std::string &body, QueryReply *reply,
                    std::string *why)
{
    size_t sep = body.find("\n\n");
    if (sep == std::string::npos) {
        *why = "malformed reply: missing blank line after headers";
        return false;
    }
    std::vector<std::string> headers =
        split(body.substr(0, sep), '\n');
    reply->payload = body.substr(sep + 2);

    if (headers.empty() || headers[0] != "hbbp-reply/1") {
        *why = format("malformed reply: unexpected version line '%s'",
                      headers.empty() ? "" : headers[0].c_str());
        return false;
    }
    bool have_status = false, have_epoch = false;
    for (size_t i = 1; i < headers.size(); i++) {
        const std::string &line = headers[i];
        size_t eq = line.find('=');
        if (eq == std::string::npos || eq == 0) {
            *why = format("malformed reply header '%s'", line.c_str());
            return false;
        }
        std::string key = line.substr(0, eq);
        std::string value = line.substr(eq + 1);
        if (key == "status") {
            if (value != "ok" && value != "error") {
                *why = format("malformed reply status '%s'",
                              value.c_str());
                return false;
            }
            reply->ok = value == "ok";
            have_status = true;
        } else if (key == "epoch") {
            char *end = nullptr;
            reply->epoch = std::strtoull(value.c_str(), &end, 10);
            if (value.empty() || *end != '\0') {
                *why = format("malformed reply epoch '%s'",
                              value.c_str());
                return false;
            }
            have_epoch = true;
        } else if (key == "cached") {
            reply->cached = value == "1";
        } else if (key == "error") {
            reply->error = value;
        }
        // Unknown headers are skipped: a newer server may add some.
    }
    if (!have_status || !have_epoch) {
        *why = "malformed reply: missing status/epoch headers";
        return false;
    }
    return true;
}

std::string
queryErrorReplyBody(const std::string &error)
{
    QueryReply reply;
    reply.error = error;
    return renderQueryReplyBody(reply);
}

// ---------------------------------------------------------------------------
// QueryClient.
// ---------------------------------------------------------------------------

QueryClient::QueryClient(std::string host, uint16_t port,
                         int io_timeout_ms)
    : host_(std::move(host)), port_(port),
      io_timeout_ms_(io_timeout_ms)
{
}

QueryClient::~QueryClient()
{
    disconnect();
}

void
QueryClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
QueryClient::ensureConnected(std::string *why)
{
    if (fd_ >= 0)
        return true;
    fd_ = netConnect(host_, port_, io_timeout_ms_, why);
    return fd_ >= 0;
}

bool
QueryClient::query(const std::string &request_body, QueryReply *reply,
                   std::string *why)
{
    if (request_body.empty() ||
        request_body.size() > kMaxQueryBodyBytes) {
        *why = format("query body size %zu out of range (max %zu)",
                      request_body.size(), kMaxQueryBodyBytes);
        return false;
    }
    if (!ensureConnected(why))
        return false;

    std::string frame = encodeQueryFrame(request_body);
    if (!netWriteAll(fd_, frame.data(), frame.size(),
                     io_timeout_ms_)) {
        disconnect();
        *why = format("cannot send query to %s:%u: %s", host_.c_str(),
                      port_, std::strerror(errno));
        return false;
    }

    char header[kQueryFrameHeaderBytes];
    if (!netReadFull(fd_, header, sizeof(header))) {
        disconnect();
        *why = format("no reply from %s:%u (connection closed or "
                      "timed out)", host_.c_str(), port_);
        return false;
    }
    uint64_t magic;
    uint32_t body_len;
    std::memcpy(&magic, header, 8);
    std::memcpy(&body_len, header + 8, 4);
    if (magic != kQueryReplyMagic || body_len == 0 ||
        body_len > kMaxQueryBodyBytes) {
        disconnect();
        *why = format("malformed reply frame from %s:%u",
                      host_.c_str(), port_);
        return false;
    }
    std::string body(body_len, '\0');
    if (!netReadFull(fd_, body.data(), body.size())) {
        disconnect();
        *why = format("truncated reply from %s:%u", host_.c_str(),
                      port_);
        return false;
    }
    if (!parseQueryReplyBody(body, reply, why)) {
        disconnect();
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// AggregatorProfileSource.
// ---------------------------------------------------------------------------

std::vector<HostSlice>
AggregatorProfileSource::hostSlices() const
{
    std::vector<HostSlice> slices;
    for (const IncrementalAggregator::HostProgress &c :
         agg_.hostProgress())
        slices.push_back({c.host, c.covered, c.pending});
    return slices;
}

// ---------------------------------------------------------------------------
// QueryEndpoint.
// ---------------------------------------------------------------------------

std::string
QueryEndpoint::handle(const std::string &request_body)
{
    static telemetry::Histogram &m_serve_ms = telemetry::histogram(
        "hbbp_query_serve_ms", telemetry::latencyBucketsMs());
    int64_t start_ms = steadyNowMs();

    QueryReply reply;
    std::string why;
    std::optional<QueryRequest> request =
        QueryRequest::parseText(request_body, &why);
    if (!request) {
        reply.epoch = service_.epoch();
        reply.error = why;
    } else if (request->verb == "shutdown") {
        // Transport-level: acknowledged here, the listener's
        // should_stop hook observes stopRequested() next poll round.
        stop_ = true;
        reply.ok = true;
        reply.epoch = service_.epoch();
        reply.payload = "shutting down\n";
    } else {
        QueryResult result = service_.serve(*request);
        reply.ok = result.error.empty();
        reply.epoch = result.epoch;
        reply.cached = result.cached;
        reply.error = result.error;
        if (reply.ok) {
            // serve() validated the format parameter.
            reply.payload = result.render(*renderFormatFromName(
                request->param("format", "text")));
        }
    }
    m_serve_ms.observe(
        static_cast<uint64_t>(steadyNowMs() - start_ms));
    return renderQueryReplyBody(reply);
}

} // namespace hbbp
