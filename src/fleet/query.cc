#include "fleet/query.hh"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "fleet/socket_client.hh"
#include "support/bytes.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

namespace hbbp {

std::string
encodeQueryFrame(const std::string &body)
{
    ByteWriter w;
    w.u64(kQueryFrameMagic);
    w.u32(static_cast<uint32_t>(body.size()));
    std::string frame = w.bytes();
    frame += body;
    return frame;
}

std::string
renderQueryReplyBody(const QueryReply &reply)
{
    std::string out = "hbbp-reply/1\n";
    out += format("status=%s\n", reply.ok ? "ok" : "error");
    out += format("epoch=%llu\n",
                  static_cast<unsigned long long>(reply.epoch));
    out += format("cached=%d\n", reply.cached ? 1 : 0);
    if (reply.has_timing)
        out += format(
            "timing=parse:%llu,cache:%llu,analysis:%llu,render:%llu\n",
            static_cast<unsigned long long>(reply.parse_ns),
            static_cast<unsigned long long>(reply.cache_ns),
            static_cast<unsigned long long>(reply.analysis_ns),
            static_cast<unsigned long long>(reply.render_ns));
    if (!reply.trace_id.empty())
        out += "trace=" + reply.trace_id + "\n";
    if (!reply.ok) {
        // Header values are single-line by construction.
        std::string error = reply.error;
        for (char &c : error)
            if (c == '\n')
                c = ' ';
        out += "error=" + error + "\n";
    }
    out += "\n";
    out += reply.payload;
    return out;
}

bool
parseQueryReplyBody(const std::string &body, QueryReply *reply,
                    std::string *why)
{
    size_t sep = body.find("\n\n");
    if (sep == std::string::npos) {
        *why = "malformed reply: missing blank line after headers";
        return false;
    }
    std::vector<std::string> headers =
        split(body.substr(0, sep), '\n');
    reply->payload = body.substr(sep + 2);

    if (headers.empty() || headers[0] != "hbbp-reply/1") {
        *why = format("malformed reply: unexpected version line '%s'",
                      headers.empty() ? "" : headers[0].c_str());
        return false;
    }
    bool have_status = false, have_epoch = false;
    for (size_t i = 1; i < headers.size(); i++) {
        const std::string &line = headers[i];
        size_t eq = line.find('=');
        if (eq == std::string::npos || eq == 0) {
            *why = format("malformed reply header '%s'", line.c_str());
            return false;
        }
        std::string key = line.substr(0, eq);
        std::string value = line.substr(eq + 1);
        if (key == "status") {
            if (value != "ok" && value != "error") {
                *why = format("malformed reply status '%s'",
                              value.c_str());
                return false;
            }
            reply->ok = value == "ok";
            have_status = true;
        } else if (key == "epoch") {
            char *end = nullptr;
            reply->epoch = std::strtoull(value.c_str(), &end, 10);
            if (value.empty() || *end != '\0') {
                *why = format("malformed reply epoch '%s'",
                              value.c_str());
                return false;
            }
            have_epoch = true;
        } else if (key == "cached") {
            reply->cached = value == "1";
        } else if (key == "timing") {
            // Tolerant parse: unknown phases are skipped so the
            // header can grow phases without breaking old clients.
            for (const std::string &part : split(value, ',')) {
                size_t colon = part.find(':');
                if (colon == std::string::npos)
                    continue;
                std::string phase = part.substr(0, colon);
                uint64_t ns = std::strtoull(
                    part.c_str() + colon + 1, nullptr, 10);
                if (phase == "parse")
                    reply->parse_ns = ns;
                else if (phase == "cache")
                    reply->cache_ns = ns;
                else if (phase == "analysis")
                    reply->analysis_ns = ns;
                else if (phase == "render")
                    reply->render_ns = ns;
            }
            reply->has_timing = true;
        } else if (key == "trace") {
            reply->trace_id = value;
        } else if (key == "error") {
            reply->error = value;
        }
        // Unknown headers are skipped: a newer server may add some.
    }
    if (!have_status || !have_epoch) {
        *why = "malformed reply: missing status/epoch headers";
        return false;
    }
    return true;
}

std::string
queryErrorReplyBody(const std::string &error)
{
    QueryReply reply;
    reply.error = error;
    return renderQueryReplyBody(reply);
}

// ---------------------------------------------------------------------------
// QueryClient.
// ---------------------------------------------------------------------------

QueryClient::QueryClient(std::string host, uint16_t port,
                         int io_timeout_ms)
    : host_(std::move(host)), port_(port),
      io_timeout_ms_(io_timeout_ms)
{
}

QueryClient::~QueryClient()
{
    disconnect();
}

void
QueryClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
QueryClient::ensureConnected(std::string *why)
{
    if (fd_ >= 0)
        return true;
    fd_ = netConnect(host_, port_, io_timeout_ms_, why);
    return fd_ >= 0;
}

bool
QueryClient::query(const std::string &request_body, QueryReply *reply,
                   std::string *why)
{
    if (request_body.empty() ||
        request_body.size() > kMaxQueryBodyBytes) {
        *why = format("query body size %zu out of range (max %zu)",
                      request_body.size(), kMaxQueryBodyBytes);
        return false;
    }
    if (!ensureConnected(why))
        return false;

    std::string frame = encodeQueryFrame(request_body);
    if (!netWriteAll(fd_, frame.data(), frame.size(),
                     io_timeout_ms_)) {
        disconnect();
        *why = format("cannot send query to %s:%u: %s", host_.c_str(),
                      port_, std::strerror(errno));
        return false;
    }

    char header[kQueryFrameHeaderBytes];
    if (!netReadFull(fd_, header, sizeof(header))) {
        disconnect();
        *why = format("no reply from %s:%u (connection closed or "
                      "timed out)", host_.c_str(), port_);
        return false;
    }
    uint64_t magic;
    uint32_t body_len;
    std::memcpy(&magic, header, 8);
    std::memcpy(&body_len, header + 8, 4);
    if (magic != kQueryReplyMagic || body_len == 0 ||
        body_len > kMaxQueryBodyBytes) {
        disconnect();
        *why = format("malformed reply frame from %s:%u",
                      host_.c_str(), port_);
        return false;
    }
    std::string body(body_len, '\0');
    if (!netReadFull(fd_, body.data(), body.size())) {
        disconnect();
        *why = format("truncated reply from %s:%u", host_.c_str(),
                      port_);
        return false;
    }
    if (!parseQueryReplyBody(body, reply, why)) {
        disconnect();
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// AggregatorProfileSource.
// ---------------------------------------------------------------------------

std::vector<HostSlice>
AggregatorProfileSource::hostSlices() const
{
    std::vector<HostSlice> slices;
    for (const IncrementalAggregator::HostProgress &c :
         agg_.hostProgress())
        slices.push_back({c.host, c.covered, c.pending});
    return slices;
}

// ---------------------------------------------------------------------------
// QueryEndpoint.
// ---------------------------------------------------------------------------

QueryEndpoint::QueryEndpoint(AnalysisService &service)
    : service_(service)
{
    telemetry::beatEnable(telemetry::Stage::Query);
}

void
QueryEndpoint::setTraceLog(telemetry::TraceLog *trace, std::string node)
{
    trace_ = trace;
    trace_node_ = std::move(node);
}

namespace {

/** Steady-clock nanoseconds for the per-query timing header. */
int64_t
queryNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

std::string
QueryEndpoint::handle(const std::string &request_body)
{
    static telemetry::Histogram &m_serve_ms = telemetry::histogram(
        "hbbp_query_serve_ms", telemetry::latencyBucketsMs());
    int64_t start_ms = steadyNowMs();
    int64_t t0 = queryNowNs();

    QueryReply reply;
    reply.has_timing = true;
    std::string why;
    std::optional<QueryRequest> request =
        QueryRequest::parseText(request_body, &why);
    int64_t t_parsed = queryNowNs();
    reply.parse_ns = static_cast<uint64_t>(t_parsed - t0);
    std::string verb = "?";
    if (!request) {
        reply.epoch = service_.epoch();
        reply.error = why;
    } else if (request->verb == "shutdown") {
        // Transport-level: acknowledged here, the listener's
        // should_stop hook observes stopRequested() next poll round.
        verb = request->verb;
        stop_ = true;
        reply.ok = true;
        reply.epoch = service_.epoch();
        reply.payload = "shutting down\n";
    } else {
        verb = request->verb;
        ServeTiming timing;
        QueryResult result = service_.serve(*request, &timing);
        reply.cache_ns = timing.cache_ns;
        reply.analysis_ns = timing.analysis_ns;
        reply.ok = result.error.empty();
        reply.epoch = result.epoch;
        reply.cached = result.cached;
        reply.error = result.error;
        if (reply.ok) {
            int64_t t_render = queryNowNs();
            // serve() validated the format parameter.
            reply.payload = result.render(*renderFormatFromName(
                request->param("format", "text")));
            reply.render_ns =
                static_cast<uint64_t>(queryNowNs() - t_render);
        }
    }
    // The query's join point into the shard-lifecycle trace: one
    // query_serve span on the daemon's own timeline, id echoed in the
    // reply so the caller can find it.
    if (trace_ && trace_->active()) {
        reply.trace_id = format(
            "query-%s-%llu", trace_node_.c_str(),
            static_cast<unsigned long long>(++query_seq_));
        trace_->span("query_serve", reply.trace_id,
                     format("verb %s epoch %llu cached %d",
                            verb.c_str(),
                            static_cast<unsigned long long>(
                                reply.epoch),
                            reply.cached ? 1 : 0));
    }
    telemetry::beat(telemetry::Stage::Query);
    m_serve_ms.observe(
        static_cast<uint64_t>(steadyNowMs() - start_ms));
    return renderQueryReplyBody(reply);
}

} // namespace hbbp
