#include "fleet/transport.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <thread>
#include <utility>

#include "fleet/merge.hh"
#include "fleet/query.hh"
#include "fleet/socket_client.hh"
#include "support/bytes.hh"
#include "support/events.hh"
#include "support/logging.hh"
#include "support/telemetry.hh"

namespace hbbp {

namespace {

// One frame on the wire: a fixed header, the manifest text, then the
// chunk payload (a self-validating serialized profile). Everything is
// length-prefixed so the receiver never scans for delimiters in
// binary data.
//
//   u64 magic          kFrameMagic
//   u32 manifest_len   bytes of manifest text following the header
//   u32 chunk_index    0-based position of this chunk in the shard
//   u32 chunk_count    total chunks in the shard (>= 1)
//   u64 payload_len    bytes of chunk payload after the manifest
constexpr uint64_t kFrameMagic = 0x48425053'46524d31ULL; // "HBPSFRM1"
constexpr size_t kFrameHeaderBytes = 28;
constexpr uint32_t kMaxManifestBytes = 1u << 20;
constexpr uint64_t kMaxPayloadBytes = 1ull << 30;

/** The receiver's one-byte answer to each frame. */
enum class AckCode : uint8_t {
    ChunkAccepted = 0, ///< Partial chunk verified and staged.
    ShardAccepted = 1, ///< Final chunk folded; the shard is aggregated.
    Duplicate = 2,     ///< Payload already aggregated (retried send).
    Rejected = 3,      ///< Permanent: retrying cannot succeed.
    Incomplete = 4,    ///< Final chunk, but staged chunks are missing
                       ///< (receiver restarted): resend from chunk 0.
};

/** Ack wire format: u8 code, u32 reason_len, reason bytes. */
constexpr size_t kAckHeaderBytes = 5;

// The byte-moving primitives (deadline connect, progress-bounded
// writes, exact reads, IO timeouts) live in fleet/socket_client.hh —
// one copy shared with the metrics fetcher and the query client.

std::string
renderFrame(const ShardManifest &manifest, uint32_t chunk_index,
            uint32_t chunk_count, const std::string &payload)
{
    // The manifest rides in every frame with the status the *frame*
    // represents: partial while the stream is open, complete on the
    // final chunk — the same state machine a drop directory would see
    // as manifest rewrites.
    ShardManifest framed = manifest;
    framed.status = chunk_index + 1 < chunk_count
                        ? ShardStatus::Partial
                        : ShardStatus::Complete;
    // No file travels with a socket frame, but the manifest format
    // requires the field: synthesize the name a drop-dir export would
    // have used (a receiver-side deposit may reuse it).
    if (framed.profile_file.empty())
        framed.profile_file = format(
            "%s-%u-%016llx.hbbp", framed.host.c_str(), framed.seq,
            static_cast<unsigned long long>(framed.checksum));
    std::string text = framed.render();
    ByteWriter w;
    w.u64(kFrameMagic);
    w.u32(static_cast<uint32_t>(text.size()));
    w.u32(chunk_index);
    w.u32(chunk_count);
    w.u64(payload.size());
    std::string frame = w.bytes();
    frame += text;
    frame += payload;
    return frame;
}

/**
 * Merge parsed chunks in index order into one shard profile, checking
 * compatibility first: a buggy sender streaming incompatible chunks
 * must earn a rejection ack, not fatal() the listener via mergeInto().
 */
std::optional<ProfileData>
tryMergeChunks(std::vector<ProfileData> chunks, std::string *why)
{
    // Module maps accumulate across the stream, so every chunk must be
    // checked against every record seen so far — not just chunk 0 —
    // or a conflict between two later chunks would slip through to
    // mergeInto()'s fatal().
    std::vector<MmapRecord> seen = chunks[0].mmaps;
    for (size_t i = 1; i < chunks.size(); i++) {
        if (!mergeCompatible(chunks[0], chunks[i], why))
            return std::nullopt;
        for (const MmapRecord &rec : chunks[i].mmaps) {
            bool known = false;
            for (const MmapRecord &have : seen) {
                if (have.name != rec.name)
                    continue;
                if (!(have == rec)) {
                    *why = format(
                        "chunks disagree about module '%s' placement",
                        rec.name.c_str());
                    return std::nullopt;
                }
                known = true;
                break;
            }
            if (!known)
                seen.push_back(rec);
        }
    }
    ProfileData merged = std::move(chunks[0]);
    for (size_t i = 1; i < chunks.size(); i++)
        mergeInto(merged, chunks[i]);
    return merged;
}

/**
 * tryMergeChunks() without consuming @p chunks — for the aggregate
 * path, where the per-host partials are still needed after their fold
 * was checksum-verified.
 */
std::optional<ProfileData>
mergeChunksPreserving(const std::vector<ProfileData> &chunks,
                      std::string *why)
{
    std::vector<ProfileData> copies = chunks;
    return tryMergeChunks(std::move(copies), why);
}

} // namespace

// ---------------------------------------------------------------------------
// DropDirTransport.
// ---------------------------------------------------------------------------

SendResult
DropDirTransport::sendShard(const ShardManifest &manifest,
                            const std::vector<std::string> &chunks)
{
    SendResult res;
    res.attempts = 1;
    if (chunks.empty()) {
        res.error = "no chunks to send";
        return res;
    }
    if (manifest.level > 0 || !manifest.covered.empty()) {
        res.error = format(
            "aggregate shards (level %u) travel over the socket "
            "transport: a drop-directory file cannot carry the "
            "per-host chunk split their fold needs", manifest.level);
        return res;
    }

    // A directory has no streaming: reassemble locally and publish one
    // complete shard, exactly like exportShard() always did.
    std::string bytes;
    uint64_t checksum = 0;
    if (chunks.size() == 1) {
        std::string why;
        std::optional<ProfileData> pd =
            ProfileData::parse(chunks[0], "push chunk 0", &why,
                               &checksum);
        if (!pd) {
            res.error = why;
            return res;
        }
        bytes = chunks[0];
    } else {
        std::vector<ProfileData> parsed;
        for (size_t i = 0; i < chunks.size(); i++) {
            std::string why;
            std::optional<ProfileData> pd = ProfileData::parse(
                chunks[i], format("push chunk %zu", i), &why);
            if (!pd) {
                res.error = why;
                return res;
            }
            parsed.push_back(std::move(*pd));
        }
        std::string why;
        std::optional<ProfileData> merged =
            tryMergeChunks(std::move(parsed), &why);
        if (!merged) {
            res.error = why;
            return res;
        }
        bytes = merged->serialize(&checksum);
    }
    if (checksum != manifest.checksum) {
        res.error = format(
            "chunk payload hashes to %016llx but the manifest promises "
            "%016llx", static_cast<unsigned long long>(checksum),
            static_cast<unsigned long long>(manifest.checksum));
        return res;
    }

    std::string base = format(
        "%s-%u-%016llx", manifest.host.c_str(), manifest.seq,
        static_cast<unsigned long long>(manifest.checksum));
    std::error_code ec;
    res.duplicate =
        std::filesystem::exists(dir_ + "/" + base + ".manifest", ec);
    writeShardFiles(manifest, bytes, dir_);
    res.ok = true;
    return res;
}

// ---------------------------------------------------------------------------
// SocketTransport (the sender).
// ---------------------------------------------------------------------------

namespace {

/** Read one ack; false on connection trouble. */
bool
readAck(int fd, AckCode *code, std::string *reason)
{
    uint8_t raw_code;
    uint32_t reason_len;
    char header[kAckHeaderBytes];
    if (!netReadFull(fd, header, sizeof(header)))
        return false;
    std::memcpy(&raw_code, header, 1);
    std::memcpy(&reason_len, header + 1, 4);
    if (raw_code > static_cast<uint8_t>(AckCode::Incomplete) ||
        reason_len > kMaxManifestBytes)
        return false;
    reason->assign(reason_len, '\0');
    if (reason_len > 0 && !netReadFull(fd, reason->data(), reason_len))
        return false;
    *code = static_cast<AckCode>(raw_code);
    return true;
}

} // namespace

SendResult
SocketTransport::sendShard(const ShardManifest &manifest,
                           const std::vector<std::string> &chunks)
{
    SendResult res;
    if (chunks.empty()) {
        res.error = "no chunks to send";
        return res;
    }
    uint32_t chunk_count = static_cast<uint32_t>(chunks.size());
    uint32_t acked = 0; // Chunks the receiver has confirmed staged.
    int backoff_ms = options_.backoff_ms;

    static telemetry::Counter &m_frames_sent =
        telemetry::counter("hbbp_transport_frames_sent_total");
    static telemetry::Counter &m_frames_acked =
        telemetry::counter("hbbp_transport_frames_acked_total");
    static telemetry::Counter &m_retries =
        telemetry::counter("hbbp_transport_retries_total");
    static telemetry::Counter &m_rejects =
        telemetry::counter("hbbp_transport_rejects_total");
    static telemetry::Counter &m_bytes_sent =
        telemetry::counter("hbbp_transport_bytes_sent_total");
    static telemetry::Histogram &m_connect_ms = telemetry::histogram(
        "hbbp_transport_connect_ms", telemetry::latencyBucketsMs());
    static telemetry::Histogram &m_ack_ms = telemetry::histogram(
        "hbbp_transport_ack_ms", telemetry::latencyBucketsMs());

    while (res.attempts < options_.max_attempts) {
        if (res.attempts > 0) {
            m_retries.add();
            events::emit(events::Level::Warn, "push_retry",
                         {{"attempt", format("%d", res.attempts)},
                          {"error", res.error}});
            // Bounded exponential backoff between connection attempts:
            // a briefly absent listener (restarting aggregator) is the
            // expected case, a permanently absent one gives up loudly.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));
            backoff_ms = std::min(backoff_ms * 2,
                                  options_.max_backoff_ms);
        }
        res.attempts++;
        std::string why;
        int64_t connect_start = steadyNowMs();
        int fd = netConnect(options_.host, options_.port,
                           options_.io_timeout_ms, &why);
        if (fd < 0) {
            res.error = why;
            continue;
        }
        m_connect_ms.observe(
            static_cast<uint64_t>(steadyNowMs() - connect_start));

        bool rewound = false; // Only honor one Incomplete per attempt.
        bool conn_dead = false;
        for (uint32_t i = acked; i < chunk_count && !conn_dead;) {
            std::string frame =
                renderFrame(manifest, i, chunk_count, chunks[i]);
            int64_t frame_start = steadyNowMs();
            m_frames_sent.add();
            m_bytes_sent.add(frame.size());
            if (!netWriteAll(fd, frame.data(), frame.size(),
                          options_.io_timeout_ms)) {
                res.error = format("connection to %s:%u lost "
                                   "mid-frame (chunk %u/%u)",
                                   options_.host.c_str(),
                                   options_.port, i, chunk_count);
                conn_dead = true;
                break;
            }
            AckCode code;
            std::string reason;
            if (!readAck(fd, &code, &reason)) {
                res.error = format(
                    "no acknowledgement from %s:%u for chunk %u/%u",
                    options_.host.c_str(), options_.port, i,
                    chunk_count);
                conn_dead = true;
                break;
            }
            m_frames_acked.add();
            m_ack_ms.observe(
                static_cast<uint64_t>(steadyNowMs() - frame_start));
            if (code == AckCode::Rejected)
                m_rejects.add();
            switch (code) {
            case AckCode::ChunkAccepted:
                acked = ++i;
                if (fail_after_chunks >= 0 &&
                    acked >= static_cast<uint32_t>(fail_after_chunks)) {
                    // Test hook: die the way a crashing collector
                    // does — mid-stream, without cleanup.
                    ::close(fd);
                    ::_exit(3);
                }
                break;
            case AckCode::ShardAccepted:
                ::close(fd);
                res.ok = true;
                return res;
            case AckCode::Duplicate:
                ::close(fd);
                res.ok = true;
                res.duplicate = true;
                return res;
            case AckCode::Incomplete:
                // The receiver restarted and lost our staged chunks;
                // resend the stream from the top (duplicates of
                // anything it still has are acked idempotently).
                if (rewound) {
                    res.error = format(
                        "receiver at %s:%u reports an incomplete "
                        "stream even after a full resend",
                        options_.host.c_str(), options_.port);
                    conn_dead = true;
                    break;
                }
                rewound = true;
                acked = 0;
                i = 0;
                break;
            case AckCode::Rejected:
                // Permanent: the same bytes would be rejected again.
                ::close(fd);
                res.error = format("shard rejected by %s:%u: %s",
                                   options_.host.c_str(),
                                   options_.port, reason.c_str());
                return res;
            }
        }
        ::close(fd);
    }
    res.error = format("giving up after %d attempt%s: %s",
                       res.attempts, res.attempts == 1 ? "" : "s",
                       res.error.c_str());
    return res;
}

// ---------------------------------------------------------------------------
// ShardListener (the receiver).
// ---------------------------------------------------------------------------

ShardListener::ShardListener(uint16_t port,
                             const std::string &bind_addr)
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        fatal("cannot create listen socket: %s", std::strerror(errno));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1)
        fatal("invalid listen address '%s' (expected an IPv4 address "
              "like 0.0.0.0)", bind_addr.c_str());
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("cannot bind to %s:%u: %s", bind_addr.c_str(), port,
              std::strerror(errno));
    if (::listen(listen_fd_, 16) != 0)
        fatal("cannot listen on %s:%u: %s", bind_addr.c_str(), port,
              std::strerror(errno));

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<struct sockaddr *>(&addr),
                      &len) != 0)
        fatal("cannot read back the listen port: %s",
              std::strerror(errno));
    port_ = ntohs(addr.sin_port);
    ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);
}

ShardListener::~ShardListener()
{
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
}

namespace {

/** Chunks staged for one (host, seq) slot awaiting its final frame. */
struct StagedShard
{
    uint32_t chunk_count = 0;
    std::map<uint32_t, ProfileData> chunks;
    /** Per-chunk payload checksums, for idempotent re-delivery. */
    std::map<uint32_t, uint64_t> checksums;
    /**
     * Raw chunk payloads, kept only for aggregate shards: their
     * per-host split must reach the accept callback (journaling)
     * verbatim, and re-serializing each partial would pay the cost
     * twice.
     */
    std::map<uint32_t, std::string> bytes;
};

/** One sender connection's receive state. */
struct Conn
{
    int fd = -1;
    std::string buf; ///< Bytes received but not yet framed.
    /**
     * What the connection's first 8 bytes said it is: shard frames
     * open with kFrameMagic, query frames with kQueryFrameMagic. One
     * port serves both — a query client dials the same address the
     * collectors push to.
     */
    bool is_query = false;
    bool kind_known = false;
};

/** A decoded frame header. */
struct FrameHeader
{
    uint32_t manifest_len = 0;
    uint32_t chunk_index = 0;
    uint32_t chunk_count = 0;
    uint64_t payload_len = 0;
};

/** Decode and sanity-check a header at @p off; false = violation. */
bool
decodeHeader(const std::string &buf, size_t off, FrameHeader *h)
{
    uint64_t magic;
    std::memcpy(&magic, buf.data() + off, 8);
    std::memcpy(&h->manifest_len, buf.data() + off + 8, 4);
    std::memcpy(&h->chunk_index, buf.data() + off + 12, 4);
    std::memcpy(&h->chunk_count, buf.data() + off + 16, 4);
    std::memcpy(&h->payload_len, buf.data() + off + 20, 8);
    return magic == kFrameMagic && h->manifest_len > 0 &&
           h->manifest_len <= kMaxManifestBytes &&
           h->payload_len <= kMaxPayloadBytes && h->chunk_count >= 1 &&
           h->chunk_index < h->chunk_count;
}

/** Per-outcome receive counters, bumped at the single ack chokepoint. */
telemetry::Counter &
ackCounter(AckCode code)
{
    static telemetry::Counter &chunk =
        telemetry::counter("hbbp_listener_ack_chunk_total");
    static telemetry::Counter &shard =
        telemetry::counter("hbbp_listener_ack_shard_total");
    static telemetry::Counter &dup =
        telemetry::counter("hbbp_listener_ack_duplicate_total");
    static telemetry::Counter &rejected =
        telemetry::counter("hbbp_listener_ack_rejected_total");
    static telemetry::Counter &incomplete =
        telemetry::counter("hbbp_listener_ack_incomplete_total");
    switch (code) {
    case AckCode::ChunkAccepted: return chunk;
    case AckCode::ShardAccepted: return shard;
    case AckCode::Duplicate: return dup;
    case AckCode::Rejected: return rejected;
    case AckCode::Incomplete: return incomplete;
    }
    panic("invalid AckCode %d", static_cast<int>(code));
}

bool
sendAck(int fd, AckCode code, const std::string &reason = {})
{
    ackCounter(code).add();
    // Every permanent rejection is an exceptional path worth a
    // flight-recorder entry; the one ack chokepoint catches them all.
    if (code == AckCode::Rejected)
        events::emit(events::Level::Warn, "shard_reject",
                     {{"reason", reason}});
    ByteWriter w;
    w.u8(static_cast<uint8_t>(code));
    w.u32(static_cast<uint32_t>(reason.size()));
    std::string bytes = w.bytes();
    bytes += reason;
    return netWriteAll(fd, bytes.data(), bytes.size());
}

} // namespace

size_t
ShardListener::serve(IncrementalAggregator &agg,
                     const ListenOptions &options)
{
    std::vector<Conn> conns;
    std::map<std::pair<std::string, uint32_t>, StagedShard> staging;
    size_t accepted = 0;
    int64_t last_progress = steadyNowMs();
    // The poll loop is the daemon's pulse: a Listener beat per round
    // is what the watchdog and /healthz watch for liveness. Accept is
    // a work stage — reported, but idleness is not a stall.
    telemetry::beatEnable(telemetry::Stage::Listener);
    telemetry::beatEnable(telemetry::Stage::Accept);
    static telemetry::Gauge &m_active_streams =
        telemetry::gauge("hbbp_listener_active_streams");
    static telemetry::Gauge &m_staged_chunks =
        telemetry::gauge("hbbp_listener_staged_chunks");
    static telemetry::Counter &m_bytes_recv =
        telemetry::counter("hbbp_listener_bytes_received_total");
    static telemetry::Counter &m_idle_aborts =
        telemetry::counter("hbbp_listener_idle_aborts_total");
    bool done = options.expect > 0 &&
                agg.coveredShards() >= options.expect;

    // Process one complete frame at @p off in conn.buf. Returns the
    // ack outcome; a Rejected ack also counts the shard into the
    // aggregator's malformed/incompatible stats.
    auto processFrame = [&](Conn &conn, size_t off,
                            const FrameHeader &h) -> bool {
        std::string manifest_text =
            conn.buf.substr(off + kFrameHeaderBytes, h.manifest_len);
        std::string payload = conn.buf.substr(
            off + kFrameHeaderBytes + h.manifest_len,
            static_cast<size_t>(h.payload_len));
        std::string peer = format("frame from fd %d", conn.fd);

        std::string why;
        std::optional<ShardManifest> m =
            ShardManifest::parse(manifest_text, &why);
        if (!m) {
            agg.noteMalformed();
            return sendAck(conn.fd, AckCode::Rejected,
                           format("malformed manifest: %s",
                                  why.c_str()));
        }
        auto key = std::make_pair(m->host, m->seq);
        bool final_chunk = h.chunk_index + 1 == h.chunk_count;
        bool is_aggregate = m->level > 0;
        // An aggregate's chunks ARE its covered hosts' partials, one
        // each in coverage order — any other count cannot be spliced.
        if (is_aggregate && h.chunk_count != m->covered.size()) {
            staging.erase(key);
            agg.noteMalformed();
            return sendAck(
                conn.fd, AckCode::Rejected,
                format("aggregate covers %zu hosts but streams %u "
                       "chunks", m->covered.size(), h.chunk_count));
        }
        if ((m->status == ShardStatus::Complete) != final_chunk) {
            // A stream this confused is dead; drop anything it staged
            // so a clean retry starts fresh instead of leaking here.
            staging.erase(key);
            agg.noteMalformed();
            return sendAck(
                conn.fd, AckCode::Rejected,
                format("chunk %u/%u carries status=%s", h.chunk_index,
                       h.chunk_count, name(m->status)));
        }

        // Every chunk is verified on receipt: a corrupted transfer is
        // caught here, per frame, not after the whole stream landed.
        uint64_t chunk_checksum = 0;
        std::optional<ProfileData> chunk = ProfileData::parse(
            payload, peer, &why, &chunk_checksum);
        if (!chunk) {
            staging.erase(key);
            agg.noteMalformed();
            return sendAck(conn.fd, AckCode::Rejected,
                           format("chunk payload invalid: %s",
                                  why.c_str()));
        }

        StagedShard &staged = staging[key];
        if (staged.chunk_count == 0)
            staged.chunk_count = h.chunk_count;
        if (staged.chunk_count != h.chunk_count) {
            staging.erase(key);
            agg.noteMalformed();
            return sendAck(
                conn.fd, AckCode::Rejected,
                format("chunk count changed mid-stream (%u then %u)",
                       staged.chunk_count, h.chunk_count));
        }
        auto seen = staged.checksums.find(h.chunk_index);
        if (seen != staged.checksums.end() &&
            seen->second != chunk_checksum) {
            // A *different* payload under an index we already hold:
            // the staged stream is from an abandoned earlier push
            // (the host re-collected and started over). The old
            // stream can never finalize — its sender is gone — so
            // restart the slot with the new stream rather than
            // permanently rejecting every retry of the live one.
            staged.chunks.clear();
            staged.checksums.clear();
            staged.bytes.clear();
            staged.chunk_count = h.chunk_count;
            seen = staged.checksums.end();
        }
        if (seen != staged.checksums.end()) {
            // Idempotent re-delivery (a sender retrying from chunk 0
            // after a crash): confirm and move on.
            if (!final_chunk) {
                last_progress = steadyNowMs();
                return sendAck(conn.fd, AckCode::ChunkAccepted);
            }
        } else {
            staged.checksums[h.chunk_index] = chunk_checksum;
            staged.chunks.emplace(h.chunk_index, std::move(*chunk));
            if (is_aggregate)
                staged.bytes.emplace(h.chunk_index, payload);
        }
        if (!final_chunk) {
            last_progress = steadyNowMs();
            return sendAck(conn.fd, AckCode::ChunkAccepted);
        }

        // Final chunk: the stream must be gap-free before assembly.
        if (staged.chunks.size() != staged.chunk_count) {
            // Likely our restart, not the sender's fault: tell it to
            // resend from the top rather than rejecting outright.
            return sendAck(
                conn.fd, AckCode::Incomplete,
                format("%zu of %u chunks staged",
                       staged.chunks.size(), staged.chunk_count));
        }
        std::vector<ProfileData> parts;
        parts.reserve(staged.chunks.size());
        for (auto &[idx, pd] : staged.chunks)
            parts.push_back(std::move(pd));
        std::vector<std::string> raw_chunks;
        raw_chunks.reserve(staged.bytes.size());
        for (auto &[idx, bytes] : staged.bytes)
            raw_chunks.push_back(std::move(bytes));
        uint32_t chunk_count = staged.chunk_count;
        staging.erase(key);
        // The aggregate path still needs the per-host partials after
        // the fold is verified, so its merge works on copies.
        std::optional<ProfileData> merged =
            is_aggregate ? mergeChunksPreserving(parts, &why)
                         : tryMergeChunks(std::move(parts), &why);
        if (!merged) {
            agg.noteMalformed();
            return sendAck(conn.fd, AckCode::Rejected,
                           format("chunks do not assemble: %s",
                                  why.c_str()));
        }
        uint64_t merged_checksum = merged->payloadChecksum();
        if (merged_checksum != m->checksum) {
            agg.noteMalformed();
            return sendAck(
                conn.fd, AckCode::Rejected,
                format("assembled payload hashes to %016llx but the "
                       "manifest promises %016llx",
                       static_cast<unsigned long long>(merged_checksum),
                       static_cast<unsigned long long>(m->checksum)));
        }

        ProfileData for_accept;
        const ProfileData *accept_ref = nullptr;
        std::vector<std::string> accept_bytes;
        if (options.on_accept) {
            for_accept = *merged; // The fold consumes the profile.
            accept_ref = &for_accept;
            if (is_aggregate)
                accept_bytes = std::move(raw_chunks);
            else if (chunk_count == 1)
                accept_bytes.push_back(std::move(payload));
            else
                accept_bytes.push_back(for_accept.serialize());
        }
        bool folded =
            is_aggregate
                ? agg.addAggregateShard(*m, std::move(parts), &why)
                : agg.addShard(*m, std::move(*merged), &why);
        if (!folded) {
            // Only a payload already accounted for is confirmed back
            // as a duplicate (the retried sender genuinely succeeded;
            // for aggregates that includes an entirely superseded
            // flush). A (host, seq) slot conflict also lands in the
            // duplicate *stats*, but the sender's data was dropped —
            // that must fail loudly, not read as success.
            if (agg.hasChecksum(m->checksum))
                return sendAck(conn.fd, AckCode::Duplicate);
            return sendAck(conn.fd, AckCode::Rejected, why);
        }
        accepted++;
        last_progress = steadyNowMs();
        telemetry::beat(telemetry::Stage::Accept);
        // Callback before the ack: a sender that saw success may rely
        // on the checkpoint/deposit having happened.
        if (options.on_accept)
            options.on_accept(*m, *accept_ref, accept_bytes);
        return sendAck(conn.fd, AckCode::ShardAccepted);
    };

    // Answer one query frame's body and frame the reply. Queries are
    // progress (an active query storm keeps the daemon alive), and
    // they run here, on the serve thread, so the handler may read the
    // aggregator without synchronization.
    auto processQuery = [&](Conn &conn,
                            const std::string &body) -> bool {
        std::string reply =
            options.on_query
                ? options.on_query(body)
                : queryErrorReplyBody(
                      "this endpoint does not serve queries");
        ByteWriter w;
        w.u64(kQueryReplyMagic);
        w.u32(static_cast<uint32_t>(reply.size()));
        std::string frame = w.bytes();
        frame += reply;
        last_progress = steadyNowMs();
        if (!options.on_query)
            return netWriteAll(conn.fd, frame.data(), frame.size()) &&
                   false; // Reply, then close: nothing more to serve.
        return netWriteAll(conn.fd, frame.data(), frame.size());
    };

    while (!done) {
        // A SIGUSR1 dump request lands here, between poll rounds, so
        // the handler itself stays a single relaxed store.
        telemetry::dumpIfRequested();
        telemetry::beat(telemetry::Stage::Listener);
        if (options.should_stop && options.should_stop())
            break;
        m_active_streams.set(static_cast<int64_t>(conns.size()));
        size_t staged_chunks = 0;
        for (const auto &[key, s] : staging)
            staged_chunks += s.chunks.size();
        m_staged_chunks.set(static_cast<int64_t>(staged_chunks));

        std::vector<struct pollfd> pfds;
        pfds.push_back({listen_fd_, POLLIN, 0});
        for (const Conn &c : conns)
            pfds.push_back({c.fd, POLLIN, 0});
        int rc = ::poll(pfds.data(), pfds.size(), 50);
        if (rc < 0 && errno != EINTR)
            fatal("poll() failed in shard listener: %s",
                  std::strerror(errno));

        if (pfds[0].revents & POLLIN) {
            for (;;) {
                int fd = ::accept(listen_fd_, nullptr, nullptr);
                if (fd < 0)
                    break;
                ::fcntl(fd, F_SETFL, O_NONBLOCK);
                conns.push_back(Conn{fd, {}});
            }
        }

        for (size_t ci = 0; ci < conns.size();) {
            Conn &conn = conns[ci];
            bool peer_gone = false, close_conn = false;
            for (;;) {
                char chunk[65536];
                ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
                if (n > 0) {
                    m_bytes_recv.add(static_cast<uint64_t>(n));
                    conn.buf.append(chunk, static_cast<size_t>(n));
                    // Bytes on the wire are progress too: a frame
                    // whose transfer alone outlasts the idle timeout
                    // must not be aborted mid-receive.
                    last_progress = steadyNowMs();
                    continue;
                }
                if (n < 0 &&
                    (errno == EAGAIN || errno == EWOULDBLOCK))
                    break;
                if (n < 0 && errno == EINTR)
                    continue;
                // EOF or error. Complete frames already buffered are
                // still processed below — a sender that transmitted
                // its final frame and died before reading the ack
                // delivered real data; only a half-received frame
                // dies with the connection. Staged chunks survive
                // for the retry either way.
                peer_gone = true;
                break;
            }

            // Consume frames at a moving offset and compact the
            // buffer once per poll round: erasing the front per frame
            // would re-copy everything still queued behind it.
            size_t consumed = 0;
            while (!close_conn) {
                size_t have = conn.buf.size() - consumed;
                if (!conn.kind_known) {
                    if (have < 8)
                        break;
                    uint64_t magic;
                    std::memcpy(&magic, conn.buf.data() + consumed, 8);
                    conn.is_query = magic == kQueryFrameMagic;
                    conn.kind_known = true;
                }
                if (conn.is_query) {
                    if (have < kQueryFrameHeaderBytes)
                        break;
                    uint64_t magic;
                    uint32_t body_len;
                    std::memcpy(&magic, conn.buf.data() + consumed, 8);
                    std::memcpy(&body_len,
                                conn.buf.data() + consumed + 8, 4);
                    if (magic != kQueryFrameMagic || body_len == 0 ||
                        body_len > kMaxQueryBodyBytes) {
                        warn("closing query connection: malformed "
                             "query frame header");
                        close_conn = true;
                        break;
                    }
                    if (have < kQueryFrameHeaderBytes + body_len)
                        break;
                    std::string body = conn.buf.substr(
                        consumed + kQueryFrameHeaderBytes, body_len);
                    if (!processQuery(conn, body)) {
                        close_conn = true;
                        break;
                    }
                    consumed += kQueryFrameHeaderBytes + body_len;
                    continue;
                }
                if (have < kFrameHeaderBytes)
                    break;
                FrameHeader h;
                if (!decodeHeader(conn.buf, consumed, &h)) {
                    warn("closing shard sender connection: malformed "
                         "frame header");
                    close_conn = true;
                    break;
                }
                size_t frame_len = kFrameHeaderBytes + h.manifest_len +
                                   static_cast<size_t>(h.payload_len);
                if (conn.buf.size() - consumed < frame_len)
                    break;
                if (!processFrame(conn, consumed, h)) {
                    close_conn = true;
                    break;
                }
                consumed += frame_len;
                if (options.expect > 0 &&
                    agg.coveredShards() >= options.expect) {
                    done = true;
                    break;
                }
            }
            if (consumed > 0)
                conn.buf.erase(0, consumed);

            if (close_conn || peer_gone) {
                ::close(conn.fd);
                conns.erase(conns.begin() + ci);
            } else {
                ci++;
            }
        }

        if (!done && options.idle_timeout_ms >= 0 &&
            steadyNowMs() - last_progress >= options.idle_timeout_ms) {
            m_idle_aborts.add();
            events::emit(events::Level::Warn, "idle_abort",
                         {{"idle_ms", format("%d",
                                             options.idle_timeout_ms)},
                          {"accepted", format("%zu", accepted)}});
            break;
        }
    }

    m_active_streams.set(0);
    m_staged_chunks.set(0);
    for (const Conn &c : conns)
        ::close(c.fd);
    return accepted;
}

} // namespace hbbp
