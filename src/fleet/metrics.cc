#include "fleet/metrics.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/logging.hh"
#include "support/telemetry.hh"

namespace hbbp {

namespace {

constexpr int kIoTimeoutMs = 2000;
/// Largest request head we bother reading before answering.
constexpr size_t kMaxRequestBytes = 4096;

void
setIoTimeout(int fd, int timeout_ms)
{
    struct timeval tv = {};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool
writeAll(int fd, const char *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/**
 * Drain the request head until a blank line or the size cap. The
 * scrape response is the same whatever the path, so the only job here
 * is to consume the client's request before answering — some clients
 * treat an early response as an error.
 */
void
drainRequest(int fd)
{
    char buf[512];
    std::string head;
    while (head.size() < kMaxRequestBytes) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return;
        head.append(buf, static_cast<size_t>(n));
        if (head.find("\r\n\r\n") != std::string::npos ||
            head.find("\n\n") != std::string::npos)
            return;
    }
}

} // namespace

MetricsServer::MetricsServer(uint16_t port)
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        fatal("metrics: cannot create socket: %s", std::strerror(errno));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("metrics: cannot bind port %u: %s", port,
              std::strerror(errno));
    if (::listen(listen_fd_, 16) != 0)
        fatal("metrics: cannot listen: %s", std::strerror(errno));
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serveLoop(); });
}

MetricsServer::~MetricsServer()
{
    stop();
}

void
MetricsServer::stop()
{
    if (listen_fd_ < 0)
        return;
    stop_.store(true, std::memory_order_relaxed);
    // shutdown() wakes the poll; close happens after the join so the
    // loop never polls a recycled fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (thread_.joinable())
        thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
}

void
MetricsServer::serveLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        struct pollfd pfd = {listen_fd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 200);
        if (rc < 0 && errno != EINTR)
            break;
        if (rc <= 0)
            continue;
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        setIoTimeout(fd, kIoTimeoutMs);
        drainRequest(fd);
        std::string body = telemetry::registry().renderPrometheus();
        std::string resp =
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4\r\n"
            "Content-Length: " + std::to_string(body.size()) + "\r\n"
            "\r\n" + body;
        writeAll(fd, resp.data(), resp.size());
        ::close(fd);
    }
}

bool
fetchMetricsText(const std::string &host, uint16_t port,
                 std::string *body, std::string *why)
{
    struct addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *addrs = nullptr;
    std::string service = std::to_string(port);
    int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &addrs);
    if (rc != 0) {
        *why = format("cannot resolve '%s': %s", host.c_str(),
                      ::gai_strerror(rc));
        return false;
    }
    int fd = -1;
    for (struct addrinfo *a = addrs; a; a = a->ai_next) {
        fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(addrs);
    if (fd < 0) {
        *why = format("cannot connect to %s:%u: %s", host.c_str(), port,
                      std::strerror(errno));
        return false;
    }
    setIoTimeout(fd, kIoTimeoutMs);
    std::string req = "GET /metrics HTTP/1.0\r\nHost: " + host +
                      "\r\n\r\n";
    if (!writeAll(fd, req.data(), req.size())) {
        *why = format("cannot send request: %s", std::strerror(errno));
        ::close(fd);
        return false;
    }
    std::string resp;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        resp.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    if (resp.rfind("HTTP/", 0) != 0 ||
        resp.find(" 200 ") == std::string::npos ||
        resp.find(" 200 ") > resp.find("\r\n")) {
        *why = format("bad response: %s",
                      resp.substr(0, resp.find('\n')).c_str());
        return false;
    }
    size_t split = resp.find("\r\n\r\n");
    if (split == std::string::npos) {
        *why = "response has no header/body split";
        return false;
    }
    *body = resp.substr(split + 4);
    return true;
}

} // namespace hbbp
