#include "fleet/metrics.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <set>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "fleet/socket_client.hh"
#include "support/events.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

namespace hbbp {

namespace {

constexpr int kIoTimeoutMs = 2000;
/// Largest request head we bother reading before answering.
constexpr size_t kMaxRequestBytes = 4096;

/**
 * Read the request head until a blank line or the size cap. Some
 * clients treat an early response as an error, so the head is always
 * consumed; its request line is what routes /metrics vs /healthz.
 */
std::string
drainRequest(int fd)
{
    char buf[512];
    std::string head;
    while (head.size() < kMaxRequestBytes) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        head.append(buf, static_cast<size_t>(n));
        if (head.find("\r\n\r\n") != std::string::npos ||
            head.find("\n\n") != std::string::npos)
            break;
    }
    return head;
}

/** The path of `GET <path> HTTP/1.x`; "/metrics" when unparseable. */
std::string
requestPath(const std::string &head)
{
    size_t eol = head.find_first_of("\r\n");
    std::vector<std::string> parts = split(
        head.substr(0, eol == std::string::npos ? head.size() : eol),
        ' ');
    if (parts.size() < 2 || parts[1].empty())
        return "/metrics";
    // Ignore any query string: /healthz?verbose routes like /healthz.
    return parts[1].substr(0, parts[1].find('?'));
}

/** One `name[{labels}] value` exposition line, decomposed. */
struct SeriesLine
{
    std::string name;
    std::string labels; ///< Between the braces, braces stripped.
    std::string value;
};

bool
parseSeriesLine(const std::string &line, SeriesLine *out)
{
    if (line.empty() || line[0] == '#')
        return false;
    size_t brace = line.find('{');
    size_t space = line.find(' ');
    if (brace != std::string::npos &&
        (space == std::string::npos || brace < space)) {
        size_t close = line.find('}', brace);
        if (close == std::string::npos || close + 1 >= line.size() ||
            line[close + 1] != ' ')
            return false;
        out->name = line.substr(0, brace);
        out->labels = line.substr(brace + 1, close - brace - 1);
        out->value = line.substr(close + 2);
    } else {
        if (space == std::string::npos)
            return false;
        out->name = line.substr(0, space);
        out->labels.clear();
        out->value = line.substr(space + 1);
    }
    return !out->name.empty() && !out->value.empty();
}

/** Parse a bare unsigned decimal series value; false otherwise. */
bool
parseSeriesValue(const std::string &value, unsigned long long *out)
{
    if (value.empty())
        return false;
    for (char c : value)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    errno = 0;
    *out = std::strtoull(value.c_str(), nullptr, 10);
    return errno != ERANGE;
}

/** Collect every `# TYPE <name> counter` name into *@p out. */
void
collectCounterNames(const std::string &text, std::set<std::string> *out)
{
    for (const std::string &line : split(text, '\n')) {
        if (line.rfind("# TYPE ", 0) != 0)
            continue;
        std::vector<std::string> parts = split(line, ' ');
        if (parts.size() == 4 && parts[3] == "counter")
            out->insert(parts[2]);
    }
}

} // namespace

MetricsServer::MetricsServer(uint16_t port)
{
    metrics_fn_ = [] {
        return telemetry::registry().renderPrometheus();
    };
    healthz_fn_ = [] {
        return telemetry::renderHealth(telemetry::healthNowMs(), 30.0);
    };
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        fatal("metrics: cannot create socket: %s", std::strerror(errno));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("metrics: cannot bind port %u: %s", port,
              std::strerror(errno));
    if (::listen(listen_fd_, 16) != 0)
        fatal("metrics: cannot listen: %s", std::strerror(errno));
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serveLoop(); });
}

MetricsServer::~MetricsServer()
{
    stop();
}

void
MetricsServer::setMetricsRenderer(Renderer fn)
{
    std::lock_guard<std::mutex> lock(render_mu_);
    metrics_fn_ = std::move(fn);
}

void
MetricsServer::setHealthzRenderer(Renderer fn)
{
    std::lock_guard<std::mutex> lock(render_mu_);
    healthz_fn_ = std::move(fn);
}

void
MetricsServer::stop()
{
    if (listen_fd_ < 0)
        return;
    stop_.store(true, std::memory_order_relaxed);
    // shutdown() wakes the poll; close happens after the join so the
    // loop never polls a recycled fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (thread_.joinable())
        thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
}

void
MetricsServer::serveLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        struct pollfd pfd = {listen_fd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 200);
        if (rc < 0 && errno != EINTR)
            break;
        if (rc <= 0)
            continue;
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        netSetIoTimeout(fd, kIoTimeoutMs);
        std::string path = requestPath(drainRequest(fd));
        Renderer fn;
        {
            std::lock_guard<std::mutex> lock(render_mu_);
            fn = path == "/healthz" ? healthz_fn_ : metrics_fn_;
        }
        std::string body = fn();
        std::string resp =
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4\r\n"
            "Content-Length: " + std::to_string(body.size()) + "\r\n"
            "\r\n" + body;
        netWriteAll(fd, resp.data(), resp.size(), kIoTimeoutMs);
        ::close(fd);
    }
}

std::string
federateMetricsText(const std::string &own,
                    const std::vector<PeerSnapshot> &peers)
{
    // Local series pass through verbatim, so single-daemon scrape
    // consumers (and the relay smoke test's regexes) see the exact
    // bytes a non-federating build serves.
    std::string out = own;

    std::vector<const PeerSnapshot *> sorted;
    sorted.reserve(peers.size());
    for (const PeerSnapshot &p : peers)
        sorted.push_back(&p);
    std::sort(sorted.begin(), sorted.end(),
              [](const PeerSnapshot *a, const PeerSnapshot *b) {
                  return a->peer < b->peer;
              });

    std::set<std::string> counters;
    collectCounterNames(own, &counters);
    for (const PeerSnapshot *p : sorted)
        if (p->fresh)
            collectCounterNames(p->text, &counters);

    if (!sorted.empty()) {
        out += "# TYPE hbbp_federation_child_up gauge\n";
        for (const PeerSnapshot *p : sorted)
            out += format("hbbp_federation_child_up{peer=\"%s\"} %d\n",
                          p->peer.c_str(), p->fresh ? 1 : 0);
    }

    // Subtree totals: local value plus each fresh child's own subtree
    // series when it federates too, its bare series otherwise — so a
    // root's rollup covers grandchildren without double counting.
    std::map<std::string, unsigned long long> rollup;
    for (const std::string &line : split(own, '\n')) {
        SeriesLine s;
        unsigned long long v;
        if (parseSeriesLine(line, &s) && s.labels.empty() &&
            counters.count(s.name) && parseSeriesValue(s.value, &v))
            rollup[s.name] += v;
    }

    for (const PeerSnapshot *p : sorted) {
        if (!p->fresh)
            continue;
        std::map<std::string, unsigned long long> bare, subtree;
        for (const std::string &line : split(p->text, '\n')) {
            if (line.empty() || line[0] == '#')
                continue;
            SeriesLine s;
            if (!parseSeriesLine(line, &s)) {
                static telemetry::Counter &m_bad = telemetry::counter(
                    "hbbp_federation_unparsed_lines_total");
                m_bad.add();
                continue;
            }
            unsigned long long v;
            if (counters.count(s.name) &&
                parseSeriesValue(s.value, &v)) {
                if (s.labels.empty())
                    bare[s.name] = v;
                else if (s.labels == "agg=\"subtree\"")
                    subtree[s.name] = v;
            }
            // Re-emit with the child's identity. A line that already
            // carries a peer label is a grandchild's — pass it
            // through unchanged so identity survives depth.
            if (s.labels.find("peer=\"") != std::string::npos) {
                out += line + "\n";
            } else if (s.labels.empty()) {
                out += format("%s{peer=\"%s\"} %s\n", s.name.c_str(),
                              p->peer.c_str(), s.value.c_str());
            } else {
                out += format("%s{%s,peer=\"%s\"} %s\n", s.name.c_str(),
                              s.labels.c_str(), p->peer.c_str(),
                              s.value.c_str());
            }
        }
        for (const auto &[name, v] : bare)
            if (!subtree.count(name))
                rollup[name] += v;
        for (const auto &[name, v] : subtree)
            rollup[name] += v;
    }

    for (const auto &[name, v] : rollup)
        out += format("%s{agg=\"subtree\"} %llu\n", name.c_str(), v);
    return out;
}

MetricsFederator::MetricsFederator(double interval_s,
                                   double stale_after_s)
    : interval_s_(interval_s), stale_after_s_(stale_after_s)
{
    telemetry::beatEnable(telemetry::Stage::Federator);
    thread_ = std::thread([this] { scrapeLoop(); });
}

MetricsFederator::~MetricsFederator()
{
    stop();
}

void
MetricsFederator::noteChild(const std::string &peer,
                            const std::string &endpoint)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = children_.find(peer);
    if (it == children_.end()) {
        Child c;
        c.endpoint = endpoint;
        c.last_ok_ms = telemetry::healthNowMs();
        children_.emplace(peer, std::move(c));
        static telemetry::Gauge &m_children =
            telemetry::gauge("hbbp_federation_children");
        m_children.set(static_cast<int64_t>(children_.size()));
        return;
    }
    if (it->second.endpoint != endpoint) {
        static telemetry::Counter &m_reendpoint = telemetry::counter(
            "hbbp_federation_child_reendpoint_total");
        m_reendpoint.add();
        warn("federation: child '%s' moved from %s to %s",
             peer.c_str(), it->second.endpoint.c_str(),
             endpoint.c_str());
        it->second.endpoint = endpoint;
    }
}

std::vector<PeerSnapshot>
MetricsFederator::snapshots() const
{
    std::lock_guard<std::mutex> lock(mu_);
    int64_t now = telemetry::healthNowMs();
    std::vector<PeerSnapshot> out;
    out.reserve(children_.size());
    for (const auto &[peer, c] : children_) {
        PeerSnapshot s;
        s.peer = peer;
        s.text = c.text;
        s.fresh = c.up && c.ever_ok;
        s.age_s = static_cast<double>(now - c.last_ok_ms) / 1000.0;
        if (s.age_s < 0.0)
            s.age_s = 0.0;
        out.push_back(std::move(s));
    }
    return out;
}

bool
MetricsFederator::childrenUp(std::string *lines) const
{
    std::lock_guard<std::mutex> lock(mu_);
    int64_t now = telemetry::healthNowMs();
    bool all_up = true;
    for (const auto &[peer, c] : children_) {
        double age_s =
            static_cast<double>(now - c.last_ok_ms) / 1000.0;
        if (age_s < 0.0)
            age_s = 0.0;
        if (lines)
            *lines += format("child %s up=%d age_s=%.3f\n",
                             peer.c_str(), c.up ? 1 : 0, age_s);
        all_up = all_up && c.up;
    }
    return all_up;
}

size_t
MetricsFederator::childCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return children_.size();
}

void
MetricsFederator::stop()
{
    if (!thread_.joinable())
        return;
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
}

void
MetricsFederator::scrapeLoop()
{
    static telemetry::Counter &m_rounds =
        telemetry::counter("hbbp_federation_scrape_rounds_total");
    static telemetry::Counter &m_fail =
        telemetry::counter("hbbp_federation_scrape_failures_total");
    while (!stop_.load(std::memory_order_relaxed)) {
        telemetry::beat(telemetry::Stage::Federator);
        m_rounds.add();
        std::vector<std::pair<std::string, std::string>> targets;
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (const auto &[peer, c] : children_)
                targets.emplace_back(peer, c.endpoint);
        }
        for (const auto &[peer, endpoint] : targets) {
            if (stop_.load(std::memory_order_relaxed))
                break;
            size_t colon = endpoint.rfind(':');
            std::string host = colon == std::string::npos
                                   ? endpoint
                                   : endpoint.substr(0, colon);
            unsigned long long port = 0;
            bool addr_ok =
                colon != std::string::npos &&
                parseSeriesValue(endpoint.substr(colon + 1), &port) &&
                port > 0 && port <= 65535;
            std::string body, why;
            bool ok = addr_ok &&
                      fetchMetricsText(host,
                                       static_cast<uint16_t>(port),
                                       &body, &why);
            if (!addr_ok)
                why = format("bad endpoint '%s'", endpoint.c_str());
            int64_t now = telemetry::healthNowMs();
            std::lock_guard<std::mutex> lock(mu_);
            auto it = children_.find(peer);
            if (it == children_.end() ||
                it->second.endpoint != endpoint)
                continue; // Re-registered mid-scrape; drop the result.
            Child &c = it->second;
            if (ok) {
                if (!c.up)
                    events::emit(events::Level::Info,
                                 "child_recovered",
                                 {{"peer", peer},
                                  {"endpoint", endpoint}});
                c.up = true;
                c.ever_ok = true;
                c.text = std::move(body);
                c.last_ok_ms = now;
            } else {
                m_fail.add();
                double age_s =
                    static_cast<double>(now - c.last_ok_ms) / 1000.0;
                if (c.up && age_s > stale_after_s_) {
                    c.up = false;
                    events::emit(events::Level::Warn, "child_stale",
                                 {{"peer", peer},
                                  {"endpoint", endpoint},
                                  {"age_s", format("%.3f", age_s)},
                                  {"why", why}});
                    warn("federation: child '%s' at %s is stale "
                         "(%.1fs since last scrape: %s)",
                         peer.c_str(), endpoint.c_str(), age_s,
                         why.c_str());
                }
            }
            // The round is progressing even when a child's scrape
            // had to time out — keep the loop-stage beat honest.
            telemetry::beat(telemetry::Stage::Federator);
        }
        int64_t interval_ms =
            static_cast<int64_t>(interval_s_ * 1000.0);
        int64_t slept = 0;
        while (slept < interval_ms &&
               !stop_.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            slept += 50;
        }
    }
}

std::string
renderHealthz(double stall_s, MetricsFederator *federator)
{
    int64_t now = telemetry::healthNowMs();
    bool degraded = telemetry::anyStageStalled(now, stall_s);
    std::string child_lines;
    if (federator && !federator->childrenUp(&child_lines))
        degraded = true;
    std::string out =
        degraded ? "status: degraded\n" : "status: live\n";
    for (const telemetry::StageHealth &h : telemetry::stageHealth(now))
        out += format("stage %s age_s=%.3f loop=%d\n",
                      telemetry::name(h.stage), h.age_s,
                      h.loop ? 1 : 0);
    out += child_lines;
    return out;
}

bool
fetchMetricsText(const std::string &host, uint16_t port,
                 std::string *body, std::string *why,
                 const std::string &path)
{
    // The shared client discipline matters here: the scraper's old
    // private copy used a plain blocking connect(), so a blackholed
    // daemon address hung `stats --from` for the kernel's default
    // multi-minute timeout instead of failing within the deadline.
    int fd = netConnect(host, port, kIoTimeoutMs, why);
    if (fd < 0)
        return false;
    std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                      "\r\n\r\n";
    if (!netWriteAll(fd, req.data(), req.size(), kIoTimeoutMs)) {
        *why = format("cannot send request: %s", std::strerror(errno));
        ::close(fd);
        return false;
    }
    std::string resp;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        resp.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    if (resp.rfind("HTTP/", 0) != 0 ||
        resp.find(" 200 ") == std::string::npos ||
        resp.find(" 200 ") > resp.find("\r\n")) {
        *why = format("bad response: %s",
                      resp.substr(0, resp.find('\n')).c_str());
        return false;
    }
    size_t split = resp.find("\r\n\r\n");
    if (split == std::string::npos) {
        *why = "response has no header/body split";
        return false;
    }
    *body = resp.substr(split + 4);
    return true;
}

} // namespace hbbp
