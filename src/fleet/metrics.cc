#include "fleet/metrics.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "fleet/socket_client.hh"
#include "support/logging.hh"
#include "support/telemetry.hh"

namespace hbbp {

namespace {

constexpr int kIoTimeoutMs = 2000;
/// Largest request head we bother reading before answering.
constexpr size_t kMaxRequestBytes = 4096;

/**
 * Drain the request head until a blank line or the size cap. The
 * scrape response is the same whatever the path, so the only job here
 * is to consume the client's request before answering — some clients
 * treat an early response as an error.
 */
void
drainRequest(int fd)
{
    char buf[512];
    std::string head;
    while (head.size() < kMaxRequestBytes) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return;
        head.append(buf, static_cast<size_t>(n));
        if (head.find("\r\n\r\n") != std::string::npos ||
            head.find("\n\n") != std::string::npos)
            return;
    }
}

} // namespace

MetricsServer::MetricsServer(uint16_t port)
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        fatal("metrics: cannot create socket: %s", std::strerror(errno));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("metrics: cannot bind port %u: %s", port,
              std::strerror(errno));
    if (::listen(listen_fd_, 16) != 0)
        fatal("metrics: cannot listen: %s", std::strerror(errno));
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serveLoop(); });
}

MetricsServer::~MetricsServer()
{
    stop();
}

void
MetricsServer::stop()
{
    if (listen_fd_ < 0)
        return;
    stop_.store(true, std::memory_order_relaxed);
    // shutdown() wakes the poll; close happens after the join so the
    // loop never polls a recycled fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (thread_.joinable())
        thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
}

void
MetricsServer::serveLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        struct pollfd pfd = {listen_fd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 200);
        if (rc < 0 && errno != EINTR)
            break;
        if (rc <= 0)
            continue;
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        netSetIoTimeout(fd, kIoTimeoutMs);
        drainRequest(fd);
        std::string body = telemetry::registry().renderPrometheus();
        std::string resp =
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4\r\n"
            "Content-Length: " + std::to_string(body.size()) + "\r\n"
            "\r\n" + body;
        netWriteAll(fd, resp.data(), resp.size(), kIoTimeoutMs);
        ::close(fd);
    }
}

bool
fetchMetricsText(const std::string &host, uint16_t port,
                 std::string *body, std::string *why)
{
    // The shared client discipline matters here: the scraper's old
    // private copy used a plain blocking connect(), so a blackholed
    // daemon address hung `stats --from` for the kernel's default
    // multi-minute timeout instead of failing within the deadline.
    int fd = netConnect(host, port, kIoTimeoutMs, why);
    if (fd < 0)
        return false;
    std::string req = "GET /metrics HTTP/1.0\r\nHost: " + host +
                      "\r\n\r\n";
    if (!netWriteAll(fd, req.data(), req.size(), kIoTimeoutMs)) {
        *why = format("cannot send request: %s", std::strerror(errno));
        ::close(fd);
        return false;
    }
    std::string resp;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        resp.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    if (resp.rfind("HTTP/", 0) != 0 ||
        resp.find(" 200 ") == std::string::npos ||
        resp.find(" 200 ") > resp.find("\r\n")) {
        *why = format("bad response: %s",
                      resp.substr(0, resp.find('\n')).c_str());
        return false;
    }
    size_t split = resp.find("\r\n\r\n");
    if (split == std::string::npos) {
        *why = "response has no header/body split";
        return false;
    }
    *body = resp.substr(split + 4);
    return true;
}

} // namespace hbbp
