/**
 * @file
 * Live metrics endpoint for fleet daemons.
 *
 * MetricsServer binds a TCP port (0 = ephemeral, like the shard
 * listener) and serves the process telemetry registry in Prometheus
 * text exposition format to any HTTP/1.x GET — `curl`,
 * `hbbp-tool stats --from HOST:PORT`, or a real Prometheus scraper.
 * It reuses the transport layer's non-blocking socket discipline but
 * lives on its own port so the shard frame protocol (which opens with
 * a binary magic, not "GET ") stays undisturbed.
 *
 * The server runs on a background thread; construction binds and
 * starts serving, destruction (or stop()) shuts it down. Request
 * handling is deliberately sequential — a scrape is a few kilobytes
 * and the daemons' real work happens elsewhere.
 */

#ifndef HBBP_FLEET_METRICS_HH
#define HBBP_FLEET_METRICS_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace hbbp {

class MetricsServer
{
  public:
    /**
     * Bind 127.0.0.1:`port` (0 picks an ephemeral port) and start
     * serving. fatal()s if the socket cannot be bound.
     */
    explicit MetricsServer(uint16_t port);
    ~MetricsServer();
    MetricsServer(const MetricsServer &) = delete;
    MetricsServer &operator=(const MetricsServer &) = delete;

    /** The bound port (useful with port 0). */
    uint16_t port() const { return port_; }

    /** Stop serving and join the thread. Idempotent. */
    void stop();

  private:
    void serveLoop();

    int listen_fd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/**
 * Fetch the metrics body from a MetricsServer at host:port.
 *
 * Sends a plain HTTP/1.0 GET and returns the response body (headers
 * stripped). Returns false and fills *why on connect/read failure or
 * a non-200 status.
 */
bool fetchMetricsText(const std::string &host, uint16_t port,
                      std::string *body, std::string *why);

} // namespace hbbp

#endif // HBBP_FLEET_METRICS_HH
