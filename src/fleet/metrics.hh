/**
 * @file
 * Metrics exposition endpoint and up-tree metrics federation.
 *
 * MetricsServer is the tiny HTTP/1.0 endpoint behind --metrics-port.
 * It understands two verbs: `GET /metrics` (Prometheus text) and
 * `GET /healthz` (the health plane's liveness body). Both bodies come
 * from pluggable renderers, so a federating daemon swaps in a merged
 * view without the server knowing. It reuses the transport layer's
 * socket discipline but lives on its own port so the shard frame
 * protocol (which opens with a binary magic, not "GET ") stays
 * undisturbed; request handling is deliberately sequential — a scrape
 * is a few kilobytes and the daemons' real work happens elsewhere.
 *
 * Federation rides the shard tree: a relay stamps its own scrape
 * address into the manifests it flushes upstream (`metrics=` line),
 * so a parent discovers children exactly as fast as shards arrive —
 * no separate topology configuration. MetricsFederator owns the
 * discovered children, scrapes them from a background thread, and
 * exposes fresh snapshots; federateMetricsText() is the pure merge:
 * own series stay byte-identical, child series gain a `peer=` label,
 * and every counter gets an `agg="subtree"` rollup series computed so
 * the rollup composes across any tree depth (a parent consumes its
 * child's subtree series when present, the bare one otherwise).
 *
 * A child that stops answering is declared stale after a grace
 * window: its series drop out of the merged view, its
 * `hbbp_federation_child_up` gauge goes to 0, healthz degrades, and a
 * `child_stale` event is emitted (`child_recovered` on the way back).
 */

#ifndef HBBP_FLEET_METRICS_HH
#define HBBP_FLEET_METRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hbbp {

class MetricsServer
{
  public:
    /** A body producer; called per request, must be thread-safe. */
    using Renderer = std::function<std::string()>;

    /**
     * Bind `port` (0 picks an ephemeral port) and start serving.
     * fatal()s if the socket cannot be bound.
     */
    explicit MetricsServer(uint16_t port);
    ~MetricsServer();
    MetricsServer(const MetricsServer &) = delete;
    MetricsServer &operator=(const MetricsServer &) = delete;

    /** The bound port (useful with port 0). */
    uint16_t port() const { return port_; }

    /**
     * Replace the /metrics body (default: the process registry's
     * renderPrometheus()). A federating daemon installs the merged
     * view here. Thread-safe.
     */
    void setMetricsRenderer(Renderer fn);

    /**
     * Replace the /healthz body (default: telemetry::renderHealth
     * with a 30s stall threshold). Daemons with a configured
     * --stall-warn-s or a federator install renderHealthz() here.
     * Thread-safe.
     */
    void setHealthzRenderer(Renderer fn);

    /** Stop serving and join the thread. Idempotent. */
    void stop();

  private:
    void serveLoop();

    int listen_fd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::thread thread_;
    std::mutex render_mu_;
    Renderer metrics_fn_;
    Renderer healthz_fn_;
};

/**
 * One child's latest scrape as the merge consumes it. `fresh` gates
 * inclusion: a stale or not-yet-scraped child contributes only its
 * child_up gauge, never old series.
 */
struct PeerSnapshot
{
    std::string peer;   ///< Label value (the child's node id).
    std::string text;   ///< Last successful Prometheus scrape body.
    bool fresh = false; ///< Series are current enough to merge.
    double age_s = 0.0; ///< Seconds since the last successful scrape.
};

/**
 * Merge @p own (a renderPrometheus() body, passed through verbatim so
 * local series keep their bytes) with child snapshots:
 *
 *  - `hbbp_federation_child_up{peer="X"} 0|1` per child, sorted;
 *  - every fresh child's series re-emitted with a `peer="X"` label
 *    appended (lines already carrying a peer label — a grandchild's —
 *    pass through unchanged, so identity survives depth);
 *  - one `name{agg="subtree"} total` rollup per counter, summing the
 *    local value plus each fresh child's subtree series (falling back
 *    to its bare series), so rollups compose across tree levels.
 *
 * Pure and deterministic: children are sorted by peer id, rollups by
 * metric name.
 */
std::string federateMetricsText(const std::string &own,
                                const std::vector<PeerSnapshot> &peers);

/**
 * Scrapes discovered children on a background thread and hands fresh
 * snapshots to the merge. Children arrive via noteChild() as shards
 * carrying `metrics=` lines are accepted; a re-advertised endpoint
 * overwrites the old one. Every scrape round beats Stage::Federator.
 */
class MetricsFederator
{
  public:
    /**
     * @p interval_s between scrape rounds; a child whose last success
     * is more than @p stale_after_s ago is declared stale.
     */
    explicit MetricsFederator(double interval_s = 1.0,
                              double stale_after_s = 5.0);
    ~MetricsFederator();
    MetricsFederator(const MetricsFederator &) = delete;
    MetricsFederator &operator=(const MetricsFederator &) = delete;

    /**
     * Register (or re-register) child @p peer at `host:port`
     * @p endpoint. Thread-safe; called from the listener's accept
     * path. An endpoint change warns and bumps
     * hbbp_federation_child_reendpoint_total — two children
     * advertising one peer id would otherwise silently shadow each
     * other.
     */
    void noteChild(const std::string &peer, const std::string &endpoint);

    /** Current snapshots, sorted by peer id. */
    std::vector<PeerSnapshot> snapshots() const;

    /**
     * Append one `child <peer> up=<0|1> age_s=<age>` line per child
     * to *@p lines. Returns false when any child is stale — the
     * healthz degrade signal.
     */
    bool childrenUp(std::string *lines) const;

    size_t childCount() const;

    /** Stop and join the scrape thread (also done by the dtor). */
    void stop();

  private:
    struct Child
    {
        std::string endpoint;
        std::string text;
        bool up = true; ///< Optimistic until the grace window passes.
        int64_t last_ok_ms = 0; ///< Last success (or discovery) time.
        bool ever_ok = false;
    };

    void scrapeLoop();

    double interval_s_;
    double stale_after_s_;
    mutable std::mutex mu_;
    std::map<std::string, Child> children_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/**
 * The healthz body: `status: live|degraded` (degraded when a loop
 * stage stalled past @p stall_s or any federation child is stale),
 * one `stage ...` line per enabled heartbeat stage, then one
 * `child ...` line per federation child. @p federator may be null.
 */
std::string renderHealthz(double stall_s, MetricsFederator *federator);

/**
 * Fetch `GET @p path` from a MetricsServer at host:port.
 *
 * Sends a plain HTTP/1.0 GET and returns the response body (headers
 * stripped). Returns false and fills *why on connect/read failure or
 * a non-200 status.
 */
bool fetchMetricsText(const std::string &host, uint16_t port,
                      std::string *body, std::string *why,
                      const std::string &path = "/metrics");

} // namespace hbbp

#endif // HBBP_FLEET_METRICS_HH
