/**
 * @file
 * Incremental multi-host aggregation.
 *
 * Shards from N collector hosts arrive in whatever order the transport
 * delivers them; the aggregator folds each one into a cached per-host
 * partial aggregate on arrival, detects duplicate deliveries by payload
 * checksum, rejects incompatible collections (mixed sampling periods or
 * runtime classes) with a diagnostic, and invalidates downstream
 * analysis whenever a new shard lands — so re-analysis runs exactly
 * once per arrival, never more. The final aggregate folds hosts in
 * sorted host-id order and each host's shards in sequence order, so
 * the result is byte-identical no matter what order shards arrived in
 * — and identical to a one-shot mergeProfiles() over the same shards.
 *
 * watchAndAggregate() is the transport stand-in: it polls a drop
 * directory for shard manifests (the multi-host simulation; a network
 * transport would enqueue the same imports), skipping files it has
 * already judged.
 */

#ifndef HBBP_FLEET_AGGREGATE_HH
#define HBBP_FLEET_AGGREGATE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "fleet/manifest.hh"
#include "isa/mnemonic.hh"
#include "support/histogram.hh"

namespace hbbp {

/** What the aggregator has seen and done (the invalidation proof). */
struct AggregatorStats
{
    size_t accepted = 0;     ///< Shards folded into the aggregate.
    size_t duplicates = 0;   ///< Rejected: checksum already aggregated.
    size_t incompatible = 0; ///< Rejected: periods/class mismatch.
    size_t malformed = 0;    ///< Rejected: unreadable manifest/profile.
    size_t analyses = 0;     ///< Analysis recomputations (not cache hits).
    size_t rebuilds = 0;     ///< Aggregate recomputations (not cache hits).
    size_t aggregates = 0;   ///< Accepted arrivals that were partial
                             ///< aggregates (manifest level >= 1).
    size_t superseded = 0;   ///< Aggregate arrivals whose whole coverage
                             ///< was already surpassed (folded nothing).
};

/**
 * One host's transportable partial: the fold of that host's leaf
 * shards with sequence numbers [0, covered), serialized.
 */
struct HostPartial
{
    std::string host;
    uint32_t covered = 0;
    std::string bytes;
};

/**
 * An out-of-order leaf shard stranded behind a sequence gap. It cannot
 * ride inside an aggregate (coverage is a gap-free prefix), so a relay
 * forwards it upstream verbatim as the leaf shard it is.
 */
struct OrphanShard
{
    std::string host;
    uint32_t seq = 0;
    uint64_t checksum = 0;
    std::string bytes;
};

/** Everything a relay needs to push its state upstream. */
struct PartialExport
{
    /** Per-host contiguous partials, sorted by host id. */
    std::vector<HostPartial> partials;
    /** Pending out-of-order leaf shards, forwarded as-is. */
    std::vector<OrphanShard> orphans;
    /** Payload checksum of the partials folded in order — what the
     * aggregate-shard manifest promises. */
    uint64_t checksum = 0;
    std::string workload;
};

/** Folds arriving shards into one canonical-order aggregate. */
class IncrementalAggregator
{
  public:
    /**
     * Fold an arrived shard in. Returns false with *@p why set when
     * the shard is a duplicate (payload checksum already aggregated),
     * collides with an existing (host, seq) slot, or is incompatible
     * with the shards aggregated so far — a different workload,
     * mismatched sampling periods / runtime class, or a conflicting
     * module placement; stats() records which.
     */
    bool addShard(const ShardManifest &manifest, ProfileData profile,
                  std::string *why = nullptr);

    /**
     * Fold an arrived *aggregate* shard in: @p partials are the
     * per-host folds aligned with @p manifest.covered (one per entry,
     * same order). Each host's coverage splices into that host's state
     * independently — arriving coverage [0, n) *supersedes* what we
     * hold when n exceeds the host's folded prefix (replacing the
     * partial wholesale, retiring any pending shards it now covers)
     * and is skipped when it does not, so re-deliveries, restarted
     * relays and growing flushes fold idempotently and the root
     * aggregate is byte-identical to flat ingestion of the same leaf
     * shards regardless of tree shape or arrival order.
     *
     * Returns false with *@p why set when the arrival is a duplicate
     * (payload checksum already seen), entirely superseded (every
     * host's coverage already surpassed — counted separately in
     * stats().superseded), malformed (coverage/partials disagree) or
     * incompatible. Duplicate and superseded arrivals record the
     * checksum as seen, so hasChecksum() lets a transport confirm
     * them back to the sender as successes.
     */
    bool addAggregateShard(const ShardManifest &manifest,
                           std::vector<ProfileData> partials,
                           std::string *why = nullptr);

    /**
     * importShard() the manifest at @p manifest_path and fold it in.
     * Returns the manifest on acceptance; std::nullopt with *@p why
     * set otherwise (unreadable files count into stats().malformed,
     * rejected shards into duplicates/incompatible).
     */
    std::optional<ShardManifest>
    importFile(const std::string &manifest_path,
               std::string *why = nullptr);

    /**
     * The aggregate of everything accepted so far, in canonical order
     * (hosts sorted by id, shards by sequence within each host).
     * Cached until the next accepted shard invalidates it; fatal()
     * when no shards have been accepted.
     */
    const ProfileData &aggregate();

    /**
     * HBBP mnemonic mix of aggregate() analyzed against @p prog with
     * @p analyzer. Cached: recomputed only when a new shard has
     * arrived since the last call (stats().analyses counts the
     * recomputations).
     */
    const Counter<Mnemonic> &analyzeWith(const Program &prog,
                                         const Analyzer &analyzer);

    const AggregatorStats &stats() const { return stats_; }

    /** Accepted shard count (== stats().accepted). */
    size_t shardCount() const { return stats_.accepted; }

    /** Distinct hosts that have contributed accepted shards. */
    size_t hostCount() const { return hosts_.size(); }

    /**
     * The invalidation epoch: bumped once per accepted shard, never
     * otherwise. Anything derived from aggregate() — an analysis, a
     * rendered report, a served query result — is valid exactly as
     * long as this number stands still, which is what the query
     * layer's `epoch=`/`cached=` headers expose.
     */
    uint64_t epoch() const { return epoch_; }

    /** Workload of the accepted shards ("" before the first one). */
    const std::string &workloadName() const { return workload_; }

    /**
     * One host's folded contiguous partial, or nullptr when the host
     * is unknown or still gapped at sequence 0. The pointer is valid
     * until the next accepted shard. Backs per-host slice queries.
     */
    const ProfileData *hostPartial(const std::string &host) const;

    /** One row of hostProgress(). (Distinct from the manifest's
     *  HostCoverage, which describes an aggregate shard's payload.) */
    struct HostProgress
    {
        std::string host;
        uint32_t covered = 0; ///< Gap-free folded prefix [0, covered).
        size_t pending = 0;   ///< Out-of-order shards behind a gap.
    };

    /** Per-host arrival coverage, sorted by host id. */
    std::vector<HostProgress> hostProgress() const;

    /**
     * Leaf shards the aggregate accounts for: each host's folded
     * prefix plus its pending out-of-order arrivals. Equal to
     * stats().accepted when every arrival was a leaf shard; with
     * aggregate arrivals it counts what they *cover*, which is what a
     * fleet-completeness wait (`--expect`) actually means.
     */
    size_t coveredShards() const;

    /**
     * Deepest aggregation level folded in so far: 0 after only leaf
     * shards, N after an aggregate shard of level N. A relay stamps
     * its own exports one level above this.
     */
    uint32_t maxLevelSeen() const { return max_level_; }

    /**
     * Snapshot the per-host state in transportable form: sorted
     * per-host partials (serialized, with their coverage counts and
     * the folded checksum an aggregate-shard manifest promises) plus
     * any pending out-of-order leaf shards re-serialized for verbatim
     * forwarding. Empty partials and orphans when nothing has been
     * accepted.
     */
    PartialExport exportPartials() const;

    /** Count a shard the transport rejected before addShard() ran. */
    void noteMalformed() { stats_.malformed++; }

    /**
     * True when a shard with this payload checksum is already
     * aggregated — how a transport tells a re-delivery (confirm it,
     * the sender succeeded) from a rejection (fail it loudly).
     */
    bool
    hasChecksum(uint64_t checksum) const
    {
        return seen_checksums_.count(checksum) != 0;
    }

    /**
     * Persist everything acceptance depends on — the per-host partial
     * aggregates (with their out-of-order pending shards), the
     * seen-checksum set, the compatibility reference, the reconciled
     * module map and the cumulative stats — to @p path as a versioned,
     * checksummed binary state file (atomic write, like every on-disk
     * artifact here). A fresh aggregator restored from the file and
     * fed the remaining shards produces an aggregate byte-identical to
     * one that never restarted.
     */
    void saveState(const std::string &path) const;

    /**
     * Restore a *fresh* aggregator from a saveState() file. Returns
     * false with *@p why set when the file is missing, unreadable, a
     * foreign or unsupported format, fails its checksum, or is
     * structurally corrupt behind a valid checksum — all of it a cold
     * start, never a crash: the shards can always be re-imported.
     */
    bool restoreState(const std::string &path,
                      std::string *why = nullptr);

    /** Shards carried in by restoreState() (0 on a cold start). */
    size_t restoredShards() const { return restored_; }

    /**
     * Mark everything accepted so far as restored rather than newly
     * imported — the journal-replay path's equivalent of the count
     * restoreState() sets, so `restored=` reporting stays truthful
     * when a checkpoint is topped up from an append-only journal.
     */
    void markRestored() { restored_ = stats_.accepted; }

  private:
    /** restoreState()'s checksummed-payload parse (throws on damage). */
    void parseStateBody(const std::string &body,
                        const std::string &path);

    /** One host's arrival state. */
    struct HostState
    {
        /** Shards folded so far, in sequence order. */
        std::optional<ProfileData> partial;
        /** Next sequence number the partial is waiting for. */
        uint32_t next_seq = 0;
        /** Out-of-order arrivals, folded once the gap fills. */
        std::map<uint32_t, ProfileData> pending;
    };

    std::map<std::string, HostState> hosts_; ///< Sorted by host id.
    std::set<uint64_t> seen_checksums_;
    /** Periods/class of the first accepted shard (compat reference). */
    std::optional<ProfileData> compat_ref_;
    /** Workload of the first accepted shard; mixing is refused. */
    std::string workload_;
    /**
     * Module map reconciled across every accepted shard. Conflicting
     * placements are caught here, at the acceptance gate, so the merge
     * folds (which fatal() on conflicts) can never hit one.
     */
    std::vector<MmapRecord> mmaps_;

    uint32_t max_level_ = 0; ///< Deepest manifest level accepted.
    uint64_t epoch_ = 0; ///< Bumped per accepted shard.
    std::optional<ProfileData> cached_aggregate_;
    uint64_t aggregate_epoch_ = UINT64_MAX;
    std::optional<Counter<Mnemonic>> cached_mix_;
    uint64_t analysis_epoch_ = UINT64_MAX;

    size_t restored_ = 0; ///< Shards carried in by restoreState().
    AggregatorStats stats_;
};

/** Drop-directory watch parameters. */
struct WatchOptions
{
    /**
     * Stop once this many leaf shards are covered (counting any
     * restoreState() carry-in; equal to the accepted count when every
     * arrival is a leaf shard); 0 means scan the directory once and
     * return without waiting.
     */
    size_t expect = 0;
    /**
     * Give up after this long with no successful import. An *idle*
     * timeout, not a wall-clock deadline: every accepted shard resets
     * it, so a slow-but-steady trickle from many hosts is never
     * aborted mid-stream — only a genuinely stalled transport is.
     */
    int timeout_ms = 10'000;
    /** Poll interval between directory scans. */
    int poll_ms = 50;
    /** Called after each accepted shard (e.g. to trigger analysis). */
    std::function<void(const ShardManifest &)> on_accept;
};

/**
 * Poll @p dir for `*.manifest` files and import each new one into
 * @p agg (scan order is sorted, so a fixed directory state aggregates
 * deterministically). Returns the number of accepted shards; inspect
 * agg.stats() for rejections. Files are judged once — a manifest that
 * fails to import is skipped on later scans, never retried.
 */
size_t watchAndAggregate(IncrementalAggregator &agg,
                         const std::string &dir,
                         const WatchOptions &options = {});

} // namespace hbbp

#endif // HBBP_FLEET_AGGREGATE_HH
