/**
 * @file
 * The analysis-query wire layer: how QueryRequests travel to a
 * serving daemon and QueryResults travel back.
 *
 * Query connections share the ShardListener's port — a query client
 * dials the same HOST:PORT the collectors push shards to — and are
 * told apart by their opening magic: shard frames start with
 * kFrameMagic ("HBPSFRM1"), query frames with kQueryFrameMagic
 * ("HBPQRY01"). Keeping both on one port keeps ALL aggregator access
 * on the listener's single poll thread: query handlers run between
 * shard frames, never concurrently with a fold, so the daemon needs
 * no locks and stays TSan-clean. Concurrent queriers are multiplexed
 * by poll(), not threads.
 *
 * Framing follows the PR-4 shard idiom, minimal form: a query frame
 * is `u64 magic | u32 body_len | body`, the reply mirrors it with
 * kQueryReplyMagic. Bodies are the versioned text forms from
 * analysis/service.hh (hbbp-query/1 requests) and the reply body
 * below — headers first, then a blank line, then the rendered
 * payload:
 *
 *   hbbp-reply/1
 *   status=ok
 *   epoch=7
 *   cached=1
 *
 *   <payload bytes>
 */

#ifndef HBBP_FLEET_QUERY_HH
#define HBBP_FLEET_QUERY_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "analysis/service.hh"
#include "fleet/aggregate.hh"
#include "support/telemetry.hh"

namespace hbbp {

/** First 8 bytes of a query frame ("HBPQRY01", little-endian). */
constexpr uint64_t kQueryFrameMagic = 0x3130595251504248ULL;

/** First 8 bytes of a reply frame ("HBPQRP01", little-endian). */
constexpr uint64_t kQueryReplyMagic = 0x3130505251504248ULL;

/** Query/reply frame header: u64 magic + u32 body length. */
constexpr size_t kQueryFrameHeaderBytes = 12;

/** Bound on a query or reply body a peer can make us buffer. */
constexpr size_t kMaxQueryBodyBytes = 1u << 20;

/** Frame @p body as a query frame (magic + length prefix + body). */
std::string encodeQueryFrame(const std::string &body);

/** A parsed reply body. */
struct QueryReply
{
    bool ok = false;
    uint64_t epoch = 0;
    bool cached = false;
    std::string error;   ///< Set when !ok.
    std::string payload; ///< The rendered QueryResult bytes.
    /**
     * Server-side time split, rendered as
     * `timing=parse:N,cache:N,analysis:N,render:N` (nanoseconds)
     * when has_timing — where the request's wall time went: request
     * parse, cache probe (epoch refresh + result-cache lookup),
     * analysis build (0 on a cache hit), payload render. Older
     * clients skip the header; older servers simply never send it.
     */
    bool has_timing = false;
    uint64_t parse_ns = 0;
    uint64_t cache_ns = 0;
    uint64_t analysis_ns = 0;
    uint64_t render_ns = 0;
    /**
     * Query trace id (`trace=` header) when the serving daemon runs
     * with --trace-log: the id of the query_serve span it appended,
     * so a reply can be joined to the shard-lifecycle trace timeline.
     */
    std::string trace_id;
};

/** Serialize a reply body (headers, blank line, payload). */
std::string renderQueryReplyBody(const QueryReply &reply);

/** Parse a reply body; false with *@p why on malformed input. */
bool parseQueryReplyBody(const std::string &body, QueryReply *reply,
                         std::string *why);

/** A ready-made status=error reply body (epoch 0, not cached). */
std::string queryErrorReplyBody(const std::string &error);

/**
 * The client side: connects lazily, keeps the connection for
 * back-to-back queries (the batch-of-N path bench/scale_query
 * measures), and reconnects once per query() call after a failure.
 * Built on the shared socket-client discipline (connect deadline, IO
 * timeouts, progress-stalled close).
 */
class QueryClient
{
  public:
    QueryClient(std::string host, uint16_t port,
                int io_timeout_ms = 30'000);
    ~QueryClient();

    QueryClient(const QueryClient &) = delete;
    QueryClient &operator=(const QueryClient &) = delete;

    /**
     * Send one request body, await the framed reply, parse it into
     * *@p reply. False with *@p why on connection, framing or
     * protocol failure; a status=error reply is a *successful* call
     * with reply->ok == false.
     */
    bool query(const std::string &request_body, QueryReply *reply,
               std::string *why);

  private:
    bool ensureConnected(std::string *why);
    void disconnect();

    std::string host_;
    uint16_t port_ = 0;
    int io_timeout_ms_ = 30'000;
    int fd_ = -1;
};

/**
 * The live-aggregator profile source: epoch is the aggregator's
 * invalidation epoch, slices come from its per-host partials. Valid
 * only on the thread that folds shards (the listener's serve loop).
 */
class AggregatorProfileSource : public ProfileSource
{
  public:
    explicit AggregatorProfileSource(IncrementalAggregator &agg)
        : agg_(agg)
    {
    }

    uint64_t epoch() const override { return agg_.epoch(); }
    std::string workloadName() const override
    {
        return agg_.workloadName();
    }
    const ProfileData *profile() override
    {
        // aggregate() fatal()s on an empty aggregator; an empty
        // source must answer "nothing yet" instead.
        return agg_.hostCount() == 0 ? nullptr : &agg_.aggregate();
    }
    const ProfileData *hostProfile(const std::string &host) override
    {
        return agg_.hostPartial(host);
    }
    std::vector<HostSlice> hostSlices() const override;

  private:
    IncrementalAggregator &agg_;
};

/**
 * The server side: turns raw query bodies into raw reply bodies over
 * an AnalysisService. Plugged into ListenOptions::on_query; also
 * implements the transport-level `shutdown` verb (reply ok, then
 * stopRequested() flips, which the co-hosted listener polls via
 * should_stop — the daemon's deterministic exit).
 */
class QueryEndpoint
{
  public:
    explicit QueryEndpoint(AnalysisService &service);

    /** One request body in, one reply body out. Never throws. */
    std::string handle(const std::string &request_body);

    /** True once a shutdown query was acknowledged. */
    bool stopRequested() const { return stop_; }

    /**
     * Attach the daemon's shard-lifecycle trace log (borrowed; may
     * be null or inactive). Every served query then appends one
     * `query_serve` span with a fresh `query-<node>-<seq>` trace id,
     * which the reply echoes in its `trace=` header — the query's
     * join point into the ingestion trace timeline.
     */
    void setTraceLog(telemetry::TraceLog *trace, std::string node);

  private:
    AnalysisService &service_;
    bool stop_ = false;
    telemetry::TraceLog *trace_ = nullptr;
    std::string trace_node_;
    uint64_t query_seq_ = 0;
};

} // namespace hbbp

#endif // HBBP_FLEET_QUERY_HH
