/**
 * @file
 * The content-addressed profile store — a small embedded database.
 *
 * Collection is the expensive half of the collector/analyzer split, and
 * fleet drivers re-request the same (workload, collection options) pairs
 * constantly. The store caches profiles on disk under a key derived
 * from everything that determines the collection output — workload
 * name, runtime class, periods scale, instruction budget, seeds, PMU
 * parameters, and the shard plan — so a repeated collect is a cache
 * hit and a changed option is automatically a different entry. The
 * aggregation side addresses imported shards by payload checksum
 * instead.
 *
 * v2 structure (PR 9): beside the entry files the store keeps a
 * checksummed append-only index (`store.idx`, rebuildable from a
 * directory scan) that is loaded into an in-memory map at open, so
 * membership tests and entry counts never readdir; an flock(2) lock
 * file (`store.lock`) serializes index appends and gc across
 * *processes*, making several depositors plus a concurrent `store gc`
 * correct by construction; and a `pins/` directory holds persisted
 * StorePin refcounts so gc cannot evict a shard a pending (even
 * crashed) aggregate still references. Entries are written to a temp
 * file and renamed into place, so a crashed writer never leaves a
 * truncated profile behind, and reads go through mmap with a
 * plain-read fallback (support/bytes MappedBytes).
 */

#ifndef HBBP_FLEET_STORE_HH
#define HBBP_FLEET_STORE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "collect/collector.hh"
#include "collect/profile.hh"
#include "fleet/shard.hh"
#include "sim/machine.hh"
#include "support/bytes.hh"

namespace hbbp {

/** Everything that determines a collection's output, hashable. */
struct ProfileKey
{
    std::string workload;
    CollectorConfig config;
    uint32_t shards = 1;
    /** Machine timing model (skid placement depends on it). */
    MachineConfig machine;

    /** Canonical description string the hash is computed over. */
    std::string describe() const;

    /** 64-bit content hash (FNV-1a over describe()). */
    uint64_t hash() const;
};

class StorePin;

/** On-disk content-addressed cache of collected profiles. */
class ProfileStore
{
  public:
    struct Options
    {
        /**
         * lookup() heals stale entries by unlinking them — but an
         * entry younger than this is plausibly a concurrent
         * depositor's fresh re-insert that this reader raced (it
         * loaded the old bytes, the file under the name is already
         * new), and unlinking it would throw away good work. Skip the
         * unlink for entries younger than the grace window.
         */
        int64_t heal_grace_s = 60;
    };

    /**
     * Open (creating if needed) the store rooted at @p dir. A missing
     * or unreadable index is rebuilt from a directory scan — the
     * directory is the source of truth, the index is an acceleration
     * structure.
     */
    explicit ProfileStore(std::string dir) : ProfileStore(std::move(dir), Options()) {}
    ProfileStore(std::string dir, Options options);

    ProfileStore(const ProfileStore &) = delete;
    ProfileStore &operator=(const ProfileStore &) = delete;

    /** Path a profile with @p key lives at (whether present or not). */
    std::string pathFor(const ProfileKey &key) const;

    /**
     * True when a profile for @p key is cached. Answered from the
     * in-memory index (refreshed from the shared index file on a
     * miss, so another process's deposit is visible); never readdirs.
     */
    bool contains(const ProfileKey &key) const;

    /**
     * Load the cached profile for @p key, or nullopt on a miss. An
     * entry that can no longer be read — a legacy format version, a
     * stale checksum, truncation — is a miss (with a warn()), so a
     * store carried across format bumps heals by re-collection; the
     * heal respects Options::heal_grace_s. An index entry whose file
     * vanished (another process's gc) is a clean miss that also heals
     * the index.
     */
    std::optional<ProfileData> lookup(const ProfileKey &key) const;

    /** Cache @p profile under @p key (atomic rename into place). */
    void insert(const ProfileKey &key, const ProfileData &profile) const;

    /**
     * The workhorse: return the cached profile for @p key, or collect
     * it (sharded per @p key.shards on @p key.machine with @p jobs
     * workers), cache it and return it. @p cache_hit, when non-null,
     * reports which happened.
     */
    ProfileData getOrCollect(const ProfileKey &key, const Program &prog,
                             unsigned jobs,
                             bool *cache_hit = nullptr) const;

    /**
     * Path a shard with payload checksum @p checksum lives at. The
     * aggregation side of the store: collectors address entries by
     * ProfileKey (what to collect), a central aggregation store
     * addresses imported shards by what they contain.
     */
    std::string pathForChecksum(uint64_t checksum) const;

    /** True when a shard with @p checksum is cached (index-answered). */
    bool containsChecksum(uint64_t checksum) const;

    /**
     * Cache @p profile under its payload @p checksum. Content-
     * addressed: an entry that is already present is left alone (same
     * checksum, same bytes). The presence check and the deposit are
     * one exclusive-locked critical section, so concurrent depositors
     * across processes write each entry exactly once. Returns true
     * when this call deposited the entry.
     */
    bool insertByChecksum(uint64_t checksum,
                          const ProfileData &profile) const;

    /**
     * insertByChecksum() from already-serialized bytes on disk: copy
     * the profile file at @p src_path into the store. For callers
     * that verified the bytes elsewhere (the aggregation import path)
     * and should not pay a re-parse + re-serialize just to deposit
     * them.
     */
    bool depositFileByChecksum(uint64_t checksum,
                               const std::string &src_path) const;

    /**
     * insertByChecksum() from already-serialized bytes in memory —
     * the zero-copy deposit for transport chunks that arrived as
     * exact profile-file bytes.
     */
    bool depositBytesByChecksum(uint64_t checksum,
                                std::string_view bytes) const;

    /** Number of cached entries, answered from the index. */
    size_t entryCount() const;

    /** Garbage-collection bounds; negative bounds are unlimited. */
    struct GcOptions
    {
        /** Evict entries last written more than this many seconds
         * ago. */
        int64_t max_age_s = -1;
        /** Then evict oldest-first until the store fits this size. */
        int64_t max_bytes = -1;
    };

    /** What gc() scanned and reclaimed. */
    struct GcResult
    {
        size_t scanned = 0;
        size_t evicted = 0;
        /** Evictions refused because a StorePin references them. */
        size_t pinned_skipped = 0;
        uint64_t bytes_before = 0;
        uint64_t bytes_after = 0;
    };

    /**
     * Age- and size-bounded eviction, oldest entry first (by file
     * modification time — a re-inserted entry is young again). The
     * store is a cache: an evicted entry turns the next lookup() into
     * a clean miss to re-collect, never an error. Runs under the
     * exclusive cross-process lock, reconciles the index against the
     * directory (this is the one maintenance path allowed to
     * readdir), and never evicts an entry some StorePin holds.
     */
    GcResult gc(const GcOptions &options) const;

    /**
     * Rebuild the index from a directory scan (also what open does
     * when the index is missing). Returns the number of entries
     * indexed. The recovery tool for a lost or corrupted index — the
     * entries themselves are always the source of truth.
     */
    size_t rebuildIndex() const;

    /** What verify() checked and found. */
    struct VerifyResult
    {
        size_t checked = 0;             ///< Index entries examined.
        size_t missing_files = 0;       ///< Indexed but no file.
        size_t stray_files = 0;         ///< File but not indexed.
        size_t checksum_mismatches = 0; ///< File disagrees with index.
        bool ok() const
        {
            return missing_files == 0 && stray_files == 0 &&
                   checksum_mismatches == 0;
        }
    };

    /**
     * Cross-check the index against the directory and every entry's
     * recorded payload checksum against the bytes on disk.
     */
    VerifyResult verify() const;

    /** A point-in-time summary for `store stat`. */
    struct Stats
    {
        size_t key_entries = 0;
        size_t shard_entries = 0;
        uint64_t total_bytes = 0;
        size_t pinned = 0;       ///< Distinct pinned checksums.
        size_t pin_owners = 0;   ///< Pin files present.
    };

    Stats stats() const;

    /** Store root directory. */
    const std::string &dir() const { return dir_; }

  private:
    friend class StorePin;

    enum class Kind : uint8_t
    {
        Key = 0,
        Shard = 1,
    };

    struct IndexEntry
    {
        uint64_t size = 0;
        uint64_t checksum = 0;
    };

    std::string indexPath() const { return dir_ + "/store.idx"; }
    std::string pinsDir() const { return dir_ + "/pins"; }
    std::string pinPathFor(const std::string &owner) const;
    std::string entryPath(Kind kind, uint64_t id) const;

    /** Map for @p kind; call with mu_ held. */
    std::unordered_map<uint64_t, IndexEntry> &mapFor(Kind kind) const;

    /** Reload or tail-catch-up from the index file (locks held). */
    void refreshLocked() const;
    /** Full index load from disk (locks held). */
    void loadIndexLocked() const;
    /** Rebuild from a directory scan (exclusive lock + mu_ held). */
    size_t rebuildIndexLocked() const;
    /** Append one index record (exclusive lock + mu_ held). */
    void appendLocked(const std::string &body) const;
    /** Put/erase records, applied to memory and appended (locked). */
    void recordPut(Kind kind, uint64_t id, const IndexEntry &e) const;
    void recordErase(Kind kind, uint64_t id) const;
    /** Shared deposit path for the three ByChecksum writers. */
    bool depositLocked(uint64_t checksum,
                       const std::function<void(const std::string &)>
                           &write_to) const;
    /** Checksums pinned by any owner (exclusive lock held). */
    std::set<uint64_t> pinnedChecksums() const;

    std::string dir_;
    Options options_;
    mutable FileLock lock_;
    mutable std::mutex mu_;
    mutable std::unordered_map<uint64_t, IndexEntry> keys_;
    mutable std::unordered_map<uint64_t, IndexEntry> shards_;
    /** Bytes of the index file already applied to the maps. */
    mutable size_t index_off_ = 0;
    /** The index generation header record (detects rewrites). */
    mutable std::string index_header_;
};

/**
 * A persisted refcount on store entries: while a checksum is pinned,
 * gc() will not evict it. The aggregator/relay pins a shard *before*
 * depositing it and unpins once the shard is durable downstream
 * (journaled state, acknowledged upstream flush), closing the "gc
 * evicted a shard a pending aggregate still needed" hole.
 *
 * Pins persist in `<store>/pins/<owner>.pins` and survive SIGKILL: a
 * restarted owner constructing a StorePin with the same owner string
 * inherits its previous pins (restored()). Destruction does NOT
 * release — persistence across crashes is the point; call release()
 * on clean completion.
 */
class StorePin
{
  public:
    /** @p owner must be stable across restarts of the same job. */
    StorePin(const ProfileStore &store, std::string owner);

    StorePin(const StorePin &) = delete;
    StorePin &operator=(const StorePin &) = delete;

    /** Pin @p checksum; persisted before returning. */
    void pin(uint64_t checksum);

    /** Drop one pin; persisted before returning. */
    void unpin(uint64_t checksum);

    /** Drop every pin and delete the pin file (clean completion). */
    void release();

    /** Pins inherited from a previous (crashed) run of this owner. */
    size_t restored() const { return restored_; }

    size_t size() const { return pins_.size(); }
    const std::string &owner() const { return owner_; }

  private:
    void persist() const;

    const ProfileStore &store_;
    std::string owner_;
    /**
     * StorePin's own lock fd on the store's lock file: flock on a
     * *shared* open file description would convert the store's lock
     * instead of blocking against it.
     */
    FileLock lock_;
    std::string path_;
    std::set<uint64_t> pins_;
    size_t restored_ = 0;
};

} // namespace hbbp

#endif // HBBP_FLEET_STORE_HH
