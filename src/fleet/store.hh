/**
 * @file
 * The content-addressed profile store.
 *
 * Collection is the expensive half of the collector/analyzer split, and
 * fleet drivers re-request the same (workload, collection options) pairs
 * constantly. The store caches profiles on disk under a key derived
 * from everything that determines the collection output — workload
 * name, runtime class, periods scale, instruction budget, seeds, PMU
 * parameters, and the shard plan — so a repeated collect is a cache
 * hit and a changed option is automatically a different entry. Entries
 * are written to a temp file and renamed into place, so a crashed
 * writer never leaves a truncated profile behind.
 */

#ifndef HBBP_FLEET_STORE_HH
#define HBBP_FLEET_STORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "collect/collector.hh"
#include "collect/profile.hh"
#include "fleet/shard.hh"
#include "sim/machine.hh"

namespace hbbp {

/** Everything that determines a collection's output, hashable. */
struct ProfileKey
{
    std::string workload;
    CollectorConfig config;
    uint32_t shards = 1;
    /** Machine timing model (skid placement depends on it). */
    MachineConfig machine;

    /** Canonical description string the hash is computed over. */
    std::string describe() const;

    /** 64-bit content hash (FNV-1a over describe()). */
    uint64_t hash() const;
};

/** On-disk content-addressed cache of collected profiles. */
class ProfileStore
{
  public:
    /** Open (creating if needed) the store rooted at @p dir. */
    explicit ProfileStore(std::string dir);

    /** Path a profile with @p key lives at (whether present or not). */
    std::string pathFor(const ProfileKey &key) const;

    /** True when a profile for @p key is cached. */
    bool contains(const ProfileKey &key) const;

    /**
     * Load the cached profile for @p key, or nullopt on a miss. An
     * entry that can no longer be read — a legacy format version, a
     * stale checksum, truncation — is a miss (with a warn()), so a
     * store carried across format bumps heals by re-collection.
     */
    std::optional<ProfileData> lookup(const ProfileKey &key) const;

    /** Cache @p profile under @p key (atomic rename into place). */
    void insert(const ProfileKey &key, const ProfileData &profile) const;

    /**
     * The workhorse: return the cached profile for @p key, or collect
     * it (sharded per @p key.shards on @p key.machine with @p jobs
     * workers), cache it and return it. @p cache_hit, when non-null,
     * reports which happened.
     */
    ProfileData getOrCollect(const ProfileKey &key, const Program &prog,
                             unsigned jobs,
                             bool *cache_hit = nullptr) const;

    /**
     * Path a shard with payload checksum @p checksum lives at. The
     * aggregation side of the store: collectors address entries by
     * ProfileKey (what to collect), a central aggregation store
     * addresses imported shards by what they contain.
     */
    std::string pathForChecksum(uint64_t checksum) const;

    /** True when a shard with @p checksum is cached. */
    bool containsChecksum(uint64_t checksum) const;

    /** Cache @p profile under its payload @p checksum (atomically). */
    void insertByChecksum(uint64_t checksum,
                          const ProfileData &profile) const;

    /**
     * insertByChecksum() from already-serialized bytes: copy the
     * profile file at @p src_path into the store (temp file + rename,
     * like every store write). For callers that verified the bytes
     * elsewhere (the aggregation import path) and should not pay a
     * re-parse + re-serialize just to deposit them.
     */
    void depositFileByChecksum(uint64_t checksum,
                               const std::string &src_path) const;

    /** Keys of every cached entry are not recoverable; count files. */
    size_t entryCount() const;

    /** Garbage-collection bounds; negative bounds are unlimited. */
    struct GcOptions
    {
        /** Evict entries last written more than this many seconds
         * ago. */
        int64_t max_age_s = -1;
        /** Then evict oldest-first until the store fits this size. */
        int64_t max_bytes = -1;
    };

    /** What gc() scanned and reclaimed. */
    struct GcResult
    {
        size_t scanned = 0;
        size_t evicted = 0;
        uint64_t bytes_before = 0;
        uint64_t bytes_after = 0;
    };

    /**
     * Age- and size-bounded eviction, oldest entry first (by file
     * modification time — a re-inserted entry is young again). The
     * store is a cache: an evicted entry turns the next lookup() into
     * a clean miss to re-collect, never an error. Entries that vanish
     * mid-scan (a concurrent gc or depositor) are skipped, not
     * failures.
     */
    GcResult gc(const GcOptions &options) const;

    /** Store root directory. */
    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
};

} // namespace hbbp

#endif // HBBP_FLEET_STORE_HH
