/**
 * @file
 * Incremental aggregator-state journaling.
 *
 * PR 4's `--state` checkpoint rewrites the whole aggregator state per
 * accepted shard — O(aggregate size) I/O per arrival, which a large
 * fleet turns into the ingest bottleneck. StateJournal keeps the same
 * crash-resume contract at O(shard size) per arrival: each accepted
 * arrival appends one self-checksummed record (the manifest plus the
 * shard in transportable form) to `<state>.journal`, and every
 * `compact_every` records the full checkpoint is rewritten and the
 * journal truncated. Restore loads the checkpoint, then replays the
 * journal through the aggregator's own fold — the checksum-dedup gate
 * makes replay idempotent, so the checkpoint-then-truncate ordering
 * can crash anywhere and still restore to the exact same bytes as an
 * aggregator that rewrote its state on every arrival.
 *
 * A torn tail record (the process died mid-append) is detected by the
 * record checksum and dropped with a warning; everything before it
 * replays. The shard a torn record carried was never acknowledged —
 * the per-accept record is written *before* the transport ack — so
 * its sender retries it, and nothing is lost.
 */

#ifndef HBBP_FLEET_JOURNAL_HH
#define HBBP_FLEET_JOURNAL_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "fleet/aggregate.hh"
#include "fleet/manifest.hh"

namespace hbbp {

/** Journaled checkpointing around an IncrementalAggregator. */
class StateJournal
{
  public:
    /**
     * Journal accepted arrivals against the checkpoint at @p
     * checkpoint_path, appending to `<checkpoint_path>.journal` and
     * compacting after @p compact_every records (>= 1).
     */
    explicit StateJournal(std::string checkpoint_path,
                         size_t compact_every = 32);

    /**
     * Restore @p agg (which must be fresh) from the checkpoint plus a
     * journal replay, then mark everything carried in as restored.
     * Returns true when any state was carried in; false with *@p why
     * set on a cold start (no checkpoint and no replayable records —
     * *why explains a checkpoint that existed but could not be used).
     */
    bool restore(IncrementalAggregator &agg, std::string *why = nullptr);

    /**
     * Record one accepted arrival: @p chunks is the shard in
     * transportable form (the assembled serialized shard for a leaf
     * manifest, the per-host partials aligned with manifest.covered
     * for an aggregate). Appends one O(shard) record, then compacts
     * (full @p agg checkpoint + journal truncation) once the
     * threshold is reached. Call after the fold and before the
     * arrival is acknowledged, like saveState() was.
     */
    void record(IncrementalAggregator &agg, const ShardManifest &manifest,
                const std::vector<std::string> &chunks);

    /** Rewrite the full checkpoint now and truncate the journal. */
    void compact(IncrementalAggregator &agg);

    /** Journal records replayed by restore() (0 on a cold start). */
    size_t replayedRecords() const { return replayed_; }

    /** Records appended since the last compaction (restore counts). */
    size_t pendingRecords() const { return pending_records_; }

    const std::string &checkpointPath() const { return checkpoint_; }
    const std::string &journalPath() const { return journal_; }

  private:
    std::string checkpoint_;
    std::string journal_;
    size_t compact_every_;
    size_t pending_records_ = 0;
    size_t replayed_ = 0;
};

/**
 * The one restore-at-startup policy every state-carrying process
 * (aggregate --state, relay --state) shares: restore @p agg through
 * @p journal when journaling is on, plain restoreState() otherwise,
 * and warn — never die — when a state file exists but cannot be used
 * (a cold start re-imports the shards). Returns the restored shard
 * count (0 on a cold start); no-op when @p state_file is empty.
 */
size_t restoreAggregatorState(IncrementalAggregator &agg,
                              std::optional<StateJournal> &journal,
                              const std::string &state_file);

} // namespace hbbp

#endif // HBBP_FLEET_JOURNAL_HH
