#include "fleet/batch.hh"

#include <memory>
#include <optional>

#include "fleet/store.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/thread_pool.hh"
#include "tools/registry.hh"

namespace hbbp {

BatchResult
runBatch(const std::vector<std::string> &workload_names,
         const BatchConfig &config)
{
    if (workload_names.empty())
        fatal("batch needs at least one workload");
    if (config.shards == 0)
        fatal("batch needs at least one shard per workload");

    // Resolve every name up front so a typo fails fast, before any
    // collection has burned cycles.
    std::vector<Workload> workloads;
    workloads.reserve(workload_names.size());
    for (const std::string &name : workload_names)
        workloads.push_back(requireWorkloadByName(name));

    std::optional<ProfileStore> store;
    if (!config.store_dir.empty())
        store.emplace(config.store_dir);

    BatchResult result;
    result.entries.resize(workloads.size());

    // One workload per task; shard-level parallelism inside a task is
    // disabled so the pool is never waited on from one of its own
    // workers. With fewer workloads than jobs the spare workers idle.
    parallelFor(workloads.size(), config.jobs, [&](size_t i) {
        const Workload &w = workloads[i];
        BatchEntry &entry = result.entries[i];
        entry.workload = w.name;

        ProfileKey key;
        key.workload = w.name;
        key.config = collectorConfigFor(w);
        key.shards = config.shards;
        key.machine = config.machine;

        ShardPlan plan;
        plan.shards = config.shards;
        plan.jobs = 1;

        ProfileData pd;
        if (store) {
            pd = store->getOrCollect(key, *w.program, /*jobs=*/1,
                                     &entry.cache_hit);
        } else {
            pd = collectSharded(*w.program, config.machine, key.config,
                                plan);
        }
        entry.instructions = pd.features.instructions;
        entry.ebs_samples = pd.ebs.size();
        entry.lbr_stacks = pd.lbr.size();

        Analyzer analyzer(config.analyzer);
        AnalysisResult res = analyzer.analyze(*w.program, pd);
        InstructionMix mix = res.hbbpMix();
        entry.hbbp_instructions = mix.totalInstructions();
        entry.hbbp_mnemonics = mix.mnemonicCounts();
    });

    // Fold in input order so the aggregate is independent of the
    // scheduling (double addition is order-sensitive).
    for (const BatchEntry &entry : result.entries) {
        result.aggregate.merge(entry.hbbp_mnemonics);
        if (entry.cache_hit)
            result.cache_hits++;
    }
    return result;
}

TextTable
BatchResult::summaryTable() const
{
    TextTable table({"workload", "cache", "instructions", "EBS", "LBR",
                     "HBBP instr"});
    for (size_t col = 2; col <= 5; col++)
        table.setAlign(col, Align::Right);
    for (const BatchEntry &e : entries) {
        table.addRow({e.workload, e.cache_hit ? "hit" : "miss",
                      withSeparators(e.instructions),
                      withSeparators(e.ebs_samples),
                      withSeparators(e.lbr_stacks),
                      withSeparators(static_cast<uint64_t>(
                          e.hbbp_instructions))});
    }
    return table;
}

TextTable
BatchResult::aggregateMixTable(size_t top_n) const
{
    TextTable table({"mnemonic", "count", "share"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);
    double total = aggregate.total();
    auto rows = top_n ? aggregate.top(top_n) : aggregate.sorted();
    for (const auto &[mn, count] : rows) {
        table.addRow({name(mn),
                      withSeparators(static_cast<uint64_t>(count)),
                      percentStr(total > 0 ? count / total : 0.0, 2)});
    }
    return table;
}

} // namespace hbbp
