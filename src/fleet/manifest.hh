/**
 * @file
 * The shard manifest — the unit of multi-host profile exchange.
 *
 * A collector host exports its profile as a *shard*: the serialized
 * ProfileData plus a small versioned text manifest describing where it
 * came from (host id, workload, sequence number — the aggregator
 * refuses to mix workloads), what produced it (the collection-options
 * hash, for provenance: host-derived seeds make it differ across
 * hosts by design), and what its payload hashes to (so transfers are
 * integrity-checked and duplicate deliveries are detected). The
 * manifest is written last and renamed into place, so a manifest's
 * presence guarantees the profile beside it is complete — aggregators
 * can watch a drop directory without racing exporters.
 *
 * Version 2 makes *partial aggregates* first-class shards: a relay
 * node that folded shards from N downstream hosts exports the fold
 * with `level` >= 1 and a `hosts=` line naming the covered hosts and
 * how many of each host's leaf shards the fold contains. Leaf shards
 * keep rendering in the version-1 text, so aggregation points built
 * before relays existed still read every collector's output.
 */

#ifndef HBBP_FLEET_MANIFEST_HH
#define HBBP_FLEET_MANIFEST_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "collect/profile.hh"

namespace hbbp {

/** Manifest text version written for leaf (level-0) shards. */
constexpr uint32_t kManifestVersion = 1;

/** Manifest text version written for aggregate (level >= 1) shards. */
constexpr uint32_t kManifestVersionAggregate = 2;

/**
 * One covered host inside an aggregate shard: the fold contains leaf
 * shards with sequence numbers [0, count) from this host.
 */
struct HostCoverage
{
    std::string host;
    uint32_t count = 0;

    bool operator==(const HostCoverage &other) const = default;
};

/** Lifecycle of an exported shard. */
enum class ShardStatus : uint8_t {
    Complete, ///< The profile beside the manifest is whole.
    Partial,  ///< Reserved: an exporter streaming an open collection.
};

const char *name(ShardStatus status);

/**
 * A usable host id: non-empty, no whitespace or '/' (ids become file
 * names), no ',' or ':' (ids are list elements in `hosts=` coverage
 * lines). Enforced wherever a host id enters the system — manifest
 * parse, drop-dir export, the push CLI — so a shard that folds
 * anywhere can always be re-exported one level up.
 */
bool validHostId(const std::string &host);

/** Everything an aggregator needs to know about one exported shard. */
struct ShardManifest
{
    uint32_t version = kManifestVersion;
    /** Collector host id (any non-empty label without whitespace). */
    std::string host;
    /** Workload the profile was collected from. */
    std::string workload;
    /** Shard sequence number within the host's export stream. */
    uint32_t seq = 0;
    /**
     * ProfileKey::hash() of the collection options used — provenance
     * for debugging a surprising aggregate, not a compatibility gate
     * (host-derived seeds make it differ across hosts by design; the
     * aggregator gates on workload and merge compatibility instead).
     */
    uint64_t options_hash = 0;
    /** ProfileData::payloadChecksum() of the exported profile. */
    uint64_t checksum = 0;
    /** Profile file name, relative to the manifest's directory. */
    std::string profile_file;
    ShardStatus status = ShardStatus::Complete;
    /**
     * Aggregation level: 0 for a leaf collector shard, N >= 1 for a
     * partial aggregate pushed by a relay whose deepest input was
     * level N-1. Levels exist for observability and sanity checks —
     * the fold semantics depend only on `covered`.
     */
    uint32_t level = 0;
    /**
     * For level >= 1: the hosts this aggregate covers, sorted by host
     * id with no duplicates, each count >= 1. The payload travels as
     * one chunk per entry, in this order — each chunk is that host's
     * folded partial — so a receiver can splice per-host partials into
     * its own per-host state and stay byte-identical to flat
     * aggregation no matter how the tree was shaped. Empty for leaf
     * shards.
     */
    std::vector<HostCoverage> covered;
    /**
     * Optional shard-lifecycle trace ids (see shardTraceId()). A
     * collector that pushes with --trace-log stamps its leaf shard
     * with one id; relays stamp their aggregates with the sorted
     * union of every stamped id they folded, so a root can attribute
     * an arriving aggregate to the leaf shards inside it. Rendered as
     * a trailing `trace=` line only when non-empty — unstamped leaf
     * manifests stay byte-identical to the frozen version-1 text, and
     * older parsers skip the key entirely (unknown keys are ignored).
     */
    std::vector<std::string> trace_ids;
    /**
     * Optional metrics scrape endpoint (`host:port`) of the daemon
     * that pushed this shard. A relay stamps its aggregates with its
     * own --metrics-port address so the parent learns where to
     * federate metrics from — endpoint discovery rides the shard tree
     * instead of needing separate configuration. Rendered as a
     * trailing `metrics=` line only when non-empty, so unstamped
     * manifests keep their frozen bytes and older parsers skip the
     * key.
     */
    std::string metrics_endpoint;

    bool operator==(const ShardManifest &other) const = default;

    /** Total leaf shards the manifest accounts for (1 for a leaf). */
    size_t coveredShardCount() const;

    /**
     * The manifest text (the exact bytes save() writes). Leaf shards
     * render as version 1 — byte-identical to what pre-relay builds
     * wrote — and aggregate shards as version 2 with the `level` and
     * `hosts` lines appended.
     */
    std::string render() const;

    /** Write atomically (temp file + rename) to @p path. */
    void save(const std::string &path) const;

    /**
     * Parse a manifest out of @p text. Returns std::nullopt with
     * *@p why describing the failure on truncated input, unknown
     * versions, missing fields or malformed values.
     */
    static std::optional<ShardManifest> parse(const std::string &text,
                                              std::string *why);

    /** parse() applied to the contents of @p path. */
    static std::optional<ShardManifest> tryLoad(const std::string &path,
                                                std::string *why);

    /** tryLoad() that fatal()s with the diagnostic instead. */
    static ShardManifest load(const std::string &path);
};

/**
 * Deterministic seed for @p host's export stream, mixing the host name
 * and @p seq into @p base the way shardStreamSeed() mixes shard
 * indices. Distinct hosts collect with distinct (but reproducible)
 * streams, so re-running an export is idempotent while two hosts never
 * produce byte-identical shards.
 */
uint64_t hostStreamSeed(uint64_t base, const std::string &host,
                        uint32_t seq);

/**
 * The lifecycle trace id of a shard: `<host>-<seq>-<checksum hex>`.
 * Deterministic, so every stage of the pipeline mints the same id for
 * the same shard without coordination; unique per shard because the
 * (host, seq) slot plus payload checksum is what the aggregator
 * itself dedups on. Trace ids are opaque to every consumer — they are
 * matched, never decomposed.
 */
std::string shardTraceId(const ShardManifest &m);

/**
 * Publish an already-serialized shard into @p dir: writes
 * `<host>-<seq>-<checksum>.hbbp` (the bytes as-is) then the matching
 * `.manifest` (manifest last, both atomically, so a watcher that sees
 * the manifest is guaranteed a complete profile beside it). @p m names
 * the shard; its profile_file and status are set here. fatal() on an
 * invalid host id or I/O failure. Returns the manifest path;
 * *@p manifest_out, when non-null, receives the written manifest.
 */
std::string writeShardFiles(ShardManifest m, const std::string &bytes,
                            const std::string &dir,
                            ShardManifest *manifest_out = nullptr);

/**
 * Export @p profile into @p dir as a shard via writeShardFiles() (the
 * payload is serialized exactly once). Returns the manifest path;
 * *@p manifest_out, when non-null, receives the written manifest.
 */
std::string exportShard(const ProfileData &profile,
                        const std::string &host,
                        const std::string &workload, uint32_t seq,
                        uint64_t options_hash, const std::string &dir,
                        ShardManifest *manifest_out = nullptr);

/** A shard pulled back out of a drop directory. */
struct ImportedShard
{
    ShardManifest manifest;
    ProfileData profile;
};

/**
 * Import the shard described by the manifest at @p manifest_path:
 * parse the manifest, locate the profile beside it, verify the
 * profile's header and payload checksum, and check it matches the
 * checksum the manifest promises. Returns std::nullopt with *@p why on
 * any failure (truncated manifest, missing or corrupt profile file,
 * checksum disagreement, legacy profile versions needing migration).
 */
std::optional<ImportedShard> importShard(const std::string &manifest_path,
                                         std::string *why);

} // namespace hbbp

#endif // HBBP_FLEET_MANIFEST_HH
