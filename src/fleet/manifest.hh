/**
 * @file
 * The shard manifest — the unit of multi-host profile exchange.
 *
 * A collector host exports its profile as a *shard*: the serialized
 * ProfileData plus a small versioned text manifest describing where it
 * came from (host id, workload, sequence number — the aggregator
 * refuses to mix workloads), what produced it (the collection-options
 * hash, for provenance: host-derived seeds make it differ across
 * hosts by design), and what its payload hashes to (so transfers are
 * integrity-checked and duplicate deliveries are detected). The
 * manifest is written last and renamed into place, so a manifest's
 * presence guarantees the profile beside it is complete — aggregators
 * can watch a drop directory without racing exporters.
 */

#ifndef HBBP_FLEET_MANIFEST_HH
#define HBBP_FLEET_MANIFEST_HH

#include <cstdint>
#include <optional>
#include <string>

#include "collect/profile.hh"

namespace hbbp {

/** Manifest text format version this build reads and writes. */
constexpr uint32_t kManifestVersion = 1;

/** Lifecycle of an exported shard. */
enum class ShardStatus : uint8_t {
    Complete, ///< The profile beside the manifest is whole.
    Partial,  ///< Reserved: an exporter streaming an open collection.
};

const char *name(ShardStatus status);

/** Everything an aggregator needs to know about one exported shard. */
struct ShardManifest
{
    uint32_t version = kManifestVersion;
    /** Collector host id (any non-empty label without whitespace). */
    std::string host;
    /** Workload the profile was collected from. */
    std::string workload;
    /** Shard sequence number within the host's export stream. */
    uint32_t seq = 0;
    /**
     * ProfileKey::hash() of the collection options used — provenance
     * for debugging a surprising aggregate, not a compatibility gate
     * (host-derived seeds make it differ across hosts by design; the
     * aggregator gates on workload and merge compatibility instead).
     */
    uint64_t options_hash = 0;
    /** ProfileData::payloadChecksum() of the exported profile. */
    uint64_t checksum = 0;
    /** Profile file name, relative to the manifest's directory. */
    std::string profile_file;
    ShardStatus status = ShardStatus::Complete;

    bool operator==(const ShardManifest &other) const = default;

    /** The manifest text (the exact bytes save() writes). */
    std::string render() const;

    /** Write atomically (temp file + rename) to @p path. */
    void save(const std::string &path) const;

    /**
     * Parse a manifest out of @p text. Returns std::nullopt with
     * *@p why describing the failure on truncated input, unknown
     * versions, missing fields or malformed values.
     */
    static std::optional<ShardManifest> parse(const std::string &text,
                                              std::string *why);

    /** parse() applied to the contents of @p path. */
    static std::optional<ShardManifest> tryLoad(const std::string &path,
                                                std::string *why);

    /** tryLoad() that fatal()s with the diagnostic instead. */
    static ShardManifest load(const std::string &path);
};

/**
 * Deterministic seed for @p host's export stream, mixing the host name
 * and @p seq into @p base the way shardStreamSeed() mixes shard
 * indices. Distinct hosts collect with distinct (but reproducible)
 * streams, so re-running an export is idempotent while two hosts never
 * produce byte-identical shards.
 */
uint64_t hostStreamSeed(uint64_t base, const std::string &host,
                        uint32_t seq);

/**
 * Publish an already-serialized shard into @p dir: writes
 * `<host>-<seq>-<checksum>.hbbp` (the bytes as-is) then the matching
 * `.manifest` (manifest last, both atomically, so a watcher that sees
 * the manifest is guaranteed a complete profile beside it). @p m names
 * the shard; its profile_file and status are set here. fatal() on an
 * invalid host id or I/O failure. Returns the manifest path;
 * *@p manifest_out, when non-null, receives the written manifest.
 */
std::string writeShardFiles(ShardManifest m, const std::string &bytes,
                            const std::string &dir,
                            ShardManifest *manifest_out = nullptr);

/**
 * Export @p profile into @p dir as a shard via writeShardFiles() (the
 * payload is serialized exactly once). Returns the manifest path;
 * *@p manifest_out, when non-null, receives the written manifest.
 */
std::string exportShard(const ProfileData &profile,
                        const std::string &host,
                        const std::string &workload, uint32_t seq,
                        uint64_t options_hash, const std::string &dir,
                        ShardManifest *manifest_out = nullptr);

/** A shard pulled back out of a drop directory. */
struct ImportedShard
{
    ShardManifest manifest;
    ProfileData profile;
};

/**
 * Import the shard described by the manifest at @p manifest_path:
 * parse the manifest, locate the profile beside it, verify the
 * profile's header and payload checksum, and check it matches the
 * checksum the manifest promises. Returns std::nullopt with *@p why on
 * any failure (truncated manifest, missing or corrupt profile file,
 * checksum disagreement, legacy profile versions needing migration).
 */
std::optional<ImportedShard> importShard(const std::string &manifest_path,
                                         std::string *why);

} // namespace hbbp

#endif // HBBP_FLEET_MANIFEST_HH
