#include "fleet/merge.hh"

#include <atomic>

#include "support/logging.hh"
#include "support/vectorops.hh"

namespace hbbp {

namespace {

/** Lanes clamped at UINT64_MAX across every merge in this process. */
std::atomic<uint64_t> g_saturated_lanes{0};
std::atomic<bool> g_saturation_warned{false};

/** True when [a, a+an) and [b, b+bn) share at least one address. */
bool
rangesOverlap(uint64_t a, uint64_t an, uint64_t b, uint64_t bn)
{
    if (an == 0 || bn == 0)
        return false;
    // Bases come from the module map, sizes from the loader; a range
    // that wraps the address space is malformed, treat it as ending at
    // the top.
    uint64_t a_end = a + an < a ? UINT64_MAX : a + an;
    uint64_t b_end = b + bn < b ? UINT64_MAX : b + bn;
    return a < b_end && b < a_end;
}

} // namespace

bool
mergeCompatible(const ProfileData &a, const ProfileData &b,
                std::string *why)
{
    auto fail = [&](std::string reason) {
        if (why)
            *why = std::move(reason);
        return false;
    };
    if (a.sim_periods.ebs != b.sim_periods.ebs ||
        a.sim_periods.lbr != b.sim_periods.lbr)
        return fail(format(
            "simulation sampling periods differ (ebs %llu/%llu vs "
            "lbr %llu/%llu)",
            static_cast<unsigned long long>(a.sim_periods.ebs),
            static_cast<unsigned long long>(b.sim_periods.ebs),
            static_cast<unsigned long long>(a.sim_periods.lbr),
            static_cast<unsigned long long>(b.sim_periods.lbr)));
    if (a.paper_periods.ebs != b.paper_periods.ebs ||
        a.paper_periods.lbr != b.paper_periods.lbr)
        return fail("paper-scale sampling periods differ");
    if (a.runtime_class != b.runtime_class)
        return fail(format("runtime classes differ (%s vs %s)",
                           name(a.runtime_class), name(b.runtime_class)));
    return true;
}

bool
mmapRecordsConflict(const MmapRecord &have, const MmapRecord &rec,
                    std::string *why)
{
    auto fail = [&](std::string reason) {
        if (why)
            *why = std::move(reason);
        return true;
    };
    if (have.name == rec.name) {
        if (have == rec)
            return false;
        return fail(format(
            "module '%s' mapped at %#llx+%#llx in one shard but "
            "%#llx+%#llx in another",
            rec.name.c_str(),
            static_cast<unsigned long long>(have.base),
            static_cast<unsigned long long>(have.size),
            static_cast<unsigned long long>(rec.base),
            static_cast<unsigned long long>(rec.size)));
    }
    if (rangesOverlap(have.base, have.size, rec.base, rec.size))
        return fail(format(
            "modules '%s' (%#llx+%#llx) and '%s' (%#llx+%#llx) overlap; "
            "shards were collected against different module layouts and "
            "their samples would be cross-attributed",
            have.name.c_str(),
            static_cast<unsigned long long>(have.base),
            static_cast<unsigned long long>(have.size),
            rec.name.c_str(),
            static_cast<unsigned long long>(rec.base),
            static_cast<unsigned long long>(rec.size)));
    return false;
}

uint64_t
saturatedFoldLanes()
{
    return g_saturated_lanes.load(std::memory_order_relaxed);
}

void
mergeInto(ProfileData &into, const ProfileData &shard)
{
    std::string why;
    if (!mergeCompatible(into, shard, &why))
        fatal("cannot merge profiles: %s", why.c_str());

    for (const MmapRecord &rec : shard.mmaps) {
        bool found = false;
        // Check every existing record, not just the same-named one: a
        // differently-named record whose address range overlaps is a
        // layout conflict too (it used to merge silently).
        for (const MmapRecord &have : into.mmaps) {
            if (mmapRecordsConflict(have, rec, &why))
                fatal("cannot merge profiles: %s", why.c_str());
            if (have.name == rec.name)
                found = true;
        }
        if (!found)
            into.mmaps.push_back(rec);
    }

    into.ebs.insert(into.ebs.end(), shard.ebs.begin(), shard.ebs.end());
    into.lbr.insert(into.lbr.end(), shard.lbr.begin(), shard.lbr.end());

    // Fold the u64 feature lanes through the dispatched saturating
    // accumulate: lanes that would wrap past UINT64_MAX clamp there
    // (the old unchecked += wrapped silently and corrupted fleet-scale
    // cycle/instruction totals).
    uint64_t dst[6] = {
        into.features.cycles,        into.features.instructions,
        into.features.block_entries, into.features.taken_branches,
        into.features.simd_instructions, into.pmi_count,
    };
    const uint64_t src[6] = {
        shard.features.cycles,        shard.features.instructions,
        shard.features.block_entries, shard.features.taken_branches,
        shard.features.simd_instructions, shard.pmi_count,
    };
    size_t saturated = vecops::accumulateSatU64(dst, src, 6);
    into.features.cycles = dst[0];
    into.features.instructions = dst[1];
    into.features.block_entries = dst[2];
    into.features.taken_branches = dst[3];
    into.features.simd_instructions = dst[4];
    into.pmi_count = dst[5];
    if (saturated > 0) {
        g_saturated_lanes.fetch_add(saturated,
                                    std::memory_order_relaxed);
        if (!g_saturation_warned.exchange(true,
                                          std::memory_order_relaxed))
            warn("feature counter saturation: %zu lane(s) clamped at "
                 "UINT64_MAX during a profile merge; aggregate "
                 "cycle/instruction totals are lower bounds from here "
                 "on (reported once; see saturated= in the aggregate "
                 "stats line)",
                 saturated);
    }
}

void
accumulateInto(std::optional<ProfileData> &into, const ProfileData &shard)
{
    if (!into)
        into = shard;
    else
        mergeInto(*into, shard);
}

ProfileData
mergeProfiles(const std::vector<ProfileData> &shards)
{
    if (shards.empty())
        fatal("cannot merge an empty profile list");
    ProfileData merged = shards.front();
    for (size_t i = 1; i < shards.size(); i++)
        mergeInto(merged, shards[i]);
    return merged;
}

} // namespace hbbp
