#include "fleet/merge.hh"

#include "support/logging.hh"

namespace hbbp {

bool
mergeCompatible(const ProfileData &a, const ProfileData &b,
                std::string *why)
{
    auto fail = [&](std::string reason) {
        if (why)
            *why = std::move(reason);
        return false;
    };
    if (a.sim_periods.ebs != b.sim_periods.ebs ||
        a.sim_periods.lbr != b.sim_periods.lbr)
        return fail(format(
            "simulation sampling periods differ (ebs %llu/%llu vs "
            "lbr %llu/%llu)",
            static_cast<unsigned long long>(a.sim_periods.ebs),
            static_cast<unsigned long long>(b.sim_periods.ebs),
            static_cast<unsigned long long>(a.sim_periods.lbr),
            static_cast<unsigned long long>(b.sim_periods.lbr)));
    if (a.paper_periods.ebs != b.paper_periods.ebs ||
        a.paper_periods.lbr != b.paper_periods.lbr)
        return fail("paper-scale sampling periods differ");
    if (a.runtime_class != b.runtime_class)
        return fail(format("runtime classes differ (%s vs %s)",
                           name(a.runtime_class), name(b.runtime_class)));
    return true;
}

void
mergeInto(ProfileData &into, const ProfileData &shard)
{
    std::string why;
    if (!mergeCompatible(into, shard, &why))
        fatal("cannot merge profiles: %s", why.c_str());

    for (const MmapRecord &rec : shard.mmaps) {
        bool found = false;
        for (const MmapRecord &have : into.mmaps) {
            if (have.name != rec.name)
                continue;
            if (!(have == rec))
                fatal("cannot merge profiles: module '%s' mapped at "
                      "%#llx+%#llx in one shard but %#llx+%#llx in "
                      "another",
                      rec.name.c_str(),
                      static_cast<unsigned long long>(have.base),
                      static_cast<unsigned long long>(have.size),
                      static_cast<unsigned long long>(rec.base),
                      static_cast<unsigned long long>(rec.size));
            found = true;
            break;
        }
        if (!found)
            into.mmaps.push_back(rec);
    }

    into.ebs.insert(into.ebs.end(), shard.ebs.begin(), shard.ebs.end());
    into.lbr.insert(into.lbr.end(), shard.lbr.begin(), shard.lbr.end());

    into.features.cycles += shard.features.cycles;
    into.features.instructions += shard.features.instructions;
    into.features.block_entries += shard.features.block_entries;
    into.features.taken_branches += shard.features.taken_branches;
    into.features.simd_instructions += shard.features.simd_instructions;
    into.pmi_count += shard.pmi_count;
}

void
accumulateInto(std::optional<ProfileData> &into, const ProfileData &shard)
{
    if (!into)
        into = shard;
    else
        mergeInto(*into, shard);
}

ProfileData
mergeProfiles(const std::vector<ProfileData> &shards)
{
    if (shards.empty())
        fatal("cannot merge an empty profile list");
    ProfileData merged = shards.front();
    for (size_t i = 1; i < shards.size(); i++)
        mergeInto(merged, shards[i]);
    return merged;
}

} // namespace hbbp
