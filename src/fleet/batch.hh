/**
 * @file
 * The fleet batch driver.
 *
 * Fans a list of workloads across a worker pool — collect (through the
 * content-addressed store when one is configured), analyze, and fold
 * every per-workload HBBP mix into one aggregated fleet-wide
 * instruction mix. This is the fleet-profiler view of the paper's
 * tool: not "what does one run of one binary execute" but "what does
 * the whole fleet execute", which is the question continuous profilers
 * answer in production.
 *
 * Results are deterministic: workloads are resolved up front, every
 * task writes into its own slot, and the aggregation folds in input
 * order — the jobs count changes wall-clock time only.
 */

#ifndef HBBP_FLEET_BATCH_HH
#define HBBP_FLEET_BATCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "fleet/shard.hh"
#include "isa/mnemonic.hh"
#include "sim/machine.hh"
#include "support/histogram.hh"
#include "support/table.hh"

namespace hbbp {

/** Batch driver configuration. */
struct BatchConfig
{
    /** Shards each workload's collection is split into. */
    uint32_t shards = 1;
    /** Worker threads fanning out over the workload list. */
    unsigned jobs = 1;
    /** Profile store directory; empty disables caching. */
    std::string store_dir;
    /** Machine timing model shared by every run. */
    MachineConfig machine;
    /** Analysis options shared by every run. */
    AnalyzerOptions analyzer;
};

/** One workload's slice of a batch run. */
struct BatchEntry
{
    std::string workload;
    bool cache_hit = false;          ///< Profile came from the store.
    uint64_t instructions = 0;       ///< Simulated instructions.
    uint64_t ebs_samples = 0;
    uint64_t lbr_stacks = 0;
    double hbbp_instructions = 0.0;  ///< Total of the HBBP mix.
    Counter<Mnemonic> hbbp_mnemonics;
};

/** Everything one batch run produces. */
struct BatchResult
{
    std::vector<BatchEntry> entries; ///< In input order.
    Counter<Mnemonic> aggregate;     ///< Fleet-wide mnemonic counts.
    size_t cache_hits = 0;

    /** Per-workload summary table. */
    TextTable summaryTable() const;

    /** Aggregated fleet mix table (top @p top_n rows; 0 = all). */
    TextTable aggregateMixTable(size_t top_n = 0) const;
};

/**
 * Run the batch: collect + analyze every named workload and aggregate.
 * fatal() (with suggestions) on unknown workload names, before any
 * collection starts.
 */
BatchResult runBatch(const std::vector<std::string> &workloads,
                     const BatchConfig &config);

} // namespace hbbp

#endif // HBBP_FLEET_BATCH_HH
