/**
 * @file
 * Profile merging — the fleet aggregation primitive.
 *
 * Production fleet profilers batch per-machine perf.data shards into one
 * aggregate before analysis; this module gives ProfileData the same
 * well-defined merge semantics. Samples are statistical, so merging is
 * concatenation: EBS and LBR samples append in argument order, PMI
 * counts and run features sum, and module maps reconcile record-by-
 * record. Profiles are only mergeable when they were collected with
 * identical sampling periods and runtime class — mixing periods would
 * silently bias every downstream BBEC estimate, so it is a fatal()
 * diagnostic instead.
 */

#ifndef HBBP_FLEET_MERGE_HH
#define HBBP_FLEET_MERGE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "collect/profile.hh"

namespace hbbp {

/**
 * True when @p a and @p b may be merged (same sampling periods and
 * runtime class); when false and @p why is non-null, *why describes the
 * first mismatch found.
 */
bool mergeCompatible(const ProfileData &a, const ProfileData &b,
                     std::string *why = nullptr);

/**
 * True when two module-map records cannot coexist in one aggregate:
 * either the same module name placed differently, or two *different*
 * names whose [base, base+size) address ranges overlap — the latter
 * used to merge silently and attribute one module's samples to the
 * other. When true and @p why is non-null, *why holds a diagnostic.
 */
bool mmapRecordsConflict(const MmapRecord &have, const MmapRecord &rec,
                         std::string *why = nullptr);

/**
 * Process-wide count of u64 feature-counter lanes (cycles,
 * instructions, block entries, taken branches, SIMD instructions, PMI
 * count) that saturated at UINT64_MAX during merges. Saturation warns
 * once per process and is surfaced in the aggregate stats line; the
 * pre-fix behavior was an unchecked += that silently wrapped.
 */
uint64_t saturatedFoldLanes();

/**
 * Merge @p shards (in order) into one aggregate profile.
 *
 * fatal() on an empty input, on incompatible sampling periods or
 * runtime classes, and on module maps that disagree about a module's
 * placement. Module records keep first-seen order; records new to the
 * aggregate are appended, so the result is deterministic in the input
 * order regardless of how the shards were produced.
 */
ProfileData mergeProfiles(const std::vector<ProfileData> &shards);

/** Merge @p shard into @p into (same rules as mergeProfiles). */
void mergeInto(ProfileData &into, const ProfileData &shard);

/**
 * Fold @p shard into the running aggregate @p into, initializing it
 * from the first shard. The incremental-fold primitive: a stream of
 * compatible shards accumulated this way equals mergeProfiles() over
 * the same stream in the same order.
 */
void accumulateInto(std::optional<ProfileData> &into,
                    const ProfileData &shard);

} // namespace hbbp

#endif // HBBP_FLEET_MERGE_HH
