/**
 * @file
 * Sharded parallel collection.
 *
 * One logical collection run is split into N shards, each a full
 * simulated execution with an independent deterministic RNG stream and
 * 1/N of the instruction budget, collected concurrently on a worker
 * pool and merged in shard order. Because shard seeds derive only from
 * (base seed, shard index) and the merge is index-ordered, the merged
 * profile is byte-identical for jobs=1 and jobs=N — parallelism changes
 * wall-clock time, never the result. A single-shard plan degenerates to
 * exactly Collector::collect().
 */

#ifndef HBBP_FLEET_SHARD_HH
#define HBBP_FLEET_SHARD_HH

#include <cstdint>
#include <vector>

#include "collect/collector.hh"
#include "collect/profile.hh"

namespace hbbp {

/** How to split and schedule one collection run. */
struct ShardPlan
{
    /** Number of shards the run is split into (>= 1). */
    uint32_t shards = 1;
    /** Worker threads collecting shards concurrently (>= 1). */
    unsigned jobs = 1;
};

/**
 * Deterministic seed for @p shard's RNG stream, derived from @p base.
 * Streams for distinct shards are independent; shard seeds never
 * collide with the base seed itself.
 */
uint64_t shardStreamSeed(uint64_t base, uint32_t shard);

/**
 * The collector configuration for shard @p shard of @p total: the
 * instruction budget is split evenly (remainder to the low shards) and
 * the execution/PMU seeds are re-derived per shard.
 */
CollectorConfig shardConfig(const CollectorConfig &base, uint32_t shard,
                            uint32_t total);

/**
 * Collect @p plan.shards shards of @p prog concurrently and merge them.
 * See the file comment for the determinism guarantee.
 */
ProfileData collectSharded(const Program &prog,
                           const MachineConfig &machine,
                           const CollectorConfig &config,
                           const ShardPlan &plan);

/** The individual shard profiles, in shard order (mainly for tests). */
std::vector<ProfileData> collectShards(const Program &prog,
                                       const MachineConfig &machine,
                                       const CollectorConfig &config,
                                       const ShardPlan &plan);

} // namespace hbbp

#endif // HBBP_FLEET_SHARD_HH
