#include "fleet/store.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/telemetry.hh"

namespace fs = std::filesystem;

namespace hbbp {

std::string
ProfileKey::describe() const
{
    const PmuConfig &p = config.pmu;
    const LbrQuirkConfig &q = p.quirk;
    return format(
        "workload=%s;class=%s;scale=%llu;budget=%llu;seed=%llu;"
        "shards=%u;pmu_seed=%llu;skid=%u-%u;lbr_delay=%u;lbr_depth=%u;"
        "kernel=%d;quirk=%d,%u,%.9g,%u;freq=%.9g;memx=%u",
        workload.c_str(), name(config.runtime_class),
        static_cast<unsigned long long>(config.period_scale),
        static_cast<unsigned long long>(config.max_instructions),
        static_cast<unsigned long long>(config.seed), shards,
        static_cast<unsigned long long>(p.seed),
        p.precise_skid_min_cycles, p.precise_skid_max_cycles,
        p.lbr_pmi_delay_cycles, p.lbr_depth, p.monitor_kernel ? 1 : 0,
        q.enabled ? 1 : 0, q.sticky_hash_mod, q.sticky_persist_prob,
        q.sticky_max_persist, machine.freq_ghz,
        machine.mem_extra_cycles);
}

uint64_t
ProfileKey::hash() const
{
    return fnv1a(describe());
}

ProfileStore::ProfileStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create profile store '%s': %s", dir_.c_str(),
              ec.message().c_str());
}

std::string
ProfileStore::pathFor(const ProfileKey &key) const
{
    return format("%s/%016llx.hbbp", dir_.c_str(),
                  static_cast<unsigned long long>(key.hash()));
}

bool
ProfileStore::contains(const ProfileKey &key) const
{
    std::error_code ec;
    return fs::exists(pathFor(key), ec);
}

std::optional<ProfileData>
ProfileStore::lookup(const ProfileKey &key) const
{
    static telemetry::Counter &m_hits =
        telemetry::counter("hbbp_store_hits_total");
    static telemetry::Counter &m_misses =
        telemetry::counter("hbbp_store_misses_total");
    static telemetry::Counter &m_heals =
        telemetry::counter("hbbp_store_heals_total");
    if (!contains(key)) {
        m_misses.add();
        return std::nullopt;
    }
    // A cache treats an unreadable entry — legacy format version,
    // stale checksum, truncation — as a miss to be re-collected and
    // overwritten, never a fatal error. Evict the dead file while
    // we're here: misses under the same key overwrite it anyway, but a
    // format bump strands entries under every *other* key, and without
    // eviction the whole stale store leaks on disk forever.
    std::string why;
    bool io_failed = false;
    std::optional<ProfileData> pd =
        ProfileData::tryLoad(pathFor(key), &why, nullptr, &io_failed);
    if (!pd) {
        m_misses.add();
        // Only the entry's *content* condemns it. An I/O-level
        // failure (fd exhaustion, a transient permission hiccup, a
        // flaky mount) says nothing about the bytes — deleting on
        // that would throw away a perfectly good entry.
        if (io_failed) {
            warn("ignoring unreadable profile store entry (%s)",
                 why.c_str());
        } else {
            warn("evicting stale profile store entry (%s)",
                 why.c_str());
            m_heals.add();
            std::error_code ec;
            fs::remove(pathFor(key), ec);
        }
    } else {
        m_hits.add();
    }
    return pd;
}

void
ProfileStore::insert(const ProfileKey &key,
                     const ProfileData &profile) const
{
    profile.saveAtomically(pathFor(key));
}

std::string
ProfileStore::pathForChecksum(uint64_t checksum) const
{
    // A distinct prefix keeps checksum-addressed shards from ever
    // colliding with a key-addressed collection cache entry.
    return format("%s/shard-%016llx.hbbp", dir_.c_str(),
                  static_cast<unsigned long long>(checksum));
}

bool
ProfileStore::containsChecksum(uint64_t checksum) const
{
    std::error_code ec;
    return fs::exists(pathForChecksum(checksum), ec);
}

void
ProfileStore::insertByChecksum(uint64_t checksum,
                               const ProfileData &profile) const
{
    profile.saveAtomically(pathForChecksum(checksum));
}

void
ProfileStore::depositFileByChecksum(uint64_t checksum,
                                    const std::string &src_path) const
{
    // Same unique-temp-then-rename discipline as saveAtomically: two
    // depositors racing to the same checksum must never interleave
    // into one temp file and publish a corrupt entry.
    static std::atomic<uint64_t> tmp_serial{0};
    std::string dst = pathForChecksum(checksum);
    std::string tmp = format(
        "%s.tmp.%ld.%llu", dst.c_str(), static_cast<long>(::getpid()),
        static_cast<unsigned long long>(
            tmp_serial.fetch_add(1, std::memory_order_relaxed)));
    std::error_code ec;
    fs::copy_file(src_path, tmp, fs::copy_options::overwrite_existing,
                  ec);
    if (ec)
        fatal("cannot deposit '%s' into the profile store: %s",
              src_path.c_str(), ec.message().c_str());
    if (std::rename(tmp.c_str(), dst.c_str()) != 0)
        fatal("cannot move '%s' into place at '%s'", tmp.c_str(),
              dst.c_str());
}

ProfileData
ProfileStore::getOrCollect(const ProfileKey &key, const Program &prog,
                           unsigned jobs, bool *cache_hit) const
{
    if (std::optional<ProfileData> cached = lookup(key)) {
        if (cache_hit)
            *cache_hit = true;
        return std::move(*cached);
    }
    ShardPlan plan;
    plan.shards = key.shards;
    plan.jobs = jobs;
    ProfileData pd = collectSharded(prog, key.machine, key.config, plan);
    insert(key, pd);
    if (cache_hit)
        *cache_hit = false;
    return pd;
}

ProfileStore::GcResult
ProfileStore::gc(const GcOptions &options) const
{
    struct Entry
    {
        std::string path;
        fs::file_time_type mtime;
        uint64_t size = 0;
    };
    std::vector<Entry> entries;
    GcResult res;
    std::error_code ec;
    for (const fs::directory_entry &e :
         fs::directory_iterator(dir_, ec)) {
        if (e.path().extension() != ".hbbp")
            continue;
        Entry entry;
        entry.path = e.path().string();
        entry.mtime = fs::last_write_time(e.path(), ec);
        if (ec)
            continue; // Vanished mid-scan (concurrent gc/depositor).
        entry.size = fs::file_size(e.path(), ec);
        if (ec)
            continue;
        res.scanned++;
        res.bytes_before += entry.size;
        entries.push_back(std::move(entry));
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime ||
                         (a.mtime == b.mtime && a.path < b.path);
              });

    res.bytes_after = res.bytes_before;
    auto evict = [&](const Entry &entry) {
        std::error_code rm_ec;
        fs::remove(entry.path, rm_ec);
        if (rm_ec) {
            // Counting a failed remove as freed space would let the
            // size pass stop early and report an under-budget store
            // that is still over the bound.
            warn("cannot evict profile store entry '%s': %s",
                 entry.path.c_str(), rm_ec.message().c_str());
            return;
        }
        // A vanished entry is someone else's eviction — either way it
        // no longer takes up space.
        res.evicted++;
        res.bytes_after -= entry.size;
        static telemetry::Counter &m_evictions =
            telemetry::counter("hbbp_store_gc_evictions_total");
        m_evictions.add();
    };

    size_t next = 0;
    if (options.max_age_s >= 0) {
        // An "effectively unlimited" age like 1e11 seconds would
        // overflow the file clock's rep when subtracted (the clock's
        // epoch may itself sit far from now — libstdc++ uses 2174),
        // wrapping the cutoff into the future and evicting the
        // *entire* store. Guard every step: a cutoff that would fall
        // before representable time means nothing can be that old.
        using file_dur = fs::file_time_type::duration;
        auto now_d =
            fs::file_time_type::clock::now().time_since_epoch();
        int64_t max_sec =
            std::chrono::duration_cast<std::chrono::seconds>(
                file_dur::max())
                .count();
        bool cutoff_ok = false;
        fs::file_time_type cutoff{};
        if (options.max_age_s <= max_sec) {
            file_dur age =
                std::chrono::duration_cast<file_dur>(
                    std::chrono::seconds(options.max_age_s));
            if (now_d >= file_dur::min() + age) {
                cutoff = fs::file_time_type(now_d - age);
                cutoff_ok = true;
            }
        }
        // Oldest-first order means the age pass consumes a prefix.
        while (cutoff_ok && next < entries.size() &&
               entries[next].mtime < cutoff)
            evict(entries[next++]);
    }
    if (options.max_bytes >= 0) {
        while (next < entries.size() &&
               res.bytes_after > static_cast<uint64_t>(options.max_bytes))
            evict(entries[next++]);
    }
    static telemetry::Gauge &m_resident =
        telemetry::gauge("hbbp_store_resident_bytes");
    m_resident.set(static_cast<int64_t>(res.bytes_after));
    return res;
}

size_t
ProfileStore::entryCount() const
{
    size_t n = 0;
    std::error_code ec;
    for (const fs::directory_entry &e : fs::directory_iterator(dir_, ec))
        if (e.path().extension() == ".hbbp")
            n++;
    return n;
}

} // namespace hbbp
