#include "fleet/store.hh"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "support/logging.hh"

namespace fs = std::filesystem;

namespace hbbp {

std::string
ProfileKey::describe() const
{
    const PmuConfig &p = config.pmu;
    const LbrQuirkConfig &q = p.quirk;
    return format(
        "workload=%s;class=%s;scale=%llu;budget=%llu;seed=%llu;"
        "shards=%u;pmu_seed=%llu;skid=%u-%u;lbr_delay=%u;lbr_depth=%u;"
        "kernel=%d;quirk=%d,%u,%.9g,%u;freq=%.9g;memx=%u",
        workload.c_str(), name(config.runtime_class),
        static_cast<unsigned long long>(config.period_scale),
        static_cast<unsigned long long>(config.max_instructions),
        static_cast<unsigned long long>(config.seed), shards,
        static_cast<unsigned long long>(p.seed),
        p.precise_skid_min_cycles, p.precise_skid_max_cycles,
        p.lbr_pmi_delay_cycles, p.lbr_depth, p.monitor_kernel ? 1 : 0,
        q.enabled ? 1 : 0, q.sticky_hash_mod, q.sticky_persist_prob,
        q.sticky_max_persist, machine.freq_ghz,
        machine.mem_extra_cycles);
}

uint64_t
ProfileKey::hash() const
{
    // FNV-1a, 64-bit.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : describe()) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

ProfileStore::ProfileStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create profile store '%s': %s", dir_.c_str(),
              ec.message().c_str());
}

std::string
ProfileStore::pathFor(const ProfileKey &key) const
{
    return format("%s/%016llx.hbbp", dir_.c_str(),
                  static_cast<unsigned long long>(key.hash()));
}

bool
ProfileStore::contains(const ProfileKey &key) const
{
    std::error_code ec;
    return fs::exists(pathFor(key), ec);
}

std::optional<ProfileData>
ProfileStore::lookup(const ProfileKey &key) const
{
    if (!contains(key))
        return std::nullopt;
    return ProfileData::load(pathFor(key));
}

void
ProfileStore::insert(const ProfileKey &key,
                     const ProfileData &profile) const
{
    // The tmp name must be unique per writer: concurrent collectors of
    // the same key (two batch tasks, two processes) would otherwise
    // interleave writes into one file and rename a corrupt profile
    // into place.
    static std::atomic<uint64_t> tmp_serial{0};
    std::string path = pathFor(key);
    std::string tmp = format(
        "%s.tmp.%ld.%llu", path.c_str(),
        static_cast<long>(::getpid()),
        static_cast<unsigned long long>(
            tmp_serial.fetch_add(1, std::memory_order_relaxed)));
    profile.save(tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot move '%s' into the profile store", tmp.c_str());
}

ProfileData
ProfileStore::getOrCollect(const ProfileKey &key, const Program &prog,
                           unsigned jobs, bool *cache_hit) const
{
    if (std::optional<ProfileData> cached = lookup(key)) {
        if (cache_hit)
            *cache_hit = true;
        return std::move(*cached);
    }
    ShardPlan plan;
    plan.shards = key.shards;
    plan.jobs = jobs;
    ProfileData pd = collectSharded(prog, key.machine, key.config, plan);
    insert(key, pd);
    if (cache_hit)
        *cache_hit = false;
    return pd;
}

size_t
ProfileStore::entryCount() const
{
    size_t n = 0;
    std::error_code ec;
    for (const fs::directory_entry &e : fs::directory_iterator(dir_, ec))
        if (e.path().extension() == ".hbbp")
            n++;
    return n;
}

} // namespace hbbp
